//! The workspace call graph behind the interprocedural rules.
//!
//! Nodes are `fn` items keyed `crate::module::name` (module path derived
//! from the file path), built from the same [`crate::parse::FnSig`]
//! layer the structural rules use.  Edges come from call-site tokens and
//! are resolved with the unanimous-name-index trick `err-swallow`
//! already relies on — a call edge is only recorded when it can be
//! justified, ambiguity stays silent:
//!
//! * **bare calls** (`foo(..)`) resolve to a same-file `fn foo` when the
//!   file defines exactly one, else through the file's `use` imports,
//!   else to the unique workspace `fn foo` — two candidates means no
//!   edge;
//! * **qualified calls** (`zoo::by_name(..)`) expand the first segment
//!   through the file's `use` aliases (`use hypar_models::zoo;`,
//!   `use hypar_graph::{zoo as graph_zoo}`) and match the resulting
//!   module path against node labels; `Type::method(..)` falls back to
//!   the unique workspace fn of that name;
//! * **method calls** (`x.foo(..)`) resolve by bare name when the
//!   workspace defines exactly one `fn foo` *and* the name does not
//!   shadow a std-prelude method (`.find(..)` on an iterator must never
//!   edge to a workspace `fn find`).
//!
//! # How reachability is computed
//!
//! Two closures are derived, each used only in the direction where its
//! approximation is sound:
//!
//! * **must-reach** — the closure of the justified edges above, seeded
//!   at the configured service entry points ([`crate::config::Config::entry_points`]:
//!   `PlanEngine::plan*`, `service::handle_*`/`serve_*`, the engine and
//!   replay `main`s, scenario/replay/golden runners).  It only ever
//!   *extends* rule coverage — into `models`/`bench` (`panic-reach`) and
//!   into the `lock-order`/`recurse-request` analyses — and provides the
//!   `entry_trace` call chains, so every extra finding carries a
//!   justifiable path from an entry point.
//! * **may-reach** — an over-approximation (every same-name candidate
//!   gets an edge, std-shadowing included), seeded at the entry points
//!   *plus* every `fn main` *plus* every `pub` fn.  It is used only to
//!   *exempt*: a private fn that even the over-approximated graph cannot
//!   reach from any callable root is a genuinely unreachable helper, and
//!   `panic-path`/`err-swallow` stop flagging it.
//!
//! A workspace with no entry points (the ratchet-gate mini-workspaces)
//! skips all reachability logic: per-file rules behave exactly as
//! before.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::Config;
use crate::json::escape;
use crate::lexer::{Token, TokenKind};

/// Schema identifier stamped into the `--callgraph json` document.
pub const CALLGRAPH_SCHEMA: &str = "hypar-analyzer-callgraph/v1";

/// Method names that shadow std-prelude/collection methods: a dotted
/// call through one of these never resolves to a workspace fn, however
/// unique the name — `.find(..)` is `Iterator::find`, not `fn find`.
const STD_METHODS: &[&str] = &[
    "all",
    "any",
    "as_bytes",
    "as_ref",
    "as_str",
    "by_ref",
    "chain",
    "chars",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "elapsed",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "flush",
    "fold",
    "get",
    "get_mut",
    "get_or_init",
    "insert",
    "into_inner",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "parse",
    "partial_cmp",
    "position",
    "push",
    "push_str",
    "pop",
    "read",
    "remove",
    "retain",
    "rev",
    "skip",
    "sort",
    "sort_by",
    "split",
    "starts_with",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "values",
    "windows",
    "write",
    "zip",
];

/// Keywords that can directly precede `(` without being a call.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "yield",
];

/// Leading path segments that mean "not this workspace".
const EXTERNAL_ROOTS: &[&str] = &["std", "core", "alloc"];

/// One `fn` item in the graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// `crate::module::name`, the stable display key.
    pub label: String,
    /// The bare fn name.
    pub name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Index of the file in the scan order.
    pub file_idx: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the fn is `pub` (any visibility wider than private).
    pub is_pub: bool,
    /// Whether the fn matches a configured service entry point.
    pub is_entry: bool,
    /// Token indices of the body `{`/`}` in its file.
    pub body: Option<(usize, usize)>,
    /// The `impl` block's type name when the fn is a method
    /// (`impl PlanEngine` and `impl Display for PlanEngine` both give
    /// `PlanEngine`).
    pub impl_type: Option<String>,
}

/// A resolved call site inside a node's body.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CallSite {
    /// Token index of the callee name in the caller's file.
    pub tok: usize,
    /// Target node.
    pub callee: usize,
}

/// The workspace call graph plus both reachability closures.
pub struct CallGraph {
    /// All non-test `fn` nodes, in file-scan order.
    pub nodes: Vec<FnNode>,
    /// Justified call sites per node (token + target), deduplicated
    /// edges in [`CallGraph::must_out`].
    pub(crate) calls: Vec<Vec<CallSite>>,
    must_out: Vec<BTreeSet<usize>>,
    entries: Vec<usize>,
    must_reach: Vec<bool>,
    may_reach: Vec<bool>,
    /// BFS parent (over must edges, from the entry set) for traces.
    trace_parent: Vec<Option<usize>>,
    /// Per-file node indices, for innermost-body lookup.
    by_file: Vec<Vec<usize>>,
}

/// One scanned file: `(rel_path, source, lexed, parsed)`.
pub(crate) type FileUnit = (String, String, crate::lexer::Lexed, crate::parse::Parsed);

fn is_punct(tok: &Token, c: char) -> bool {
    tok.kind == TokenKind::Punct && tok.text.len() == 1 && tok.text.starts_with(c)
}

fn is_word(tok: &Token) -> bool {
    matches!(tok.kind, TokenKind::Ident | TokenKind::RawIdent)
}

/// The module path of a file: `crates/engine/src/service.rs` →
/// `["engine", "service"]`, `lib.rs`/`mod.rs` collapse into the parent,
/// the root facade is `hypar`, examples are `examples::<name>`.
fn module_segments(path: &str) -> Vec<String> {
    let (mut segs, rest): (Vec<String>, &str) = if let Some(rest) = path.strip_prefix("crates/") {
        let mut parts = rest.splitn(2, "/src/");
        let krate = parts.next().unwrap_or("");
        (vec![krate.to_string()], parts.next().unwrap_or(""))
    } else if let Some(rest) = path.strip_prefix("src/") {
        (vec!["hypar".to_string()], rest)
    } else if let Some(rest) = path.strip_prefix("examples/") {
        (vec!["examples".to_string()], rest)
    } else {
        (Vec::new(), path)
    };
    for part in rest.split('/') {
        let stem = part.strip_suffix(".rs").unwrap_or(part);
        if stem.is_empty() || stem == "lib" || stem == "mod" {
            continue;
        }
        segs.push(stem.to_string());
    }
    segs
}

/// Normalizes a use-path head: `crate` → the file's crate, `hypar_x` →
/// `x`; std/core/alloc paths are external (`None`).
fn normalize_path(segs: &[String], crate_root: &str) -> Option<Vec<String>> {
    let first = segs.first()?;
    if EXTERNAL_ROOTS.contains(&first.as_str()) {
        return None;
    }
    let mut out = Vec::with_capacity(segs.len());
    if first == "crate" {
        out.push(crate_root.to_string());
    } else if let Some(stripped) = first.strip_prefix("hypar_") {
        out.push(stripped.to_string());
    } else {
        out.push(first.clone());
    }
    out.extend(segs.iter().skip(1).cloned());
    Some(out)
}

/// Collects `use` imports into `leaf-or-alias → full path segments`.
fn use_aliases(tokens: &[Token]) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_word(&tokens[i]) && tokens[i].text == "use" {
            i = use_tree(tokens, i + 1, &[], &mut out, 0);
        } else {
            i += 1;
        }
    }
    out
}

/// Parses one use-tree starting at `i` under `prefix`; returns the index
/// of the token that ended it (`,`, `}`, `;`, or EOF).
fn use_tree(
    tokens: &[Token],
    mut i: usize,
    prefix: &[String],
    out: &mut BTreeMap<String, Vec<String>>,
    depth: usize,
) -> usize {
    if depth > 16 {
        return i;
    }
    let mut path: Vec<String> = prefix.to_vec();
    let mut leaf: Option<String> = None;
    while let Some(tok) = tokens.get(i) {
        if is_word(tok) {
            if tok.text == "as" {
                if let Some(alias) = tokens.get(i + 1).filter(|t| is_word(t)) {
                    if leaf.take().is_some() {
                        out.insert(alias.text.clone(), path.clone());
                    }
                    i += 2;
                    continue;
                }
                i += 1;
            } else {
                path.push(tok.text.clone());
                leaf = Some(tok.text.clone());
                i += 1;
            }
        } else if is_punct(tok, ':') && tokens.get(i + 1).is_some_and(|t| is_punct(t, ':')) {
            i += 2;
            if tokens.get(i).is_some_and(|t| is_punct(t, '{')) {
                i += 1;
                loop {
                    i = use_tree(tokens, i, &path, out, depth + 1);
                    match tokens.get(i) {
                        Some(t) if is_punct(t, ',') => i += 1,
                        Some(t) if is_punct(t, '}') => {
                            i += 1;
                            break;
                        }
                        _ => break,
                    }
                }
                return i;
            }
            if tokens.get(i).is_some_and(|t| is_punct(t, '*')) {
                return i + 1;
            }
        } else {
            break;
        }
    }
    if let Some(leaf) = leaf {
        out.insert(leaf, path);
    }
    i
}

/// Whether the `fn` keyword at token `at` carries a `pub`-family
/// visibility (looks back over `const`/`async`/`unsafe`/`extern "C"` and
/// `pub(crate)` groups).
fn fn_is_pub(tokens: &[Token], at: usize) -> bool {
    let mut j = at;
    for _ in 0..8 {
        if j == 0 {
            return false;
        }
        j -= 1;
        let tok = &tokens[j];
        if is_word(tok) {
            match tok.text.as_str() {
                "pub" => return true,
                "const" | "async" | "unsafe" | "extern" | "crate" | "super" | "in" | "self" => {
                    continue
                }
                _ => return false,
            }
        }
        if tok.kind == TokenKind::Str || is_punct(tok, '(') || is_punct(tok, ')') {
            continue;
        }
        return false;
    }
    false
}

/// `impl` blocks in a token stream: `(type_name, open, close)` token
/// spans.  `impl fmt::Display for Layer` records `Layer`; generics are
/// skipped.  `-> impl Trait` return types are excluded by requiring the
/// `impl` keyword at item position (start of file or after `}`/`;`/`]`
/// or an item keyword).
fn impl_blocks(tokens: &[Token]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !(is_word(&tokens[i]) && tokens[i].text == "impl") {
            continue;
        }
        let item_position = i == 0
            || is_punct(&tokens[i - 1], '}')
            || is_punct(&tokens[i - 1], ';')
            || is_punct(&tokens[i - 1], ']')
            || (is_word(&tokens[i - 1])
                && matches!(tokens[i - 1].text.as_str(), "unsafe" | "pub" | "crate"));
        if !item_position {
            continue; // `-> impl Trait`, `&impl Trait`, ...
        }
        // Walk the header: the type is the last path ident before the
        // body `{` (after `for` when present), with generic argument
        // lists skipped.
        let mut j = i + 1;
        let mut name: Option<String> = None;
        let mut angle = 0i32;
        while j < tokens.len() {
            let tok = &tokens[j];
            if is_punct(tok, '<') {
                angle += 1;
            } else if is_punct(tok, '>') {
                angle -= 1;
            } else if angle == 0 {
                if is_punct(tok, '{') {
                    break;
                }
                if is_word(tok) {
                    match tok.text.as_str() {
                        "for" => name = None,
                        "where" => break,
                        "dyn" | "mut" => {}
                        _ => name = Some(tok.text.clone()),
                    }
                }
            }
            j += 1;
        }
        let (Some(name), true) = (name, j < tokens.len() && is_punct(&tokens[j], '{')) else {
            continue;
        };
        // Match the body braces.
        let mut depth = 0i32;
        let mut close = None;
        for (k, tok) in tokens.iter().enumerate().skip(j) {
            if is_punct(tok, '{') {
                depth += 1;
            } else if is_punct(tok, '}') {
                depth -= 1;
                if depth == 0 {
                    close = Some(k);
                    break;
                }
            }
        }
        if let Some(close) = close {
            out.push((name, j, close));
        }
    }
    out
}

impl CallGraph {
    /// Builds the graph over the scanned files.
    pub(crate) fn build(files: &[FileUnit], config: &Config) -> CallGraph {
        let masks: Vec<Vec<bool>> = files
            .iter()
            .map(|(_, _, lexed, _)| crate::rules::test_mask(&lexed.tokens))
            .collect();
        let aliases: Vec<BTreeMap<String, Vec<String>>> = files
            .iter()
            .map(|(_, _, lexed, _)| use_aliases(&lexed.tokens))
            .collect();

        // Pass 1: nodes.
        let mut nodes = Vec::new();
        let mut by_sig = BTreeMap::new();
        let mut by_file = vec![Vec::new(); files.len()];
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_impl: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (file_idx, (path, _, lexed, parsed)) in files.iter().enumerate() {
            let module = module_segments(path);
            let tokens = &lexed.tokens;
            let impls = impl_blocks(tokens);
            let mut cursor = 0usize;
            for sig in &parsed.fns {
                // The `fn` keyword token of this signature: the next
                // `fn` on the signature's line followed by its name.
                let mut kw = None;
                let mut k = cursor;
                while k + 1 < tokens.len() {
                    if is_word(&tokens[k])
                        && tokens[k].text == "fn"
                        && tokens[k].line == sig.line
                        && tokens[k + 1].text == sig.name
                    {
                        kw = Some(k);
                        break;
                    }
                    k += 1;
                }
                let Some(kw) = kw else { continue };
                cursor = kw + 2;
                if masks[file_idx].get(kw).copied().unwrap_or(false) {
                    continue; // test-gated fn: not part of the graph
                }
                let label = format!("{}::{}", module.join("::"), sig.name);
                let is_entry = config
                    .entry_points
                    .iter()
                    .any(|(suffix, prefix)| path.ends_with(suffix) && sig.name.starts_with(prefix));
                // Innermost enclosing `impl` block gives the method's
                // self type.
                let impl_type = impls
                    .iter()
                    .filter(|(_, open, close)| *open < kw && kw < *close)
                    .min_by_key(|(_, open, close)| close - open)
                    .map(|(name, _, _)| name.clone());
                let idx = nodes.len();
                nodes.push(FnNode {
                    label,
                    name: sig.name.clone(),
                    file: path.clone(),
                    file_idx,
                    line: sig.line,
                    is_pub: fn_is_pub(tokens, kw),
                    is_entry,
                    body: sig.body,
                    impl_type,
                });
                by_sig.insert((file_idx, sig.name.clone(), sig.line), idx);
                by_file[file_idx].push(idx);
                by_name.entry(sig.name.clone()).or_default().push(idx);
                if let Some(impl_type) = &nodes[idx].impl_type {
                    by_impl
                        .entry((impl_type.clone(), sig.name.clone()))
                        .or_default()
                        .push(idx);
                }
            }
        }

        // Pass 2: edges.
        let mut calls = vec![Vec::new(); nodes.len()];
        let mut must_out = vec![BTreeSet::new(); nodes.len()];
        let mut may_out = vec![BTreeSet::new(); nodes.len()];
        for (file_idx, (path, _, lexed, parsed)) in files.iter().enumerate() {
            let tokens = &lexed.tokens;
            let crate_root = module_segments(path)
                .first()
                .cloned()
                .unwrap_or_else(|| "hypar".to_string());
            for i in 0..tokens.len() {
                if masks[file_idx][i] || !is_word(&tokens[i]) {
                    continue;
                }
                if !tokens.get(i + 1).is_some_and(|t| is_punct(t, '(')) {
                    continue;
                }
                let name = tokens[i].text.as_str();
                if KEYWORDS.contains(&name) {
                    continue;
                }
                if i > 0 && is_word(&tokens[i - 1]) && tokens[i - 1].text == "fn" {
                    continue; // the definition itself
                }
                let Some(sig) = parsed.enclosing_fn(i) else {
                    continue;
                };
                let Some(&caller) = by_sig.get(&(file_idx, sig.name.clone(), sig.line)) else {
                    continue;
                };
                let candidates = by_name.get(name).cloned().unwrap_or_default();
                if candidates.is_empty() {
                    continue;
                }
                let dotted = i > 0 && is_punct(&tokens[i - 1], '.');
                let qualified =
                    i >= 2 && is_punct(&tokens[i - 1], ':') && is_punct(&tokens[i - 2], ':');
                let must = if dotted {
                    // `self.method(..)` resolves through the caller's
                    // `impl` type — the receiver type is known exactly,
                    // so even std-shadowing names are justified.
                    let self_recv = i >= 2
                        && is_word(&tokens[i - 2])
                        && tokens[i - 2].text == "self"
                        && nodes[caller].impl_type.is_some();
                    let via_impl = if self_recv {
                        let key = (
                            nodes[caller].impl_type.clone().unwrap_or_default(),
                            name.to_string(),
                        );
                        match by_impl.get(&key).map(Vec::as_slice) {
                            Some([only]) => Some(*only),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    if via_impl.is_some() {
                        via_impl
                    } else if candidates.len() == 1 && !STD_METHODS.contains(&name) {
                        Some(candidates[0])
                    } else {
                        None
                    }
                } else if qualified {
                    let mut segs = Vec::new();
                    let mut j = i;
                    while j >= 2
                        && is_punct(&tokens[j - 1], ':')
                        && is_punct(&tokens[j - 2], ':')
                        && j >= 3
                        && is_word(&tokens[j - 3])
                    {
                        segs.push(tokens[j - 3].text.clone());
                        j -= 3;
                    }
                    segs.reverse();
                    resolve_qualified(
                        &segs,
                        name,
                        &candidates,
                        &nodes,
                        &aliases[file_idx],
                        &crate_root,
                        file_idx,
                        &by_impl,
                        nodes[caller].impl_type.as_deref(),
                    )
                } else {
                    resolve_bare(
                        name,
                        &candidates,
                        &nodes,
                        &aliases[file_idx],
                        &crate_root,
                        file_idx,
                    )
                };
                if let Some(callee) = must {
                    // Self-calls stay: they are exactly what
                    // `recurse-request` looks for.
                    calls[caller].push(CallSite { tok: i, callee });
                    must_out[caller].insert(callee);
                }
                for &candidate in &candidates {
                    may_out[caller].insert(candidate);
                }
            }
        }

        let entries: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_entry)
            .map(|(i, _)| i)
            .collect();

        // must-reach: BFS from entries over justified edges, recording
        // parents so findings can print an entry trace.
        let mut must_reach = vec![false; nodes.len()];
        let mut trace_parent = vec![None; nodes.len()];
        let mut queue = VecDeque::new();
        for &e in &entries {
            if !must_reach[e] {
                must_reach[e] = true;
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &must_out[n] {
                if !must_reach[m] {
                    must_reach[m] = true;
                    trace_parent[m] = Some(n);
                    queue.push_back(m);
                }
            }
        }

        // may-reach: BFS from entries + every `main` + every pub fn over
        // the over-approximated edge set.
        let mut may_reach = vec![false; nodes.len()];
        let mut queue = VecDeque::new();
        for (i, node) in nodes.iter().enumerate() {
            if node.is_entry || node.is_pub || node.name == "main" {
                may_reach[i] = true;
                queue.push_back(i);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in must_out[n].iter().chain(may_out[n].iter()) {
                if !may_reach[m] {
                    may_reach[m] = true;
                    queue.push_back(m);
                }
            }
        }

        CallGraph {
            nodes,
            calls,
            must_out,
            entries,
            must_reach,
            may_reach,
            trace_parent,
            by_file,
        }
    }

    /// Whether the workspace exposes any configured entry point.  With
    /// none, every reachability refinement is skipped.
    #[must_use]
    pub fn has_entries(&self) -> bool {
        !self.entries.is_empty()
    }

    /// The innermost node whose body contains token `tok` of `file_idx`.
    pub(crate) fn enclosing_node(&self, file_idx: usize, tok: usize) -> Option<usize> {
        self.by_file
            .get(file_idx)?
            .iter()
            .copied()
            .filter(|&n| {
                self.nodes[n]
                    .body
                    .is_some_and(|(open, close)| open < tok && tok < close)
            })
            .min_by_key(|&n| {
                let (open, close) = self.nodes[n].body.unwrap_or((0, usize::MAX));
                close - open
            })
    }

    /// Whether `node` is on a justified path from an entry point.
    pub(crate) fn is_must_reachable(&self, node: usize) -> bool {
        self.must_reach.get(node).copied().unwrap_or(false)
    }

    /// Whether even the over-approximated graph reaches `node` from any
    /// callable root (entry, `main`, or `pub` fn).
    pub(crate) fn is_may_reachable(&self, node: usize) -> bool {
        self.may_reach.get(node).copied().unwrap_or(false)
    }

    pub(crate) fn must_callees(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.must_out[node].iter().copied()
    }

    /// The shortest justified call chain `entry → … → node`, as labels.
    /// Empty when the node is not must-reachable.
    #[must_use]
    pub fn entry_trace(&self, node: usize) -> Vec<String> {
        if !self.is_must_reachable(node) {
            return Vec::new();
        }
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(parent) = self.trace_parent[cur] {
            chain.push(parent);
            cur = parent;
            if chain.len() > self.nodes.len() {
                break; // defensive: parents never cycle, but stay total
            }
        }
        chain.reverse();
        chain
            .into_iter()
            .map(|n| self.nodes[n].label.clone())
            .collect()
    }

    /// Graphviz rendering of the justified edges (entries doubled).
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box];\n");
        for (i, node) in self.nodes.iter().enumerate() {
            let shape = if node.is_entry {
                " [peripheries=2,style=bold]"
            } else if self.must_reach[i] {
                ""
            } else {
                " [style=dotted]"
            };
            out.push_str(&format!("  \"{}\"{shape};\n", node.label));
        }
        for (i, outs) in self.must_out.iter().enumerate() {
            for &j in outs {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    self.nodes[i].label, self.nodes[j].label
                ));
            }
        }
        out.push_str("}\n");
        out
    }

    /// The `--callgraph json` document: nodes with entry/reachable
    /// marks, justified edges, and the entry list.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {},\n", escape(CALLGRAPH_SCHEMA)));
        out.push_str(&format!("  \"functions\": {},\n", self.nodes.len()));
        out.push_str(&format!(
            "  \"entries\": [{}],\n",
            self.entries
                .iter()
                .map(|&e| escape(&self.nodes[e].label))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("  \"nodes\": [");
        let mut first = true;
        for (i, node) in self.nodes.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"id\": {}, \"file\": {}, \"line\": {}, \"pub\": {}, \
                 \"entry\": {}, \"reachable\": {}}}",
                escape(&node.label),
                escape(&node.file),
                node.line,
                node.is_pub,
                node.is_entry,
                self.must_reach[i]
            ));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"edges\": [");
        let mut first = true;
        for (i, outs) in self.must_out.iter().enumerate() {
            for &j in outs {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\n    {{\"from\": {}, \"to\": {}}}",
                    escape(&self.nodes[i].label),
                    escape(&self.nodes[j].label)
                ));
            }
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Bare-call resolution: same-file unique fn, else `use`-imported fn,
/// else workspace-unique fn; anything else stays silent.
fn resolve_bare(
    name: &str,
    candidates: &[usize],
    nodes: &[FnNode],
    aliases: &BTreeMap<String, Vec<String>>,
    crate_root: &str,
    file_idx: usize,
) -> Option<usize> {
    let same_file: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&n| nodes[n].file_idx == file_idx)
        .collect();
    if same_file.len() == 1 {
        return Some(same_file[0]);
    }
    if !same_file.is_empty() {
        return None; // several same-file fns with this name: ambiguous
    }
    if let Some(path) = aliases.get(name) {
        // `use hypar_models::zoo::by_name;` imports the fn itself.
        if let Some(normed) = normalize_path(path, crate_root) {
            let label = normed.join("::");
            if let Some(&hit) = candidates.iter().find(|&&n| nodes[n].label == label) {
                return Some(hit);
            }
        }
    }
    if candidates.len() == 1 {
        return Some(candidates[0]);
    }
    None
}

/// Qualified-call resolution through the file's `use` aliases and the
/// workspace `impl` index.
#[allow(clippy::too_many_arguments)]
fn resolve_qualified(
    segs: &[String],
    name: &str,
    candidates: &[usize],
    nodes: &[FnNode],
    aliases: &BTreeMap<String, Vec<String>>,
    crate_root: &str,
    file_idx: usize,
    by_impl: &BTreeMap<(String, String), Vec<usize>>,
    caller_impl: Option<&str>,
) -> Option<usize> {
    let first = segs.first()?;
    if first == "Self" || first == "self" {
        // Same-impl call: the caller's own `impl` type, else a unique
        // same-file definition.
        if let Some(impl_type) = caller_impl {
            if let Some([only]) = by_impl
                .get(&(impl_type.to_string(), name.to_string()))
                .map(Vec::as_slice)
            {
                return Some(*only);
            }
        }
        let same_file: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&n| nodes[n].file_idx == file_idx)
            .collect();
        return if same_file.len() == 1 {
            Some(same_file[0])
        } else {
            None
        };
    }
    let mut full: Vec<String> = if let Some(expansion) = aliases.get(first) {
        let mut v = expansion.clone();
        v.extend(segs.iter().skip(1).cloned());
        v
    } else {
        segs.to_vec()
    };
    full.push(name.to_string());
    if let Some(normed) = normalize_path(&full, crate_root) {
        let label = normed.join("::");
        if let Some(&hit) = candidates.iter().find(|&&n| nodes[n].label == label) {
            return Some(hit);
        }
        // Suffix match: `segments::fn` uniquely identifying one node.
        let suffix = format!("::{label}");
        let hits: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&n| nodes[n].label.ends_with(&suffix))
            .collect();
        if hits.len() == 1 {
            return Some(hits[0]);
        }
    }
    // `Type::method(..)` (possibly module-qualified): the path never
    // matches a module label — resolve through the `impl` index when
    // exactly one `impl Type` defines the method, else fall back to a
    // unique workspace fn of that name.
    if let Some(last) = segs.last() {
        if last.chars().next().is_some_and(char::is_uppercase) {
            if let Some([only]) = by_impl
                .get(&(last.clone(), name.to_string()))
                .map(Vec::as_slice)
            {
                return Some(*only);
            }
            if segs.len() == 1 && candidates.len() == 1 {
                return Some(candidates[0]);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn files_of(sources: &[(&str, &str)]) -> Vec<FileUnit> {
        sources
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let parsed = parse(&lexed.tokens);
                ((*path).to_string(), (*src).to_string(), lexed, parsed)
            })
            .collect()
    }

    fn graph_of(sources: &[(&str, &str)]) -> CallGraph {
        CallGraph::build(&files_of(sources), &Config::default())
    }

    fn node(graph: &CallGraph, label: &str) -> usize {
        graph
            .nodes
            .iter()
            .position(|n| n.label == label)
            .unwrap_or_else(|| {
                panic!(
                    "no node {label}: {:?}",
                    graph.nodes.iter().map(|n| &n.label).collect::<Vec<_>>()
                )
            })
    }

    #[test]
    fn module_labels_follow_file_paths() {
        assert_eq!(
            module_segments("crates/engine/src/service.rs"),
            ["engine", "service"]
        );
        assert_eq!(module_segments("crates/engine/src/lib.rs"), ["engine"]);
        assert_eq!(
            module_segments("crates/bench/src/experiments/fig9.rs"),
            ["bench", "experiments", "fig9"]
        );
        assert_eq!(module_segments("src/lib.rs"), ["hypar"]);
        assert_eq!(module_segments("examples/plan.rs"), ["examples", "plan"]);
    }

    #[test]
    fn bare_calls_prefer_same_file_then_unique() {
        let graph = graph_of(&[
            (
                "crates/engine/src/service.rs",
                "pub fn handle_a() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/core/src/util.rs", "pub fn helper() {}\n"),
        ]);
        let handle = node(&graph, "engine::service::handle_a");
        let local = node(&graph, "engine::service::helper");
        assert!(graph.must_callees(handle).any(|c| c == local));
        let remote = node(&graph, "core::util::helper");
        assert!(!graph.must_callees(handle).any(|c| c == remote));
    }

    #[test]
    fn ambiguous_bare_calls_stay_silent() {
        let graph = graph_of(&[
            (
                "crates/engine/src/service.rs",
                "pub fn handle_a() { shared(); }\n",
            ),
            ("crates/core/src/a.rs", "pub fn shared() {}\n"),
            ("crates/sim/src/b.rs", "pub fn shared() {}\n"),
        ]);
        let handle = node(&graph, "engine::service::handle_a");
        assert_eq!(
            graph.must_callees(handle).count(),
            0,
            "two candidates: no edge"
        );
    }

    #[test]
    fn use_aliases_resolve_qualified_calls() {
        let graph = graph_of(&[
            (
                "crates/engine/src/engine.rs",
                "use hypar_models::zoo;\nuse hypar_graph::{zoo as graph_zoo};\n\
                 pub fn plan() { zoo::by_name(); graph_zoo::by_name(); }\n",
            ),
            ("crates/models/src/zoo.rs", "pub fn by_name() {}\n"),
            ("crates/graph/src/zoo.rs", "pub fn by_name() {}\n"),
        ]);
        let plan = node(&graph, "engine::engine::plan");
        let models = node(&graph, "models::zoo::by_name");
        let graphs = node(&graph, "graph::zoo::by_name");
        let callees: Vec<usize> = graph.must_callees(plan).collect();
        assert!(callees.contains(&models), "alias zoo:: resolves to models");
        assert!(
            callees.contains(&graphs),
            "alias graph_zoo:: resolves to graph"
        );
    }

    #[test]
    fn std_shadowing_methods_never_edge() {
        let graph = graph_of(&[
            (
                "crates/engine/src/service.rs",
                "pub fn handle_a(xs: &[u8]) { xs.iter().find(|x| true); }\n",
            ),
            ("crates/telemetry/src/trace.rs", "pub fn find() {}\n"),
        ]);
        let handle = node(&graph, "engine::service::handle_a");
        assert_eq!(
            graph.must_callees(handle).count(),
            0,
            ".find() is Iterator::find, not a workspace fn"
        );
    }

    #[test]
    fn unique_method_calls_do_edge() {
        let graph = graph_of(&[
            (
                "crates/engine/src/service.rs",
                "pub fn handle_a(e: &E) { e.refine_levels(); }\n",
            ),
            ("crates/engine/src/engine.rs", "pub fn refine_levels() {}\n"),
        ]);
        let handle = node(&graph, "engine::service::handle_a");
        let target = node(&graph, "engine::engine::refine_levels");
        assert!(graph.must_callees(handle).any(|c| c == target));
    }

    #[test]
    fn entries_and_traces() {
        let graph = graph_of(&[(
            "crates/engine/src/service.rs",
            "pub fn handle_line() { step(); }\nfn step() { leaf(); }\nfn leaf() {}\n\
                 fn orphan() {}\n",
        )]);
        assert!(graph.has_entries());
        let leaf = node(&graph, "engine::service::leaf");
        assert!(graph.is_must_reachable(leaf));
        assert_eq!(
            graph.entry_trace(leaf),
            vec![
                "engine::service::handle_line",
                "engine::service::step",
                "engine::service::leaf"
            ]
        );
        let orphan = node(&graph, "engine::service::orphan");
        assert!(!graph.is_must_reachable(orphan));
        assert!(!graph.is_may_reachable(orphan), "private + uncalled");
        assert!(graph.entry_trace(orphan).is_empty());
    }

    #[test]
    fn pub_fns_and_mains_are_may_roots() {
        let graph = graph_of(&[
            (
                "crates/telemetry/src/metrics.rs",
                "pub fn export() { render(); }\nfn render() {}\n",
            ),
            (
                "crates/analyzer/src/main.rs",
                "fn main() { drive(); }\nfn drive() {}\n",
            ),
        ]);
        assert!(!graph.has_entries());
        let render = node(&graph, "telemetry::metrics::render");
        assert!(graph.is_may_reachable(render), "called by a pub fn");
        let drive = node(&graph, "analyzer::main::drive");
        assert!(graph.is_may_reachable(drive), "called by main");
    }

    #[test]
    fn test_gated_fns_are_not_nodes() {
        let graph = graph_of(&[(
            "crates/engine/src/service.rs",
            "pub fn handle_line() {}\n#[cfg(test)]\nmod tests { fn t() { handle_line(); } }\n",
        )]);
        assert_eq!(graph.nodes.len(), 1);
    }

    #[test]
    fn dot_and_json_render() {
        let graph = graph_of(&[(
            "crates/engine/src/service.rs",
            "pub fn handle_line() { step(); }\nfn step() {}\n",
        )]);
        let dot = graph.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"engine::service::handle_line\" -> \"engine::service::step\""));
        let doc = crate::json::parse(&graph.to_json()).expect("valid json");
        assert_eq!(
            doc.get("schema").and_then(crate::json::Value::as_str),
            Some(CALLGRAPH_SCHEMA)
        );
        let edges = doc
            .get("edges")
            .and_then(crate::json::Value::as_array)
            .expect("edges");
        assert_eq!(edges.len(), 1);
    }
}
