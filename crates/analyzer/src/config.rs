//! Which rules apply where.
//!
//! Scopes are path prefixes relative to the workspace root (always
//! `/`-separated).  The defaults encode this workspace's invariants:
//! panic-path and poison-safety discipline in every service-reachable
//! crate, determinism rules in the crates whose outputs feed
//! fingerprints or `state_hash`es, and a wall-clock carve-out for the
//! telemetry layer (whose whole job is timing).

/// Crates whose code can be reached from a `PlanRequest`: a panic here
/// aborts the service instead of degrading to an error JSON.
pub const SERVICE_CRATES: &[&str] = &[
    "engine",
    "graph",
    "core",
    "sim",
    "comm",
    "replay",
    "telemetry",
    // The analyzer holds itself to its own standard.
    "analyzer",
];

/// Crates in scope for the determinism rules (`det-float-eq`,
/// `det-wall-clock`).
pub const DET_CRATES: &[&str] = &[
    "engine",
    "graph",
    "core",
    "sim",
    "comm",
    "replay",
    "telemetry",
];

/// Files/modules whose outputs feed cache fingerprints or the canonical
/// `state_hash`: an unordered `HashMap`/`HashSet` here is a determinism
/// hazard even before anyone iterates it.
pub const HASHED_PATHS: &[&str] = &[
    "crates/telemetry/src/statehash.rs",
    "crates/engine/src/fingerprint.rs",
    "crates/engine/src/engine.rs",
    "crates/engine/src/record.rs",
    "crates/graph/src/dag.rs",
    "crates/graph/src/segments.rs",
    "crates/replay/src/",
];

/// Paths where `Instant::now`/`SystemTime` are the point, not a hazard.
pub const CLOCK_ALLOWED: &[&str] = &["crates/telemetry/src/"];

/// Resolved rule applicability for one file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleSet {
    /// `panic-path`: unwrap/expect/panic-family macros forbidden.
    pub panic_path: bool,
    /// `lock-poison`: `.lock().unwrap()/.expect()` forbidden.
    pub lock_poison: bool,
    /// `det-map-iter`: `HashMap`/`HashSet` forbidden (hashed paths).
    pub det_map_iter: bool,
    /// `det-float-eq`: float `==`/`!=` against a float literal.
    pub det_float_eq: bool,
    /// `det-wall-clock`: `Instant::now`/`SystemTime` forbidden.
    pub det_wall_clock: bool,
}

impl RuleSet {
    /// Every rule on — what the fixture tests and the fuzzer use.
    #[must_use]
    pub fn all() -> Self {
        RuleSet {
            panic_path: true,
            lock_poison: true,
            det_map_iter: true,
            det_float_eq: true,
            det_wall_clock: true,
        }
    }

    /// No rule applies: the file is skipped entirely.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == RuleSet::default()
    }
}

/// The workspace lint configuration: scan roots plus scope tables.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crate names (under `crates/`) in panic/poison scope.
    pub service_crates: Vec<String>,
    /// Crate names in determinism-rule scope.
    pub det_crates: Vec<String>,
    /// Path prefixes in `det-map-iter` scope.
    pub hashed_paths: Vec<String>,
    /// Path prefixes exempt from `det-wall-clock`.
    pub clock_allowed: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let own = |list: &[&str]| list.iter().map(|s| (*s).to_string()).collect();
        Config {
            service_crates: own(SERVICE_CRATES),
            det_crates: own(DET_CRATES),
            hashed_paths: own(HASHED_PATHS),
            clock_allowed: own(CLOCK_ALLOWED),
        }
    }
}

impl Config {
    /// The `crates/<name>/src` directories to walk, in sorted order.
    #[must_use]
    pub fn scan_roots(&self) -> Vec<String> {
        let mut names: Vec<&str> = self
            .service_crates
            .iter()
            .chain(self.det_crates.iter())
            .map(String::as_str)
            .collect();
        names.sort_unstable();
        names.dedup();
        names
            .into_iter()
            .map(|name| format!("crates/{name}/src"))
            .collect()
    }

    /// Which rules apply to the file at workspace-relative `path`.
    #[must_use]
    pub fn rules_for(&self, path: &str) -> RuleSet {
        let crate_of = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("");
        let service = self.service_crates.iter().any(|c| c == crate_of);
        let det = self.det_crates.iter().any(|c| c == crate_of);
        let hashed = self
            .hashed_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()));
        let clock_ok = self
            .clock_allowed
            .iter()
            .any(|p| path.starts_with(p.as_str()));
        RuleSet {
            panic_path: service,
            lock_poison: service,
            det_map_iter: det && hashed,
            det_float_eq: det,
            det_wall_clock: det && !clock_ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_resolve_by_crate_and_path() {
        let cfg = Config::default();
        let engine = cfg.rules_for("crates/engine/src/service.rs");
        assert!(engine.panic_path && engine.lock_poison && engine.det_wall_clock);
        assert!(!engine.det_map_iter, "service.rs is not a hashed path");

        let fp = cfg.rules_for("crates/engine/src/fingerprint.rs");
        assert!(fp.det_map_iter, "fingerprint.rs feeds the cache key");

        let telemetry = cfg.rules_for("crates/telemetry/src/trace.rs");
        assert!(telemetry.panic_path);
        assert!(!telemetry.det_wall_clock, "telemetry owns the clock");

        let replay = cfg.rules_for("crates/replay/src/drift.rs");
        assert!(replay.det_map_iter, "all of replay is hash-bearing");

        assert!(cfg.rules_for("crates/models/src/zoo.rs").is_empty());
        assert!(cfg.rules_for("vendor/serde/src/lib.rs").is_empty());
    }

    #[test]
    fn scan_roots_are_sorted_and_deduped() {
        let roots = Config::default().scan_roots();
        let mut sorted = roots.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(roots, sorted);
        assert!(roots.contains(&"crates/engine/src".to_string()));
        assert!(roots.contains(&"crates/analyzer/src".to_string()));
    }
}
