//! Which rules apply where.
//!
//! Scopes are path prefixes relative to the workspace root (always
//! `/`-separated).  The defaults encode this workspace's invariants:
//! panic-path and poison-safety discipline in every service-reachable
//! crate, determinism rules in the crates whose outputs feed
//! fingerprints or `state_hash`es, a wall-clock carve-out for the
//! telemetry layer (whose whole job is timing), truncation-cast scope
//! over comm byte math and the cost/fingerprint paths, and a relaxed
//! profile for `examples/` (panics are fine in a demo; silently
//! swallowed `Result`s are not — examples are documentation).

/// Crates whose code can be reached from a `PlanRequest`: a panic here
/// aborts the service instead of degrading to an error JSON.
pub const SERVICE_CRATES: &[&str] = &[
    "engine",
    "graph",
    "core",
    "sim",
    "comm",
    "replay",
    "telemetry",
    // The analyzer holds itself to its own standard.
    "analyzer",
];

/// Crates outside the service whitelist that the call graph can still
/// reach from an entry point: panic sites there are `panic-reach`
/// findings when (and only when) a justified call path from a service
/// entry reaches them.
pub const REACH_CRATES: &[&str] = &["bench", "models"];

/// Service entry points seeding the call-graph reachability closure:
/// `(file-path suffix, fn-name prefix)` pairs.  These are the functions
/// untrusted request bytes can invoke.
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    ("crates/engine/src/engine.rs", "plan"),
    ("crates/engine/src/service.rs", "handle_"),
    ("crates/engine/src/service.rs", "serve_"),
    ("crates/engine/src/main.rs", "main"),
    ("crates/engine/src/scenario.rs", "run"),
    ("crates/replay/src/main.rs", "main"),
    ("crates/replay/src/replay.rs", "replay"),
    ("crates/replay/src/golden.rs", "capture"),
    ("crates/replay/src/golden.rs", "verify"),
];

/// Crates in scope for the determinism rules (`det-float-eq`,
/// `det-wall-clock`).
pub const DET_CRATES: &[&str] = &[
    "engine",
    "graph",
    "core",
    "sim",
    "comm",
    "replay",
    "telemetry",
];

/// Files/modules whose outputs feed cache fingerprints or the canonical
/// `state_hash`: an unordered `HashMap`/`HashSet` here is a determinism
/// hazard even before anyone iterates it.
pub const HASHED_PATHS: &[&str] = &[
    "crates/telemetry/src/statehash.rs",
    "crates/engine/src/fingerprint.rs",
    "crates/engine/src/engine.rs",
    "crates/engine/src/record.rs",
    "crates/graph/src/dag.rs",
    "crates/graph/src/segments.rs",
    "crates/replay/src/",
];

/// Paths where `Instant::now`/`SystemTime` are the point, not a hazard.
pub const CLOCK_ALLOWED: &[&str] = &["crates/telemetry/src/"];

/// Paths in `cast-truncate` scope: comm byte math plus the cost and
/// fingerprint paths of `graph`/`core`, where a truncated count
/// silently corrupts plan costs or state hashes.
pub const CAST_PATHS: &[&str] = &[
    "crates/comm/src/",
    "crates/core/src/",
    "crates/graph/src/dag.rs",
    "crates/graph/src/exhaustive.rs",
    "crates/graph/src/plan.rs",
    "crates/graph/src/refine.rs",
    "crates/graph/src/segments.rs",
];

/// Resolved rule applicability for one file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleSet {
    /// `panic-path`: unwrap/expect/panic-family macros forbidden.
    pub panic_path: bool,
    /// `panic-reach`: the same panic family, but in reach crates
    /// (`models`/`bench`) where only call-graph-reachable sites count.
    pub panic_reach: bool,
    /// `lock-poison`: `.lock().unwrap()/.expect()` forbidden.
    pub lock_poison: bool,
    /// `det-map-iter`: `HashMap`/`HashSet` forbidden (hashed paths).
    pub det_map_iter: bool,
    /// `det-float-eq`: float `==`/`!=` against a float literal.
    pub det_float_eq: bool,
    /// `det-wall-clock`: `Instant::now`/`SystemTime` forbidden.
    pub det_wall_clock: bool,
    /// `err-swallow`: discarded `Result` values forbidden.
    pub err_swallow: bool,
    /// `cast-truncate`: narrowing `as` casts forbidden (cast paths).
    pub cast_truncate: bool,
    /// `lock-scope`: lock guards held across planning calls forbidden.
    pub lock_scope: bool,
}

impl RuleSet {
    /// Every rule on — what the fixture tests and the fuzzer use.
    /// `panic_reach` stays off: it is the reach-crate *variant* of
    /// `panic_path`, never active alongside it.
    #[must_use]
    pub fn all() -> Self {
        RuleSet {
            panic_path: true,
            panic_reach: false,
            lock_poison: true,
            det_map_iter: true,
            det_float_eq: true,
            det_wall_clock: true,
            err_swallow: true,
            cast_truncate: true,
            lock_scope: true,
        }
    }

    /// No rule applies: the file is skipped entirely.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == RuleSet::default()
    }
}

/// The workspace lint configuration: scan roots plus scope tables.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crate names (under `crates/`) in panic/poison scope.
    pub service_crates: Vec<String>,
    /// Crate names scanned only for call-graph-reachable hazards
    /// (`panic-reach`, reachable `err-swallow`).
    pub reach_crates: Vec<String>,
    /// `(file-path suffix, fn-name prefix)` service entry points
    /// seeding the reachability closure.
    pub entry_points: Vec<(String, String)>,
    /// Crate names in determinism-rule scope.
    pub det_crates: Vec<String>,
    /// Path prefixes in `det-map-iter` scope.
    pub hashed_paths: Vec<String>,
    /// Path prefixes exempt from `det-wall-clock`.
    pub clock_allowed: Vec<String>,
    /// Path prefixes in `cast-truncate` scope.
    pub cast_paths: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let own = |list: &[&str]| list.iter().map(|s| (*s).to_string()).collect();
        Config {
            service_crates: own(SERVICE_CRATES),
            reach_crates: own(REACH_CRATES),
            entry_points: ENTRY_POINTS
                .iter()
                .map(|(suffix, prefix)| ((*suffix).to_string(), (*prefix).to_string()))
                .collect(),
            det_crates: own(DET_CRATES),
            hashed_paths: own(HASHED_PATHS),
            clock_allowed: own(CLOCK_ALLOWED),
            cast_paths: own(CAST_PATHS),
        }
    }
}

impl Config {
    /// The directories to walk, in sorted order: every configured
    /// `crates/<name>/src`, plus the root facade `src/` and
    /// `examples/`.
    #[must_use]
    pub fn scan_roots(&self) -> Vec<String> {
        let mut names: Vec<&str> = self
            .service_crates
            .iter()
            .chain(self.det_crates.iter())
            .chain(self.reach_crates.iter())
            .map(String::as_str)
            .collect();
        names.sort_unstable();
        names.dedup();
        let mut roots: Vec<String> = names
            .into_iter()
            .map(|name| format!("crates/{name}/src"))
            .collect();
        roots.push("examples".to_string());
        roots.push("src".to_string());
        roots.sort();
        roots
    }

    /// Which rules apply to the file at workspace-relative `path`.
    #[must_use]
    pub fn rules_for(&self, path: &str) -> RuleSet {
        // The root facade re-exports the service crates: full service +
        // determinism profile.  Examples are documentation: panicking
        // on bad demo input is fine, silently dropping a Result is not.
        if path.starts_with("examples/") {
            return RuleSet {
                err_swallow: true,
                ..RuleSet::default()
            };
        }
        let facade = path.starts_with("src/");
        let crate_of = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("");
        // Reach crates get the call-graph-scoped profile: the panic
        // family as `panic-reach` plus `err-swallow`, both kept only on
        // justified paths from a service entry point.
        if self.reach_crates.iter().any(|c| c == crate_of) {
            return RuleSet {
                panic_reach: true,
                err_swallow: true,
                ..RuleSet::default()
            };
        }
        let service = facade || self.service_crates.iter().any(|c| c == crate_of);
        let det = facade || self.det_crates.iter().any(|c| c == crate_of);
        let hashed = self
            .hashed_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()));
        let clock_ok = self
            .clock_allowed
            .iter()
            .any(|p| path.starts_with(p.as_str()));
        let casts = self.cast_paths.iter().any(|p| path.starts_with(p.as_str()));
        RuleSet {
            panic_path: service,
            panic_reach: false,
            lock_poison: service,
            det_map_iter: det && hashed,
            det_float_eq: det,
            det_wall_clock: det && !clock_ok,
            err_swallow: service,
            cast_truncate: casts,
            lock_scope: service,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_resolve_by_crate_and_path() {
        let cfg = Config::default();
        let engine = cfg.rules_for("crates/engine/src/service.rs");
        assert!(engine.panic_path && engine.lock_poison && engine.det_wall_clock);
        assert!(engine.err_swallow && engine.lock_scope);
        assert!(!engine.det_map_iter, "service.rs is not a hashed path");
        assert!(!engine.cast_truncate, "engine is not in cast scope");

        let fp = cfg.rules_for("crates/engine/src/fingerprint.rs");
        assert!(fp.det_map_iter, "fingerprint.rs feeds the cache key");

        let telemetry = cfg.rules_for("crates/telemetry/src/trace.rs");
        assert!(telemetry.panic_path);
        assert!(!telemetry.det_wall_clock, "telemetry owns the clock");

        let replay = cfg.rules_for("crates/replay/src/drift.rs");
        assert!(replay.det_map_iter, "all of replay is hash-bearing");

        let zoo = cfg.rules_for("crates/models/src/zoo.rs");
        assert!(zoo.panic_reach && zoo.err_swallow, "models is reach-scoped");
        assert!(!zoo.panic_path && !zoo.det_float_eq && !zoo.lock_scope);
        assert!(cfg.rules_for("vendor/serde/src/lib.rs").is_empty());
    }

    #[test]
    fn reach_crates_get_the_callgraph_scoped_profile() {
        let cfg = Config::default();
        for path in [
            "crates/bench/src/context.rs",
            "crates/models/src/network.rs",
        ] {
            let rules = cfg.rules_for(path);
            assert!(rules.panic_reach, "{path} is panic-reach scoped");
            assert!(rules.err_swallow, "{path} keeps err-swallow");
            assert!(!rules.panic_path, "{path} is not crate-whitelisted");
        }
    }

    #[test]
    fn entry_points_cover_the_request_surface() {
        let cfg = Config::default();
        let covers = |suffix: &str, prefix: &str| {
            cfg.entry_points
                .iter()
                .any(|(s, p)| s == suffix && p == prefix)
        };
        assert!(covers("crates/engine/src/service.rs", "handle_"));
        assert!(covers("crates/engine/src/engine.rs", "plan"));
        assert!(covers("crates/replay/src/golden.rs", "verify"));
    }

    #[test]
    fn cast_scope_covers_comm_core_and_graph_cost_paths() {
        let cfg = Config::default();
        assert!(cfg.rules_for("crates/comm/src/model.rs").cast_truncate);
        assert!(cfg.rules_for("crates/core/src/sweep.rs").cast_truncate);
        assert!(cfg.rules_for("crates/graph/src/dag.rs").cast_truncate);
        assert!(cfg.rules_for("crates/graph/src/segments.rs").cast_truncate);
        assert!(
            !cfg.rules_for("crates/graph/src/zoo.rs").cast_truncate,
            "the model zoo is not a cost path"
        );
        assert!(!cfg.rules_for("crates/engine/src/service.rs").cast_truncate);
    }

    #[test]
    fn facade_and_examples_have_their_own_profiles() {
        let cfg = Config::default();
        let facade = cfg.rules_for("src/lib.rs");
        assert!(facade.panic_path && facade.err_swallow && facade.det_float_eq);
        assert!(!facade.cast_truncate);

        let example = cfg.rules_for("examples/plan_resnet.rs");
        assert!(example.err_swallow, "examples must not swallow Results");
        assert!(
            !example.panic_path,
            "examples may expect() on bad demo input"
        );
        assert!(!example.lock_scope && !example.det_float_eq);
    }

    #[test]
    fn scan_roots_are_sorted_and_include_facade_and_examples() {
        let roots = Config::default().scan_roots();
        let mut sorted = roots.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(roots, sorted);
        assert!(roots.contains(&"crates/engine/src".to_string()));
        assert!(roots.contains(&"crates/analyzer/src".to_string()));
        assert!(roots.contains(&"crates/models/src".to_string()));
        assert!(roots.contains(&"crates/bench/src".to_string()));
        assert!(roots.contains(&"src".to_string()));
        assert!(roots.contains(&"examples".to_string()));
    }
}
