//! Coverage-guided mutation fuzzing over the lexer, parser, and rules.
//!
//! `--self-fuzz N` mutates Rust-ish sources with a deterministic LCG
//! (same `N` + seed → same inputs, so a CI failure reproduces locally),
//! feeds every mutant through [`lex`] + [`parse`] + the full rule set,
//! and asserts four invariants:
//!
//! 1. **no panic** — a panicking analyzer would turn a hostile source
//!    file into a CI-infrastructure outage;
//! 2. **bounded tokens** — every token consumes at least one character,
//!    so `tokens ≤ chars + 1`; more means the cursor failed to advance;
//! 3. **bounded statements** — every statement consumes at least one
//!    token, so `stmts ≤ tokens + 1`; more means the parser looped;
//! 4. **bounded runtime** — a generous per-mutant wall budget catches
//!    accidental quadratic scanning (the same class of bug PR 7 found
//!    in the vendored serde_json string parser).
//!
//! **Coverage feedback** closes the ROADMAP's coverage-guided seed:
//! each mutant's *token-kind-pair* set (which [`TokenKind`] follows
//! which, including a start state) is its coverage signature.  A mutant
//! that reaches a pair no earlier input reached is retained as a corpus
//! seed, so later mutations explore outward from inputs that already
//! proved interesting — the classic AFL loop, with kind-pairs standing
//! in for branch edges.  The pair space is small ((K+1)·K for K = 9
//! kinds) but discriminates exactly what the lexer's mode machine can
//! confuse: string-vs-lifetime ticks, raw-string fences, float/int
//! splits, punct runs.

use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crate::config::RuleSet;
use crate::lexer::{lex, TokenKind};
use crate::parse::parse;
use crate::rules::check_source;

/// Seed sources chosen to sit near every lexer and parser edge:
/// fences, nesting, ticks, escapes, pragmas, fn items, casts, guards.
const CORPUS: &[&str] = &[
    "fn f(x: Option<u8>) -> u8 { x.unwrap() } // hypar-allow: panic-path — seed\n",
    "let s = r##\"raw \"# fence\"## ; let q = '\"'; let t = '\\'';\n",
    "/* outer /* inner */ still */ let m: HashMap<u8, u8> = HashMap::new();\n",
    "fn g<'a>(v: &'a [f64]) -> bool { v[0] == 0.0 || v[0] != 1e-3 }\n",
    "#[cfg(test)]\nmod tests { fn t() { m.lock().unwrap(); panic!(\"x\") } }\n",
    "let b = b\"bytes\\\"\"; let c = b'\\n'; let t = Instant::now();\n",
    "fn h(n: usize) -> Result<u32, E> { save(n as u32)?; let _ = io(); Ok(0) }\n",
    "fn k(c: &C) { let g = c.m.lock(); let p = plan_many(&g.r); drop(g); }\n",
];

/// Deterministic 64-bit LCG (Knuth's MMIX multiplier).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 16
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next() % n as u64) as usize
        }
    }
}

/// Bytes likely to flip a lexer mode when inserted.
const INTERESTING: &[u8] = &[
    b'"', b'\'', b'\\', b'/', b'*', b'#', b'r', b'b', b'c', b'\n', b'!', b'=', b'.', b'{', b'}',
    b'(', b')', b';', b'<', b'>', 0x00, 0xFF, 0xC3, 0xE2,
];

fn mutate(rng: &mut Rng, bytes: &mut Vec<u8>) {
    match rng.below(4) {
        0 if !bytes.is_empty() => {
            // Flip a byte.
            let at = rng.below(bytes.len());
            bytes[at] = INTERESTING[rng.below(INTERESTING.len())];
        }
        1 => {
            // Insert an interesting byte.
            let at = rng.below(bytes.len() + 1);
            bytes.insert(at, INTERESTING[rng.below(INTERESTING.len())]);
        }
        2 if bytes.len() > 2 => {
            // Delete a range.
            let start = rng.below(bytes.len());
            let end = (start + 1 + rng.below(16)).min(bytes.len());
            bytes.drain(start..end);
        }
        _ if !bytes.is_empty() => {
            // Duplicate a chunk (tests quadratic scanning).
            let start = rng.below(bytes.len());
            let end = (start + 1 + rng.below(32)).min(bytes.len());
            let chunk: Vec<u8> = bytes[start..end].to_vec();
            let at = rng.below(bytes.len() + 1);
            bytes.splice(at..at, chunk);
        }
        _ => {}
    }
}

/// Number of [`TokenKind`] variants.
const KINDS: usize = 9;

/// Pair space: previous state (start + 9 kinds) × next kind.
pub const PAIR_SPACE: usize = (KINDS + 1) * KINDS;

fn kind_id(kind: TokenKind) -> usize {
    match kind {
        TokenKind::Ident => 0,
        TokenKind::RawIdent => 1,
        TokenKind::Punct => 2,
        TokenKind::Str => 3,
        TokenKind::RawStr => 4,
        TokenKind::Char => 5,
        TokenKind::Lifetime => 6,
        TokenKind::Int => 7,
        TokenKind::Float => 8,
    }
}

/// The mutant's coverage signature: one bit per observed
/// (previous-state, kind) pair.  90 pairs fit a `u128`.
fn pair_signature(kinds: &[TokenKind]) -> u128 {
    let mut bits = 0u128;
    let mut prev_state = 0usize; // 0 = start-of-stream
    for &kind in kinds {
        let id = kind_id(kind);
        bits |= 1u128 << (prev_state * KINDS + id);
        prev_state = id + 1;
    }
    bits
}

/// Outcome of a fuzz run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FuzzSummary {
    /// Mutants executed.
    pub iterations: u64,
    /// Total tokens produced across all mutants.
    pub tokens: u64,
    /// Total findings reported across all mutants.
    pub findings: u64,
    /// Distinct token-kind pairs covered (of [`PAIR_SPACE`]).
    pub pairs_covered: u32,
    /// Mutants retained as corpus seeds for reaching new coverage.
    pub corpus_retained: u32,
    /// Slowest single mutant, in microseconds.
    pub worst_us: u128,
}

/// Per-mutant wall budget; generous so CI never flakes, tight enough
/// that accidental quadratic behavior on a few-KB input still trips it.
const PER_MUTANT_BUDGET: Duration = Duration::from_millis(2000);

/// Corpus growth cap: keeps a pathological run from hoarding memory
/// while leaving plenty of room (the pair space itself is only 90).
const CORPUS_CAP: usize = 256;

/// Runs `iterations` mutants from `seed`.  `Err` carries a reproducible
/// description of the first invariant violation.
pub fn run(iterations: u64, seed: u64) -> Result<FuzzSummary, String> {
    let mut rng = Rng(seed | 1);
    let mut summary = FuzzSummary::default();
    let mut corpus: Vec<Vec<u8>> = CORPUS.iter().map(|s| s.as_bytes().to_vec()).collect();
    let mut covered = 0u128;
    // Worker panics are converted to Err; silence the default hook so a
    // caught panic does not spray a backtrace into CI output.
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = (0..iterations).try_for_each(|i| {
        let mut bytes = corpus[rng.below(corpus.len())].clone();
        for _ in 0..=rng.below(8) {
            mutate(&mut rng, &mut bytes);
        }
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let chars = source.chars().count() as u64;
        let started = Instant::now();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            let lexed = lex(&source);
            let parsed = parse(&lexed.tokens);
            let findings = check_source("fuzz.rs", &source, RuleSet::all());
            let kinds: Vec<TokenKind> = lexed.tokens.iter().map(|t| t.kind).collect();
            (
                lexed.tokens.len() as u64,
                parsed.stmt_count() as u64,
                findings.len() as u64,
                pair_signature(&kinds),
            )
        }));
        let elapsed = started.elapsed();
        let (tokens, stmts, findings, signature) = outcome.map_err(|_| {
            format!(
                "iteration {i} (seed {seed}): lexer/parser/rules panicked on a {chars}-char mutant"
            )
        })?;
        if tokens > chars + 1 {
            return Err(format!(
                "iteration {i} (seed {seed}): {tokens} tokens from {chars} chars — cursor failed to advance"
            ));
        }
        if stmts > tokens + 1 {
            return Err(format!(
                "iteration {i} (seed {seed}): {stmts} statements from {tokens} tokens — parser looped"
            ));
        }
        if elapsed > PER_MUTANT_BUDGET {
            return Err(format!(
                "iteration {i} (seed {seed}): {chars}-char mutant took {elapsed:?} (budget {PER_MUTANT_BUDGET:?})"
            ));
        }
        if signature & !covered != 0 {
            covered |= signature;
            if corpus.len() < CORPUS_CAP {
                corpus.push(bytes);
                summary.corpus_retained += 1;
            }
        }
        summary.iterations += 1;
        summary.tokens += tokens;
        summary.findings += findings;
        summary.worst_us = summary.worst_us.max(elapsed.as_micros());
        Ok(())
    });
    panic::set_hook(hook);
    summary.pairs_covered = covered.count_ones();
    result.map(|()| summary)
}

/// The seed `--self-fuzz` uses when none is given (and the one CI runs).
pub const DEFAULT_SEED: u64 = 0x4879_5061_7200_0001; // "HyPar"

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_holds_all_invariants() {
        let summary = run(500, DEFAULT_SEED).expect("fuzz invariants");
        assert_eq!(summary.iterations, 500);
        assert!(summary.tokens > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(200, 7).expect("run a");
        let b = run(200, 7).expect("run b");
        assert_eq!(
            (a.tokens, a.findings, a.pairs_covered, a.corpus_retained),
            (b.tokens, b.findings, b.pairs_covered, b.corpus_retained)
        );
    }

    #[test]
    fn coverage_accumulates_and_retains_seeds() {
        let summary = run(500, DEFAULT_SEED).expect("fuzz");
        assert!(
            summary.pairs_covered >= 30,
            "only {} of {PAIR_SPACE} kind-pairs covered",
            summary.pairs_covered
        );
        assert!(
            summary.corpus_retained >= 1,
            "coverage feedback never retained a seed"
        );
        assert!(u32::try_from(PAIR_SPACE).is_ok_and(|s| summary.pairs_covered <= s));
    }

    #[test]
    fn pair_signature_distinguishes_order() {
        let ab = pair_signature(&[TokenKind::Ident, TokenKind::Int]);
        let ba = pair_signature(&[TokenKind::Int, TokenKind::Ident]);
        assert_ne!(ab, ba);
        assert_eq!(pair_signature(&[]), 0);
    }
}
