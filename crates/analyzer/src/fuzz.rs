//! Randomized byte-mutation smoke over the lexer and rules.
//!
//! `--self-fuzz N` mutates Rust-ish seed sources with a deterministic
//! LCG (same `N` + seed → same inputs, so a CI failure reproduces
//! locally), feeds every mutant through [`lex`] + [`check_file`], and
//! asserts three invariants:
//!
//! 1. **no panic** — a panicking lexer would turn a hostile source file
//!    into a CI-infrastructure outage;
//! 2. **bounded output** — every token consumes at least one character,
//!    so `tokens ≤ chars + 1`; more means the cursor failed to advance;
//! 3. **bounded runtime** — a generous per-mutant wall budget catches
//!    accidental quadratic scanning (the same class of bug PR 7 found
//!    in the vendored serde_json string parser).
//!
//! This is the seed of the ROADMAP's coverage-guided fuzzing item: no
//! coverage feedback yet, but the corpus/mutation/invariant skeleton is
//! the part a coverage loop would wrap.

use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crate::config::RuleSet;
use crate::lexer::lex;
use crate::rules::check_file;

/// Seed sources chosen to sit near every lexer edge: fences, nesting,
/// ticks, escapes, pragmas.
const CORPUS: &[&str] = &[
    "fn f(x: Option<u8>) -> u8 { x.unwrap() } // hypar-allow: panic-path — seed\n",
    "let s = r##\"raw \"# fence\"## ; let q = '\"'; let t = '\\'';\n",
    "/* outer /* inner */ still */ let m: HashMap<u8, u8> = HashMap::new();\n",
    "fn g<'a>(v: &'a [f64]) -> bool { v[0] == 0.0 || v[0] != 1e-3 }\n",
    "#[cfg(test)]\nmod tests { fn t() { m.lock().unwrap(); panic!(\"x\") } }\n",
    "let b = b\"bytes\\\"\"; let c = b'\\n'; let t = Instant::now();\n",
];

/// Deterministic 64-bit LCG (Knuth's MMIX multiplier).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 16
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next() % n as u64) as usize
        }
    }
}

/// Bytes likely to flip a lexer mode when inserted.
const INTERESTING: &[u8] = &[
    b'"', b'\'', b'\\', b'/', b'*', b'#', b'r', b'b', b'c', b'\n', b'!', b'=', b'.', b'{', b'}',
    0x00, 0xFF, 0xC3, 0xE2,
];

fn mutate(rng: &mut Rng, bytes: &mut Vec<u8>) {
    match rng.below(4) {
        0 if !bytes.is_empty() => {
            // Flip a byte.
            let at = rng.below(bytes.len());
            bytes[at] = INTERESTING[rng.below(INTERESTING.len())];
        }
        1 => {
            // Insert an interesting byte.
            let at = rng.below(bytes.len() + 1);
            bytes.insert(at, INTERESTING[rng.below(INTERESTING.len())]);
        }
        2 if bytes.len() > 2 => {
            // Delete a range.
            let start = rng.below(bytes.len());
            let end = (start + 1 + rng.below(16)).min(bytes.len());
            bytes.drain(start..end);
        }
        _ if !bytes.is_empty() => {
            // Duplicate a chunk (tests quadratic scanning).
            let start = rng.below(bytes.len());
            let end = (start + 1 + rng.below(32)).min(bytes.len());
            let chunk: Vec<u8> = bytes[start..end].to_vec();
            let at = rng.below(bytes.len() + 1);
            bytes.splice(at..at, chunk);
        }
        _ => {}
    }
}

/// Outcome of a fuzz run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FuzzSummary {
    /// Mutants executed.
    pub iterations: u64,
    /// Total tokens produced across all mutants.
    pub tokens: u64,
    /// Total findings reported across all mutants.
    pub findings: u64,
    /// Slowest single mutant, in microseconds.
    pub worst_us: u128,
}

/// Per-mutant wall budget; generous so CI never flakes, tight enough
/// that accidental quadratic behavior on a few-KB input still trips it.
const PER_MUTANT_BUDGET: Duration = Duration::from_millis(2000);

/// Runs `iterations` mutants from `seed`.  `Err` carries a reproducible
/// description of the first invariant violation.
pub fn run(iterations: u64, seed: u64) -> Result<FuzzSummary, String> {
    let mut rng = Rng(seed | 1);
    let mut summary = FuzzSummary::default();
    // Worker panics are converted to Err; silence the default hook so a
    // caught panic does not spray a backtrace into CI output.
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = (0..iterations).try_for_each(|i| {
        let mut bytes = CORPUS[rng.below(CORPUS.len())].as_bytes().to_vec();
        for _ in 0..=rng.below(8) {
            mutate(&mut rng, &mut bytes);
        }
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let chars = source.chars().count() as u64;
        let started = Instant::now();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            let lexed = lex(&source);
            let findings = check_file("fuzz.rs", &lexed, RuleSet::all());
            (lexed.tokens.len() as u64, findings.len() as u64)
        }));
        let elapsed = started.elapsed();
        let (tokens, findings) = outcome.map_err(|_| {
            format!("iteration {i} (seed {seed}): lexer/rules panicked on a {chars}-char mutant")
        })?;
        if tokens > chars + 1 {
            return Err(format!(
                "iteration {i} (seed {seed}): {tokens} tokens from {chars} chars — cursor failed to advance"
            ));
        }
        if elapsed > PER_MUTANT_BUDGET {
            return Err(format!(
                "iteration {i} (seed {seed}): {chars}-char mutant took {elapsed:?} (budget {PER_MUTANT_BUDGET:?})"
            ));
        }
        summary.iterations += 1;
        summary.tokens += tokens;
        summary.findings += findings;
        summary.worst_us = summary.worst_us.max(elapsed.as_micros());
        Ok(())
    });
    panic::set_hook(hook);
    result.map(|()| summary)
}

/// The seed `--self-fuzz` uses when none is given (and the one CI runs).
pub const DEFAULT_SEED: u64 = 0x4879_5061_7200_0001; // "HyPar"

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_holds_all_invariants() {
        let summary = run(500, DEFAULT_SEED).expect("fuzz invariants");
        assert_eq!(summary.iterations, 500);
        assert!(summary.tokens > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(200, 7).expect("run a");
        let b = run(200, 7).expect("run b");
        assert_eq!((a.tokens, a.findings), (b.tokens, b.findings));
    }
}
