//! Minimal JSON utilities shared by the baseline and findings writers.
//!
//! The analyzer is deliberately dependency-free, so it carries its own
//! string escaper (used by both canonical writers) and a small
//! recursive-descent [`Value`] parser.  The parser exists for
//! *validation* — the CLI test and `--format json` consumers check the
//! findings document is well-formed and schema-conformant — not as a
//! general-purpose JSON library: numbers are `f64`, no streaming, and
//! depth is bounded.

use std::collections::BTreeMap;

/// Escapes `s` as a JSON string, including the surrounding quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object's member named `key`, if this is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2.0_f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Nesting bound: the documents this crate writes are ≤ 4 levels deep,
/// so a small cap keeps hostile input from recursing the stack away.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, what)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_whitespace)
        {
            self.pos += 1;
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        text.parse()
            .map(Value::Number)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // opening quote, guaranteed by the caller
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(c @ (b'"' | b'\\' | b'/')) => out.push(c as char),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty tail"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.pos += 1; // `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.pos += 1; // `{`
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            members.insert(key, self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses `text` as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing garbage after document"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        for s in ["plain", "with \"quotes\"", "new\nline\ttab", "uni: αβ✓", ""] {
            let parsed = parse(&escape(s)).expect("parse escaped");
            assert_eq!(parsed.as_str(), Some(s));
        }
    }

    #[test]
    fn parses_the_findings_shape() {
        let doc = r#"{"schema":"x/v1","total":2,"findings":[{"line":3,"waived":false}]}"#;
        let v = parse(doc).expect("parse");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("x/v1"));
        assert_eq!(v.get("total").and_then(Value::as_u64), Some(2));
        let findings = v.get("findings").and_then(Value::as_array).expect("array");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].get("line").and_then(Value::as_u64), Some(3));
        assert_eq!(
            findings[0].get("waived").and_then(Value::as_bool),
            Some(false)
        );
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
        // Deep nesting hits the bound instead of the stack.
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_and_integers() {
        assert_eq!(parse("42").expect("int").as_u64(), Some(42));
        assert_eq!(parse("-1").expect("neg").as_u64(), None);
        assert_eq!(parse("1.5").expect("frac").as_u64(), None);
    }
}
