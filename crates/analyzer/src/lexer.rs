//! A hand-rolled Rust lexer producing the token stream the rules run on.
//!
//! This is deliberately *not* a full Rust parser: the rules only need a
//! comment-and-literal-aware token stream, so the lexer's contract is
//!
//! 1. **Comments never produce tokens** — line comments (`//`, `///`,
//!    `//!`) and block comments (`/* .. */`, nested to any depth) are
//!    skipped, so `// calls unwrap()` can never trip a rule.
//! 2. **Literals are opaque** — string, raw-string (any `#` fence
//!    width), byte-string, C-string, and char literals each become a
//!    single token whose *contents* are never re-lexed, so
//!    `"panic!(..)"` or `'"'` can never trip a rule either.
//! 3. **It never panics and always terminates**, whatever bytes it is
//!    fed (exercised by `--self-fuzz` and the fixture tests): malformed
//!    input degrades to junk punct tokens or an unterminated literal
//!    that runs to end of file.
//!
//! `hypar-allow` pragmas are collected from plain `//` comments (doc
//! comments are excluded so rule documentation can quote the syntax
//! without creating a live waiver) and reported alongside the tokens.

/// What a [`Token`] is; rules match on kind plus text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `fn`, `HashMap`).
    Ident,
    /// A raw identifier (`r#type` — text carries the part after `r#`).
    RawIdent,
    /// A single punctuation character.
    Punct,
    /// A string, byte-string, or C-string literal (escape-aware).
    Str,
    /// A raw string literal with any number of `#` fences.
    RawStr,
    /// A char or byte-char literal (`'a'`, `'\''`, `'"'`, `b'x'`).
    Char,
    /// A lifetime tick (`'a`, `'static`).
    Lifetime,
    /// An integer literal (suffixes included: `42u64`, `0xff`).
    Int,
    /// A float literal (`1.0`, `1e-3`, `2f64`).
    Float,
}

/// One lexed token with its 1-based source line and byte span.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification the rules dispatch on.
    pub kind: TokenKind,
    /// Source text (raw identifiers are stripped to the bare name).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Byte offset of the token's first byte in the source.
    pub start: u32,
    /// Byte offset one past the token's last byte.
    pub end: u32,
}

/// A `// hypar-allow: <rule> — <justification>` waiver comment.
///
/// The pragma suppresses findings of `rule` on its own line and on the
/// line directly below it, but only when `justification` is non-empty —
/// an unjustified or unknown-rule pragma is itself a finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line of the comment.
    pub line: u32,
    /// The rule id being waived.
    pub rule: String,
    /// Free-text reason after the rule id (dash separators stripped).
    pub justification: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub tokens: Vec<Token>,
    /// Every `hypar-allow` pragma, in source order.
    pub pragmas: Vec<Pragma>,
}

/// Lexes `source` into tokens and pragmas.  Never panics; malformed
/// input degrades as described in the module docs.
#[must_use]
pub fn lex(source: &str) -> Lexed {
    Cursor::new(source).run()
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Byte offset of `pos` in the original source.
    byte: u32,
    /// Byte offset where the token currently being lexed started.
    token_start: u32,
    out: Lexed,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Cursor {
    fn new(source: &str) -> Self {
        Cursor {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            byte: 0,
            token_start: 0,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        self.byte += c.len_utf8() as u32;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            start: self.token_start,
            end: self.byte,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            self.token_start = self.byte;
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.string(TokenKind::Str);
            } else if c == '\'' {
                self.char_or_lifetime();
            } else if c == 'r' && matches!(self.peek(1), Some('"' | '#')) {
                self.raw_prefixed(1);
            } else if matches!(c, 'b' | 'c') && self.peek(1) == Some('"') {
                self.bump();
                self.string(TokenKind::Str);
            } else if c == 'b' && self.peek(1) == Some('\'') {
                self.bump();
                self.char_or_lifetime();
            } else if matches!(c, 'b' | 'c')
                && self.peek(1) == Some('r')
                && matches!(self.peek(2), Some('"' | '#'))
            {
                self.bump();
                self.raw_prefixed(1);
            } else if is_ident_start(c) {
                self.ident();
            } else if c.is_ascii_digit() {
                self.number();
            } else {
                let line = self.line;
                self.bump();
                self.push(TokenKind::Punct, c.to_string(), line);
            }
        }
        self.out
    }

    /// A `//` comment: consumed to end of line; plain (non-doc)
    /// comments are scanned for a `hypar-allow` pragma.
    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), Some('/' | '!'));
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if !doc {
            if let Some(pragma) = parse_pragma(&text, line) {
                self.out.pragmas.push(pragma);
            }
        }
    }

    /// A `/* .. */` comment, nested to arbitrary depth; unterminated
    /// comments run to end of file.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return,
            }
        }
    }

    /// A `"…"` literal with backslash escapes; `kind` lets the byte/C
    /// prefixes reuse this.  Unterminated strings run to end of file.
    fn string(&mut self, kind: TokenKind) {
        let line = self.line;
        let mut text = String::new();
        text.push('"');
        self.bump();
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(escaped) = self.bump() {
                    text.push(escaped);
                }
            } else if c == '"' {
                break;
            }
        }
        self.push(kind, text, line);
    }

    /// `r"…"` / `r#…#` (after an optional `b`/`c` prefix already
    /// consumed): raw string, raw identifier, or a plain ident starting
    /// with `r`.  `skip` is the offset of the char after the `r`.
    fn raw_prefixed(&mut self, skip: usize) {
        let line = self.line;
        let mut fences = 0usize;
        while self.peek(skip + fences) == Some('#') {
            fences += 1;
        }
        match self.peek(skip + fences) {
            Some('"') => {
                // Raw string with `fences` hash fences: runs until a
                // closing quote followed by the same number of hashes.
                for _ in 0..=skip + fences {
                    self.bump();
                }
                let mut text = String::from("r\"");
                loop {
                    match self.bump() {
                        None => break,
                        Some('"') => {
                            let closed = (0..fences).all(|k| self.peek(k) == Some('#'));
                            if closed {
                                for _ in 0..fences {
                                    self.bump();
                                }
                                break;
                            }
                            text.push('"');
                        }
                        Some(c) => text.push(c),
                    }
                }
                self.push(TokenKind::RawStr, text, line);
            }
            Some(c) if fences == 1 && is_ident_start(c) => {
                // Raw identifier `r#name`: token text is the bare name
                // so rules treat `x.r#unwrap()` exactly like `x.unwrap()`.
                for _ in 0..=skip {
                    self.bump();
                }
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokenKind::RawIdent, text, line);
            }
            _ => self.ident(),
        }
    }

    /// Disambiguates `'a'` / `'\n'` / `'"'` (char literals) from `'a` /
    /// `'static` (lifetimes): a tick followed by an identifier that is
    /// *not* closed by another tick is a lifetime.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump();
        match self.peek(0) {
            Some(c) if is_ident_continue(c) && self.peek(1) != Some('\'') => {
                let mut text = String::from("'");
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokenKind::Lifetime, text, line);
            }
            _ => {
                let mut text = String::from("'");
                while let Some(c) = self.bump() {
                    text.push(c);
                    if c == '\\' {
                        if let Some(escaped) = self.bump() {
                            text.push(escaped);
                        }
                    } else if c == '\'' {
                        break;
                    } else if c == '\n' {
                        // A stray tick never swallows the rest of the
                        // file: give up at end of line.
                        break;
                    }
                }
                self.push(TokenKind::Char, text, line);
            }
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        if text.is_empty() {
            // Defensive: only reachable if called off an edge; consume
            // one char so the loop always advances.
            if let Some(c) = self.bump() {
                self.push(TokenKind::Punct, c.to_string(), line);
            }
            return;
        }
        self.push(TokenKind::Ident, text, line);
    }

    /// Integer or float literal; `1.0`, `1e-3`, `1_000`, `0xff`, and
    /// suffixed forms (`2f64`, `42u32`).  A `.` is only consumed when a
    /// digit follows, so `0..10` and `1.max(2)` lex as int-punct-….
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut float = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                if matches!(c, 'e' | 'E')
                    && !text.starts_with("0x")
                    && !text.starts_with("0b")
                    && !text.starts_with("0o")
                    && matches!(self.peek(1), Some(d) if d.is_ascii_digit() || d == '+' || d == '-')
                {
                    float = true;
                    text.push(c);
                    self.bump();
                    if let Some(sign @ ('+' | '-')) = self.peek(0) {
                        text.push(sign);
                        self.bump();
                    }
                    continue;
                }
                text.push(c);
                self.bump();
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) && !float {
                float = true;
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Type-suffixed floats (`2f64`) carry no dot or exponent.
        if text.ends_with("f32") || text.ends_with("f64") {
            float = true;
        }
        let kind = if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, text, line);
    }
}

/// Parses a `hypar-allow: <rule> …` pragma out of a comment body.
fn parse_pragma(comment: &str, line: u32) -> Option<Pragma> {
    let idx = comment.find("hypar-allow:")?;
    let rest = comment[idx + "hypar-allow:".len()..].trim_start();
    let rule_end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-' || c == '_'))
        .unwrap_or(rest.len());
    let rule = rest[..rule_end].to_string();
    let justification = rest[rule_end..]
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':'])
        .trim()
        .to_string();
    Some(Pragma {
        line,
        rule,
        justification,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokenKind, String)> {
        lex(source)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_produce_no_tokens() {
        let src = "a // unwrap() panic!\nb /* .unwrap() /* nested */ still comment */ c";
        let toks = kinds(src);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a".into()),
                (TokenKind::Ident, "b".into()),
                (TokenKind::Ident, "c".into()),
            ]
        );
    }

    #[test]
    fn strings_are_opaque() {
        let toks = kinds(r#"let s = "x.unwrap()";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "unwrap"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"let s = r#"quote " and panic!()"# ; done"####;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("quote")));
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("done"));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let q = '\"'; let t = '\\''; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 2, "{toks:?}");
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("0..10 1.5 2f64 1e-3 0xff");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["1.5", "2f64", "1e-3"]);
        let ints: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, vec!["0", "10", "0xff"]);
    }

    #[test]
    fn pragmas_collected_from_plain_comments_only() {
        let src = "\
// hypar-allow: det-wall-clock — timing metric only\n\
/// hypar-allow: panic-path — doc comments are documentation\n\
let x = 1; // hypar-allow: det-float-eq\n";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 2);
        assert_eq!(lexed.pragmas[0].rule, "det-wall-clock");
        assert_eq!(lexed.pragmas[0].justification, "timing metric only");
        assert_eq!(lexed.pragmas[0].line, 1);
        assert_eq!(lexed.pragmas[1].rule, "det-float-eq");
        assert_eq!(lexed.pragmas[1].justification, "");
        assert_eq!(lexed.pragmas[1].line, 3);
    }

    #[test]
    fn raw_identifiers_are_stripped() {
        let toks = kinds("x.r#unwrap()");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawIdent && t == "unwrap"));
    }

    #[test]
    fn line_numbers_track_every_literal_form() {
        let src = "a\n\"two\nlines\"\nb";
        let lexed = lex(src);
        let b = lexed
            .tokens
            .iter()
            .find(|t| t.text == "b")
            .map(|t| t.line)
            .unwrap_or(0);
        assert_eq!(b, 4);
    }

    #[test]
    fn byte_spans_slice_back_to_the_source() {
        let src = "let αβ = x.unwrap();";
        for t in lex(src).tokens {
            let slice = &src[t.start as usize..t.end as usize];
            assert!(!slice.is_empty(), "empty span for {t:?}");
        }
        let toks = lex("ab cd").tokens;
        assert_eq!((toks[0].start, toks[0].end), (0, 2));
        assert_eq!((toks[1].start, toks[1].end), (3, 5));
        // Prefixed literals span from their prefix byte.
        let toks = lex("r#\"x\"#").tokens;
        assert_eq!(toks[0].start, 0);
        assert_eq!(toks[0].end, 6);
    }

    #[test]
    fn never_panics_on_junk() {
        for src in [
            "\"unterminated",
            "r#\"unterminated",
            "/* unterminated /* nested",
            "'",
            "'\\",
            "b'",
            "r#",
            "\u{FFFD}\u{0}\"'//*",
            "1.",
            "1e",
            "0x",
        ] {
            let _ = lex(src);
        }
    }
}
