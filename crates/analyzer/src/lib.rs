//! `hypar-analyzer`: workspace-native static analysis with a ratcheted
//! CI gate.
//!
//! Three PRs in a row spent effort *reactively* un-panicking
//! service-reachable code, and the determinism net (bit-exact
//! `state_hash`, golden replay) was guarded only by tests.  This crate
//! makes both classes of invariant a build-time property:
//!
//! * **panic-path discipline** (`panic-path`, `lock-poison`) — the
//!   service must degrade to an error JSON, never abort;
//! * **determinism hazards** (`det-map-iter`, `det-float-eq`,
//!   `det-wall-clock`) — nothing nondeterministic may feed
//!   fingerprints or `state_hash`es;
//! * **structural hazards** (`err-swallow`, `cast-truncate`,
//!   `lock-scope`) — silently dropped `Result`s, narrowing casts in
//!   byte/cost math, and lock guards held across planning calls;
//! * **waiver hygiene** (`bad-pragma`) — every `hypar-allow` escape
//!   hatch must name a real rule and carry a justification.
//!
//! The scanner is a hand-rolled lexer (comments, nested block comments,
//! raw strings, char-vs-lifetime ticks all handled — **not** regex over
//! source) feeding a never-panicking brace/paren-matched [`parse`]
//! layer; token-window rules and structural rules share one masking
//! pass.  Existing debt is tolerated via the ratcheted [`ratchet`]
//! baseline, which only ever tightens — and which reached **zero
//! recorded debt** in PR 9.
//!
//! Since PR 10 the analyzer is **interprocedural**: a workspace-wide
//! [`callgraph`] (nodes `crate::module::fn`, edges only where a call
//! site resolves unambiguously) seeds a reachability closure at the
//! configured service entry points (`PlanEngine::plan*`,
//! `service::handle_*`, the request-loop `main`s, scenario/replay
//! runners).  `panic-path`/`err-swallow` stop flagging provably
//! unreachable private helpers, `panic-reach` extends the panic rules
//! into `models`/`bench` along justified call paths, and two new rules
//! work directly on the graph: `lock-order` (conflicting lock
//! acquisition orders across call paths) and `recurse-request`
//! (unguarded call cycles reachable from an entry point).  Findings on
//! a reachable path carry an `entry_trace` — the call chain from the
//! entry point — so reports read like backtraces.  See the
//! [`callgraph`] module docs for exactly how the two closures are
//! computed and why each is sound in the direction it is used.

pub mod callgraph;
pub mod config;
pub mod fuzz;
pub mod json;
pub mod lexer;
pub mod parse;
pub mod ratchet;
pub mod report;
pub mod rules;

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use config::Config;
use ratchet::{Baseline, Counts};
use report::Finding;
use rules::FnIndex;

/// Default baseline filename at the workspace root.
pub const BASELINE_FILE: &str = "analyzer-baseline.json";

/// Directory names never descended into while scanning.
const SKIP_DIRS: &[&str] = &["tests", "fixtures", "target"];

/// Scans the workspace rooted at `root` and returns sorted findings
/// (waived ones included, marked).
///
/// Two passes: first every file is lexed and parsed and its `fn`
/// signatures feed the workspace-wide [`FnIndex`] (so `err-swallow`
/// knows Result-returning callees across crate boundaries), then the
/// rules run per file against that index.  Walks every configured scan
/// root; integration `tests/` directories are skipped here and
/// `#[cfg(test)]` items are masked by the rules.
pub fn scan_workspace(root: &Path, config: &Config) -> Result<Vec<Finding>, String> {
    let files = collect_files(root, config)?;
    let mut index = FnIndex::default();
    for (_, _, _, parsed) in &files {
        index.add(parsed);
    }
    let mut findings = Vec::new();
    for (rel_path, source, lexed, parsed) in &files {
        let rules = config.rules_for(rel_path);
        findings.extend(rules::check_file(
            rel_path, source, lexed, parsed, rules, &index,
        ));
    }
    // The interprocedural pass: build the call graph, scope
    // `panic-path`/`err-swallow`/`panic-reach` by reachability, attach
    // entry traces, and run `lock-order`/`recurse-request`.  A
    // workspace with no entry points skips all of it.
    let graph = callgraph::CallGraph::build(&files, config);
    let mut findings = rules::interproc::apply(&files, config, &graph, findings);
    report::sort(&mut findings);
    Ok(findings)
}

/// Builds the workspace call graph (the same one `scan_workspace` uses
/// for the interprocedural rules) for `--callgraph` output.
pub fn callgraph_of(root: &Path, config: &Config) -> Result<callgraph::CallGraph, String> {
    let files = collect_files(root, config)?;
    Ok(callgraph::CallGraph::build(&files, config))
}

/// Lexes and parses every file under the configured scan roots.
fn collect_files(root: &Path, config: &Config) -> Result<Vec<callgraph::FileUnit>, String> {
    let mut files = Vec::new();
    for rel_root in config.scan_roots() {
        let dir = root.join(&rel_root);
        if !dir.is_dir() {
            continue;
        }
        for rel_path in rs_files(&dir, &rel_root)? {
            let source = fs::read_to_string(root.join(&rel_path))
                .map_err(|e| format!("reading {rel_path}: {e}"))?;
            let lexed = lexer::lex(&source);
            let parsed = parse::parse(&lexed.tokens);
            files.push((rel_path, source, lexed, parsed));
        }
    }
    Ok(files)
}

/// Every `.rs` file under `dir` (sorted, workspace-relative paths,
/// `/`-separated), skipping [`SKIP_DIRS`].
fn rs_files(dir: &Path, rel: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {rel}: {e}"))?;
    let mut names: Vec<(String, PathBuf, bool)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {rel}: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_dir = entry.path().is_dir();
        names.push((name, entry.path(), is_dir));
    }
    names.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, path, is_dir) in names {
        let rel_child = format!("{rel}/{name}");
        if is_dir {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            out.extend(rs_files(&path, &rel_child)?);
        } else if name.ends_with(".rs") {
            out.push(rel_child);
        }
    }
    Ok(out)
}

/// The result of a `--check` run.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// Per-cell regressions (fail) with their concrete findings.
    pub regressions: Vec<(ratchet::Delta, Vec<Finding>)>,
    /// Per-cell improvements (pass; `--bless` tightens).
    pub improvements: Vec<ratchet::Delta>,
    /// `bad-pragma` findings always fail, baseline or not: the escape
    /// hatch must never rust open.
    pub bad_pragmas: Vec<Finding>,
    /// Total current findings.
    pub total: u64,
}

impl CheckOutcome {
    /// Whether the gate passes.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.bad_pragmas.is_empty()
    }
}

/// Compares the current tree against the baseline at `baseline_path`.
pub fn run_check(
    root: &Path,
    config: &Config,
    baseline_path: &Path,
) -> Result<CheckOutcome, String> {
    let text = fs::read_to_string(baseline_path).map_err(|e| {
        format!(
            "reading baseline {}: {e}\nrun `hypar-analyzer --bless` to create it",
            baseline_path.display()
        )
    })?;
    let baseline = ratchet::parse(&text)?;
    let findings = scan_workspace(root, config)?;
    let current = ratchet::counts_of(&findings);
    let comparison = ratchet::compare(&current, &baseline.counts);
    let regressions = comparison
        .regressions
        .into_iter()
        .map(|delta| {
            let concrete: Vec<Finding> = findings
                .iter()
                .filter(|f| !f.waived && f.file == delta.file && f.rule == delta.rule)
                .cloned()
                .collect();
            (delta, concrete)
        })
        .collect();
    let bad_pragmas = findings
        .iter()
        .filter(|f| f.rule == "bad-pragma")
        .cloned()
        .collect();
    Ok(CheckOutcome {
        regressions,
        improvements: comparison.improvements,
        bad_pragmas,
        total: ratchet::total(&current),
    })
}

/// Rewrites the baseline to the current tree's counts.
///
/// Refuses while `bad-pragma` findings exist — a broken waiver must be
/// fixed, never recorded as tolerated debt.  Returns the new counts.
pub fn run_bless(root: &Path, config: &Config, baseline_path: &Path) -> Result<Counts, String> {
    let findings = scan_workspace(root, config)?;
    let bad: Vec<&Finding> = findings.iter().filter(|f| f.rule == "bad-pragma").collect();
    if !bad.is_empty() {
        let mut msg = String::from("refusing to bless: fix these pragmas first\n");
        for finding in bad {
            msg.push_str(&format!("  {finding}\n"));
        }
        return Err(msg);
    }
    let counts = ratchet::counts_of(&findings);
    let baseline = Baseline::current(counts.clone());
    let mut file = fs::File::create(baseline_path)
        .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
    file.write_all(ratchet::to_json(&baseline).as_bytes())
        .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
    Ok(counts)
}

/// Checks that `root` looks like this workspace (catches running the
/// binary from a subdirectory, where every scan root would silently be
/// missing and the tree would look spotless).
pub fn validate_root(root: &Path) -> Result<(), String> {
    if root.join("Cargo.toml").is_file() && root.join("crates").is_dir() {
        Ok(())
    } else {
        Err(format!(
            "{} is not the workspace root (no Cargo.toml + crates/); run from the repository root or pass --root",
            root.display()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_root_rejects_non_workspace_dirs() {
        assert!(validate_root(Path::new("/definitely/not/here")).is_err());
    }
}
