//! The `hypar-analyzer` command-line front-end.
//!
//! ```text
//! hypar-analyzer                # report every current finding
//! hypar-analyzer --format json  # same, as a hypar-analyzer-findings/v1 document
//! hypar-analyzer --check       # gate: fail if any count exceeds the baseline
//! hypar-analyzer --bless       # rewrite the baseline to current counts
//! hypar-analyzer --rules       # the rule reference table
//! hypar-analyzer --self-fuzz N # coverage-guided lexer+parser fuzz (deterministic)
//! hypar-analyzer --callgraph dot   # workspace call graph, Graphviz
//! hypar-analyzer --callgraph json  # same, hypar-analyzer-callgraph/v1
//! ```
//!
//! Exit codes: 0 clean/pass, 1 findings/regressions, 2 usage or I/O
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

use hypar_analyzer::config::Config;
use hypar_analyzer::BASELINE_FILE;
use hypar_analyzer::{
    callgraph_of, fuzz, ratchet, report, run_bless, run_check, scan_workspace, validate_root,
};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Report,
    Check,
    Bless,
    Rules,
    SelfFuzz { iterations: u64, seed: u64 },
    Callgraph(GraphFormat),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GraphFormat {
    Dot,
    Json,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Options {
    mode: Mode,
    format: Format,
    root: PathBuf,
    baseline: Option<PathBuf>,
}

const USAGE: &str = "usage: hypar-analyzer [--check | --bless | --rules | --self-fuzz N | \
                     --callgraph dot|json] [--format text|json] [--root DIR] \
                     [--baseline FILE] [--seed N]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut mode = Mode::Report;
    let mut format = Format::Text;
    let mut root = PathBuf::from(".");
    let mut baseline = None;
    let mut seed = fuzz::DEFAULT_SEED;
    let mut fuzz_iterations: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--bless" => mode = Mode::Bless,
            "--rules" => mode = Mode::Rules,
            "--callgraph" => {
                let which = it
                    .next()
                    .ok_or(format!("--callgraph needs a format (dot or json)\n{USAGE}"))?;
                mode = Mode::Callgraph(match which.as_str() {
                    "dot" => GraphFormat::Dot,
                    "json" => GraphFormat::Json,
                    other => {
                        return Err(format!(
                            "unknown callgraph format `{other}` (dot or json)\n{USAGE}"
                        ))
                    }
                });
            }
            "--format" => {
                let which = it
                    .next()
                    .ok_or(format!("--format needs a value\n{USAGE}"))?;
                format = match which.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => {
                        return Err(format!("unknown format `{other}` (text or json)\n{USAGE}"))
                    }
                };
            }
            "--self-fuzz" => {
                let n = it
                    .next()
                    .ok_or(format!("--self-fuzz needs a count\n{USAGE}"))?;
                fuzz_iterations =
                    Some(n.parse().map_err(|_| {
                        format!("--self-fuzz count `{n}` is not a number\n{USAGE}")
                    })?);
            }
            "--seed" => {
                let n = it.next().ok_or(format!("--seed needs a value\n{USAGE}"))?;
                seed = n
                    .parse()
                    .map_err(|_| format!("--seed `{n}` is not a number\n{USAGE}"))?;
            }
            "--root" => {
                let dir = it
                    .next()
                    .ok_or(format!("--root needs a directory\n{USAGE}"))?;
                root = PathBuf::from(dir);
            }
            "--baseline" => {
                let file = it
                    .next()
                    .ok_or(format!("--baseline needs a file\n{USAGE}"))?;
                baseline = Some(PathBuf::from(file));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if let Some(iterations) = fuzz_iterations {
        mode = Mode::SelfFuzz { iterations, seed };
    }
    if format == Format::Json && mode != Mode::Report {
        return Err(format!(
            "--format json only applies to report mode\n{USAGE}"
        ));
    }
    Ok(Options {
        mode,
        format,
        root,
        baseline,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&options) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("hypar-analyzer: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(options: &Options) -> Result<ExitCode, String> {
    let config = Config::default();
    match options.mode {
        Mode::Rules => {
            println!("{}", report::rules_table());
            Ok(ExitCode::SUCCESS)
        }
        Mode::SelfFuzz { iterations, seed } => {
            let summary = fuzz::run(iterations, seed)?;
            println!(
                "self-fuzz ok: {} mutants, {} tokens, {} findings, {} kind-pairs covered, {} corpus seeds retained, worst mutant {}us (seed {seed})",
                summary.iterations,
                summary.tokens,
                summary.findings,
                summary.pairs_covered,
                summary.corpus_retained,
                summary.worst_us
            );
            Ok(ExitCode::SUCCESS)
        }
        Mode::Callgraph(graph_format) => {
            validate_root(&options.root)?;
            let graph = callgraph_of(&options.root, &config)?;
            match graph_format {
                GraphFormat::Dot => print!("{}", graph.to_dot()),
                GraphFormat::Json => print!("{}", graph.to_json()),
            }
            Ok(ExitCode::SUCCESS)
        }
        Mode::Report => {
            validate_root(&options.root)?;
            let findings = scan_workspace(&options.root, &config)?;
            let live = report::live(&findings);
            if options.format == Format::Json {
                print!("{}", report::findings_json(&findings));
                return Ok(if live.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                });
            }
            for finding in &live {
                println!("{finding}");
            }
            let totals = report::totals(&findings);
            if live.is_empty() {
                println!("no findings");
                return Ok(ExitCode::SUCCESS);
            }
            let summary: Vec<String> = totals
                .iter()
                .map(|(rule, count)| format!("{rule}: {count}"))
                .collect();
            println!("\n{} findings ({})", live.len(), summary.join(", "));
            Ok(ExitCode::FAILURE)
        }
        Mode::Check => {
            validate_root(&options.root)?;
            let baseline_path = options
                .baseline
                .clone()
                .unwrap_or_else(|| options.root.join(BASELINE_FILE));
            let outcome = run_check(&options.root, &config, &baseline_path)?;
            for finding in &outcome.bad_pragmas {
                println!("{finding}");
            }
            for (delta, findings) in &outcome.regressions {
                println!(
                    "ratchet regression: {} `{}` went {} -> {} (baseline only ever tightens)",
                    delta.file, delta.rule, delta.baseline, delta.current
                );
                for finding in findings {
                    println!("  {finding}");
                }
            }
            if !outcome.improvements.is_empty() {
                let burned: u64 = outcome
                    .improvements
                    .iter()
                    .map(|d| d.baseline - d.current)
                    .sum();
                println!(
                    "note: {} finding(s) burned down across {} cell(s) — run `hypar-analyzer --bless` to tighten the baseline",
                    burned,
                    outcome.improvements.len()
                );
            }
            if outcome.passed() {
                println!(
                    "check passed: {} finding(s) within the ratcheted baseline",
                    outcome.total
                );
                Ok(ExitCode::SUCCESS)
            } else {
                println!(
                    "check FAILED: {} regression cell(s), {} bad pragma(s)",
                    outcome.regressions.len(),
                    outcome.bad_pragmas.len()
                );
                Ok(ExitCode::FAILURE)
            }
        }
        Mode::Bless => {
            validate_root(&options.root)?;
            let baseline_path = options
                .baseline
                .clone()
                .unwrap_or_else(|| options.root.join(BASELINE_FILE));
            let counts = run_bless(&options.root, &config, &baseline_path)?;
            let total = ratchet::total(&counts);
            println!(
                "blessed {} finding(s) across {} file(s) into {}",
                total,
                counts.values().filter(|rules| !rules.is_empty()).count(),
                baseline_path.display()
            );
            Ok(ExitCode::SUCCESS)
        }
    }
}
