//! A brace/paren-matched parse layer over the token stream.
//!
//! This is deliberately *not* a Rust grammar: the structural rules only
//! need to reason about statements, call chains, casts, and scopes, so
//! the parser recovers exactly that much shape and no more:
//!
//! * **Blocks** — every `{ .. }` group becomes a [`Block`], recursively.
//!   Struct literals and match bodies parse as blocks too; the junk
//!   "statements" that fall out of them match no rule pattern, so the
//!   over-approximation is harmless and keeps the parser trivial.
//! * **Statements** — block contents split on top-level `;`, and after a
//!   top-level `{ .. }` group unless the next token visibly continues
//!   the expression (`else`, `;`, `.`, `?`).  Closure bodies nested in
//!   call arguments still become blocks, so statements inside them are
//!   visited.
//! * **`fn` signatures** — name, simple `name: PrimitiveType` params,
//!   and the rendered return type, enough to build the workspace
//!   Result-returning-function index and per-function type environments
//!   for cast source inference.
//!
//! Ambiguity is resolved conservatively: a generic parameter list that
//! does not close within a bounded window (the turbofish-vs-`<`
//! comparison ambiguity) makes the parser skip that `fn` rather than
//! guess, and malformed input degrades to fewer statements, never to a
//! panic.  The parser shares the lexer's contract: **it never panics and
//! always terminates**, whatever token stream it is fed (exercised by
//! `--self-fuzz`, which runs every mutant through [`parse`]).

use crate::lexer::{Token, TokenKind};

/// One statement-ish span: a token-index range plus the brace blocks
/// nested inside it, in source order.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// Index of the statement's first token.
    pub start: usize,
    /// Index of the statement's last token (the `;`, the closing `}`,
    /// or the last token of the enclosing block).
    pub end: usize,
    /// Every `{ .. }` group inside the statement, recursively parsed.
    pub blocks: Vec<Block>,
}

/// A `{ .. }` group (or the synthetic file-level scope) split into
/// statements.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Token index of the `{` (`None` for the file-level block).
    pub open: Option<usize>,
    /// Token index of the matching `}` (or one past the last token).
    pub close: usize,
    /// The statements between them.
    pub stmts: Vec<Stmt>,
}

/// A `fn` item's signature, as much as the rules need.
#[derive(Clone, Debug)]
pub struct FnSig {
    /// The function's bare name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `(name, type)` for parameters of the simple `name: Type` shape
    /// where the type is a single identifier token; everything else
    /// (patterns, references, generics) is skipped.
    pub params: Vec<(String, String)>,
    /// Whether the declared return type mentions `Result`.
    pub returns_result: bool,
    /// Token indices of the body's `{` and `}`, when the fn has a body.
    pub body: Option<(usize, usize)>,
}

/// The parse of one file.
#[derive(Clone, Debug, Default)]
pub struct Parsed {
    /// The file-level scope; items are its statements.
    pub root: Block,
    /// Every `fn` signature found anywhere in the file (items, impl
    /// methods, nested fns), in source order.
    pub fns: Vec<FnSig>,
}

impl Parsed {
    /// Total statement count, recursively (a fuzz invariant: every
    /// statement consumes at least one token).
    #[must_use]
    pub fn stmt_count(&self) -> usize {
        fn count(block: &Block) -> usize {
            block
                .stmts
                .iter()
                .map(|s| 1 + s.blocks.iter().map(count).sum::<usize>())
                .sum()
        }
        count(&self.root)
    }

    /// The innermost `fn` whose body contains token index `i`.
    #[must_use]
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSig> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(open, close)| open < i && i < close))
            .min_by_key(|f| {
                let (open, close) = f.body.unwrap_or((0, usize::MAX));
                close - open
            })
    }
}

/// Parses a token stream into blocks, statements, and fn signatures.
/// Never panics; malformed input degrades to coarser statements.
#[must_use]
pub fn parse(tokens: &[Token]) -> Parsed {
    let root = parse_block(tokens, None, 0, tokens.len());
    let fns = collect_fns(tokens);
    Parsed { root, fns }
}

fn is_punct(tok: &Token, c: char) -> bool {
    tok.kind == TokenKind::Punct && tok.text.len() == 1 && tok.text.starts_with(c)
}

fn is_word(tok: &Token, text: &str) -> bool {
    matches!(tok.kind, TokenKind::Ident | TokenKind::RawIdent) && tok.text == text
}

/// Index of the `}` matching the `{` at `open`, bounded by `limit`.
/// Unterminated blocks run to `limit`.
fn matching_brace(tokens: &[Token], open: usize, limit: usize) -> usize {
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().take(limit).skip(open) {
        if is_punct(tok, '{') {
            depth += 1;
        } else if is_punct(tok, '}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    limit
}

/// Splits `tokens[start..end]` (the contents of a block) into
/// statements, recursing into nested `{ .. }` groups.
fn parse_block(tokens: &[Token], open: Option<usize>, start: usize, end: usize) -> Block {
    let end = end.min(tokens.len());
    let mut stmts = Vec::new();
    let mut i = start;
    while i < end {
        // Skip stray terminators so every statement is non-empty.
        if is_punct(&tokens[i], ';') {
            i += 1;
            continue;
        }
        let stmt_start = i;
        let mut blocks = Vec::new();
        let mut paren_depth = 0usize;
        let mut stmt_end = end - 1;
        let mut j = i;
        while j < end {
            let tok = &tokens[j];
            if is_punct(tok, '(') || is_punct(tok, '[') {
                paren_depth += 1;
            } else if is_punct(tok, ')') || is_punct(tok, ']') {
                paren_depth = paren_depth.saturating_sub(1);
            } else if is_punct(tok, '{') {
                let close = matching_brace(tokens, j, end);
                blocks.push(parse_block(tokens, Some(j), j + 1, close));
                let continues = tokens
                    .get(close + 1)
                    .filter(|_| close + 1 < end)
                    .is_some_and(|next| {
                        is_word(next, "else")
                            || is_punct(next, ';')
                            || is_punct(next, '.')
                            || is_punct(next, '?')
                    });
                if paren_depth == 0 && !continues {
                    stmt_end = close.min(end - 1);
                    j = close + 1;
                    break;
                }
                j = close + 1;
                continue;
            } else if is_punct(tok, '}') && paren_depth == 0 {
                // Unbalanced close inside our range: end the statement.
                stmt_end = j;
                j += 1;
                break;
            } else if is_punct(tok, ';') && paren_depth == 0 {
                stmt_end = j;
                j += 1;
                break;
            }
            j += 1;
        }
        if j >= end {
            stmt_end = end - 1;
            i = end;
        } else {
            i = j;
        }
        stmts.push(Stmt {
            start: stmt_start,
            end: stmt_end.max(stmt_start),
            blocks,
        });
    }
    Block {
        open,
        close: end,
        stmts,
    }
}

/// Primitive numeric type names (the only param/let types the cast rule
/// can reason about).
pub const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// How many tokens a generic parameter list may span before the parser
/// gives up on the `fn` (the turbofish-vs-comparison ambiguity is
/// resolved by refusing to guess).
const GENERIC_WINDOW: usize = 256;

fn collect_fns(tokens: &[Token]) -> Vec<FnSig> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_word(&tokens[i], "fn") {
            if let Some((sig, next)) = parse_fn(tokens, i) {
                fns.push(sig);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    fns
}

/// Parses the `fn` starting at `at`; returns the signature and the
/// index to resume scanning from (the signature's end, so nested fns
/// inside the body are still found).
fn parse_fn(tokens: &[Token], at: usize) -> Option<(FnSig, usize)> {
    let name_tok = tokens.get(at + 1)?;
    if !matches!(name_tok.kind, TokenKind::Ident | TokenKind::RawIdent) {
        // `fn(u8) -> u8` pointer types and malformed items.
        return None;
    }
    let mut j = at + 2;
    // Generic parameters: skip a balanced `< .. >`, treating `->` arrows
    // inside bounds as neutral.  Bail past the window.
    if tokens.get(j).is_some_and(|t| is_punct(t, '<')) {
        let mut depth = 0usize;
        let limit = (j + GENERIC_WINDOW).min(tokens.len());
        let mut k = j;
        loop {
            if k >= limit {
                return None;
            }
            let tok = &tokens[k];
            if is_punct(tok, '<') {
                depth += 1;
            } else if is_punct(tok, '-') && tokens.get(k + 1).is_some_and(|t| is_punct(t, '>')) {
                k += 2;
                continue;
            } else if is_punct(tok, '>') {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
        j = k;
    }
    if !tokens.get(j).is_some_and(|t| is_punct(t, '(')) {
        return None;
    }
    let params_open = j;
    let params_close = matching_group(tokens, params_open)?;
    let params = parse_params(&tokens[params_open + 1..params_close]);

    // Return type: `-> ..` up to `{`, `;`, or `where`.
    let mut returns_result = false;
    let mut k = params_close + 1;
    if tokens.get(k).is_some_and(|t| is_punct(t, '-'))
        && tokens.get(k + 1).is_some_and(|t| is_punct(t, '>'))
    {
        k += 2;
        while let Some(tok) = tokens.get(k) {
            if is_punct(tok, '{') || is_punct(tok, ';') || is_word(tok, "where") {
                break;
            }
            if is_word(tok, "Result") {
                returns_result = true;
            }
            k += 1;
        }
    }
    // Body: the next `{` before any `;` (a `;` first means a trait
    // method declaration or an extern fn — no body).
    let mut body = None;
    while let Some(tok) = tokens.get(k) {
        if is_punct(tok, ';') {
            break;
        }
        if is_punct(tok, '{') {
            body = Some((k, matching_brace(tokens, k, tokens.len())));
            break;
        }
        k += 1;
    }
    Some((
        FnSig {
            name: name_tok.text.clone(),
            line: tokens[at].line,
            params,
            returns_result,
            body,
        },
        params_close + 1,
    ))
}

/// Index of the delimiter closing the `(`/`[` at `open` (balanced over
/// all three bracket kinds).
fn matching_group(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(open) {
        if is_punct(tok, '(') || is_punct(tok, '[') || is_punct(tok, '{') {
            depth += 1;
        } else if is_punct(tok, ')') || is_punct(tok, ']') || is_punct(tok, '}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// `name: Type` parameters where `Type` is one identifier; `self`,
/// patterns, and compound types contribute nothing.
fn parse_params(tokens: &[Token]) -> Vec<(String, String)> {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut angle = 0usize;
    let mut chunk_start = 0;
    let mut chunks = Vec::new();
    for (j, tok) in tokens.iter().enumerate() {
        if is_punct(tok, '(') || is_punct(tok, '[') || is_punct(tok, '{') {
            depth += 1;
        } else if is_punct(tok, ')') || is_punct(tok, ']') || is_punct(tok, '}') {
            depth = depth.saturating_sub(1);
        } else if is_punct(tok, '<') {
            angle += 1;
        } else if is_punct(tok, '>') {
            angle = angle.saturating_sub(1);
        } else if is_punct(tok, ',') && depth == 0 && angle == 0 {
            chunks.push((chunk_start, j));
            chunk_start = j + 1;
        }
    }
    chunks.push((chunk_start, tokens.len()));
    for (start, end) in chunks {
        let chunk = &tokens[start..end];
        let colon = chunk.iter().position(|t| is_punct(t, ':'));
        let Some(colon) = colon else { continue };
        // The name is the identifier directly before the `:` (covers
        // `mut x: T`); patterns like `(a, b): (T, U)` end with `)`.
        let name = match chunk.get(colon.wrapping_sub(1)) {
            Some(t) if matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) => t.text.clone(),
            _ => continue,
        };
        // Single-identifier types only, so the environment never lies.
        let ty = &chunk[colon + 1..];
        if ty.len() == 1 && ty[0].kind == TokenKind::Ident {
            params.push((name, ty[0].text.clone()));
        }
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> Parsed {
        parse(&lex(src).tokens)
    }

    #[test]
    fn statements_split_on_semicolons_and_blocks() {
        let p = parsed("let a = 1; foo(); if x { b(); } let c = 2;");
        assert_eq!(p.root.stmts.len(), 4);
        assert_eq!(p.root.stmts[2].blocks.len(), 1);
        assert_eq!(p.root.stmts[2].blocks[0].stmts.len(), 1);
    }

    #[test]
    fn struct_literals_and_match_do_not_end_the_statement_early() {
        let p = parsed("let x = Foo { a: 1 };\nlet y = match z { A => 1, B => 2 };\nlast();");
        assert_eq!(p.root.stmts.len(), 3, "{:?}", p.root.stmts);
    }

    #[test]
    fn else_chains_stay_one_statement() {
        let p = parsed("if a { x(); } else if b { y(); } else { z(); }\nnext();");
        assert_eq!(p.root.stmts.len(), 2);
        assert_eq!(p.root.stmts[0].blocks.len(), 3);
    }

    #[test]
    fn closures_in_call_arguments_contribute_nested_blocks() {
        let p = parsed("items.iter().map(|i| { i.ok(); }).count();");
        assert_eq!(p.root.stmts.len(), 1);
        assert_eq!(p.root.stmts[0].blocks.len(), 1);
        assert_eq!(p.root.stmts[0].blocks[0].stmts.len(), 1);
    }

    #[test]
    fn fn_signatures_capture_name_params_and_result() {
        let p = parsed(
            "fn plain(n: usize, s: &str) -> u32 { 0 }\n\
             pub fn failing(x: u64) -> Result<(), String> { Ok(()) }\n\
             fn io_like() -> std::io::Result<()> { Ok(()) }\n\
             fn unit() {}\n",
        );
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["plain", "failing", "io_like", "unit"]);
        assert_eq!(p.fns[0].params, vec![("n".into(), "usize".into())]);
        assert!(!p.fns[0].returns_result);
        assert!(p.fns[1].returns_result);
        assert!(p.fns[2].returns_result);
        assert!(!p.fns[3].returns_result);
        assert!(p.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn generic_fns_and_trait_decls_parse() {
        let p = parsed(
            "fn generic<T: Into<u64>>(v: T, n: u32) -> Result<T, ()> { Err(()) }\n\
             trait T { fn decl(&self) -> Result<(), ()>; }\n",
        );
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].returns_result);
        // Single-ident types are all captured; consumers filter (the
        // cast rule only trusts numeric primitives).
        assert_eq!(
            p.fns[0].params,
            vec![("v".into(), "T".into()), ("n".into(), "u32".into())]
        );
        assert!(p.fns[1].body.is_none());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parsed("let f: fn(u8) -> u8 = id;");
        assert!(p.fns.is_empty());
    }

    #[test]
    fn enclosing_fn_finds_the_innermost_body() {
        let src = "fn outer() { fn inner(k: u8) { mark(); } }";
        let tokens = lex(src).tokens;
        let p = parse(&tokens);
        let mark = tokens.iter().position(|t| t.text == "mark").expect("mark");
        assert_eq!(p.enclosing_fn(mark).map(|f| f.name.as_str()), Some("inner"));
    }

    #[test]
    fn where_clauses_do_not_hide_the_body() {
        let p = parsed("fn f<T>(x: T) -> Result<T, ()> where T: Clone { Err(()) }");
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].returns_result);
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn comparison_chains_do_not_derail_statements() {
        // `a < b` is not a generic list; statement splitting ignores
        // angle brackets entirely.
        let p = parsed("let ok = a < b; let also = c > d; done();");
        assert_eq!(p.root.stmts.len(), 3);
    }

    #[test]
    fn never_panics_on_junk_and_counts_stay_bounded() {
        for src in [
            "}}}{{{",
            "fn",
            "fn (",
            "fn f(",
            "fn f<T(",
            "{;;}",
            "fn f<",
            "#[x] fn",
            "fn f() -> {",
            "match { =>",
            "|| {",
            "fn f<T>>>(x: T) {}",
        ] {
            let lexed = lex(src);
            let p = parse(&lexed.tokens);
            assert!(p.stmt_count() <= lexed.tokens.len() + 1, "{src:?}");
        }
    }
}
