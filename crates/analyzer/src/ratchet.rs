//! The ratcheted baseline: existing debt is tolerated, new debt fails.
//!
//! `analyzer-baseline.json` records per-file-per-rule finding counts.
//! `--check` fails only when a `(file, rule)` count *increases* over the
//! baseline, so the gate lands without a 374-site cleanup PR while
//! guaranteeing the debt curve is monotonically non-increasing;
//! `--bless` rewrites the baseline to current counts (tightening it when
//! debt was burned down) and is idempotent by construction — canonical
//! key order, fixed formatting, trailing newline.
//!
//! The JSON reader/writer is specialized to this one schema (string
//! keys, two levels of objects, unsigned counts) so the analyzer stays
//! dependency-free.

use std::collections::BTreeMap;

use crate::report::Finding;

/// `file → rule → count`, canonically ordered.
pub type Counts = BTreeMap<String, BTreeMap<String, u64>>;

/// Schema version written to the baseline file.  Version 2 added the
/// `rules` array (the rule set active when the baseline was blessed);
/// version 1 files are still read and auto-migrate on the next
/// `--bless`.
pub const BASELINE_VERSION: u64 = 2;

/// The oldest baseline version `parse` still accepts.
pub const OLDEST_READABLE_VERSION: u64 = 1;

/// A parsed baseline file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Schema version (what the file carried; [`to_json`] always writes
    /// [`BASELINE_VERSION`]).
    pub version: u64,
    /// Rule ids active at bless time (empty for v1 files).
    pub rules: Vec<String>,
    /// Recorded per-file-per-rule counts.
    pub counts: Counts,
}

impl Baseline {
    /// A current-version baseline over `counts` with the full rule set.
    #[must_use]
    pub fn current(counts: Counts) -> Self {
        let mut rules: Vec<String> = crate::report::RULES
            .iter()
            .map(|(id, _, _)| (*id).to_string())
            .collect();
        rules.sort_unstable();
        Baseline {
            version: BASELINE_VERSION,
            rules,
            counts,
        }
    }
}

/// Aggregates live (non-waived) findings into per-file-per-rule counts.
#[must_use]
pub fn counts_of(findings: &[Finding]) -> Counts {
    let mut counts = Counts::new();
    for finding in findings.iter().filter(|f| !f.waived) {
        *counts
            .entry(finding.file.clone())
            .or_default()
            .entry(finding.rule.to_string())
            .or_insert(0) += 1;
    }
    counts
}

/// Sum of every count.
#[must_use]
pub fn total(counts: &Counts) -> u64 {
    counts.values().flat_map(BTreeMap::values).sum()
}

/// One `(file, rule)` cell that moved relative to the baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delta {
    /// Workspace-relative path.
    pub file: String,
    /// Rule id.
    pub rule: String,
    /// Count recorded in the baseline (0 when absent).
    pub baseline: u64,
    /// Count in the current tree.
    pub current: u64,
}

/// Comparison of current counts against the baseline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Comparison {
    /// Cells where the current tree has *more* findings — these fail
    /// the gate.
    pub regressions: Vec<Delta>,
    /// Cells where debt was burned down — `--bless` tightens these.
    pub improvements: Vec<Delta>,
}

/// Diffs `current` against `baseline`, both directions.
#[must_use]
pub fn compare(current: &Counts, baseline: &Counts) -> Comparison {
    let mut cells: BTreeMap<(&str, &str), (u64, u64)> = BTreeMap::new();
    for (file, rules) in baseline {
        for (rule, &count) in rules {
            cells.entry((file, rule)).or_insert((0, 0)).0 = count;
        }
    }
    for (file, rules) in current {
        for (rule, &count) in rules {
            cells.entry((file, rule)).or_insert((0, 0)).1 = count;
        }
    }
    let mut comparison = Comparison::default();
    for ((file, rule), (base, cur)) in cells {
        let delta = Delta {
            file: file.to_string(),
            rule: rule.to_string(),
            baseline: base,
            current: cur,
        };
        match cur.cmp(&base) {
            std::cmp::Ordering::Greater => comparison.regressions.push(delta),
            std::cmp::Ordering::Less => comparison.improvements.push(delta),
            std::cmp::Ordering::Equal => {}
        }
    }
    comparison
}

// ---------------------------------------------------------------------
// Canonical writer
// ---------------------------------------------------------------------

use crate::json::escape;

/// Serializes a baseline canonically: sorted keys (`BTreeMap` order),
/// two-space indent, trailing newline.  Blessing twice can never
/// produce two different bytes.  Always writes [`BASELINE_VERSION`],
/// so blessing a v1 file *is* the migration.
#[must_use]
pub fn to_json(baseline: &Baseline) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": {BASELINE_VERSION},\n"));
    let mut rules: Vec<&str> = baseline.rules.iter().map(String::as_str).collect();
    rules.sort_unstable();
    rules.dedup();
    let listed: Vec<String> = rules.iter().map(|r| escape(r)).collect();
    out.push_str(&format!("  \"rules\": [{}],\n", listed.join(", ")));
    out.push_str("  \"counts\": {");
    let mut first_file = true;
    for (file, rules) in &baseline.counts {
        if rules.is_empty() {
            continue;
        }
        if !first_file {
            out.push(',');
        }
        first_file = false;
        out.push_str(&format!("\n    {}: {{", escape(file)));
        let mut first_rule = true;
        for (rule, count) in rules {
            if !first_rule {
                out.push(',');
            }
            first_rule = false;
            out.push_str(&format!("\n      {}: {}", escape(rule), count));
        }
        out.push_str("\n    }");
    }
    if !first_file {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

// ---------------------------------------------------------------------
// Minimal reader (exactly the schema the writer produces)
// ---------------------------------------------------------------------

struct Reader<'a> {
    chars: Vec<char>,
    pos: usize,
    text: &'a str,
}

impl Reader<'_> {
    fn err(&self, what: &str) -> String {
        format!(
            "baseline parse error at offset {}: {} (file: {} bytes)",
            self.pos,
            what,
            self.text.len()
        )
    }

    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.chars.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{c}`")))
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.chars.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.chars.get(self.pos).copied() {
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some(c @ ('"' | '\\' | '/')) => out.push(c),
                        Some('u') => {
                            let hex: String =
                                self.chars.iter().skip(self.pos + 1).take(4).collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.chars.get(self.pos).is_some_and(char::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a count"));
        }
        let digits: String = self.chars[start..self.pos].iter().collect();
        digits.parse().map_err(|_| self.err("count out of range"))
    }

    fn string_array(&mut self) -> Result<Vec<String>, String> {
        self.eat('[')?;
        let mut out = Vec::new();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            out.push(self.string()?);
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected `,` or `]` in rules")),
            }
        }
    }

    fn rule_counts(&mut self) -> Result<BTreeMap<String, u64>, String> {
        self.eat('{')?;
        let mut rules = BTreeMap::new();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(rules);
        }
        loop {
            let rule = self.string()?;
            self.eat(':')?;
            rules.insert(rule, self.number()?);
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(rules);
                }
                _ => return Err(self.err("expected `,` or `}` in rule counts")),
            }
        }
    }
}

/// Parses a baseline file.  Accepts the schema [`to_json`] writes plus
/// the v1 predecessor (no `rules` key); key order is not significant on
/// read.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut r = Reader {
        chars: text.chars().collect(),
        pos: 0,
        text,
    };
    r.eat('{')?;
    let mut baseline = Baseline {
        version: 0,
        rules: Vec::new(),
        counts: Counts::new(),
    };
    if r.peek() == Some('}') {
        return Err(r.err("baseline must carry `version` and `counts`"));
    }
    loop {
        let key = r.string()?;
        r.eat(':')?;
        match key.as_str() {
            "version" => baseline.version = r.number()?,
            "rules" => baseline.rules = r.string_array()?,
            "counts" => {
                r.eat('{')?;
                if r.peek() == Some('}') {
                    r.pos += 1;
                } else {
                    loop {
                        let file = r.string()?;
                        r.eat(':')?;
                        let rules = r.rule_counts()?;
                        baseline.counts.insert(file, rules);
                        match r.peek() {
                            Some(',') => r.pos += 1,
                            Some('}') => {
                                r.pos += 1;
                                break;
                            }
                            _ => return Err(r.err("expected `,` or `}` in counts")),
                        }
                    }
                }
            }
            other => return Err(r.err(&format!("unknown baseline key `{other}`"))),
        }
        match r.peek() {
            Some(',') => r.pos += 1,
            Some('}') => {
                r.pos += 1;
                break;
            }
            _ => return Err(r.err("expected `,` or `}` at top level")),
        }
    }
    if !(OLDEST_READABLE_VERSION..=BASELINE_VERSION).contains(&baseline.version) {
        return Err(format!(
            "baseline version {} is outside the supported {}..={} range — regenerate with --bless",
            baseline.version, OLDEST_READABLE_VERSION, BASELINE_VERSION
        ));
    }
    Ok(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(cells: &[(&str, &str, u64)]) -> Counts {
        let mut counts = Counts::new();
        for (file, rule, n) in cells {
            counts
                .entry((*file).to_string())
                .or_default()
                .insert((*rule).to_string(), *n);
        }
        counts
    }

    #[test]
    fn round_trips_canonically() {
        let baseline = Baseline::current(counts(&[
            ("crates/engine/src/service.rs", "panic-path", 3),
            ("crates/engine/src/service.rs", "lock-poison", 1),
            ("crates/sim/src/training.rs", "panic-path", 12),
        ]));
        let text = to_json(&baseline);
        let back = parse(&text).expect("round trip");
        assert_eq!(back, baseline);
        // Idempotent: serializing the parse is byte-identical.
        assert_eq!(to_json(&back), text);
        assert!(text.ends_with("}\n"));
        assert!(text.contains("\"rules\": [\"bad-pragma\""));
    }

    #[test]
    fn empty_counts_round_trip() {
        let baseline = Baseline::current(Counts::new());
        let text = to_json(&baseline);
        assert!(text.contains("\"counts\": {}"));
        assert_eq!(parse(&text).expect("empty"), baseline);
    }

    #[test]
    fn v1_baselines_parse_and_migrate_on_serialize() {
        // The exact shape PR 8's writer produced: no `rules` key.
        let v1 = "{\n  \"version\": 1,\n  \"counts\": {\n    \"a.rs\": {\n      \"panic-path\": 2\n    }\n  }\n}\n";
        let parsed = parse(v1).expect("v1 accepted");
        assert_eq!(parsed.version, 1);
        assert!(parsed.rules.is_empty());
        assert_eq!(parsed.counts["a.rs"]["panic-path"], 2);
        // Re-serializing writes the current version: bless = migrate.
        let migrated = to_json(&Baseline::current(parsed.counts));
        assert!(migrated.contains("\"version\": 2"));
        assert!(migrated.contains("\"rules\": ["));
    }

    #[test]
    fn version_mismatch_is_an_error() {
        let text = "{\n  \"version\": 99,\n  \"counts\": {}\n}\n";
        assert!(parse(text).expect_err("version").contains("version 99"));
        let zero = "{\n  \"version\": 0,\n  \"counts\": {}\n}\n";
        assert!(parse(zero).is_err());
    }

    #[test]
    fn counts_of_skips_waived_findings() {
        let mut waived = Finding::bare("a.rs", 1, "panic-path", String::new());
        waived.waived = true;
        let live = Finding::bare("a.rs", 2, "panic-path", String::new());
        let counts = counts_of(&[waived, live]);
        assert_eq!(counts["a.rs"]["panic-path"], 1);
    }

    #[test]
    fn garbage_is_a_parse_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "{}",
            "[1,2]",
            "{\"version\": \"x\"}",
            "{\"counts\": 3}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn compare_finds_regressions_and_improvements() {
        let baseline = counts(&[("a.rs", "panic-path", 2), ("b.rs", "panic-path", 1)]);
        let current = counts(&[("a.rs", "panic-path", 3), ("c.rs", "det-float-eq", 1)]);
        let cmp = compare(&current, &baseline);
        assert_eq!(
            cmp.regressions,
            vec![
                Delta {
                    file: "a.rs".into(),
                    rule: "panic-path".into(),
                    baseline: 2,
                    current: 3
                },
                Delta {
                    file: "c.rs".into(),
                    rule: "det-float-eq".into(),
                    baseline: 0,
                    current: 1
                },
            ]
        );
        assert_eq!(
            cmp.improvements,
            vec![Delta {
                file: "b.rs".into(),
                rule: "panic-path".into(),
                baseline: 1,
                current: 0
            }]
        );
    }

    #[test]
    fn equal_counts_are_clean() {
        let same = counts(&[("a.rs", "panic-path", 2)]);
        let cmp = compare(&same, &same.clone());
        assert!(cmp.regressions.is_empty() && cmp.improvements.is_empty());
    }
}
