//! The ratcheted baseline: existing debt is tolerated, new debt fails.
//!
//! `analyzer-baseline.json` records per-file-per-rule finding counts.
//! `--check` fails only when a `(file, rule)` count *increases* over the
//! baseline, so the gate lands without a 374-site cleanup PR while
//! guaranteeing the debt curve is monotonically non-increasing;
//! `--bless` rewrites the baseline to current counts (tightening it when
//! debt was burned down) and is idempotent by construction — canonical
//! key order, fixed formatting, trailing newline.
//!
//! The JSON reader/writer is specialized to this one schema (string
//! keys, two levels of objects, unsigned counts) so the analyzer stays
//! dependency-free.

use std::collections::BTreeMap;

use crate::report::Finding;

/// `file → rule → count`, canonically ordered.
pub type Counts = BTreeMap<String, BTreeMap<String, u64>>;

/// Schema version written to the baseline file.
pub const BASELINE_VERSION: u64 = 1;

/// A parsed baseline file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Schema version (currently always [`BASELINE_VERSION`]).
    pub version: u64,
    /// Recorded per-file-per-rule counts.
    pub counts: Counts,
}

/// Aggregates findings into per-file-per-rule counts.
#[must_use]
pub fn counts_of(findings: &[Finding]) -> Counts {
    let mut counts = Counts::new();
    for finding in findings {
        *counts
            .entry(finding.file.clone())
            .or_default()
            .entry(finding.rule.to_string())
            .or_insert(0) += 1;
    }
    counts
}

/// Sum of every count.
#[must_use]
pub fn total(counts: &Counts) -> u64 {
    counts.values().flat_map(BTreeMap::values).sum()
}

/// One `(file, rule)` cell that moved relative to the baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delta {
    /// Workspace-relative path.
    pub file: String,
    /// Rule id.
    pub rule: String,
    /// Count recorded in the baseline (0 when absent).
    pub baseline: u64,
    /// Count in the current tree.
    pub current: u64,
}

/// Comparison of current counts against the baseline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Comparison {
    /// Cells where the current tree has *more* findings — these fail
    /// the gate.
    pub regressions: Vec<Delta>,
    /// Cells where debt was burned down — `--bless` tightens these.
    pub improvements: Vec<Delta>,
}

/// Diffs `current` against `baseline`, both directions.
#[must_use]
pub fn compare(current: &Counts, baseline: &Counts) -> Comparison {
    let mut cells: BTreeMap<(&str, &str), (u64, u64)> = BTreeMap::new();
    for (file, rules) in baseline {
        for (rule, &count) in rules {
            cells.entry((file, rule)).or_insert((0, 0)).0 = count;
        }
    }
    for (file, rules) in current {
        for (rule, &count) in rules {
            cells.entry((file, rule)).or_insert((0, 0)).1 = count;
        }
    }
    let mut comparison = Comparison::default();
    for ((file, rule), (base, cur)) in cells {
        let delta = Delta {
            file: file.to_string(),
            rule: rule.to_string(),
            baseline: base,
            current: cur,
        };
        match cur.cmp(&base) {
            std::cmp::Ordering::Greater => comparison.regressions.push(delta),
            std::cmp::Ordering::Less => comparison.improvements.push(delta),
            std::cmp::Ordering::Equal => {}
        }
    }
    comparison
}

// ---------------------------------------------------------------------
// Canonical writer
// ---------------------------------------------------------------------

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes a baseline canonically: sorted keys (`BTreeMap` order),
/// two-space indent, trailing newline.  Blessing twice can never
/// produce two different bytes.
#[must_use]
pub fn to_json(baseline: &Baseline) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": {},\n", baseline.version));
    out.push_str("  \"counts\": {");
    let mut first_file = true;
    for (file, rules) in &baseline.counts {
        if rules.is_empty() {
            continue;
        }
        if !first_file {
            out.push(',');
        }
        first_file = false;
        out.push_str(&format!("\n    {}: {{", escape(file)));
        let mut first_rule = true;
        for (rule, count) in rules {
            if !first_rule {
                out.push(',');
            }
            first_rule = false;
            out.push_str(&format!("\n      {}: {}", escape(rule), count));
        }
        out.push_str("\n    }");
    }
    if !first_file {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

// ---------------------------------------------------------------------
// Minimal reader (exactly the schema the writer produces)
// ---------------------------------------------------------------------

struct Reader<'a> {
    chars: Vec<char>,
    pos: usize,
    text: &'a str,
}

impl Reader<'_> {
    fn err(&self, what: &str) -> String {
        format!(
            "baseline parse error at offset {}: {} (file: {} bytes)",
            self.pos,
            what,
            self.text.len()
        )
    }

    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.chars.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{c}`")))
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.chars.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.chars.get(self.pos).copied() {
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some(c @ ('"' | '\\' | '/')) => out.push(c),
                        Some('u') => {
                            let hex: String =
                                self.chars.iter().skip(self.pos + 1).take(4).collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.chars.get(self.pos).is_some_and(char::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a count"));
        }
        let digits: String = self.chars[start..self.pos].iter().collect();
        digits.parse().map_err(|_| self.err("count out of range"))
    }

    fn rule_counts(&mut self) -> Result<BTreeMap<String, u64>, String> {
        self.eat('{')?;
        let mut rules = BTreeMap::new();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(rules);
        }
        loop {
            let rule = self.string()?;
            self.eat(':')?;
            rules.insert(rule, self.number()?);
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(rules);
                }
                _ => return Err(self.err("expected `,` or `}` in rule counts")),
            }
        }
    }
}

/// Parses a baseline file.  Accepts exactly the schema [`to_json`]
/// writes (key order is not significant on read).
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut r = Reader {
        chars: text.chars().collect(),
        pos: 0,
        text,
    };
    r.eat('{')?;
    let mut baseline = Baseline {
        version: 0,
        counts: Counts::new(),
    };
    if r.peek() == Some('}') {
        return Err(r.err("baseline must carry `version` and `counts`"));
    }
    loop {
        let key = r.string()?;
        r.eat(':')?;
        match key.as_str() {
            "version" => baseline.version = r.number()?,
            "counts" => {
                r.eat('{')?;
                if r.peek() == Some('}') {
                    r.pos += 1;
                } else {
                    loop {
                        let file = r.string()?;
                        r.eat(':')?;
                        let rules = r.rule_counts()?;
                        baseline.counts.insert(file, rules);
                        match r.peek() {
                            Some(',') => r.pos += 1,
                            Some('}') => {
                                r.pos += 1;
                                break;
                            }
                            _ => return Err(r.err("expected `,` or `}` in counts")),
                        }
                    }
                }
            }
            other => return Err(r.err(&format!("unknown baseline key `{other}`"))),
        }
        match r.peek() {
            Some(',') => r.pos += 1,
            Some('}') => {
                r.pos += 1;
                break;
            }
            _ => return Err(r.err("expected `,` or `}` at top level")),
        }
    }
    if baseline.version != BASELINE_VERSION {
        return Err(format!(
            "baseline version {} is not the supported {} — regenerate with --bless",
            baseline.version, BASELINE_VERSION
        ));
    }
    Ok(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(cells: &[(&str, &str, u64)]) -> Counts {
        let mut counts = Counts::new();
        for (file, rule, n) in cells {
            counts
                .entry((*file).to_string())
                .or_default()
                .insert((*rule).to_string(), *n);
        }
        counts
    }

    #[test]
    fn round_trips_canonically() {
        let baseline = Baseline {
            version: BASELINE_VERSION,
            counts: counts(&[
                ("crates/engine/src/service.rs", "panic-path", 3),
                ("crates/engine/src/service.rs", "lock-poison", 1),
                ("crates/sim/src/training.rs", "panic-path", 12),
            ]),
        };
        let text = to_json(&baseline);
        let back = parse(&text).expect("round trip");
        assert_eq!(back, baseline);
        // Idempotent: serializing the parse is byte-identical.
        assert_eq!(to_json(&back), text);
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn empty_counts_round_trip() {
        let baseline = Baseline {
            version: BASELINE_VERSION,
            counts: Counts::new(),
        };
        let text = to_json(&baseline);
        assert_eq!(parse(&text).expect("empty"), baseline);
    }

    #[test]
    fn version_mismatch_is_an_error() {
        let text = "{\n  \"version\": 99,\n  \"counts\": {}\n}\n";
        assert!(parse(text).expect_err("version").contains("version 99"));
    }

    #[test]
    fn garbage_is_a_parse_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "{}",
            "[1,2]",
            "{\"version\": \"x\"}",
            "{\"counts\": 3}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn compare_finds_regressions_and_improvements() {
        let baseline = counts(&[("a.rs", "panic-path", 2), ("b.rs", "panic-path", 1)]);
        let current = counts(&[("a.rs", "panic-path", 3), ("c.rs", "det-float-eq", 1)]);
        let cmp = compare(&current, &baseline);
        assert_eq!(
            cmp.regressions,
            vec![
                Delta {
                    file: "a.rs".into(),
                    rule: "panic-path".into(),
                    baseline: 2,
                    current: 3
                },
                Delta {
                    file: "c.rs".into(),
                    rule: "det-float-eq".into(),
                    baseline: 0,
                    current: 1
                },
            ]
        );
        assert_eq!(
            cmp.improvements,
            vec![Delta {
                file: "b.rs".into(),
                rule: "panic-path".into(),
                baseline: 1,
                current: 0
            }]
        );
    }

    #[test]
    fn equal_counts_are_clean() {
        let same = counts(&[("a.rs", "panic-path", 2)]);
        let cmp = compare(&same, &same.clone());
        assert!(cmp.regressions.is_empty() && cmp.improvements.is_empty());
    }
}
