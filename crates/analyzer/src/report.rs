//! Findings, their `file:line: rule: message` presentation, and the
//! machine-readable `--format json` document.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::escape;

/// The rule reference: `(id, what it catches, how to satisfy it)`.
///
/// Kept as data so `--rules`, the README table, and pragma validation
/// all read from one place.
pub const RULES: &[(&str, &str, &str)] = &[
    (
        "panic-path",
        "`.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` in service-reachable code",
        "return a typed error; the service must degrade to an error JSON, never abort",
    ),
    (
        "lock-poison",
        "`.lock().unwrap()` / `.lock().expect(` — propagates mutex poison, turning one panicked thread into an outage",
        "recover with `unwrap_or_else(PoisonError::into_inner)` (the `PlanCache` pattern) or surface a typed error",
    ),
    (
        "det-map-iter",
        "`HashMap`/`HashSet` in a module that feeds fingerprints or `state_hash`es",
        "use a `BTreeMap`, a sorted `Vec`, or the IR's canonical ordering",
    ),
    (
        "det-float-eq",
        "float `==`/`!=` comparison against a float literal",
        "compare `to_bits()`, use an epsilon, or waive an exact-zero sentinel with a pragma",
    ),
    (
        "det-wall-clock",
        "`Instant::now`/`SystemTime` outside the telemetry/timing layer",
        "thread time through telemetry, or waive a metrics-only site with a pragma",
    ),
    (
        "err-swallow",
        "a `Result`-returning call discarded — bare statement, `let _ =`, or `.ok()` dropped on the floor",
        "propagate with `?`, handle the `Err` arm, or log it via the recorder's degraded path",
    ),
    (
        "cast-truncate",
        "a narrowing `as` cast (`usize as u32`, `u64 as usize`, float→int) in comm byte math or cost/fingerprint paths",
        "use `try_from` with a typed error, or widen the destination type",
    ),
    (
        "lock-scope",
        "a `.lock()` guard held across a call into `plan`/`refine`/`simulate`/`stitch`",
        "copy what you need out of the guard and `drop(guard)` before planning (the PlanCache pattern)",
    ),
    (
        "bad-pragma",
        "a `hypar-allow` pragma naming an unknown rule or carrying no justification",
        "write `// hypar-allow: <rule> — <why this site is safe>`",
    ),
    (
        "panic-reach",
        "the panic family in a reach crate (`models`/`bench`) on a justified call path from a service entry point (call-graph scoped; the `entry_trace` names the path)",
        "return a typed error along the reachable path, or restructure so request input cannot reach the panic",
    ),
    (
        "lock-order",
        "two locks acquired in conflicting orders on two call paths (held-lock sets propagated along the call graph) — a potential deadlock, anchored at both acquisition sites",
        "acquire locks in one global acquisition order, or drop the first guard before the second acquisition/call",
    ),
    (
        "recurse-request",
        "a call-graph cycle reachable from a service entry point with no explicit depth/budget guard — a stack-overflow DoS on a deep request",
        "bound the recursion with an explicit depth or budget parameter, or rewrite iteratively",
    ),
];

/// True if `rule` is one of [`RULES`].
#[must_use]
pub fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|(id, _, _)| *id == rule)
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// What was found and what to do instead.
    pub message: String,
    /// Byte offsets `[start, end)` of the offending tokens in the file.
    pub span: (u32, u32),
    /// The trimmed source line the finding sits on.
    pub snippet: String,
    /// Whether a justified `hypar-allow` pragma waives this finding.
    /// Waived findings are excluded from counts and text output but kept
    /// in the JSON document so tooling sees the full picture.
    pub waived: bool,
    /// The justified call chain from a service entry point to the
    /// enclosing fn (`crate::module::fn` labels, entry first).  Empty
    /// when the finding is not on a must-reachable path (or the
    /// workspace has no entry points).
    pub entry_trace: Vec<String>,
    /// The waiving pragma's justification text, so the JSON document is
    /// auditable standalone.  `None` unless `waived`.
    pub justification: Option<String>,
}

impl Finding {
    /// A finding with no span/snippet context (pragma diagnostics and
    /// tests).
    #[must_use]
    pub fn bare(file: &str, line: u32, rule: &'static str, message: String) -> Self {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message,
            span: (0, 0),
            snippet: String::new(),
            waived: false,
            entry_trace: Vec::new(),
            justification: None,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sorts findings for stable output: by file, then line, then rule.
pub fn sort(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

/// Drops waived findings — the live set that counts against the gate.
#[must_use]
pub fn live(findings: &[Finding]) -> Vec<Finding> {
    findings.iter().filter(|f| !f.waived).cloned().collect()
}

/// Per-rule totals over the live (non-waived) findings, sorted by rule
/// id.
#[must_use]
pub fn totals(findings: &[Finding]) -> BTreeMap<&'static str, u64> {
    let mut totals = BTreeMap::new();
    for finding in findings.iter().filter(|f| !f.waived) {
        *totals.entry(finding.rule).or_insert(0) += 1;
    }
    totals
}

/// The `--rules` reference table.
#[must_use]
pub fn rules_table() -> String {
    let mut out = String::from("rules enforced by hypar-analyzer:\n");
    for (id, what, fix) in RULES {
        out.push_str(&format!(
            "\n  {id}\n    catches: {what}\n    fix:     {fix}\n"
        ));
    }
    out.push_str(
        "\nwaivers: `// hypar-allow: <rule> — <justification>` on the offending \
         line or the line above; unjustified pragmas are `bad-pragma` findings.\n",
    );
    out
}

/// Schema identifier stamped into every `--format json` document.
///
/// The schema is append-only: consumers must tolerate unknown keys, and
/// any breaking change bumps the version suffix.  v2 adds `entry_trace`
/// (the call chain from a service entry point, so findings read like
/// backtraces) and `justification` (the waiving pragma's text).
pub const FINDINGS_SCHEMA: &str = "hypar-analyzer-findings/v2";

/// Serializes findings as the stable machine-readable document:
///
/// ```json
/// {
///   "schema": "hypar-analyzer-findings/v2",
///   "total": 2,          // live (non-waived) findings
///   "waived": 1,         // findings suppressed by a justified pragma
///   "totals": {"panic-path": 2},
///   "findings": [
///     {"rule": "...", "file": "...", "line": 7,
///      "span": {"start": 120, "end": 131},
///      "snippet": "x.unwrap()", "message": "...", "waived": false,
///      "entry_trace": ["engine::service::handle_line", "engine::engine::plan"],
///      "justification": null}
///   ]
/// }
/// ```
///
/// Findings appear in [`sort`] order, waived ones included.
#[must_use]
pub fn findings_json(findings: &[Finding]) -> String {
    let live_count = findings.iter().filter(|f| !f.waived).count();
    let waived_count = findings.len() - live_count;
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": {},\n", escape(FINDINGS_SCHEMA)));
    out.push_str(&format!("  \"total\": {live_count},\n"));
    out.push_str(&format!("  \"waived\": {waived_count},\n"));
    out.push_str("  \"totals\": {");
    let totals = totals(findings);
    let mut first = true;
    for (rule, count) in &totals {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    {}: {count}", escape(rule)));
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("},\n");
    out.push_str("  \"findings\": [");
    let mut first = true;
    for f in findings {
        if !first {
            out.push(',');
        }
        first = false;
        let trace = f
            .entry_trace
            .iter()
            .map(|hop| escape(hop))
            .collect::<Vec<_>>()
            .join(", ");
        let justification = f
            .justification
            .as_deref()
            .map_or_else(|| "null".to_string(), escape);
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \
             \"span\": {{\"start\": {}, \"end\": {}}}, \"snippet\": {}, \
             \"message\": {}, \"waived\": {}, \"entry_trace\": [{trace}], \
             \"justification\": {justification}}}",
            escape(f.rule),
            escape(&f.file),
            f.line,
            f.span.0,
            f.span.1,
            escape(&f.snippet),
            escape(&f.message),
            f.waived
        ));
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn display_is_clickable() {
        let f = Finding::bare(
            "crates/engine/src/service.rs",
            42,
            "panic-path",
            "`.unwrap()` can abort the service".into(),
        );
        assert_eq!(
            f.to_string(),
            "crates/engine/src/service.rs:42: panic-path: `.unwrap()` can abort the service"
        );
    }

    #[test]
    fn every_rule_id_is_known() {
        for (id, _, _) in RULES {
            assert!(known_rule(id));
        }
        assert!(!known_rule("no-such-rule"));
    }

    #[test]
    fn sort_orders_by_file_line_rule() {
        let mk = |file: &str, line: u32, rule: &'static str| {
            Finding::bare(file, line, rule, String::new())
        };
        let mut findings = vec![
            mk("b.rs", 1, "panic-path"),
            mk("a.rs", 9, "panic-path"),
            mk("a.rs", 2, "lock-poison"),
        ];
        sort(&mut findings);
        assert_eq!(
            findings
                .iter()
                .map(|f| (f.file.as_str(), f.line))
                .collect::<Vec<_>>(),
            vec![("a.rs", 2), ("a.rs", 9), ("b.rs", 1)]
        );
    }

    #[test]
    fn waived_findings_leave_totals_but_not_the_document() {
        let mut waived = Finding::bare("a.rs", 1, "panic-path", "m".into());
        waived.waived = true;
        let findings = vec![waived, Finding::bare("a.rs", 2, "panic-path", "m".into())];
        assert_eq!(totals(&findings).get("panic-path"), Some(&1));
        assert_eq!(live(&findings).len(), 1);

        let doc = json::parse(&findings_json(&findings)).expect("valid json");
        assert_eq!(
            doc.get("schema").and_then(json::Value::as_str),
            Some(FINDINGS_SCHEMA)
        );
        assert_eq!(doc.get("total").and_then(json::Value::as_u64), Some(1));
        assert_eq!(doc.get("waived").and_then(json::Value::as_u64), Some(1));
        let listed = doc
            .get("findings")
            .and_then(json::Value::as_array)
            .expect("findings array");
        assert_eq!(listed.len(), 2, "waived findings stay in the document");
        assert_eq!(
            listed[0].get("waived").and_then(json::Value::as_bool),
            Some(true)
        );
    }

    #[test]
    fn findings_json_escapes_and_carries_spans() {
        let finding = Finding {
            file: "a.rs".into(),
            line: 3,
            rule: "err-swallow",
            message: "discarded \"Result\"".into(),
            span: (10, 25),
            snippet: "do_io();".into(),
            waived: false,
            entry_trace: vec![
                "engine::service::handle_line".into(),
                "engine::engine::plan".into(),
            ],
            justification: None,
        };
        let doc = json::parse(&findings_json(&[finding])).expect("valid json");
        let f = &doc
            .get("findings")
            .and_then(json::Value::as_array)
            .expect("arr")[0];
        assert_eq!(
            f.get("message").and_then(json::Value::as_str),
            Some("discarded \"Result\"")
        );
        let span = f.get("span").expect("span");
        assert_eq!(span.get("start").and_then(json::Value::as_u64), Some(10));
        assert_eq!(span.get("end").and_then(json::Value::as_u64), Some(25));
        let trace = f
            .get("entry_trace")
            .and_then(json::Value::as_array)
            .expect("entry_trace array");
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace[0].as_str(),
            Some("engine::service::handle_line"),
            "entry first"
        );
        assert!(
            matches!(f.get("justification"), Some(json::Value::Null)),
            "unwaived findings carry a null justification"
        );
    }

    #[test]
    fn waived_findings_carry_the_pragma_justification() {
        let mut finding = Finding::bare("a.rs", 1, "panic-path", "m".into());
        finding.waived = true;
        finding.justification = Some("static literal validated by tests".into());
        let doc = json::parse(&findings_json(&[finding])).expect("valid json");
        let f = &doc
            .get("findings")
            .and_then(json::Value::as_array)
            .expect("arr")[0];
        assert_eq!(
            f.get("justification").and_then(json::Value::as_str),
            Some("static literal validated by tests")
        );
    }

    #[test]
    fn empty_findings_still_produce_a_valid_document() {
        let doc = json::parse(&findings_json(&[])).expect("valid json");
        assert_eq!(doc.get("total").and_then(json::Value::as_u64), Some(0));
        assert_eq!(
            doc.get("findings").and_then(json::Value::as_array),
            Some(&[][..])
        );
    }
}
