//! Findings and their `file:line: rule: message` presentation.

use std::collections::BTreeMap;
use std::fmt;

/// The rule reference: `(id, what it catches, how to satisfy it)`.
///
/// Kept as data so `--rules`, the README table, and pragma validation
/// all read from one place.
pub const RULES: &[(&str, &str, &str)] = &[
    (
        "panic-path",
        "`.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` in service-reachable code",
        "return a typed error; the service must degrade to an error JSON, never abort",
    ),
    (
        "lock-poison",
        "`.lock().unwrap()` / `.lock().expect(` — propagates mutex poison, turning one panicked thread into an outage",
        "recover with `unwrap_or_else(PoisonError::into_inner)` (the `PlanCache` pattern) or surface a typed error",
    ),
    (
        "det-map-iter",
        "`HashMap`/`HashSet` in a module that feeds fingerprints or `state_hash`es",
        "use a `BTreeMap`, a sorted `Vec`, or the IR's canonical ordering",
    ),
    (
        "det-float-eq",
        "float `==`/`!=` comparison against a float literal",
        "compare `to_bits()`, use an epsilon, or waive an exact-zero sentinel with a pragma",
    ),
    (
        "det-wall-clock",
        "`Instant::now`/`SystemTime` outside the telemetry/timing layer",
        "thread time through telemetry, or waive a metrics-only site with a pragma",
    ),
    (
        "bad-pragma",
        "a `hypar-allow` pragma naming an unknown rule or carrying no justification",
        "write `// hypar-allow: <rule> — <why this site is safe>`",
    ),
];

/// True if `rule` is one of [`RULES`].
#[must_use]
pub fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|(id, _, _)| *id == rule)
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// What was found and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sorts findings for stable output: by file, then line, then rule.
pub fn sort(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

/// Per-rule totals, sorted by rule id.
#[must_use]
pub fn totals(findings: &[Finding]) -> BTreeMap<&'static str, u64> {
    let mut totals = BTreeMap::new();
    for finding in findings {
        *totals.entry(finding.rule).or_insert(0) += 1;
    }
    totals
}

/// The `--rules` reference table.
#[must_use]
pub fn rules_table() -> String {
    let mut out = String::from("rules enforced by hypar-analyzer:\n");
    for (id, what, fix) in RULES {
        out.push_str(&format!(
            "\n  {id}\n    catches: {what}\n    fix:     {fix}\n"
        ));
    }
    out.push_str(
        "\nwaivers: `// hypar-allow: <rule> — <justification>` on the offending \
         line or the line above; unjustified pragmas are `bad-pragma` findings.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_clickable() {
        let f = Finding {
            file: "crates/engine/src/service.rs".into(),
            line: 42,
            rule: "panic-path",
            message: "`.unwrap()` can abort the service".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/engine/src/service.rs:42: panic-path: `.unwrap()` can abort the service"
        );
    }

    #[test]
    fn every_rule_id_is_known() {
        for (id, _, _) in RULES {
            assert!(known_rule(id));
        }
        assert!(!known_rule("no-such-rule"));
    }

    #[test]
    fn sort_orders_by_file_line_rule() {
        let mk = |file: &str, line: u32, rule: &'static str| Finding {
            file: file.into(),
            line,
            rule,
            message: String::new(),
        };
        let mut findings = vec![
            mk("b.rs", 1, "panic-path"),
            mk("a.rs", 9, "panic-path"),
            mk("a.rs", 2, "lock-poison"),
        ];
        sort(&mut findings);
        assert_eq!(
            findings
                .iter()
                .map(|f| (f.file.as_str(), f.line))
                .collect::<Vec<_>>(),
            vec![("a.rs", 2), ("a.rs", 9), ("b.rs", 1)]
        );
    }
}
