//! Rule orchestration over a lexed + parsed file.
//!
//! Rules come in two passes sharing one masking layer:
//!
//! * [`lexical`] — token-window rules (panic-path, lock-poison,
//!   det-map-iter, det-float-eq, det-wall-clock) that only ever look a
//!   few tokens ahead;
//! * [`structural`] — rules that need statement and scope shape from
//!   [`crate::parse`] (err-swallow, cast-truncate, lock-scope).
//!
//! Masking applied before either pass:
//!
//! * **Test code is exempt** — any item under a `#[cfg(test)]` /
//!   `#[test]` attribute (the attribute, plus the following braced block
//!   or `;`-terminated item) is skipped.  Integration `tests/`
//!   directories never reach the scanner at all.
//! * **Waivers** — a justified `// hypar-allow: <rule> — <why>` pragma
//!   on the finding's line or the line above marks it waived; waived
//!   findings stay out of counts and text output but remain visible to
//!   `--format json`.  Pragmas with an unknown rule or no justification
//!   become `bad-pragma` findings instead of waiving anything.

pub(crate) mod interproc;
pub mod lexical;
pub mod structural;

use crate::config::RuleSet;
use crate::lexer::{Lexed, Pragma, Token, TokenKind};
use crate::parse::Parsed;
use crate::report::{known_rule, Finding};

pub use structural::FnIndex;

/// Shared per-file context for finding construction.
pub(crate) struct Ctx<'a> {
    pub path: &'a str,
    pub source: &'a str,
    pub tokens: &'a [Token],
}

impl Ctx<'_> {
    /// Builds a finding whose line comes from the token at `line_at`
    /// and whose span covers tokens `first..=last`.
    pub(crate) fn finding(
        &self,
        line_at: usize,
        first: usize,
        last: usize,
        rule: &'static str,
        message: String,
    ) -> Finding {
        let Some(line_tok) = self.tokens.get(line_at) else {
            return Finding::bare(self.path, 0, rule, message);
        };
        let start = self.tokens.get(first).map_or(line_tok.start, |t| t.start);
        let end = self
            .tokens
            .get(last)
            .map_or(line_tok.end, |t| t.end)
            .max(start);
        Finding {
            file: self.path.to_string(),
            line: line_tok.line,
            rule,
            message,
            span: (start, end),
            snippet: snippet_of(self.source, line_tok.line),
            waived: false,
            entry_trace: Vec::new(),
            justification: None,
        }
    }
}

/// The trimmed source text of 1-based `line`.
fn snippet_of(source: &str, line: u32) -> String {
    source
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

/// Runs every applicable rule over one file.  Waived findings are
/// returned with `waived == true`; callers filter with
/// [`crate::report::live`] where only the gate-relevant set matters.
#[must_use]
pub fn check_file(
    path: &str,
    source: &str,
    lexed: &Lexed,
    parsed: &Parsed,
    rules: RuleSet,
    index: &FnIndex,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_pragmas(path, &lexed.pragmas, &mut findings);
    if rules.is_empty() {
        return apply_pragmas(&lexed.pragmas, findings);
    }
    let masked = test_mask(&lexed.tokens);
    let ctx = Ctx {
        path,
        source,
        tokens: &lexed.tokens,
    };
    lexical::check(&ctx, &masked, rules, &mut findings);
    structural::check(&ctx, parsed, &masked, rules, index, &mut findings);
    apply_pragmas(&lexed.pragmas, findings)
}

/// Convenience for tests and the fuzzer: lexes, parses, builds a
/// same-file [`FnIndex`], and runs [`check_file`].
#[must_use]
pub fn check_source(path: &str, source: &str, rules: RuleSet) -> Vec<Finding> {
    let lexed = crate::lexer::lex(source);
    let parsed = crate::parse::parse(&lexed.tokens);
    let mut index = FnIndex::default();
    index.add(&parsed);
    check_file(path, source, &lexed, &parsed, rules, &index)
}

/// Ident or raw ident (`r#unwrap` behaves like `unwrap`).
pub(crate) fn is_word(tok: &Token) -> bool {
    matches!(tok.kind, TokenKind::Ident | TokenKind::RawIdent)
}

pub(crate) fn is_punct(tok: &Token, c: char) -> bool {
    tok.kind == TokenKind::Punct && tok.text.len() == 1 && tok.text.starts_with(c)
}

/// Marks every token belonging to a test-gated item: a `#[...]`
/// attribute whose tokens include the ident `test` (covers `#[test]`,
/// `#[cfg(test)]`, `#[cfg(any(test, ..))]`), plus any stacked
/// attributes after it, plus the following item through its balanced
/// `{...}` block or terminating `;`.
pub(crate) fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut masked = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let Some(attr_end) = attribute_at(tokens, i) else {
            i += 1;
            continue;
        };
        let is_test = tokens[i..=attr_end]
            .iter()
            .any(|t| is_word(t) && t.text == "test");
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Stacked attributes: `#[cfg(test)] #[derive(..)] mod t { .. }`.
        let mut j = attr_end + 1;
        while let Some(end) = attribute_at(tokens, j) {
            j = end + 1;
        }
        let item_end = item_end(tokens, j);
        for slot in masked.iter_mut().take(item_end + 1).skip(i) {
            *slot = true;
        }
        i = item_end + 1;
    }
    masked
}

/// If `#` `[` starts at `i`, the index of the matching `]`.
fn attribute_at(tokens: &[Token], i: usize) -> Option<usize> {
    if !(is_punct(tokens.get(i)?, '#') && is_punct(tokens.get(i + 1)?, '[')) {
        return None;
    }
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(i + 1) {
        if is_punct(tok, '[') {
            depth += 1;
        } else if is_punct(tok, ']') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    Some(tokens.len().saturating_sub(1))
}

/// The index closing the item starting at `from`: the `}` matching its
/// first opening brace, or the first top-level `;` — whichever the item
/// ends with.  Falls back to the last token on malformed input.
fn item_end(tokens: &[Token], from: usize) -> usize {
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(from) {
        if is_punct(tok, '{') || is_punct(tok, '(') || is_punct(tok, '[') {
            depth += 1;
        } else if is_punct(tok, '}') || is_punct(tok, ')') || is_punct(tok, ']') {
            depth = depth.saturating_sub(1);
            if depth == 0 && is_punct(tok, '}') {
                return j;
            }
        } else if is_punct(tok, ';') && depth == 0 {
            return j;
        }
    }
    tokens.len().saturating_sub(1)
}

/// Validates every pragma (unknown rule / missing justification →
/// `bad-pragma`).
fn check_pragmas(path: &str, pragmas: &[Pragma], findings: &mut Vec<Finding>) {
    for pragma in pragmas {
        let problem = if !known_rule(&pragma.rule) {
            Some(format!(
                "hypar-allow names unknown rule `{}` (see --rules)",
                pragma.rule
            ))
        } else if pragma.justification.is_empty() {
            Some(format!(
                "hypar-allow for `{}` carries no justification; write \
                 `hypar-allow: {} — <why this site is safe>`",
                pragma.rule, pragma.rule
            ))
        } else {
            None
        };
        if let Some(message) = problem {
            findings.push(Finding::bare(path, pragma.line, "bad-pragma", message));
        }
    }
}

/// Marks findings waived by a *valid* pragma on the same line or the
/// line above, carrying the pragma's justification into the finding so
/// the JSON document is auditable standalone.  `bad-pragma` findings
/// are never waivable.
fn apply_pragmas(pragmas: &[Pragma], mut findings: Vec<Finding>) -> Vec<Finding> {
    for finding in &mut findings {
        if finding.rule == "bad-pragma" {
            continue;
        }
        let waiver = pragmas.iter().find(|pragma| {
            pragma.rule == finding.rule
                && !pragma.justification.is_empty()
                && known_rule(&pragma.rule)
                && (pragma.line == finding.line || pragma.line + 1 == finding.line)
        });
        if let Some(pragma) = waiver {
            finding.waived = true;
            finding.justification = Some(pragma.justification.clone());
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::live;

    /// Live (non-waived) findings with every rule on.
    fn run(source: &str) -> Vec<Finding> {
        live(&check_source("test.rs", source, RuleSet::all()))
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_the_panic_family() {
        let findings = run("fn f(x: Option<u8>) -> u8 {\n    \
             if x.is_none() { panic!(\"no\") }\n    \
             x.unwrap()\n}\n\
             fn g() { unreachable!() }\n\
             fn h(r: Result<u8, u8>) -> u8 { r.expect(\"msg\") }\n");
        assert_eq!(
            rules_of(&findings),
            vec!["panic-path", "panic-path", "panic-path", "panic-path"]
        );
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[1].line, 3);
    }

    #[test]
    fn unwrap_without_receiver_dot_is_not_flagged() {
        assert!(run("fn unwrap() {} fn caller() { unwrap(); }").is_empty());
        assert!(run("let x = y.unwrap_or_else(f);").is_empty());
        assert!(run("let x = y.unwrap_or(0);").is_empty());
    }

    #[test]
    fn lock_poison_subsumes_the_unwrap() {
        let findings = run("fn f(m: &Mutex<u8>) -> u8 { *m.lock().unwrap() }");
        assert_eq!(rules_of(&findings), vec!["lock-poison"]);
        let findings = run("fn f(m: &Mutex<u8>) -> u8 { *m.lock().expect(\"poisoned\") }");
        assert_eq!(rules_of(&findings), vec!["lock-poison"]);
        // The recovering idiom passes both rules.
        assert!(run(
            "fn f(m: &Mutex<u8>) -> u8 { *m.lock().unwrap_or_else(PoisonError::into_inner) }"
        )
        .is_empty());
    }

    #[test]
    fn map_iter_flags_unordered_containers() {
        let findings = run("use std::collections::HashMap;\nstruct S { m: HashSet<u8> }");
        assert_eq!(rules_of(&findings), vec!["det-map-iter", "det-map-iter"]);
        assert!(run("use std::collections::BTreeMap;").is_empty());
    }

    #[test]
    fn float_eq_needs_a_float_literal_neighbor() {
        assert_eq!(rules_of(&run("if x == 0.0 { }")), vec!["det-float-eq"]);
        assert_eq!(rules_of(&run("if 1.5 != y { }")), vec!["det-float-eq"]);
        assert!(run("if x <= 0.0 { }").is_empty(), "<= is ordering, not eq");
        assert!(run("if x >= 1.5 { }").is_empty());
        assert!(run("if a.to_bits() == b.to_bits() { }").is_empty());
        assert!(run("if n == 0 { }").is_empty(), "integer equality is fine");
    }

    #[test]
    fn wall_clock_patterns() {
        assert_eq!(
            rules_of(&run("let t = Instant::now();")),
            vec!["det-wall-clock"]
        );
        assert_eq!(
            rules_of(&run("let t = std::time::SystemTime::now();")),
            vec!["det-wall-clock"]
        );
        assert!(run("let d = started.elapsed();").is_empty());
        assert!(
            run("struct S { started: Instant }").is_empty(),
            "type mentions alone are not reads"
        );
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let findings = run("fn live() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); panic!(); }\n}\n\
             #[test]\nfn one_test() { z.unwrap(); }\n\
             fn live_too() { w.unwrap(); }\n");
        assert_eq!(rules_of(&findings), vec!["panic-path", "panic-path"]);
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 8);
    }

    #[test]
    fn stacked_attributes_stay_exempt() {
        let findings = run(
            "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() { x.unwrap(); } }\n\
             fn live() { y.unwrap(); }\n",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn justified_pragma_waives_same_line_and_next_line() {
        assert!(run("// hypar-allow: det-wall-clock — latency metric only\n\
             let t = Instant::now();\n")
        .is_empty());
        assert!(
            run("let t = Instant::now(); // hypar-allow: det-wall-clock — metric\n").is_empty()
        );
        // The waiver is rule-specific.
        let findings = run("// hypar-allow: det-wall-clock — metric\n\
             let t = x.unwrap();\n");
        assert_eq!(rules_of(&findings), vec!["panic-path"]);
        // And line-specific: two lines below is out of range.
        let findings = run("// hypar-allow: det-wall-clock — metric\n\
             let a = 1;\n\
             let t = Instant::now();\n");
        assert_eq!(rules_of(&findings), vec!["det-wall-clock"]);
    }

    #[test]
    fn waived_findings_are_marked_not_dropped() {
        let all = check_source(
            "test.rs",
            "// hypar-allow: det-wall-clock — latency metric only\n\
             let t = Instant::now();\n",
            RuleSet::all(),
        );
        assert_eq!(all.len(), 1);
        assert!(all[0].waived);
        assert!(live(&all).is_empty());
    }

    #[test]
    fn unjustified_or_unknown_pragmas_are_findings_and_do_not_waive() {
        let findings = run("// hypar-allow: det-wall-clock\n\
             let t = Instant::now();\n");
        assert_eq!(rules_of(&findings), vec!["bad-pragma", "det-wall-clock"]);

        let findings = run("// hypar-allow: no-such-rule — reasons\n\
             let t = Instant::now();\n");
        assert_eq!(rules_of(&findings), vec!["bad-pragma", "det-wall-clock"]);
    }

    #[test]
    fn comments_strings_and_chars_never_trip_rules() {
        assert!(run("// x.unwrap() panic!()\n\
             /* .lock().unwrap() /* nested */ */\n\
             let s = \"x.unwrap()\";\n\
             let r = r#\"panic!(\"inside\")\"#;\n\
             let q = '\"';\n")
        .is_empty());
    }

    #[test]
    fn scoped_rulesets_only_fire_their_rules() {
        let src = "let m = HashMap::new(); let t = Instant::now(); x.unwrap();";
        let only_panic = RuleSet {
            panic_path: true,
            ..RuleSet::default()
        };
        let findings = live(&check_source("f.rs", src, only_panic));
        assert_eq!(rules_of(&findings), vec!["panic-path"]);
    }

    #[test]
    fn findings_carry_spans_and_snippets() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        let (start, end) = findings[0].span;
        let text = &src[start as usize..end as usize];
        assert!(text.contains("unwrap"), "span {start}..{end} -> {text:?}");
        assert_eq!(findings[0].snippet, "x.unwrap()");
    }
}
