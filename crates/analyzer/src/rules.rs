//! Token-stream rules over a lexed file.
//!
//! Rules run on the comment- and literal-free token stream from
//! [`crate::lexer`], with two layers of masking applied first:
//!
//! * **Test code is exempt** — any item under a `#[cfg(test)]` /
//!   `#[test]` attribute (the attribute, plus the following braced block
//!   or `;`-terminated item) is skipped.  Integration `tests/`
//!   directories never reach the scanner at all.
//! * **Waivers** — a justified `// hypar-allow: <rule> — <why>` pragma
//!   on the finding's line or the line above suppresses it; pragmas
//!   with an unknown rule or no justification become `bad-pragma`
//!   findings instead of waiving anything.

use crate::config::RuleSet;
use crate::lexer::{Lexed, Pragma, Token, TokenKind};
use crate::report::{known_rule, Finding};

/// Runs every applicable rule over one lexed file.
#[must_use]
pub fn check_file(path: &str, lexed: &Lexed, rules: RuleSet) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_pragmas(path, &lexed.pragmas, &mut findings);
    if rules.is_empty() {
        return findings;
    }
    let tokens = &lexed.tokens;
    let masked = test_mask(tokens);
    let finding = |line: u32, rule: &'static str, message: String| Finding {
        file: path.to_string(),
        line,
        rule,
        message,
    };

    // `.lock().unwrap()` sites matched by lock-poison are excluded from
    // panic-path so one defect is one finding.
    let mut consumed = vec![false; tokens.len()];

    for (i, &is_masked) in masked.iter().enumerate() {
        if is_masked {
            continue;
        }
        if rules.lock_poison {
            if let Some((line, via)) = match_lock_poison(tokens, i) {
                for slot in consumed.iter_mut().skip(i).take(6) {
                    *slot = true;
                }
                findings.push(finding(
                    line,
                    "lock-poison",
                    format!(
                        "`.lock().{via}` propagates mutex poison; recover with \
                         `unwrap_or_else(PoisonError::into_inner)` (the PlanCache \
                         pattern) or return a typed error"
                    ),
                ));
            }
        }
    }

    for i in 0..tokens.len() {
        if masked[i] || consumed[i] {
            continue;
        }
        let tok = &tokens[i];
        if rules.panic_path {
            if let Some(msg) = match_panic_path(tokens, i) {
                findings.push(finding(tok.line, "panic-path", msg));
            }
        }
        if rules.det_map_iter && is_word(tok) && (tok.text == "HashMap" || tok.text == "HashSet") {
            findings.push(finding(
                tok.line,
                "det-map-iter",
                format!(
                    "`{}` in a module that feeds fingerprints or state hashes; \
                     iteration order is nondeterministic — use a BTreeMap, a \
                     sorted Vec, or the IR's canonical ordering",
                    tok.text
                ),
            ));
        }
        if rules.det_float_eq {
            if let Some((line, op)) = match_float_eq(tokens, i) {
                findings.push(finding(
                    line,
                    "det-float-eq",
                    format!(
                        "float `{op}` comparison; exact float equality drifts \
                         under reordering — compare `to_bits()` or use an epsilon"
                    ),
                ));
            }
        }
        if rules.det_wall_clock {
            if let Some((line, what)) = match_wall_clock(tokens, i) {
                findings.push(finding(
                    line,
                    "det-wall-clock",
                    format!(
                        "`{what}` outside the telemetry/timing layer; wall-clock \
                         reads in planning paths break replayability"
                    ),
                ));
            }
        }
    }

    apply_pragmas(&lexed.pragmas, findings)
}

/// Ident or raw ident (`r#unwrap` behaves like `unwrap`).
fn is_word(tok: &Token) -> bool {
    matches!(tok.kind, TokenKind::Ident | TokenKind::RawIdent)
}

fn is_punct(tok: &Token, c: char) -> bool {
    tok.kind == TokenKind::Punct && tok.text.len() == 1 && tok.text.starts_with(c)
}

/// `.unwrap()` / `.expect(` / panic-family macro at `i`.
fn match_panic_path(tokens: &[Token], i: usize) -> Option<String> {
    let tok = &tokens[i];
    if !is_word(tok) {
        return None;
    }
    match tok.text.as_str() {
        "panic" | "unreachable" | "todo" | "unimplemented" => {
            if tokens.get(i + 1).is_some_and(|t| is_punct(t, '!')) {
                return Some(format!(
                    "`{}!` aborts the service; degrade to a typed error instead",
                    tok.text
                ));
            }
            None
        }
        "unwrap" => {
            let dotted = i > 0 && is_punct(&tokens[i - 1], '.');
            let called = tokens.get(i + 1).is_some_and(|t| is_punct(t, '('))
                && tokens.get(i + 2).is_some_and(|t| is_punct(t, ')'));
            if dotted && called {
                return Some("`.unwrap()` can abort the service; handle the None/Err arm".into());
            }
            None
        }
        "expect" => {
            let dotted = i > 0 && is_punct(&tokens[i - 1], '.');
            let called = tokens.get(i + 1).is_some_and(|t| is_punct(t, '('));
            if dotted && called {
                return Some("`.expect(..)` can abort the service; handle the None/Err arm".into());
            }
            None
        }
        _ => None,
    }
}

/// `.lock().unwrap()` / `.lock().expect(` starting at `i` (the first
/// `.`).  Returns the line of the unwrap/expect and its name.
fn match_lock_poison(tokens: &[Token], i: usize) -> Option<(u32, &'static str)> {
    if !is_punct(tokens.get(i)?, '.') {
        return None;
    }
    let lock = tokens.get(i + 1)?;
    if !(is_word(lock) && lock.text == "lock") {
        return None;
    }
    if !(is_punct(tokens.get(i + 2)?, '(') && is_punct(tokens.get(i + 3)?, ')')) {
        return None;
    }
    if !is_punct(tokens.get(i + 4)?, '.') {
        return None;
    }
    let sink = tokens.get(i + 5)?;
    if !is_word(sink) {
        return None;
    }
    match sink.text.as_str() {
        "unwrap" => Some((sink.line, "unwrap()")),
        "expect" => Some((sink.line, "expect(..)")),
        _ => None,
    }
}

/// `==` / `!=` at `i` with a float literal on either side.
fn match_float_eq(tokens: &[Token], i: usize) -> Option<(u32, &'static str)> {
    let first = tokens.get(i)?;
    let second = tokens.get(i + 1)?;
    let op = if is_punct(first, '=') && is_punct(second, '=') {
        "=="
    } else if is_punct(first, '!') && is_punct(second, '=') {
        "!="
    } else {
        return None;
    };
    // `a <= b` / `a >= b` lex as `<`,`=` / `>`,`=`: the pair above never
    // matches them.  Guard the left side so `a = =` junk is not matched.
    let lhs_float = i > 0 && tokens[i - 1].kind == TokenKind::Float;
    let rhs_float = tokens
        .get(i + 2)
        .is_some_and(|t| t.kind == TokenKind::Float);
    if lhs_float || rhs_float {
        Some((first.line, op))
    } else {
        None
    }
}

/// `Instant::now` or any `SystemTime` mention at `i`.
fn match_wall_clock(tokens: &[Token], i: usize) -> Option<(u32, &'static str)> {
    let tok = tokens.get(i)?;
    if !is_word(tok) {
        return None;
    }
    if tok.text == "SystemTime" {
        return Some((tok.line, "SystemTime"));
    }
    if tok.text == "Instant"
        && is_punct(tokens.get(i + 1)?, ':')
        && is_punct(tokens.get(i + 2)?, ':')
        && tokens
            .get(i + 3)
            .is_some_and(|t| is_word(t) && t.text == "now")
    {
        return Some((tok.line, "Instant::now"));
    }
    None
}

/// Marks every token belonging to a test-gated item: a `#[...]`
/// attribute whose tokens include the ident `test` (covers `#[test]`,
/// `#[cfg(test)]`, `#[cfg(any(test, ..))]`), plus any stacked
/// attributes after it, plus the following item through its balanced
/// `{...}` block or terminating `;`.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut masked = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let Some(attr_end) = attribute_at(tokens, i) else {
            i += 1;
            continue;
        };
        let is_test = tokens[i..=attr_end]
            .iter()
            .any(|t| is_word(t) && t.text == "test");
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Stacked attributes: `#[cfg(test)] #[derive(..)] mod t { .. }`.
        let mut j = attr_end + 1;
        while let Some(end) = attribute_at(tokens, j) {
            j = end + 1;
        }
        let item_end = item_end(tokens, j);
        for slot in masked.iter_mut().take(item_end + 1).skip(i) {
            *slot = true;
        }
        i = item_end + 1;
    }
    masked
}

/// If `#` `[` starts at `i`, the index of the matching `]`.
fn attribute_at(tokens: &[Token], i: usize) -> Option<usize> {
    if !(is_punct(tokens.get(i)?, '#') && is_punct(tokens.get(i + 1)?, '[')) {
        return None;
    }
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(i + 1) {
        if is_punct(tok, '[') {
            depth += 1;
        } else if is_punct(tok, ']') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    Some(tokens.len().saturating_sub(1))
}

/// The index closing the item starting at `from`: the `}` matching its
/// first opening brace, or the first top-level `;` — whichever the item
/// ends with.  Falls back to the last token on malformed input.
fn item_end(tokens: &[Token], from: usize) -> usize {
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(from) {
        if is_punct(tok, '{') || is_punct(tok, '(') || is_punct(tok, '[') {
            depth += 1;
        } else if is_punct(tok, '}') || is_punct(tok, ')') || is_punct(tok, ']') {
            depth = depth.saturating_sub(1);
            if depth == 0 && is_punct(tok, '}') {
                return j;
            }
        } else if is_punct(tok, ';') && depth == 0 {
            return j;
        }
    }
    tokens.len().saturating_sub(1)
}

/// Validates every pragma (unknown rule / missing justification →
/// `bad-pragma`).
fn check_pragmas(path: &str, pragmas: &[Pragma], findings: &mut Vec<Finding>) {
    for pragma in pragmas {
        let problem = if !known_rule(&pragma.rule) {
            Some(format!(
                "hypar-allow names unknown rule `{}` (see --rules)",
                pragma.rule
            ))
        } else if pragma.justification.is_empty() {
            Some(format!(
                "hypar-allow for `{}` carries no justification; write \
                 `hypar-allow: {} — <why this site is safe>`",
                pragma.rule, pragma.rule
            ))
        } else {
            None
        };
        if let Some(message) = problem {
            findings.push(Finding {
                file: path.to_string(),
                line: pragma.line,
                rule: "bad-pragma",
                message,
            });
        }
    }
}

/// Drops findings waived by a *valid* pragma on the same line or the
/// line above.  `bad-pragma` findings are never waivable.
fn apply_pragmas(pragmas: &[Pragma], findings: Vec<Finding>) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|finding| {
            if finding.rule == "bad-pragma" {
                return true;
            }
            !pragmas.iter().any(|pragma| {
                pragma.rule == finding.rule
                    && !pragma.justification.is_empty()
                    && known_rule(&pragma.rule)
                    && (pragma.line == finding.line || pragma.line + 1 == finding.line)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(source: &str) -> Vec<Finding> {
        check_file("test.rs", &lex(source), RuleSet::all())
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_the_panic_family() {
        let findings = run("fn f(x: Option<u8>) -> u8 {\n    \
             if x.is_none() { panic!(\"no\") }\n    \
             x.unwrap()\n}\n\
             fn g() { unreachable!() }\n\
             fn h(r: Result<u8, u8>) -> u8 { r.expect(\"msg\") }\n");
        assert_eq!(
            rules_of(&findings),
            vec!["panic-path", "panic-path", "panic-path", "panic-path"]
        );
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[1].line, 3);
    }

    #[test]
    fn unwrap_without_receiver_dot_is_not_flagged() {
        assert!(run("fn unwrap() {} fn caller() { unwrap(); }").is_empty());
        assert!(run("let x = y.unwrap_or_else(f);").is_empty());
        assert!(run("let x = y.unwrap_or(0);").is_empty());
    }

    #[test]
    fn lock_poison_subsumes_the_unwrap() {
        let findings = run("fn f(m: &Mutex<u8>) -> u8 { *m.lock().unwrap() }");
        assert_eq!(rules_of(&findings), vec!["lock-poison"]);
        let findings = run("fn f(m: &Mutex<u8>) -> u8 { *m.lock().expect(\"poisoned\") }");
        assert_eq!(rules_of(&findings), vec!["lock-poison"]);
        // The recovering idiom passes both rules.
        assert!(run(
            "fn f(m: &Mutex<u8>) -> u8 { *m.lock().unwrap_or_else(PoisonError::into_inner) }"
        )
        .is_empty());
    }

    #[test]
    fn map_iter_flags_unordered_containers() {
        let findings = run("use std::collections::HashMap;\nstruct S { m: HashSet<u8> }");
        assert_eq!(rules_of(&findings), vec!["det-map-iter", "det-map-iter"]);
        assert!(run("use std::collections::BTreeMap;").is_empty());
    }

    #[test]
    fn float_eq_needs_a_float_literal_neighbor() {
        assert_eq!(rules_of(&run("if x == 0.0 { }")), vec!["det-float-eq"]);
        assert_eq!(rules_of(&run("if 1.5 != y { }")), vec!["det-float-eq"]);
        assert!(run("if x <= 0.0 { }").is_empty(), "<= is ordering, not eq");
        assert!(run("if x >= 1.5 { }").is_empty());
        assert!(run("if a.to_bits() == b.to_bits() { }").is_empty());
        assert!(run("if n == 0 { }").is_empty(), "integer equality is fine");
    }

    #[test]
    fn wall_clock_patterns() {
        assert_eq!(
            rules_of(&run("let t = Instant::now();")),
            vec!["det-wall-clock"]
        );
        assert_eq!(
            rules_of(&run("let t = std::time::SystemTime::now();")),
            vec!["det-wall-clock"]
        );
        assert!(run("let d = started.elapsed();").is_empty());
        assert!(
            run("struct S { started: Instant }").is_empty(),
            "type mentions alone are not reads"
        );
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let findings = run("fn live() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); panic!(); }\n}\n\
             #[test]\nfn one_test() { z.unwrap(); }\n\
             fn live_too() { w.unwrap(); }\n");
        assert_eq!(rules_of(&findings), vec!["panic-path", "panic-path"]);
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 8);
    }

    #[test]
    fn stacked_attributes_stay_exempt() {
        let findings = run(
            "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() { x.unwrap(); } }\n\
             fn live() { y.unwrap(); }\n",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn justified_pragma_waives_same_line_and_next_line() {
        assert!(run("// hypar-allow: det-wall-clock — latency metric only\n\
             let t = Instant::now();\n")
        .is_empty());
        assert!(
            run("let t = Instant::now(); // hypar-allow: det-wall-clock — metric\n").is_empty()
        );
        // The waiver is rule-specific.
        let findings = run("// hypar-allow: det-wall-clock — metric\n\
             let t = x.unwrap();\n");
        assert_eq!(rules_of(&findings), vec!["panic-path"]);
        // And line-specific: two lines below is out of range.
        let findings = run("// hypar-allow: det-wall-clock — metric\n\
             let a = 1;\n\
             let t = Instant::now();\n");
        assert_eq!(rules_of(&findings), vec!["det-wall-clock"]);
    }

    #[test]
    fn unjustified_or_unknown_pragmas_are_findings_and_do_not_waive() {
        let findings = run("// hypar-allow: det-wall-clock\n\
             let t = Instant::now();\n");
        assert_eq!(rules_of(&findings), vec!["bad-pragma", "det-wall-clock"]);

        let findings = run("// hypar-allow: no-such-rule — reasons\n\
             let t = Instant::now();\n");
        assert_eq!(rules_of(&findings), vec!["bad-pragma", "det-wall-clock"]);
    }

    #[test]
    fn comments_strings_and_chars_never_trip_rules() {
        assert!(run("// x.unwrap() panic!()\n\
             /* .lock().unwrap() /* nested */ */\n\
             let s = \"x.unwrap()\";\n\
             let r = r#\"panic!(\"inside\")\"#;\n\
             let q = '\"';\n")
        .is_empty());
    }

    #[test]
    fn scoped_rulesets_only_fire_their_rules() {
        let src = "let m = HashMap::new(); let t = Instant::now(); x.unwrap();";
        let only_panic = RuleSet {
            panic_path: true,
            ..RuleSet::default()
        };
        let findings = check_file("f.rs", &lex(src), only_panic);
        assert_eq!(rules_of(&findings), vec!["panic-path"]);
    }
}
