//! Interprocedural rules over the workspace call graph:
//! reachability-precise scoping for `panic-path`/`err-swallow`/
//! `panic-reach`, `lock-order` (deadlock by conflicting acquisition
//! order), and `recurse-request` (unguarded recursion on the request
//! path).  See the [`crate::callgraph`] docs for how the two
//! reachability closures are computed and which direction each one is
//! allowed to influence.

use std::collections::BTreeMap;

use crate::callgraph::{CallGraph, FileUnit};
use crate::config::Config;
use crate::lexer::{Pragma, Token};
use crate::parse::{Block, Stmt};
use crate::report::Finding;

use super::{is_punct, is_word};

/// Ident substrings that count as an explicit recursion guard: a cycle
/// whose body threads a depth/budget value is bounded by construction.
const GUARD_HINTS: &[&str] = &["depth", "budget", "limit", "fuel", "remaining"];

/// Which scope a file's crate falls into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Scope {
    /// Service crates: the reachability closure may only *exempt*.
    Service,
    /// Reach crates (`models`/`bench`): findings exist only along
    /// justified paths from an entry point.
    Reach,
    /// Everything else (facade, examples): untouched.
    Other,
}

fn scope_of(config: &Config, path: &str) -> Scope {
    let Some(krate) = path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
    else {
        return Scope::Other;
    };
    if config.service_crates.iter().any(|c| c == krate) {
        Scope::Service
    } else if config.reach_crates.iter().any(|c| c == krate) {
        Scope::Reach
    } else {
        Scope::Other
    }
}

/// Runs the interprocedural pass: filters the per-file findings by
/// reachability, attaches `entry_trace`s, and appends the `lock-order`
/// and `recurse-request` findings.
pub(crate) fn apply(
    files: &[FileUnit],
    config: &Config,
    graph: &CallGraph,
    findings: Vec<Finding>,
) -> Vec<Finding> {
    let has_entries = graph.has_entries();
    let file_index: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, (path, _, _, _))| (path.as_str(), i))
        .collect();

    let mut out = Vec::new();
    for mut finding in findings {
        if finding.rule == "bad-pragma" {
            out.push(finding);
            continue;
        }
        let node = file_index
            .get(finding.file.as_str())
            .and_then(|&fi| node_of_finding(graph, files, fi, &finding));
        match scope_of(config, &finding.file) {
            Scope::Service => {
                if has_entries
                    && matches!(finding.rule, "panic-path" | "err-swallow")
                    && node.is_some_and(|n| !graph.is_may_reachable(n))
                {
                    // A private helper even the over-approximated graph
                    // cannot reach from any callable root.
                    continue;
                }
            }
            Scope::Reach => {
                if matches!(finding.rule, "panic-reach" | "err-swallow") {
                    let reachable = has_entries && node.is_some_and(|n| graph.is_must_reachable(n));
                    if !reachable {
                        continue;
                    }
                }
            }
            Scope::Other => {}
        }
        if let Some(n) = node {
            if graph.is_must_reachable(n) {
                finding.entry_trace = graph.entry_trace(n);
            }
        }
        out.push(finding);
    }

    if has_entries {
        out.extend(lock_order(files, graph));
        out.extend(recurse_request(files, graph));
    }
    out
}

/// Maps a finding back to the innermost fn node containing it, via the
/// span start (token-exact) or the first token on its line.
fn node_of_finding(
    graph: &CallGraph,
    files: &[FileUnit],
    file_idx: usize,
    finding: &Finding,
) -> Option<usize> {
    let tokens = &files[file_idx].2.tokens;
    let tok = if finding.span != (0, 0) {
        let at = tokens.partition_point(|t| t.start < finding.span.0);
        tokens
            .get(at)
            .filter(|t| t.start == finding.span.0)
            .map(|_| at)
    } else {
        None
    };
    let tok = tok.or_else(|| tokens.iter().position(|t| t.line == finding.line))?;
    graph.enclosing_node(file_idx, tok)
}

/// One `let guard = <..>.lock()..;` acquisition site.
#[derive(Clone, Debug)]
struct Acquisition {
    /// The lock's field/static name (the ident before `.lock(`).
    lock: String,
    /// The bound guard variable.
    guard: String,
    line: u32,
    span: (u32, u32),
    /// Token index just past the binding statement.
    after: usize,
    /// Token index of the enclosing block's `}`.
    block_close: usize,
}

/// A lock-order edge witness: `first` acquired, then `second` while the
/// first guard is live.
#[derive(Clone, Debug)]
struct Witness {
    file: String,
    line: u32,
    span: (u32, u32),
    holder: usize,
    second_file: String,
    second_line: u32,
}

/// `lock-order`: propagate held-lock sets along justified call edges and
/// report cycles in the acquisition-order relation.
fn lock_order(files: &[FileUnit], graph: &CallGraph) -> Vec<Finding> {
    let n = graph.nodes.len();
    // Acquisitions per must-reachable node.
    let mut acqs: Vec<Vec<Acquisition>> = vec![Vec::new(); n];
    for (file_idx, (_, _, lexed, parsed)) in files.iter().enumerate() {
        let tokens = &lexed.tokens;
        let masked = crate::rules::test_mask(tokens);
        let mut stmts = Vec::new();
        walk_stmts(&parsed.root, &mut stmts);
        for (stmt, block_close) in stmts {
            let Some(acq) = lock_acquisition(tokens, &masked, stmt, block_close) else {
                continue;
            };
            let Some(node) = graph.enclosing_node(file_idx, stmt.start) else {
                continue;
            };
            if graph.is_must_reachable(node) {
                acqs[node].push(acq);
            }
        }
    }

    // Transitive lock summaries: which locks a call into `node` may
    // acquire, with a representative site each.
    let mut summaries: Vec<BTreeMap<String, (String, u32)>> = (0..n)
        .map(|i| {
            acqs[i]
                .iter()
                .map(|a| (a.lock.clone(), (graph.nodes[i].file.clone(), a.line)))
                .collect()
        })
        .collect();
    for _ in 0..n {
        let mut changed = false;
        for i in 0..n {
            if !graph.is_must_reachable(i) {
                continue;
            }
            let callees: Vec<usize> = graph.must_callees(i).collect();
            for callee in callees {
                let merged: Vec<(String, (String, u32))> = summaries[callee]
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                for (lock, site) in merged {
                    if let std::collections::btree_map::Entry::Vacant(slot) =
                        summaries[i].entry(lock)
                    {
                        slot.insert(site);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges `first → second` with a witness each.
    let mut edges: BTreeMap<(String, String), Witness> = BTreeMap::new();
    let record = |first: &Acquisition,
                  holder: usize,
                  second: &str,
                  second_file: &str,
                  second_line: u32,
                  edges: &mut BTreeMap<(String, String), Witness>| {
        if first.lock == second {
            return;
        }
        edges
            .entry((first.lock.clone(), second.to_string()))
            .or_insert_with(|| Witness {
                file: graph.nodes[holder].file.clone(),
                line: first.line,
                span: first.span,
                holder,
                second_file: second_file.to_string(),
                second_line,
            });
    };
    for (node, node_acqs) in acqs.iter().enumerate() {
        if node_acqs.is_empty() {
            continue;
        }
        let file_idx = graph.nodes[node].file_idx;
        let tokens = &files[file_idx].2.tokens;
        for a in node_acqs {
            let scope_end = scope_end(tokens, a);
            for b in node_acqs {
                if b.after > a.after && b.after <= scope_end {
                    record(
                        a,
                        node,
                        &b.lock,
                        &graph.nodes[node].file,
                        b.line,
                        &mut edges,
                    );
                }
            }
            for call in &graph.calls[node] {
                if call.tok > a.after && call.tok < scope_end {
                    let summary: Vec<(String, (String, u32))> = summaries[call.callee]
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    for (lock, (file, line)) in summary {
                        record(a, node, &lock, &file, line, &mut edges);
                    }
                }
            }
        }
    }

    // Cycles in the lock-order digraph.
    let mut names: Vec<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    names.sort();
    names.dedup();
    let id_of: BTreeMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, s)| (s.as_str(), i))
        .collect();
    let mut adj = vec![Vec::new(); names.len()];
    for (a, b) in edges.keys() {
        adj[id_of[a.as_str()]].push(id_of[b.as_str()]);
    }
    let active = vec![true; names.len()];
    let mut findings = Vec::new();
    for component in sccs(&adj, &active) {
        if component.len() < 2 {
            continue; // same-name self edges are filtered at recording
        }
        let mut locks: Vec<&str> = component.iter().map(|&i| names[i].as_str()).collect();
        locks.sort_unstable();
        // Anchor at the first witness edge inside the component.
        let witness = edges
            .iter()
            .find(|((a, b), _)| locks.contains(&a.as_str()) && locks.contains(&b.as_str()))
            .map(|(_, w)| w.clone());
        let Some(witness) = witness else { continue };
        let message = lock_cycle_message(&locks, &edges);
        findings.push(Finding {
            file: witness.file.clone(),
            line: witness.line,
            rule: "lock-order",
            message,
            span: witness.span,
            snippet: snippet_of(&files[graph.nodes[witness.holder].file_idx].1, witness.line),
            waived: false,
            entry_trace: graph.entry_trace(witness.holder),
            justification: None,
        });
    }
    waive(files, findings)
}

/// Renders the conflicting-order message, naming every witness site
/// inside the cycle.
fn lock_cycle_message(locks: &[&str], edges: &BTreeMap<(String, String), Witness>) -> String {
    let mut sites = Vec::new();
    for ((a, b), w) in edges {
        if locks.contains(&a.as_str()) && locks.contains(&b.as_str()) {
            sites.push(format!(
                "`{a}` then `{b}` at {}:{} (second acquisition at {}:{})",
                w.file, w.line, w.second_file, w.second_line
            ));
        }
    }
    format!(
        "locks {} are acquired in conflicting orders across call paths: {} — two \
         concurrent requests can deadlock; acquire in one global order or drop the \
         first guard before the second acquisition",
        locks
            .iter()
            .map(|l| format!("`{l}`"))
            .collect::<Vec<_>>()
            .join(", "),
        sites.join("; ")
    )
}

/// `recurse-request`: any cycle in the justified call graph that an
/// entry point reaches, with no depth/budget guard inside the cycle.
fn recurse_request(files: &[FileUnit], graph: &CallGraph) -> Vec<Finding> {
    let n = graph.nodes.len();
    let active: Vec<bool> = (0..n).map(|i| graph.is_must_reachable(i)).collect();
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        if active[i] {
            adj[i] = graph.must_callees(i).filter(|&j| active[j]).collect();
        }
    }
    let mut findings = Vec::new();
    for component in sccs(&adj, &active) {
        let cyclic = component.len() > 1
            || (component.len() == 1 && adj[component[0]].contains(&component[0]));
        if !cyclic {
            continue;
        }
        if component.iter().any(|&i| has_guard(files, graph, i)) {
            continue;
        }
        let mut members = component.clone();
        members.sort_by_key(|&i| (graph.nodes[i].file.clone(), graph.nodes[i].line));
        let anchor = members[0];
        let anchor_node = &graph.nodes[anchor];
        let labels: Vec<String> = members
            .iter()
            .map(|&i| graph.nodes[i].label.clone())
            .collect();
        let cycle = if labels.len() == 1 {
            format!("`{}` calls itself", labels[0])
        } else {
            format!("call cycle through {}", labels.join(" -> "))
        };
        findings.push(Finding {
            file: anchor_node.file.clone(),
            line: anchor_node.line,
            rule: "recurse-request",
            message: format!(
                "{cycle} on a service-reachable path with no depth/budget guard — a \
                 deep request can overflow the stack; bound the recursion with an \
                 explicit depth or budget parameter, or rewrite iteratively"
            ),
            span: (0, 0),
            snippet: snippet_of(&files[anchor_node.file_idx].1, anchor_node.line),
            waived: false,
            entry_trace: graph.entry_trace(anchor),
            justification: None,
        });
    }
    waive(files, findings)
}

/// Whether the node's body mentions a guard-ish ident (`depth`,
/// `budget`, `limit`, `fuel`, `remaining` — case-insensitive).
fn has_guard(files: &[FileUnit], graph: &CallGraph, node: usize) -> bool {
    let fnode = &graph.nodes[node];
    let Some((open, close)) = fnode.body else {
        return false;
    };
    let tokens = &files[fnode.file_idx].2.tokens;
    tokens[open.min(tokens.len())..close.min(tokens.len())]
        .iter()
        .any(|t| {
            is_word(t) && {
                let lower = t.text.to_ascii_lowercase();
                GUARD_HINTS.iter().any(|g| lower.contains(g))
            }
        })
}

/// Applies `hypar-allow` waivers to interproc findings (same line or
/// line above, justified, matching rule) and carries the justification.
fn waive(files: &[FileUnit], mut findings: Vec<Finding>) -> Vec<Finding> {
    let pragmas: BTreeMap<&str, &[Pragma]> = files
        .iter()
        .map(|(path, _, lexed, _)| (path.as_str(), lexed.pragmas.as_slice()))
        .collect();
    for finding in &mut findings {
        let Some(pragmas) = pragmas.get(finding.file.as_str()) else {
            continue;
        };
        if let Some(pragma) = pragmas.iter().find(|p| {
            p.rule == finding.rule
                && !p.justification.is_empty()
                && (p.line == finding.line || p.line + 1 == finding.line)
        }) {
            finding.waived = true;
            finding.justification = Some(pragma.justification.clone());
        }
    }
    findings
}

/// Every `(stmt, enclosing block close)` pair, recursively.
fn walk_stmts<'a>(block: &'a Block, out: &mut Vec<(&'a Stmt, usize)>) {
    for stmt in &block.stmts {
        out.push((stmt, block.close));
        for inner in &stmt.blocks {
            walk_stmts(inner, out);
        }
    }
}

/// Recognizes `let [mut] guard = <recv>.lock()..;` and extracts the
/// lock name (the ident before `.lock(`) plus the guard binding.
fn lock_acquisition(
    tokens: &[Token],
    masked: &[bool],
    stmt: &Stmt,
    block_close: usize,
) -> Option<Acquisition> {
    if masked.get(stmt.start).copied().unwrap_or(true) {
        return None;
    }
    if !tokens.get(stmt.end).is_some_and(|t| is_punct(t, ';')) {
        return None;
    }
    let head = tokens.get(stmt.start)?;
    if !(is_word(head) && head.text == "let") {
        return None;
    }
    let mut k = stmt.start + 1;
    if tokens.get(k).is_some_and(|t| is_word(t) && t.text == "mut") {
        k += 1;
    }
    let guard_tok = tokens.get(k)?;
    if !is_word(guard_tok) || guard_tok.text == "_" {
        return None;
    }
    if !tokens.get(k + 1).is_some_and(|t| is_punct(t, '=')) {
        return None;
    }
    let mut j = k + 2;
    while j + 3 <= stmt.end {
        if is_punct(&tokens[j], '.')
            && tokens
                .get(j + 1)
                .is_some_and(|t| is_word(t) && t.text == "lock")
            && tokens.get(j + 2).is_some_and(|t| is_punct(t, '('))
            && tokens.get(j + 3).is_some_and(|t| is_punct(t, ')'))
        {
            let recv = tokens.get(j.wrapping_sub(1))?;
            if !is_word(recv) {
                return None; // computed receiver: no stable lock name
            }
            return Some(Acquisition {
                lock: recv.text.clone(),
                guard: guard_tok.text.clone(),
                line: head.line,
                span: (head.start, tokens[stmt.end].end),
                after: stmt.end,
                block_close,
            });
        }
        j += 1;
    }
    None
}

/// The token index ending the guard's live range: an explicit
/// `drop(guard)` or the enclosing block's `}`.
fn scope_end(tokens: &[Token], acq: &Acquisition) -> usize {
    let end = acq.block_close.min(tokens.len());
    let mut j = acq.after + 1;
    while j + 3 < end {
        if is_word(&tokens[j])
            && tokens[j].text == "drop"
            && is_punct(&tokens[j + 1], '(')
            && tokens
                .get(j + 2)
                .is_some_and(|t| is_word(t) && t.text == acq.guard)
            && tokens.get(j + 3).is_some_and(|t| is_punct(t, ')'))
        {
            return j;
        }
        j += 1;
    }
    end
}

/// The trimmed source text of 1-based `line`.
fn snippet_of(source: &str, line: u32) -> String {
    source
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

/// Iterative Tarjan strongly-connected components over `adj`, visiting
/// only `active` nodes.
fn sccs(adj: &[Vec<usize>], active: &[bool]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut components = Vec::new();
    let mut work: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if !active[start] || index[start] != usize::MAX {
            continue;
        }
        work.push((start, 0));
        while let Some(&(v, cursor)) = work.last() {
            if cursor == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(cursor) {
                if let Some(top) = work.last_mut() {
                    top.1 += 1;
                }
                if !active[w] {
                    continue;
                }
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(u, _)) = work.last() {
                    low[u] = low[u].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sccs_find_cycles_and_singletons() {
        // 0 -> 1 -> 2 -> 0 (cycle), 3 -> 0 (singleton), 4 self-loop.
        let adj = vec![vec![1], vec![2], vec![0], vec![0], vec![4]];
        let active = vec![true; 5];
        let mut components = sccs(&adj, &active);
        components.iter_mut().for_each(|c| c.sort_unstable());
        assert!(components.contains(&vec![0, 1, 2]));
        assert!(components.contains(&vec![3]));
        assert!(components.contains(&vec![4]));
    }

    #[test]
    fn inactive_nodes_are_skipped() {
        let adj = vec![vec![1], vec![0]];
        let active = vec![true, false];
        let components = sccs(&adj, &active);
        assert_eq!(components, vec![vec![0]]);
    }
}
