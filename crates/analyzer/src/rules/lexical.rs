//! Token-window rules: each matcher looks at a token and a few
//! neighbors, never at statement or scope structure.

use crate::config::RuleSet;
use crate::lexer::{Token, TokenKind};
use crate::report::Finding;

use super::{is_punct, is_word, Ctx};

/// Runs the lexical pass, appending findings.
pub(crate) fn check(ctx: &Ctx<'_>, masked: &[bool], rules: RuleSet, findings: &mut Vec<Finding>) {
    let tokens = ctx.tokens;

    // `.lock().unwrap()` sites matched by lock-poison are excluded from
    // panic-path so one defect is one finding.
    let mut consumed = vec![false; tokens.len()];

    for (i, &is_masked) in masked.iter().enumerate() {
        if is_masked {
            continue;
        }
        if rules.lock_poison {
            if let Some((sink, via)) = match_lock_poison(tokens, i) {
                for slot in consumed.iter_mut().skip(i).take(6) {
                    *slot = true;
                }
                findings.push(ctx.finding(
                    sink,
                    i,
                    sink + 1,
                    "lock-poison",
                    format!(
                        "`.lock().{via}` propagates mutex poison; recover with \
                         `unwrap_or_else(PoisonError::into_inner)` (the PlanCache \
                         pattern) or return a typed error"
                    ),
                ));
            }
        }
    }

    // In reach crates (`models`/`bench`) the panic family reports as
    // `panic-reach`: same matcher, call-graph-scoped by the interproc
    // pass, waivable under its own rule id.
    let panic_rule: &'static str = if rules.panic_reach {
        "panic-reach"
    } else {
        "panic-path"
    };
    for i in 0..tokens.len() {
        if masked[i] || consumed[i] {
            continue;
        }
        let tok = &tokens[i];
        if rules.panic_path || rules.panic_reach {
            if let Some((first, last, msg)) = match_panic_path(tokens, i) {
                findings.push(ctx.finding(i, first, last, panic_rule, msg));
            }
        }
        if rules.det_map_iter && is_word(tok) && (tok.text == "HashMap" || tok.text == "HashSet") {
            findings.push(ctx.finding(
                i,
                i,
                i,
                "det-map-iter",
                format!(
                    "`{}` in a module that feeds fingerprints or state hashes; \
                     iteration order is nondeterministic — use a BTreeMap, a \
                     sorted Vec, or the IR's canonical ordering",
                    tok.text
                ),
            ));
        }
        if rules.det_float_eq {
            if let Some(op) = match_float_eq(tokens, i) {
                findings.push(ctx.finding(
                    i,
                    i.saturating_sub(1),
                    i + 2,
                    "det-float-eq",
                    format!(
                        "float `{op}` comparison; exact float equality drifts \
                         under reordering — compare `to_bits()` or use an epsilon"
                    ),
                ));
            }
        }
        if rules.det_wall_clock {
            if let Some((last, what)) = match_wall_clock(tokens, i) {
                findings.push(ctx.finding(
                    i,
                    i,
                    last,
                    "det-wall-clock",
                    format!(
                        "`{what}` outside the telemetry/timing layer; wall-clock \
                         reads in planning paths break replayability"
                    ),
                ));
            }
        }
    }
}

/// `.unwrap()` / `.expect(` / panic-family macro at `i`.  Returns the
/// span token indices and the message.
fn match_panic_path(tokens: &[Token], i: usize) -> Option<(usize, usize, String)> {
    let tok = &tokens[i];
    if !is_word(tok) {
        return None;
    }
    match tok.text.as_str() {
        "panic" | "unreachable" | "todo" | "unimplemented" => {
            if tokens.get(i + 1).is_some_and(|t| is_punct(t, '!')) {
                return Some((
                    i,
                    i + 1,
                    format!(
                        "`{}!` aborts the service; degrade to a typed error instead",
                        tok.text
                    ),
                ));
            }
            None
        }
        "unwrap" => {
            let dotted = i > 0 && is_punct(&tokens[i - 1], '.');
            let called = tokens.get(i + 1).is_some_and(|t| is_punct(t, '('))
                && tokens.get(i + 2).is_some_and(|t| is_punct(t, ')'));
            if dotted && called {
                return Some((
                    i - 1,
                    i + 2,
                    "`.unwrap()` can abort the service; handle the None/Err arm".into(),
                ));
            }
            None
        }
        "expect" => {
            let dotted = i > 0 && is_punct(&tokens[i - 1], '.');
            let called = tokens.get(i + 1).is_some_and(|t| is_punct(t, '('));
            if dotted && called {
                return Some((
                    i - 1,
                    i + 1,
                    "`.expect(..)` can abort the service; handle the None/Err arm".into(),
                ));
            }
            None
        }
        _ => None,
    }
}

/// `.lock().unwrap()` / `.lock().expect(` starting at `i` (the first
/// `.`).  Returns the index of the unwrap/expect and its name.
fn match_lock_poison(tokens: &[Token], i: usize) -> Option<(usize, &'static str)> {
    if !is_punct(tokens.get(i)?, '.') {
        return None;
    }
    let lock = tokens.get(i + 1)?;
    if !(is_word(lock) && lock.text == "lock") {
        return None;
    }
    if !(is_punct(tokens.get(i + 2)?, '(') && is_punct(tokens.get(i + 3)?, ')')) {
        return None;
    }
    if !is_punct(tokens.get(i + 4)?, '.') {
        return None;
    }
    let sink = tokens.get(i + 5)?;
    if !is_word(sink) {
        return None;
    }
    match sink.text.as_str() {
        "unwrap" => Some((i + 5, "unwrap()")),
        "expect" => Some((i + 5, "expect(..)")),
        _ => None,
    }
}

/// `==` / `!=` at `i` with a float literal on either side.
fn match_float_eq(tokens: &[Token], i: usize) -> Option<&'static str> {
    let first = tokens.get(i)?;
    let second = tokens.get(i + 1)?;
    let op = if is_punct(first, '=') && is_punct(second, '=') {
        "=="
    } else if is_punct(first, '!') && is_punct(second, '=') {
        "!="
    } else {
        return None;
    };
    // `a <= b` / `a >= b` lex as `<`,`=` / `>`,`=`: the pair above never
    // matches them.  Guard the left side so `a = =` junk is not matched.
    let lhs_float = i > 0 && tokens[i - 1].kind == TokenKind::Float;
    let rhs_float = tokens
        .get(i + 2)
        .is_some_and(|t| t.kind == TokenKind::Float);
    if lhs_float || rhs_float {
        Some(op)
    } else {
        None
    }
}

/// `Instant::now` or any `SystemTime` mention at `i`.  Returns the last
/// token of the match and its name.
fn match_wall_clock(tokens: &[Token], i: usize) -> Option<(usize, &'static str)> {
    let tok = tokens.get(i)?;
    if !is_word(tok) {
        return None;
    }
    if tok.text == "SystemTime" {
        return Some((i, "SystemTime"));
    }
    if tok.text == "Instant"
        && is_punct(tokens.get(i + 1)?, ':')
        && is_punct(tokens.get(i + 2)?, ':')
        && tokens
            .get(i + 3)
            .is_some_and(|t| is_word(t) && t.text == "now")
    {
        return Some((i + 3, "Instant::now"));
    }
    None
}
