//! Structural rules: err-swallow, cast-truncate, lock-scope.
//!
//! These need the statement/scope shape recovered by [`crate::parse`]
//! — a token window cannot tell a discarded `Result` from a propagated
//! one, or see that a guard binding is still live at a later call.  All
//! three rules share the analyzer's bias: **miss silently rather than
//! cry wolf**.  Unknown callees, uninferrable cast sources, and
//! ambiguous scopes produce no finding.

use std::collections::BTreeMap;

use crate::config::RuleSet;
use crate::lexer::Token;
use crate::parse::{Block, Parsed, Stmt, NUMERIC_TYPES};
use crate::report::Finding;

use super::{is_punct, is_word, Ctx};

/// Workspace-wide function-name index for `err-swallow`.
///
/// The analyzer has no type inference, so a callee "returns `Result`"
/// only when *every* `fn` with that name anywhere in the scanned tree
/// does — one ambiguous overload silences the name entirely.
#[derive(Clone, Debug, Default)]
pub struct FnIndex {
    /// `name → (result-returning count, other count)`.
    counts: BTreeMap<String, (u32, u32)>,
}

impl FnIndex {
    /// Folds one file's `fn` signatures into the index.
    pub fn add(&mut self, parsed: &Parsed) {
        for f in &parsed.fns {
            let entry = self.counts.entry(f.name.clone()).or_insert((0, 0));
            if f.returns_result {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        }
    }

    /// True when the name is known and unambiguously Result-returning.
    #[must_use]
    pub fn returns_result(&self, name: &str) -> bool {
        self.counts
            .get(name)
            .is_some_and(|&(result, other)| result > 0 && other == 0)
    }
}

/// Std functions that return `Result` and are common enough to hard
/// code: the io write/read/fs family.  Deliberately *excludes* bare
/// `write`/`read` (`Hasher::write` returns `()`, `Read::read` is rare
/// without `_exact`) — the index covers workspace fns by that name.
const BUILTIN_RESULT_FNS: &[&str] = &[
    "write_all",
    "write_fmt",
    "flush",
    "read_exact",
    "read_to_string",
    "read_to_end",
    "create_dir_all",
    "remove_file",
    "remove_dir_all",
    "sync_all",
];

/// Macros that produce a `Result` which must not be discarded.
const RESULT_MACROS: &[&str] = &["write", "writeln"];

/// Call-name prefixes that mean "planning work" for `lock-scope`.
const PLAN_PREFIXES: &[&str] = &["plan", "refine", "simulate", "stitch"];

/// Statement-head keywords that exempt a statement from `err-swallow`
/// (control flow and item declarations use their value or have none).
const STMT_KEYWORDS: &[&str] = &[
    "let",
    "use",
    "mod",
    "fn",
    "pub",
    "struct",
    "enum",
    "impl",
    "trait",
    "const",
    "static",
    "type",
    "extern",
    "if",
    "match",
    "while",
    "for",
    "loop",
    "return",
    "break",
    "continue",
    "unsafe",
    "crate",
    "async",
    "where",
    "else",
    "in",
    "dyn",
    "super",
    "macro_rules",
];

/// Runs the structural pass, appending findings.
pub(crate) fn check(
    ctx: &Ctx<'_>,
    parsed: &Parsed,
    masked: &[bool],
    rules: RuleSet,
    index: &FnIndex,
    findings: &mut Vec<Finding>,
) {
    if rules.err_swallow {
        walk_stmts(&parsed.root, &mut |stmt| {
            check_swallow(ctx, stmt, masked, index, findings);
        });
    }
    if rules.cast_truncate {
        check_casts(ctx, parsed, masked, findings);
    }
    if rules.lock_scope {
        check_lock_scope(ctx, &parsed.root, masked, findings);
    }
}

/// Visits every statement in every block, recursively.
fn walk_stmts(block: &Block, visit: &mut impl FnMut(&Stmt)) {
    for stmt in &block.stmts {
        visit(stmt);
        for inner in &stmt.blocks {
            walk_stmts(inner, visit);
        }
    }
}

// ---------------------------------------------------------------------
// err-swallow
// ---------------------------------------------------------------------

fn check_swallow(
    ctx: &Ctx<'_>,
    stmt: &Stmt,
    masked: &[bool],
    index: &FnIndex,
    findings: &mut Vec<Finding>,
) {
    let tokens = ctx.tokens;
    if masked.get(stmt.start).copied().unwrap_or(true) {
        return;
    }
    // Only `;`-terminated statements discard their value.
    if !tokens.get(stmt.end).is_some_and(|t| is_punct(t, ';')) {
        return;
    }
    let head = &tokens[stmt.start];
    let (expr_start, via) = if is_word(head) && head.text == "let" {
        // `let _ = expr;` discards; any other pattern binds the value.
        let underscore = tokens
            .get(stmt.start + 1)
            .is_some_and(|t| is_word(t) && t.text == "_");
        let eq = tokens.get(stmt.start + 2).is_some_and(|t| is_punct(t, '='));
        if underscore && eq {
            (stmt.start + 3, "`let _ =` discards")
        } else {
            return;
        }
    } else if is_word(head) && !STMT_KEYWORDS.contains(&head.text.as_str()) {
        (stmt.start, "the statement discards")
    } else {
        return;
    };

    // Scan the expression spine at delimiter depth 0.  `?` means the
    // Result is propagated; `=`/`=>` mean the value is consumed or this
    // is match-arm soup — both exempt.  The *last* depth-0 call is the
    // chain's terminal call, whose return value the statement drops.
    let mut depth = 0usize;
    let mut callee: Option<(usize, bool)> = None;
    let mut j = expr_start;
    while j < stmt.end {
        let tok = &tokens[j];
        if is_punct(tok, '(') || is_punct(tok, '[') || is_punct(tok, '{') {
            depth += 1;
        } else if is_punct(tok, ')') || is_punct(tok, ']') || is_punct(tok, '}') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 {
            if is_punct(tok, '?') {
                return;
            }
            if is_punct(tok, '=') {
                // Covers `=`, `==`, `=>`, and compound assignment tails.
                return;
            }
            if is_word(tok) {
                if tokens.get(j + 1).is_some_and(|t| is_punct(t, '(')) {
                    callee = Some((j, false));
                } else if tokens.get(j + 1).is_some_and(|t| is_punct(t, '!'))
                    && tokens
                        .get(j + 2)
                        .is_some_and(|t| is_punct(t, '(') || is_punct(t, '['))
                {
                    callee = Some((j, true));
                }
            }
        }
        j += 1;
    }
    let Some((at, is_macro)) = callee else { return };
    let name = tokens[at].text.as_str();

    let reason = if is_macro {
        if RESULT_MACROS.contains(&name) {
            Some(format!("`{name}!` returns an `io::Result`"))
        } else {
            None
        }
    } else if name == "ok"
        && at > 0
        && is_punct(&tokens[at - 1], '.')
        && tokens.get(at + 2).is_some_and(|t| is_punct(t, ')'))
    {
        Some("`.ok()` converts the `Err` into a silently dropped `None`".to_string())
    } else if BUILTIN_RESULT_FNS.contains(&name) {
        Some(format!("`{name}` returns an `io::Result`"))
    } else if index.returns_result(name) {
        Some(format!(
            "every `fn {name}` in this workspace returns a `Result`"
        ))
    } else {
        None
    };
    if let Some(reason) = reason {
        findings.push(ctx.finding(
            stmt.start,
            stmt.start,
            stmt.end,
            "err-swallow",
            format!(
                "{reason} and {via} it; propagate with `?`, handle the \
                 `Err` arm, or log it via the degraded path"
            ),
        ));
    }
}

// ---------------------------------------------------------------------
// cast-truncate
// ---------------------------------------------------------------------

/// Bit width a type contributes *as a cast source* (`usize` reads as
/// the widest supported platform) and whether it is a float.
fn source_bits(ty: &str) -> Option<(u32, bool)> {
    Some(match ty {
        "u8" | "i8" => (8, false),
        "u16" | "i16" => (16, false),
        "u32" | "i32" => (32, false),
        "u64" | "i64" => (64, false),
        "u128" | "i128" => (128, false),
        // A usize may hold 64 bits on the platforms we ship on.
        "usize" | "isize" => (64, false),
        "f32" => (32, true),
        "f64" => (64, true),
        _ => return None,
    })
}

/// Bit width a type is guaranteed to hold *as a cast target* (`usize`
/// reads as the narrowest supported platform, so `u64 as usize` is a
/// truncation hazard).
fn target_bits(ty: &str) -> Option<(u32, bool)> {
    Some(match ty {
        "usize" | "isize" => (32, false),
        _ => source_bits(ty)?,
    })
}

/// Whether `src as dst` can lose information.
fn narrows(src: &str, dst: &str) -> bool {
    let (Some((src_bits, src_float)), Some((dst_bits, dst_float))) =
        (source_bits(src), target_bits(dst))
    else {
        return false;
    };
    if src_float {
        // float → int always truncates the fraction; f64 → f32 rounds.
        !dst_float || dst_bits < src_bits
    } else if dst_float {
        // int → float precision loss is out of scope for this rule.
        false
    } else {
        dst_bits < src_bits
    }
}

fn check_casts(ctx: &Ctx<'_>, parsed: &Parsed, masked: &[bool], findings: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for i in 0..tokens.len() {
        if masked[i] {
            continue;
        }
        let tok = &tokens[i];
        if !(is_word(tok) && tok.text == "as") {
            continue;
        }
        let Some(dst_tok) = tokens.get(i + 1) else {
            continue;
        };
        if !(is_word(dst_tok) && NUMERIC_TYPES.contains(&dst_tok.text.as_str())) {
            continue;
        }
        let Some(src) = infer_cast_source(ctx, parsed, i) else {
            continue;
        };
        if narrows(&src, &dst_tok.text) {
            findings.push(ctx.finding(
                i,
                i.saturating_sub(1),
                i + 1,
                "cast-truncate",
                format!(
                    "`{src} as {}` can silently truncate; use `{}::try_from` \
                     with a typed error or widen the destination",
                    dst_tok.text, dst_tok.text
                ),
            ));
        }
    }
}

/// Infers the type of the expression feeding the `as` at `i`.
/// `None` means "can't tell" — and no finding, by design.
fn infer_cast_source(ctx: &Ctx<'_>, parsed: &Parsed, i: usize) -> Option<String> {
    use crate::lexer::TokenKind;
    let tokens = ctx.tokens;
    let prev = tokens.get(i.checked_sub(1)?)?;
    match prev.kind {
        TokenKind::Float => {
            if prev.text.ends_with("f32") {
                Some("f32".into())
            } else {
                Some("f64".into())
            }
        }
        TokenKind::Int => NUMERIC_TYPES
            .iter()
            .find(|suffix| prev.text.ends_with(*suffix))
            .map(|s| (*s).to_string()),
        TokenKind::Punct if prev.text == ")" => {
            // `expr.len() as u32` and friends: the usize-returning
            // length family is unambiguous.
            let open = open_paren_before(tokens, i - 1)?;
            let callee = tokens.get(open.checked_sub(1)?)?;
            let dotted = open >= 2 && is_punct(&tokens[open - 2], '.');
            if dotted
                && is_word(callee)
                && matches!(callee.text.as_str(), "len" | "count" | "capacity")
            {
                Some("usize".into())
            } else {
                None
            }
        }
        TokenKind::Ident => {
            if NUMERIC_TYPES.contains(&prev.text.as_str())
                && i >= 2
                && is_word(&tokens[i - 2])
                && tokens[i - 2].text == "as"
            {
                // Chained cast: `x as u64 as u32` — the second cast's
                // source is the first cast's target.
                return Some(prev.text.clone());
            }
            env_type(ctx, parsed, i, &prev.text)
        }
        _ => None,
    }
}

/// Index of the `(` matching the `)` at `close`.
fn open_paren_before(tokens: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    for j in (0..=close).rev() {
        if is_punct(&tokens[j], ')') {
            depth += 1;
        } else if is_punct(&tokens[j], '(') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Looks `name` up in the enclosing fn's type environment: single-token
/// numeric `let name: Ty =` annotations (latest before `i` wins), then
/// `name: Ty` parameters.
fn env_type(ctx: &Ctx<'_>, parsed: &Parsed, i: usize, name: &str) -> Option<String> {
    let tokens = ctx.tokens;
    let f = parsed.enclosing_fn(i)?;
    let (open, _) = f.body?;
    let mut found = None;
    let mut j = open;
    while j + 3 < i {
        if is_word(&tokens[j]) && tokens[j].text == "let" {
            let mut k = j + 1;
            if tokens.get(k).is_some_and(|t| is_word(t) && t.text == "mut") {
                k += 1;
            }
            let annotated = tokens.get(k).is_some_and(|t| is_word(t) && t.text == name)
                && tokens.get(k + 1).is_some_and(|t| is_punct(t, ':'))
                && tokens
                    .get(k + 2)
                    .is_some_and(|t| is_word(t) && NUMERIC_TYPES.contains(&t.text.as_str()));
            if annotated {
                found = Some(tokens[k + 2].text.clone());
            }
        }
        j += 1;
    }
    found.or_else(|| {
        f.params
            .iter()
            .rev()
            .find(|(n, ty)| n == name && NUMERIC_TYPES.contains(&ty.as_str()))
            .map(|(_, ty)| ty.clone())
    })
}

// ---------------------------------------------------------------------
// lock-scope
// ---------------------------------------------------------------------

fn check_lock_scope(ctx: &Ctx<'_>, block: &Block, masked: &[bool], findings: &mut Vec<Finding>) {
    for stmt in &block.stmts {
        if let Some(guard) = lock_binding(ctx, stmt, masked) {
            scan_guard_scope(ctx, stmt, block.close, masked, &guard, findings);
        }
        for inner in &stmt.blocks {
            check_lock_scope(ctx, inner, masked, findings);
        }
    }
}

/// `let [mut] <name> = … .lock() … ;` — returns the guard name.
/// `let _ = ….lock();` drops the guard immediately and is exempt.
fn lock_binding(ctx: &Ctx<'_>, stmt: &Stmt, masked: &[bool]) -> Option<String> {
    let tokens = ctx.tokens;
    if masked.get(stmt.start).copied().unwrap_or(true) {
        return None;
    }
    if !tokens.get(stmt.end).is_some_and(|t| is_punct(t, ';')) {
        return None;
    }
    let head = tokens.get(stmt.start)?;
    if !(is_word(head) && head.text == "let") {
        return None;
    }
    let mut k = stmt.start + 1;
    if tokens.get(k).is_some_and(|t| is_word(t) && t.text == "mut") {
        k += 1;
    }
    let name_tok = tokens.get(k)?;
    if !is_word(name_tok) || name_tok.text == "_" {
        return None;
    }
    if !tokens.get(k + 1).is_some_and(|t| is_punct(t, '=')) {
        return None;
    }
    // `.lock()` anywhere in the initializer.
    let mut j = k + 2;
    while j + 3 <= stmt.end {
        if is_punct(&tokens[j], '.')
            && tokens
                .get(j + 1)
                .is_some_and(|t| is_word(t) && t.text == "lock")
            && tokens.get(j + 2).is_some_and(|t| is_punct(t, '('))
            && tokens.get(j + 3).is_some_and(|t| is_punct(t, ')'))
        {
            return Some(name_tok.text.clone());
        }
        j += 1;
    }
    None
}

/// Scans the rest of the guard's enclosing block for a planning call,
/// stopping early at an explicit `drop(guard)`.
fn scan_guard_scope(
    ctx: &Ctx<'_>,
    stmt: &Stmt,
    block_close: usize,
    masked: &[bool],
    guard: &str,
    findings: &mut Vec<Finding>,
) {
    let tokens = ctx.tokens;
    let end = block_close.min(tokens.len());
    let mut j = stmt.end + 1;
    while j < end {
        if masked[j] {
            j += 1;
            continue;
        }
        let tok = &tokens[j];
        if is_word(tok) && tok.text == "drop" {
            let dropped = tokens.get(j + 1).is_some_and(|t| is_punct(t, '('))
                && tokens
                    .get(j + 2)
                    .is_some_and(|t| is_word(t) && t.text == guard)
                && tokens.get(j + 3).is_some_and(|t| is_punct(t, ')'));
            if dropped {
                return;
            }
        }
        if is_word(tok)
            && PLAN_PREFIXES.iter().any(|p| tok.text.starts_with(p))
            && tokens.get(j + 1).is_some_and(|t| is_punct(t, '('))
        {
            findings.push(ctx.finding(
                stmt.start,
                stmt.start,
                j + 1,
                "lock-scope",
                format!(
                    "guard `{guard}` from `.lock()` is still live when `{}` is \
                     called (line {}); copy what you need out of the guard and \
                     `drop({guard})` before planning",
                    tok.text, tok.line
                ),
            ));
            return;
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::live;
    use crate::rules::check_source;

    fn run(source: &str) -> Vec<Finding> {
        live(&check_source("test.rs", source, RuleSet::all()))
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // -- err-swallow --------------------------------------------------

    #[test]
    fn discarded_result_call_is_flagged_via_the_index() {
        let findings = run("fn save(x: u8) -> Result<(), String> { Ok(()) }\n\
             fn caller() { save(1); }\n");
        assert_eq!(rules_of(&findings), vec!["err-swallow"]);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn let_underscore_and_dropped_ok_are_flagged() {
        let findings = run("fn save() -> Result<(), String> { Ok(()) }\n\
             fn caller() { let _ = save(); }\n");
        assert_eq!(rules_of(&findings), vec!["err-swallow"]);
        let findings = run("fn caller(r: Result<u8, u8>) { r.ok(); }");
        assert_eq!(rules_of(&findings), vec!["err-swallow"]);
    }

    #[test]
    fn propagated_handled_and_bound_results_pass() {
        let src = "fn save() -> Result<(), String> { Ok(()) }\n";
        assert!(run(&format!(
            "{src}fn a() -> Result<(), String> {{ save()?; Ok(()) }}"
        ))
        .is_empty());
        assert!(run(&format!(
            "{src}fn b() {{ if let Err(e) = save() {{ log(e); }} }}"
        ))
        .is_empty());
        assert!(run(&format!("{src}fn c() {{ let r = save(); use_it(r); }}")).is_empty());
        assert!(run(&format!("{src}fn d() -> Result<(), String> {{ save() }}")).is_empty());
        // `.ok()` whose value is *used* is fine.
        assert!(run("fn e(r: Result<u8, u8>) -> Option<u8> { r.ok() }").is_empty());
    }

    #[test]
    fn ambiguous_names_and_non_result_fns_stay_silent() {
        // Two fns named `emit`, only one Result-returning: ambiguous.
        assert!(run("fn emit() -> Result<(), u8> { Ok(()) }\n\
             mod b { fn emit() {} }\n\
             fn caller() { emit(); }\n")
        .is_empty());
        // Plain unit fn: nothing to swallow.
        assert!(run("fn ping() {} fn caller() { ping(); }").is_empty());
    }

    #[test]
    fn builtin_io_family_and_write_macros_are_flagged() {
        let findings = run("fn f(out: &mut W, b: &[u8]) { out.write_all(b); out.flush(); }");
        assert_eq!(rules_of(&findings), vec!["err-swallow", "err-swallow"]);
        let findings = run("fn f(out: &mut W) { writeln!(out, \"x\"); }");
        assert_eq!(rules_of(&findings), vec!["err-swallow"]);
        // `Hasher::write` returns `()` — deliberately not in the list.
        assert!(run("fn f(h: &mut H, b: &[u8]) { h.write(b); }").is_empty());
    }

    #[test]
    fn match_arms_and_test_code_are_exempt_and_pragmas_waive() {
        assert!(run("fn save() -> Result<(), u8> { Ok(()) }\n\
             fn f(x: u8) { match x { 0 => save().unwrap_or(()), _ => () }; }\n")
        .is_empty());
        assert!(run("fn save() -> Result<(), u8> { Ok(()) }\n\
             #[cfg(test)]\nmod t { fn g() { save(); } }\n")
        .is_empty());
        let all = check_source(
            "test.rs",
            "fn save() -> Result<(), u8> { Ok(()) }\n\
             // hypar-allow: err-swallow — best-effort cleanup on shutdown\n\
             fn g() { save(); }\n",
            RuleSet::all(),
        );
        assert!(live(&all).is_empty());
        assert!(all.iter().any(|f| f.rule == "err-swallow" && f.waived));
    }

    // -- cast-truncate ------------------------------------------------

    #[test]
    fn narrowing_casts_from_inferrable_sources_are_flagged() {
        // Param type.
        let findings = run("fn f(n: usize) -> u32 { n as u32 }");
        assert_eq!(rules_of(&findings), vec!["cast-truncate"]);
        // Let annotation.
        let findings = run("fn f() { let n: u64 = g(); let _x = n as usize; }");
        assert_eq!(rules_of(&findings), vec!["cast-truncate"]);
        // `.len()` is usize.
        let findings = run("fn f(v: &[u8]) -> u32 { v.len() as u32 }");
        assert_eq!(rules_of(&findings), vec!["cast-truncate"]);
        // Float → int and f64 → f32.
        let findings = run("fn f(x: f64) { let _a = x as usize; let _b = x as f32; }");
        assert_eq!(rules_of(&findings), vec!["cast-truncate", "cast-truncate"]);
        // Suffixed literal and chained cast.
        let findings = run("fn f() { let _x = 300u64 as u8; }");
        assert_eq!(rules_of(&findings), vec!["cast-truncate"]);
        let findings = run("fn f(x: u8) { let _y = x as u64 as u32; }");
        assert_eq!(rules_of(&findings), vec!["cast-truncate"]);
    }

    #[test]
    fn widening_and_uninferrable_casts_stay_silent() {
        assert!(run("fn f(n: u8) -> u64 { n as u64 }").is_empty());
        assert!(run("fn f(n: u32) -> usize { n as usize }").is_empty());
        assert!(run("fn f(n: usize) -> u64 { n as u64 }").is_empty());
        assert!(run("fn f(n: u32) -> f64 { n as f64 }").is_empty());
        // Unknown source type: no env entry, no literal — silent.
        assert!(run("fn f(s: &S) -> u32 { s.field as u32 }").is_empty());
        assert!(run("fn f() -> u32 { mystery() as u32 }").is_empty());
        // Unsuffixed literals have no certain type.
        assert!(run("fn f() -> u8 { 300 as u8 }").is_empty());
    }

    #[test]
    fn try_from_idiom_and_waivers_pass() {
        assert!(run("fn f(n: usize) -> Option<u32> { u32::try_from(n).ok() }").is_empty());
        let all = check_source(
            "test.rs",
            "fn f(n: usize) -> u32 {\n\
             // hypar-allow: cast-truncate — bounded by MAX_NODES above\n\
             n as u32\n}\n",
            RuleSet::all(),
        );
        assert!(live(&all).is_empty());
        assert!(all.iter().any(|f| f.rule == "cast-truncate" && f.waived));
    }

    // -- lock-scope ---------------------------------------------------

    #[test]
    fn guard_live_across_a_planning_call_is_flagged() {
        let findings = run("fn f(c: &Cache) {\n\
             let guard = c.inner.lock();\n\
             let p = plan_many(&guard.requests);\n\
             }\n");
        assert_eq!(rules_of(&findings), vec!["lock-scope"]);
        assert_eq!(findings[0].line, 2, "finding anchors at the binding");
    }

    #[test]
    fn dropping_the_guard_before_planning_passes() {
        assert!(run("fn f(c: &Cache) {\n\
             let guard = c.inner.lock();\n\
             let key = guard.key();\n\
             drop(guard);\n\
             let p = plan_many(key);\n\
             }\n")
        .is_empty());
    }

    #[test]
    fn scope_ends_at_the_enclosing_block() {
        assert!(run("fn f(c: &Cache) {\n\
             { let guard = c.inner.lock(); touch(&guard); }\n\
             let p = plan_many(1);\n\
             }\n")
        .is_empty());
    }

    #[test]
    fn prefixes_cover_refine_simulate_stitch() {
        for call in ["refine_plan(0)", "simulate_graph(0)", "stitch_segments(0)"] {
            let src = format!("fn f(c: &Cache) {{ let g = c.i.lock(); let p = {call}; }}");
            assert_eq!(rules_of(&run(&src)), vec!["lock-scope"], "{call}");
        }
        // Non-planning work under the guard is fine.
        assert!(run("fn f(c: &Cache) { let g = c.i.lock(); g.touch(); }").is_empty());
    }

    #[test]
    fn lock_scope_waiver_and_index_fold() {
        let all = check_source(
            "test.rs",
            "fn f(c: &Cache) {\n\
             // hypar-allow: lock-scope — single-threaded startup path\n\
             let g = c.i.lock();\n\
             let p = plan_many(&g.r);\n\
             }\n",
            RuleSet::all(),
        );
        assert!(live(&all).is_empty());

        let mut index = FnIndex::default();
        let lexed = crate::lexer::lex("fn a() -> Result<(), u8> { Ok(()) }\nfn b() {}\n");
        index.add(&crate::parse::parse(&lexed.tokens));
        assert!(index.returns_result("a"));
        assert!(!index.returns_result("b"));
        assert!(!index.returns_result("absent"));
    }
}
