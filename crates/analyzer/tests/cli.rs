//! The `hypar-analyzer` binary itself: exit codes, `--rules`, the
//! check against the committed baseline, `--bless` idempotency via the
//! CLI, the `--format json` findings document, and the deterministic
//! `--self-fuzz` smoke.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

use hypar_analyzer::json;
use hypar_analyzer::report::FINDINGS_SCHEMA;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hypar-analyzer"))
        .args(args)
        .output()
        .expect("spawn hypar-analyzer")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn rules_table_lists_every_rule() {
    let output = run(&["--rules"]);
    assert!(output.status.success());
    let table = stdout(&output);
    for rule in [
        "panic-path",
        "panic-reach",
        "lock-poison",
        "lock-order",
        "det-map-iter",
        "det-float-eq",
        "det-wall-clock",
        "bad-pragma",
        "err-swallow",
        "cast-truncate",
        "lock-scope",
        "recurse-request",
    ] {
        assert!(table.contains(rule), "--rules missing {rule}:\n{table}");
    }
}

#[test]
fn check_passes_against_the_committed_baseline() {
    let root = repo_root();
    let output = run(&["--check", "--root", root.to_str().expect("utf-8 root")]);
    assert!(
        output.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout(&output).contains("check passed"));
}

#[test]
fn unknown_flags_and_bad_roots_exit_2() {
    let output = run(&["--no-such-flag"]);
    assert_eq!(output.status.code(), Some(2));
    let output = run(&["--check", "--root", "/definitely/not/a/workspace"]);
    assert_eq!(output.status.code(), Some(2));
    let output = run(&["--self-fuzz", "not-a-number"]);
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn cli_bless_is_idempotent() {
    let root = repo_root();
    let scratch = root.join("target/analyzer-gate/cli-bless.json");
    fs::create_dir_all(scratch.parent().expect("parent")).expect("mkdir scratch");
    let scratch_str = scratch.to_str().expect("utf-8 scratch");
    let root_str = root.to_str().expect("utf-8 root");

    let output = run(&["--bless", "--root", root_str, "--baseline", scratch_str]);
    assert!(output.status.success(), "{}", stdout(&output));
    let first = fs::read_to_string(&scratch).expect("read blessed baseline");

    let output = run(&["--bless", "--root", root_str, "--baseline", scratch_str]);
    assert!(output.status.success());
    let second = fs::read_to_string(&scratch).expect("re-read blessed baseline");
    assert_eq!(first, second, "CLI bless must be byte-idempotent");

    // And the freshly blessed file round-trips through --check.
    let output = run(&["--check", "--root", root_str, "--baseline", scratch_str]);
    assert!(output.status.success());
    let _ = fs::remove_file(&scratch);
}

#[test]
fn format_json_emits_the_documented_schema_and_agrees_with_text() {
    let root = repo_root();
    let root_str = root.to_str().expect("utf-8 root");

    let json_run = run(&["--format", "json", "--root", root_str]);
    let doc = json::parse(&stdout(&json_run)).expect("findings document is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(json::Value::as_str),
        Some(FINDINGS_SCHEMA)
    );
    let total = doc
        .get("total")
        .and_then(json::Value::as_u64)
        .expect("total");
    let waived = doc
        .get("waived")
        .and_then(json::Value::as_u64)
        .expect("waived");
    let findings = doc
        .get("findings")
        .and_then(json::Value::as_array)
        .expect("findings array");
    assert_eq!(
        findings.len() as u64,
        total + waived,
        "findings carries live AND waived entries"
    );
    for finding in findings {
        assert!(finding.get("rule").and_then(json::Value::as_str).is_some());
        assert!(finding.get("file").and_then(json::Value::as_str).is_some());
        assert!(finding.get("line").and_then(json::Value::as_u64).is_some());
        assert!(finding
            .get("message")
            .and_then(json::Value::as_str)
            .is_some());
        assert!(finding
            .get("snippet")
            .and_then(json::Value::as_str)
            .is_some());
        assert!(finding
            .get("waived")
            .and_then(json::Value::as_bool)
            .is_some());
        let span = finding.get("span").expect("span object");
        let start = span
            .get("start")
            .and_then(json::Value::as_u64)
            .expect("start");
        let end = span.get("end").and_then(json::Value::as_u64).expect("end");
        assert!(end >= start, "span runs forward");
        // v2 fields: every finding carries an entry_trace array of
        // strings, and waived findings carry their pragma's
        // justification text (live ones carry null).
        let trace = finding
            .get("entry_trace")
            .and_then(json::Value::as_array)
            .expect("entry_trace array");
        assert!(trace.iter().all(|hop| hop.as_str().is_some()));
        let waived_here = finding
            .get("waived")
            .and_then(json::Value::as_bool)
            .expect("waived");
        let justification = finding.get("justification").expect("justification field");
        if waived_here {
            assert!(
                justification
                    .as_str()
                    .is_some_and(|text| !text.trim().is_empty()),
                "waived finding must carry its pragma justification: {finding:?}"
            );
        } else {
            assert!(
                matches!(justification, json::Value::Null),
                "live finding has no justification: {finding:?}"
            );
        }
    }

    // Text and JSON report modes agree on the live-finding count and
    // exit code.
    let text_run = run(&["--root", root_str]);
    assert_eq!(json_run.status.code(), text_run.status.code());
    let text = stdout(&text_run);
    let text_total: u64 = if text.contains("no findings") {
        0
    } else {
        text.lines()
            .rev()
            .find_map(|l| l.split(" findings").next()?.trim().parse().ok())
            .expect("text summary count")
    };
    assert_eq!(total, text_total, "text:\n{text}");

    // `--format json` outside report mode is a usage error.
    let bad = run(&["--check", "--format", "json", "--root", root_str]);
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn callgraph_modes_emit_dot_and_json() {
    let root = repo_root();
    let root_str = root.to_str().expect("utf-8 root");

    let dot = run(&["--callgraph", "dot", "--root", root_str]);
    assert!(dot.status.success());
    let text = stdout(&dot);
    assert!(text.starts_with("digraph callgraph {"), "{text}");
    assert!(
        text.contains("\"engine::service::handle_line\""),
        "dot names the service entry"
    );

    let json_run = run(&["--callgraph", "json", "--root", root_str]);
    assert!(json_run.status.success());
    let doc = json::parse(&stdout(&json_run)).expect("callgraph document is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(json::Value::as_str),
        Some("hypar-analyzer-callgraph/v1")
    );
    let nodes = doc
        .get("nodes")
        .and_then(json::Value::as_array)
        .expect("nodes");
    let functions = doc
        .get("functions")
        .and_then(json::Value::as_u64)
        .expect("functions");
    assert_eq!(nodes.len() as u64, functions);
    let entries = doc
        .get("entries")
        .and_then(json::Value::as_array)
        .expect("entries");
    assert!(
        entries
            .iter()
            .any(|e| e.as_str() == Some("engine::engine::plan")),
        "PlanEngine::plan is an entry point"
    );
    // Every entry is a reachable node, and edges only name known nodes.
    let ids: std::collections::BTreeSet<&str> = nodes
        .iter()
        .filter_map(|n| n.get("id").and_then(json::Value::as_str))
        .collect();
    for entry in entries {
        let label = entry.as_str().expect("entry label");
        assert!(ids.contains(label), "entry {label} missing from nodes");
    }
    for edge in doc
        .get("edges")
        .and_then(json::Value::as_array)
        .expect("edges")
    {
        let from = edge
            .get("from")
            .and_then(json::Value::as_str)
            .expect("from");
        let to = edge.get("to").and_then(json::Value::as_str).expect("to");
        assert!(ids.contains(from) && ids.contains(to), "{from} -> {to}");
    }

    // Bad format is a usage error.
    let bad = run(&["--callgraph", "svg", "--root", root_str]);
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn self_fuzz_is_deterministic_and_reports_its_seed() {
    // Everything before the worst-mutant wall time is deterministic:
    // mutant count, token total, finding total.
    fn deterministic_prefix(output: &Output) -> String {
        let text = stdout(output);
        text.split("worst mutant")
            .next()
            .expect("summary")
            .to_owned()
    }
    let first = run(&["--self-fuzz", "300", "--seed", "7"]);
    assert!(first.status.success());
    let second = run(&["--self-fuzz", "300", "--seed", "7"]);
    assert_eq!(
        deterministic_prefix(&first),
        deterministic_prefix(&second),
        "same seed, same mutants/tokens/findings"
    );
    assert!(stdout(&first).contains("self-fuzz ok"));
    assert!(stdout(&first).contains("(seed 7)"));

    let other = run(&["--self-fuzz", "300", "--seed", "8"]);
    assert!(other.status.success());
    assert!(stdout(&other).contains("(seed 8)"));
}
