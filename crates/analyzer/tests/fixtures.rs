//! Fixture-driven checks: the lexer and rules run over the `.rs` files
//! in `tests/fixtures/`, asserting findings by marker comments so the
//! expectations survive fixture edits.

use std::fs;
use std::path::PathBuf;

use hypar_analyzer::config::RuleSet;
use hypar_analyzer::lexer::{self, TokenKind};
use hypar_analyzer::parse;
use hypar_analyzer::report::{live, Finding};
use hypar_analyzer::rules;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// 1-based line of the first line containing `needle`.
fn line_of(source: &str, needle: &str) -> u32 {
    source
        .lines()
        .position(|l| l.contains(needle))
        .map(|i| u32::try_from(i).unwrap() + 1)
        .unwrap_or_else(|| panic!("marker `{needle}` not in fixture"))
}

/// Live (non-waived) findings with every rule enabled.
fn check_all(source: &str) -> Vec<Finding> {
    live(&rules::check_source("fixture.rs", source, RuleSet::all()))
}

#[test]
fn lexer_edges_only_live_sites_are_found() {
    let source = fixture("lexer_edges.rs");
    let findings = check_all(&source);
    let got: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(
        got,
        vec![
            ("lock-poison", line_of(&source, "MARK:live-lock")),
            ("panic-path", line_of(&source, "MARK:live-unwrap")),
        ],
        "all findings: {findings:?}"
    );
}

#[test]
fn lexer_edges_token_shapes() {
    let source = fixture("lexer_edges.rs");
    let lexed = lexer::lex(&source);

    // The nested block comment contributes no tokens at all: nothing on
    // its line.
    let comment_line = line_of(&source, "nested .unwrap()");
    assert!(
        lexed.tokens.iter().all(|t| t.line != comment_line),
        "nested block comment leaked tokens"
    );

    // Raw strings of every fence width are single opaque tokens.
    let raws: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::RawStr)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(raws.len(), 4, "{raws:?}");
    assert!(raws.iter().any(|t| t.contains("an inner raw")));
    assert!(raws.iter().any(|t| t.contains("unreachable")));

    // The `'"'` char literal is a Char token, not a string opener.
    assert!(lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Char && t.text == "'\"'"));
    // `'\''` and `'\n'` survive as chars too.
    assert_eq!(
        lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count(),
        3
    );
    // `'a` ticks are lifetimes, never chars.
    assert!(lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
    assert!(lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Lifetime && t.text == "'static"));
}

#[test]
fn pragma_fixture_waives_exactly_the_justified_adjacent_rule() {
    let source = fixture("pragmas.rs");
    let findings = check_all(&source);
    let survivors: Vec<(&str, u32)> = findings
        .iter()
        .filter(|f| f.rule == "det-wall-clock")
        .map(|f| (f.rule, f.line))
        .collect();
    assert_eq!(
        survivors,
        vec![
            ("det-wall-clock", line_of(&source, "MARK:bare-survives")),
            ("det-wall-clock", line_of(&source, "MARK:unknown-survives")),
            ("det-wall-clock", line_of(&source, "MARK:doc-survives")),
            (
                "det-wall-clock",
                line_of(&source, "MARK:wrong-rule-survives")
            ),
        ],
        "all findings: {findings:?}"
    );

    // The bare and unknown-rule pragmas are findings themselves; the
    // doc comment and the valid (if mistargeted) det-float-eq waiver
    // are not.
    let bare_line = source
        .lines()
        .position(|l| l.trim_end().ends_with("hypar-allow: det-wall-clock"))
        .map(|i| u32::try_from(i).unwrap() + 1)
        .expect("bare pragma line");
    let bad: Vec<u32> = findings
        .iter()
        .filter(|f| f.rule == "bad-pragma")
        .map(|f| f.line)
        .collect();
    assert_eq!(
        bad,
        vec![bare_line, line_of(&source, "not-a-rule")],
        "all findings: {findings:?}"
    );
}

#[test]
fn structural_fixture_live_findings_match_markers() {
    let source = fixture("structural.rs");
    let findings = check_all(&source);
    let got: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(
        got,
        vec![
            ("err-swallow", line_of(&source, "MARK:swallow-bare")),
            ("err-swallow", line_of(&source, "MARK:swallow-let")),
            ("err-swallow", line_of(&source, "MARK:swallow-ok")),
            ("err-swallow", line_of(&source, "MARK:swallow-builtin")),
            ("err-swallow", line_of(&source, "MARK:swallow-macro")),
            ("cast-truncate", line_of(&source, "MARK:cast-param")),
            ("cast-truncate", line_of(&source, "MARK:cast-len")),
            ("cast-truncate", line_of(&source, "MARK:cast-float")),
            ("cast-truncate", line_of(&source, "MARK:cast-u64-usize")),
            ("cast-truncate", line_of(&source, "MARK:cast-chained")),
            ("lock-scope", line_of(&source, "MARK:lock-held")),
        ],
        "all findings: {findings:?}"
    );
}

#[test]
fn structural_fixture_waivers_are_marked_not_dropped() {
    let source = fixture("structural.rs");
    let all = rules::check_source("fixture.rs", &source, RuleSet::all());
    let waived: Vec<(&str, u32)> = all
        .iter()
        .filter(|f| f.waived)
        .map(|f| (f.rule, f.line))
        .collect();
    assert_eq!(
        waived,
        vec![
            ("err-swallow", line_of(&source, "MARK:swallow-waived")),
            ("cast-truncate", line_of(&source, "MARK:cast-waived")),
            ("lock-scope", line_of(&source, "MARK:lock-waived")),
        ],
        "all findings: {all:?}"
    );
    // Waived findings still carry spans and snippets for the JSON feed.
    for f in all.iter().filter(|f| f.waived) {
        assert!(f.span.1 > f.span.0, "{f:?}");
        assert!(!f.snippet.is_empty(), "{f:?}");
    }
}

#[test]
fn fixtures_survive_truncation_without_panicking() {
    // Truncating a fixture at every char boundary exercises the
    // unterminated-literal, half-token, and dangling-brace paths
    // deterministically — for the lexer AND the parser.
    for name in ["lexer_edges.rs", "pragmas.rs", "structural.rs"] {
        let source = fixture(name);
        let chars: Vec<char> = source.chars().collect();
        for cut in 0..=chars.len() {
            let prefix: String = chars[..cut].iter().collect();
            let lexed = lexer::lex(&prefix);
            assert!(lexed.tokens.len() <= cut + 1, "{name} cut at {cut}");
            let parsed = parse::parse(&lexed.tokens);
            assert!(
                parsed.stmt_count() <= lexed.tokens.len() + 1,
                "{name} cut at {cut}: parser produced phantom statements"
            );
        }
    }
}
