// Lexer edge cases the rules must see through: everything inside
// comments, raw strings, and char literals is dead text, while the two
// live sites at the bottom must still be found.  This file is a test
// fixture — it is never compiled and never scanned by the workspace
// walk (`tests/` and `fixtures/` are skip-dirs).

/* outer /* nested .unwrap() */ still a comment panic!("no") */

fn raw_fences() -> &'static str {
    let plain = r"plain raw .unwrap()";
    let one = r#"one fence panic!("x") and a "quoted" stretch"#;
    let two = r##"two fences holding r#"an inner raw"# and .lock().unwrap()"##;
    let byte = br#"byte raw unreachable!()"#;
    let _ = (plain, two, byte);
    one
}

fn chars_and_lifetimes<'a>(x: &'a str) -> char {
    let quote = '"';
    let tick = '\'';
    let newline = '\n';
    let _: &'a str = x;
    quote.max(tick).max(newline)
}

fn live_unwrap(x: Option<u8>) -> u8 {
    x.unwrap() // MARK:live-unwrap
}

fn live_lock(m: &std::sync::Mutex<u8>) -> u8 {
    *m.lock().unwrap() // MARK:live-lock
}
