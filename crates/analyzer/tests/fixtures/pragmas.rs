// Pragma semantics: a justified `hypar-allow` waives its rule on the
// same line or the line below; a bare or unknown-rule pragma waives
// nothing and is itself a `bad-pragma` finding; doc comments are
// documentation, never waivers.

fn waived_above() {
    // hypar-allow: det-wall-clock — fixture: justified waiver on the line above
    let _t = Instant::now();
}

fn waived_same_line() {
    let _t = Instant::now(); // hypar-allow: det-wall-clock — fixture: same-line waiver
}

fn bare_pragma() {
    // hypar-allow: det-wall-clock
    let _t = Instant::now(); // MARK:bare-survives
}

fn unknown_rule() {
    // hypar-allow: not-a-rule — the justification is present but the rule is unknown
    let _t = Instant::now(); // MARK:unknown-survives
}

/// hypar-allow: det-wall-clock — doc comments can quote the syntax freely
fn doc_comment_is_not_a_pragma() {
    let _t = Instant::now(); // MARK:doc-survives
}

fn wrong_rule_does_not_waive() {
    // hypar-allow: det-float-eq — fixture: waiver names a different rule
    let _t = Instant::now(); // MARK:wrong-rule-survives
}
