// Structural-rule semantics: discarded Results, narrowing casts, and
// lock guards held across planning calls — each with the compliant
// idiom beside it.  This file is a test fixture — never compiled,
// never scanned by the workspace walk (`tests/` and `fixtures/` are
// skip-dirs), so the deliberate defects below stay out of the ratchet.

fn save_plan(id: u64) -> Result<(), String> {
    let _ = id;
    Ok(())
}

fn swallowed_results(out: &mut Vec<u8>) {
    save_plan(1); // MARK:swallow-bare
    let _ = save_plan(2); // MARK:swallow-let
    save_plan(3).ok(); // MARK:swallow-ok
    out.flush(); // MARK:swallow-builtin
    writeln!(out, "plan"); // MARK:swallow-macro
}

fn handled_results(out: &mut Vec<u8>) -> Result<(), String> {
    save_plan(1)?; // propagated
    if let Err(e) = save_plan(2) {
        let _msg = e; // handled
    }
    let outcome = save_plan(3); // bound, visibly inspected below
    match outcome {
        Ok(()) => {}
        Err(_) => {}
    }
    // hypar-allow: err-swallow — fixture: best-effort flush on the shutdown path
    out.flush(); // MARK:swallow-waived
    save_plan(4)
}

fn narrowing_casts(n: usize, f: f64, v: &[u8]) -> u32 {
    let a = n as u32; // MARK:cast-param
    let b = v.len() as u32; // MARK:cast-len
    let c = f as u32; // MARK:cast-float
    let d: u64 = 9;
    let e = d as usize; // MARK:cast-u64-usize
    let w = n as u64 as u32; // MARK:cast-chained (first hop widens, second narrows)
    let _sum = e;
    a + b + c + w
}

fn compliant_casts(n: usize, f: f64) -> Result<u32, String> {
    let a = u32::try_from(n).map_err(|_| "too many nodes".to_string())?;
    let widened = u64::from(a); // widening is free
    let rounded = f.round(); // still f64, no cast
    // hypar-allow: cast-truncate — fixture: bounded by MAX_SEGMENTS at the call site
    let waived = n as u32; // MARK:cast-waived
    let _ = (widened, rounded, waived);
    Ok(a)
}

fn guard_across_planning(cache: &PlanCache) {
    let guard = cache.inner.lock(); // MARK:lock-held
    let plan = plan_many(&guard.requests);
    let _ = plan;
}

fn guard_dropped_first(cache: &PlanCache) {
    let guard = cache.inner.lock();
    let requests = guard.requests.clone();
    drop(guard);
    let plan = plan_many(&requests); // guard released: compliant
    let _ = plan;
}

fn guard_scope_closed(cache: &PlanCache) {
    {
        let guard = cache.inner.lock();
        let _hit = guard.requests.len();
    }
    let plan = plan_many(&[]); // guard's block already closed
    let _ = plan;
}

fn guard_waived(cache: &PlanCache) {
    // hypar-allow: lock-scope — fixture: single-threaded warmup before serving
    let guard = cache.inner.lock(); // MARK:lock-waived
    let plan = plan_many(&guard.requests);
    let _ = plan;
}

// Parser edge cases: these shapes must parse without confusing the
// statement spine (and without panicking — the truncation test slices
// this file at every char boundary).

fn parser_edges(items: &[u64]) -> u64 {
    let nested = items
        .iter()
        .map(|i| {
            let doubled = i * 2;
            doubled
        })
        .sum::<u64>(); // turbofish, not a comparison
    let arms = match nested {
        0 => save_plan(0).is_ok(), // match-arm tail calls are not swallows
        n if n < 10 => true,       // `<` here is ordering, not generics
        _ => false,
    };
    let closure_in_args = items.iter().filter(|i| **i > 1).count();
    if arms {
        // Widening + uninferrable binding: `as u64` here stays silent.
        nested + closure_in_args as u64
    } else {
        nested
    }
}

#[cfg(test)]
mod tests {
    // Test code swallows, casts, and holds locks freely: all masked.
    fn masked() {
        save_plan(9);
        let _ = save_plan(10);
        let n: u64 = 4;
        let _small = n as u8;
        let guard = cache.inner.lock();
        let _p = plan_many(&guard.requests);
    }
}
