//! The interprocedural rules end to end, against synthetic
//! mini-workspaces: a seeded opposite-order double-lock fails the check
//! naming both acquisition sites, a seeded unguarded recursion on the
//! request path fails with an entry trace from the service entry point
//! (and a depth-guarded rewrite passes), provably unreachable private
//! helpers are exempt from `panic-path`, and `models` panics are
//! flagged exactly when a justified call path from an entry reaches
//! them.

use std::fs;
use std::path::PathBuf;

use hypar_analyzer::config::Config;
use hypar_analyzer::{run_bless, run_check, scan_workspace};

/// A scratch workspace under the target dir (always writable, cleaned
/// up by `cargo clean`), unique per test so they can run in parallel.
struct MiniWorkspace {
    root: PathBuf,
}

impl MiniWorkspace {
    fn new(test: &str) -> Self {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/analyzer-interproc")
            .join(test);
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates")).expect("mkdir mini-workspace");
        fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
        MiniWorkspace { root }
    }

    fn baseline(&self) -> PathBuf {
        self.root.join("analyzer-baseline.json")
    }

    fn write_file(&self, rel: &str, source: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, source).unwrap_or_else(|e| panic!("write {rel}: {e}"));
    }
}

impl Drop for MiniWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// `service.rs` with a real entry point and no findings of its own.
const CLEAN_ENTRY: &str = "\
pub fn handle_request(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}
";

#[test]
fn seeded_lock_order_cycle_fails_the_check_naming_both_sites() {
    let ws = MiniWorkspace::new("lockorder");
    let config = Config::default();
    ws.write_file("crates/engine/src/service.rs", CLEAN_ENTRY);
    run_bless(&ws.root, &config, &ws.baseline()).expect("bless clean tree");

    // The acceptance scenario: the request path takes `cache` then
    // `stats`, while a helper it calls takes `stats` then `cache`.
    ws.write_file(
        "crates/engine/src/service.rs",
        "\
use std::sync::Mutex;

pub struct State {
    pub cache: Mutex<u8>,
    pub stats: Mutex<u8>,
}

pub fn handle_request(s: &State) -> u8 {
    let cache = s.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let held = *cache;
    held + refresh(s)
}

fn refresh(s: &State) -> u8 {
    let stats = s.stats.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let held = *stats;
    let cache = s.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    held + *cache
}
",
    );
    let outcome = run_check(&ws.root, &config, &ws.baseline()).expect("check dirty tree");
    assert!(
        !outcome.passed(),
        "a lock-order cycle must fail the ratchet"
    );
    assert_eq!(outcome.regressions.len(), 1);
    let (delta, findings) = &outcome.regressions[0];
    assert_eq!(delta.rule, "lock-order");
    assert_eq!(delta.file, "crates/engine/src/service.rs");
    assert_eq!(findings.len(), 1);
    let finding = &findings[0];
    // Both acquisition orders are named, each with both sites.
    assert!(
        finding.message.contains("`cache` then `stats`")
            && finding.message.contains("`stats` then `cache`"),
        "{}",
        finding.message
    );
    assert!(
        finding
            .message
            .matches("crates/engine/src/service.rs:")
            .count()
            >= 2,
        "both acquisition sites carry file:line anchors: {}",
        finding.message
    );
    assert_eq!(
        finding.entry_trace.first().map(String::as_str),
        Some("engine::service::handle_request"),
        "{:?}",
        finding.entry_trace
    );
}

#[test]
fn seeded_request_path_recursion_fails_with_an_entry_trace() {
    let ws = MiniWorkspace::new("recursion");
    let config = Config::default();
    ws.write_file("crates/engine/src/service.rs", CLEAN_ENTRY);
    run_bless(&ws.root, &config, &ws.baseline()).expect("bless clean tree");

    ws.write_file(
        "crates/engine/src/service.rs",
        "\
pub fn handle_request(n: u8) -> u8 {
    descend(n)
}

fn descend(n: u8) -> u8 {
    if n == 0 {
        0
    } else {
        descend(n - 1)
    }
}
",
    );
    let outcome = run_check(&ws.root, &config, &ws.baseline()).expect("check dirty tree");
    assert!(
        !outcome.passed(),
        "unguarded request-path recursion must fail the ratchet"
    );
    assert_eq!(outcome.regressions.len(), 1);
    let (delta, findings) = &outcome.regressions[0];
    assert_eq!(delta.rule, "recurse-request");
    assert_eq!(findings.len(), 1);
    let finding = &findings[0];
    assert!(
        finding.message.contains("calls itself"),
        "{}",
        finding.message
    );
    assert_eq!(
        finding.entry_trace,
        vec![
            "engine::service::handle_request".to_string(),
            "engine::service::descend".to_string(),
        ]
    );

    // Threading an explicit depth through the cycle bounds it: the same
    // shape with a budget parameter passes the gate.
    ws.write_file(
        "crates/engine/src/service.rs",
        "\
pub fn handle_request(n: u8) -> u8 {
    descend(n, 16)
}

fn descend(n: u8, depth: u8) -> u8 {
    if n == 0 || depth == 0 {
        0
    } else {
        descend(n - 1, depth - 1)
    }
}
",
    );
    let outcome = run_check(&ws.root, &config, &ws.baseline()).expect("check guarded tree");
    assert!(outcome.passed(), "guarded recursion passes: {outcome:?}");
}

#[test]
fn unreachable_private_helpers_are_exempt_with_entries_present() {
    let ws = MiniWorkspace::new("unreachable");
    // `orphan` is private and uncalled: with a real entry point in the
    // workspace, even the over-approximated closure cannot reach it, so
    // its unwrap is provably dead code and not a panic hazard.
    ws.write_file(
        "crates/engine/src/service.rs",
        "\
pub fn handle_request(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

fn orphan(x: Option<u8>) -> u8 {
    x.unwrap()
}
",
    );
    let findings = scan_workspace(&ws.root, &Config::default()).expect("scan");
    assert!(findings.is_empty(), "{findings:?}");

    // Without any entry point the refinement is off and the same
    // orphan is flagged — reachability only ever *exempts* when it has
    // real entries to reason from.
    ws.write_file(
        "crates/engine/src/service.rs",
        "\
pub fn serve(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

fn orphan(x: Option<u8>) -> u8 {
    x.unwrap()
}
",
    );
    let findings = scan_workspace(&ws.root, &Config::default()).expect("rescan");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "panic-path");
}

#[test]
fn models_panics_are_flagged_exactly_when_reachable() {
    let ws = MiniWorkspace::new("panicreach");
    ws.write_file(
        "crates/engine/src/service.rs",
        "\
use hypar_models::shapes;

pub fn handle_request(x: u64) -> u64 {
    shapes::infer(x)
}
",
    );
    ws.write_file(
        "crates/models/src/shapes.rs",
        "\
pub fn infer(x: u64) -> u64 {
    helper(x).expect(\"fits\")
}

fn helper(x: u64) -> Option<u64> {
    Some(x)
}

pub fn unrelated(x: Option<u8>) -> u8 {
    x.unwrap()
}
",
    );
    let findings = scan_workspace(&ws.root, &Config::default()).expect("scan");
    // Only the panic on the justified path from the entry survives; the
    // pub-but-unreached `unrelated` does not (models has no standalone
    // service surface — panics there matter exactly when a request can
    // arrive).
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "panic-reach");
    assert_eq!(findings[0].file, "crates/models/src/shapes.rs");
    assert_eq!(findings[0].line, 2);
    assert_eq!(
        findings[0].entry_trace,
        vec![
            "engine::service::handle_request".to_string(),
            "models::shapes::infer".to_string(),
        ]
    );
}
