//! The ratchet gate end to end, against a synthetic mini-workspace: a
//! blessed tree passes, injecting a fresh `.unwrap()` into
//! `crates/engine/src/service.rs` fails the check naming that exact
//! cell, burning a finding down passes and reports the improvement, and
//! `--bless` is idempotent.

use std::fs;
use std::path::{Path, PathBuf};

use hypar_analyzer::config::Config;
use hypar_analyzer::{run_bless, run_check, scan_workspace, validate_root};

const CLEAN_SERVICE: &str = "\
pub fn serve(x: Option<u8>) -> Result<u8, String> {
    x.ok_or_else(|| \"empty\".to_string())
}
";

const DIRTY_SERVICE: &str = "\
pub fn serve(x: Option<u8>) -> Result<u8, String> {
    Ok(x.unwrap())
}
";

/// A scratch workspace under the target dir (always writable, cleaned
/// up by `cargo clean`), unique per test so they can run in parallel.
struct MiniWorkspace {
    root: PathBuf,
}

impl MiniWorkspace {
    fn new(test: &str, service_source: &str) -> Self {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/analyzer-gate")
            .join(test);
        let _ = fs::remove_dir_all(&root);
        let src = root.join("crates/engine/src");
        fs::create_dir_all(&src).expect("mkdir mini-workspace");
        fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
        fs::write(src.join("service.rs"), service_source).expect("write service.rs");
        MiniWorkspace { root }
    }

    fn baseline(&self) -> PathBuf {
        self.root.join("analyzer-baseline.json")
    }

    fn write_service(&self, source: &str) {
        fs::write(self.root.join("crates/engine/src/service.rs"), source)
            .expect("rewrite service.rs");
    }
}

impl Drop for MiniWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn injected_unwrap_in_service_rs_fails_the_check() {
    let ws = MiniWorkspace::new("inject", CLEAN_SERVICE);
    let config = Config::default();
    validate_root(&ws.root).expect("mini-workspace looks like a root");

    let counts = run_bless(&ws.root, &config, &ws.baseline()).expect("bless clean tree");
    assert!(counts.is_empty(), "clean tree blesses to zero: {counts:?}");
    let outcome = run_check(&ws.root, &config, &ws.baseline()).expect("check clean tree");
    assert!(outcome.passed());
    assert_eq!(outcome.total, 0);

    // The acceptance scenario: a fresh `.unwrap()` lands in the service.
    ws.write_service(DIRTY_SERVICE);
    let outcome = run_check(&ws.root, &config, &ws.baseline()).expect("check dirty tree");
    assert!(!outcome.passed(), "new unwrap must fail the ratchet");
    assert_eq!(outcome.regressions.len(), 1);
    let (delta, findings) = &outcome.regressions[0];
    assert_eq!(delta.file, "crates/engine/src/service.rs");
    assert_eq!(delta.rule, "panic-path");
    assert_eq!((delta.baseline, delta.current), (0, 1));
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn burn_down_passes_and_reports_the_improvement() {
    let ws = MiniWorkspace::new("burndown", DIRTY_SERVICE);
    let config = Config::default();
    run_bless(&ws.root, &config, &ws.baseline()).expect("bless dirty tree");

    // Fixing the unwrap is always allowed and surfaces as an
    // improvement the caller can bless away.
    ws.write_service(CLEAN_SERVICE);
    let outcome = run_check(&ws.root, &config, &ws.baseline()).expect("check fixed tree");
    assert!(outcome.passed(), "burning down debt never fails the gate");
    assert_eq!(outcome.improvements.len(), 1);
    assert_eq!(outcome.improvements[0].file, "crates/engine/src/service.rs");
    assert_eq!(
        (
            outcome.improvements[0].baseline,
            outcome.improvements[0].current
        ),
        (1, 0)
    );
}

#[test]
fn bless_is_idempotent_and_canonical() {
    let ws = MiniWorkspace::new("idempotent", DIRTY_SERVICE);
    let config = Config::default();
    run_bless(&ws.root, &config, &ws.baseline()).expect("first bless");
    let first = fs::read_to_string(ws.baseline()).expect("read baseline");
    run_bless(&ws.root, &config, &ws.baseline()).expect("second bless");
    let second = fs::read_to_string(ws.baseline()).expect("re-read baseline");
    assert_eq!(first, second, "bless must be byte-idempotent");
    assert!(first.ends_with('\n'), "canonical form ends with newline");
}

#[test]
fn bad_pragma_fails_check_and_blocks_bless() {
    let ws = MiniWorkspace::new(
        "badpragma",
        "\
pub fn serve() {
    // hypar-allow: panic-path
    let _ = ();
}
",
    );
    let config = Config::default();
    let err = run_bless(&ws.root, &config, &ws.baseline()).expect_err("bless must refuse");
    assert!(err.contains("refusing to bless"), "{err}");

    // Even a baseline that tolerated it cannot make check pass.
    fs::write(ws.baseline(), "{\n  \"version\": 1,\n  \"counts\": {}\n}\n")
        .expect("write empty baseline");
    let outcome = run_check(&ws.root, &config, &ws.baseline()).expect("check runs");
    assert!(!outcome.passed(), "bad pragmas always fail the gate");
    assert_eq!(outcome.bad_pragmas.len(), 1);
}

#[test]
fn missing_scan_roots_are_skipped_not_errors() {
    // The mini-workspace has only crates/engine; every other configured
    // root must be silently absent.
    let ws = MiniWorkspace::new("sparse", CLEAN_SERVICE);
    let findings = scan_workspace(&ws.root, &Config::default()).expect("scan sparse tree");
    assert!(findings.is_empty(), "{findings:?}");
    assert!(validate_root(Path::new("/")).is_err());
}
