//! The ratchet gate end to end, against a synthetic mini-workspace: a
//! blessed tree passes, injecting a fresh `.unwrap()` into
//! `crates/engine/src/service.rs` (or a swallowed `Result` into
//! `crates/engine/src/record.rs`) fails the check naming that exact
//! cell, burning a finding down passes and reports the improvement,
//! `--bless` is idempotent, and a PR-8-era v1 baseline still gates and
//! migrates to v2 on the next bless.

use std::fs;
use std::path::{Path, PathBuf};

use hypar_analyzer::config::Config;
use hypar_analyzer::{run_bless, run_check, scan_workspace, validate_root};

const CLEAN_SERVICE: &str = "\
pub fn serve(x: Option<u8>) -> Result<u8, String> {
    x.ok_or_else(|| \"empty\".to_string())
}
";

const DIRTY_SERVICE: &str = "\
pub fn serve(x: Option<u8>) -> Result<u8, String> {
    Ok(x.unwrap())
}
";

/// A scratch workspace under the target dir (always writable, cleaned
/// up by `cargo clean`), unique per test so they can run in parallel.
struct MiniWorkspace {
    root: PathBuf,
}

impl MiniWorkspace {
    fn new(test: &str, service_source: &str) -> Self {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/analyzer-gate")
            .join(test);
        let _ = fs::remove_dir_all(&root);
        let src = root.join("crates/engine/src");
        fs::create_dir_all(&src).expect("mkdir mini-workspace");
        fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
        fs::write(src.join("service.rs"), service_source).expect("write service.rs");
        MiniWorkspace { root }
    }

    fn baseline(&self) -> PathBuf {
        self.root.join("analyzer-baseline.json")
    }

    fn write_service(&self, source: &str) {
        fs::write(self.root.join("crates/engine/src/service.rs"), source)
            .expect("rewrite service.rs");
    }

    fn write_file(&self, rel: &str, source: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, source).unwrap_or_else(|e| panic!("write {rel}: {e}"));
    }
}

impl Drop for MiniWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn injected_unwrap_in_service_rs_fails_the_check() {
    let ws = MiniWorkspace::new("inject", CLEAN_SERVICE);
    let config = Config::default();
    validate_root(&ws.root).expect("mini-workspace looks like a root");

    let counts = run_bless(&ws.root, &config, &ws.baseline()).expect("bless clean tree");
    assert!(counts.is_empty(), "clean tree blesses to zero: {counts:?}");
    let outcome = run_check(&ws.root, &config, &ws.baseline()).expect("check clean tree");
    assert!(outcome.passed());
    assert_eq!(outcome.total, 0);

    // The acceptance scenario: a fresh `.unwrap()` lands in the service.
    ws.write_service(DIRTY_SERVICE);
    let outcome = run_check(&ws.root, &config, &ws.baseline()).expect("check dirty tree");
    assert!(!outcome.passed(), "new unwrap must fail the ratchet");
    assert_eq!(outcome.regressions.len(), 1);
    let (delta, findings) = &outcome.regressions[0];
    assert_eq!(delta.file, "crates/engine/src/service.rs");
    assert_eq!(delta.rule, "panic-path");
    assert_eq!((delta.baseline, delta.current), (0, 1));
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn injected_swallowed_result_in_record_rs_fails_the_check() {
    let ws = MiniWorkspace::new("swallow", CLEAN_SERVICE);
    let config = Config::default();
    ws.write_file(
        "crates/engine/src/record.rs",
        "\
fn persist(x: u8) -> Result<(), String> {
    let _ = x;
    Ok(())
}

pub fn record(x: u8) -> Result<(), String> {
    persist(x)
}
",
    );
    let counts = run_bless(&ws.root, &config, &ws.baseline()).expect("bless clean tree");
    assert!(counts.is_empty(), "clean tree blesses to zero: {counts:?}");

    // The acceptance scenario: `persist(x)` loses its `?`/return and the
    // Result is dropped on the floor.  The workspace fn index knows
    // `persist` returns Result, so the gate names the file and rule.
    ws.write_file(
        "crates/engine/src/record.rs",
        "\
fn persist(x: u8) -> Result<(), String> {
    let _ = x;
    Ok(())
}

pub fn record(x: u8) {
    persist(x);
}
",
    );
    let outcome = run_check(&ws.root, &config, &ws.baseline()).expect("check dirty tree");
    assert!(
        !outcome.passed(),
        "a swallowed Result must fail the ratchet"
    );
    assert_eq!(outcome.regressions.len(), 1);
    let (delta, findings) = &outcome.regressions[0];
    assert_eq!(delta.file, "crates/engine/src/record.rs");
    assert_eq!(delta.rule, "err-swallow");
    assert_eq!((delta.baseline, delta.current), (0, 1));
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].line, 7);
}

#[test]
fn burn_down_passes_and_reports_the_improvement() {
    let ws = MiniWorkspace::new("burndown", DIRTY_SERVICE);
    let config = Config::default();
    run_bless(&ws.root, &config, &ws.baseline()).expect("bless dirty tree");

    // Fixing the unwrap is always allowed and surfaces as an
    // improvement the caller can bless away.
    ws.write_service(CLEAN_SERVICE);
    let outcome = run_check(&ws.root, &config, &ws.baseline()).expect("check fixed tree");
    assert!(outcome.passed(), "burning down debt never fails the gate");
    assert_eq!(outcome.improvements.len(), 1);
    assert_eq!(outcome.improvements[0].file, "crates/engine/src/service.rs");
    assert_eq!(
        (
            outcome.improvements[0].baseline,
            outcome.improvements[0].current
        ),
        (1, 0)
    );
}

#[test]
fn bless_is_idempotent_and_canonical() {
    let ws = MiniWorkspace::new("idempotent", DIRTY_SERVICE);
    let config = Config::default();
    run_bless(&ws.root, &config, &ws.baseline()).expect("first bless");
    let first = fs::read_to_string(ws.baseline()).expect("read baseline");
    run_bless(&ws.root, &config, &ws.baseline()).expect("second bless");
    let second = fs::read_to_string(ws.baseline()).expect("re-read baseline");
    assert_eq!(first, second, "bless must be byte-idempotent");
    assert!(first.ends_with('\n'), "canonical form ends with newline");
}

#[test]
fn bad_pragma_fails_check_and_blocks_bless() {
    let ws = MiniWorkspace::new(
        "badpragma",
        "\
pub fn serve() {
    // hypar-allow: panic-path
    let _ = ();
}
",
    );
    let config = Config::default();
    let err = run_bless(&ws.root, &config, &ws.baseline()).expect_err("bless must refuse");
    assert!(err.contains("refusing to bless"), "{err}");

    // Even a baseline that tolerated it cannot make check pass.
    fs::write(ws.baseline(), "{\n  \"version\": 1,\n  \"counts\": {}\n}\n")
        .expect("write empty baseline");
    let outcome = run_check(&ws.root, &config, &ws.baseline()).expect("check runs");
    assert!(!outcome.passed(), "bad pragmas always fail the gate");
    assert_eq!(outcome.bad_pragmas.len(), 1);
}

#[test]
fn v1_baseline_still_gates_and_migrates_to_v2_on_bless() {
    let ws = MiniWorkspace::new("migrate", DIRTY_SERVICE);
    let config = Config::default();
    // A PR-8-era baseline: version 1, counts only, no rules array.
    fs::write(
        ws.baseline(),
        "{\n  \"version\": 1,\n  \"counts\": {\n    \"crates/engine/src/service.rs\": {\n      \"panic-path\": 1\n    }\n  }\n}\n",
    )
    .expect("write v1 baseline");
    let outcome = run_check(&ws.root, &config, &ws.baseline()).expect("check against v1");
    assert!(
        outcome.passed(),
        "a v1 baseline still gates unchanged trees"
    );

    // The first bless after upgrading rewrites to the current schema.
    run_bless(&ws.root, &config, &ws.baseline()).expect("bless migrates");
    let migrated = fs::read_to_string(ws.baseline()).expect("read migrated baseline");
    assert!(migrated.contains("\"version\": 2"), "{migrated}");
    assert!(migrated.contains("\"rules\""), "{migrated}");
    assert!(
        migrated.contains("err-swallow") && migrated.contains("lock-scope"),
        "v2 baseline names the active rules: {migrated}"
    );
    run_bless(&ws.root, &config, &ws.baseline()).expect("second bless");
    let again = fs::read_to_string(ws.baseline()).expect("re-read baseline");
    assert_eq!(migrated, again, "migrated baseline is byte-stable");
}

#[test]
fn missing_scan_roots_are_skipped_not_errors() {
    // The mini-workspace has only crates/engine; every other configured
    // root must be silently absent.
    let ws = MiniWorkspace::new("sparse", CLEAN_SERVICE);
    let findings = scan_workspace(&ws.root, &Config::default()).expect("scan sparse tree");
    assert!(findings.is_empty(), "{findings:?}");
    assert!(validate_root(Path::new("/")).is_err());
}
