//! The analyzer against the real tree: the committed baseline must
//! pass, and the invariants this PR established must hold — the engine
//! crate carries zero panic-path debt, and every determinism rule is
//! clean workspace-wide (waived sites carry justified pragmas).

use std::path::PathBuf;

use hypar_analyzer::config::Config;
use hypar_analyzer::{run_check, scan_workspace, validate_root, BASELINE_FILE};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn committed_baseline_gates_the_real_tree() {
    let root = repo_root();
    validate_root(&root).expect("repo root");
    let outcome = run_check(&root, &Config::default(), &root.join(BASELINE_FILE))
        .expect("check against committed baseline");
    assert!(
        outcome.passed(),
        "the committed analyzer-baseline.json must gate the tree: \
         {} regression cell(s), {} bad pragma(s)",
        outcome.regressions.len(),
        outcome.bad_pragmas.len()
    );
}

#[test]
fn engine_crate_has_no_panic_path_debt() {
    // PR invariant: the service-facing crate was burned down to zero;
    // the ratchet keeps it there, this test documents it.
    let findings = scan_workspace(&repo_root(), &Config::default()).expect("scan");
    let engine: Vec<String> = findings
        .iter()
        .filter(|f| f.file.starts_with("crates/engine/"))
        .map(ToString::to_string)
        .collect();
    assert!(engine.is_empty(), "engine findings: {engine:#?}");
}

#[test]
fn determinism_rules_are_clean_workspace_wide() {
    // Satellite triage outcome, pinned: no unordered containers in
    // hashed paths (det-map-iter == 0), and every float-eq /
    // wall-clock site either uses to_bits/elapsed idioms or carries a
    // justified pragma.
    let findings = scan_workspace(&repo_root(), &Config::default()).expect("scan");
    let det: Vec<String> = findings
        .iter()
        .filter(|f| f.rule.starts_with("det-"))
        .map(ToString::to_string)
        .collect();
    assert!(det.is_empty(), "determinism findings: {det:#?}");
    let poison: Vec<String> = findings
        .iter()
        .filter(|f| f.rule == "lock-poison" || f.rule == "bad-pragma")
        .map(ToString::to_string)
        .collect();
    assert!(poison.is_empty(), "poison/pragma findings: {poison:#?}");
}
