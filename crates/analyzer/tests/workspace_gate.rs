//! The analyzer against the real tree: the committed baseline must
//! pass, and the invariants this PR established must hold — the
//! baseline is *empty* (zero tolerated findings anywhere), and every
//! surviving rule site carries a justified pragma.

use std::fs;
use std::path::PathBuf;

use hypar_analyzer::config::Config;
use hypar_analyzer::report::live;
use hypar_analyzer::{json, run_check, scan_workspace, validate_root, BASELINE_FILE};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn committed_baseline_gates_the_real_tree() {
    let root = repo_root();
    validate_root(&root).expect("repo root");
    let outcome = run_check(&root, &Config::default(), &root.join(BASELINE_FILE))
        .expect("check against committed baseline");
    assert!(
        outcome.passed(),
        "the committed analyzer-baseline.json must gate the tree: \
         {} regression cell(s), {} bad pragma(s)",
        outcome.regressions.len(),
        outcome.bad_pragmas.len()
    );
}

#[test]
fn committed_baseline_is_version_2_and_empty() {
    // PR invariant: the last panic-path debt was burned down, so the
    // blessed baseline tolerates nothing.  Any future finding is a
    // regression against an *empty* counts map — the strongest ratchet
    // state there is.  This test pins the file itself so a hand-edited
    // allowance can't sneak in without failing CI.
    let text = fs::read_to_string(repo_root().join(BASELINE_FILE)).expect("baseline file");
    let doc = json::parse(&text).expect("baseline is valid JSON");
    let version = doc
        .get("version")
        .and_then(json::Value::as_u64)
        .expect("version field");
    assert_eq!(version, 2, "baseline must be schema version 2");
    let rules = doc.get("rules").and_then(json::Value::as_array);
    assert!(
        rules.is_some_and(|r| !r.is_empty()),
        "v2 baseline lists the active rules"
    );
    let counts = doc
        .get("counts")
        .and_then(json::Value::as_object)
        .expect("counts field");
    assert!(
        counts.is_empty(),
        "baseline counts must stay empty — fix or pragma the finding \
         instead of re-blessing debt: {counts:?}"
    );
}

#[test]
fn workspace_has_zero_live_findings() {
    // The zero-baseline milestone, stated directly: scanning the real
    // tree yields no live finding of any rule.  Waived sites are still
    // reported (the JSON feed carries them) but each one names its
    // justification.
    let findings = scan_workspace(&repo_root(), &Config::default()).expect("scan");
    let alive: Vec<String> = live(&findings).iter().map(ToString::to_string).collect();
    assert!(alive.is_empty(), "live findings: {alive:#?}");
    for waived in findings.iter().filter(|f| f.waived) {
        assert!(
            !waived.file.is_empty() && waived.line > 0,
            "waived finding lost its location: {waived:?}"
        );
    }
}

#[test]
fn engine_crate_has_no_panic_path_debt() {
    // PR 8 invariant, still pinned: the service-facing crate carries
    // zero panic-path findings, waived or otherwise.
    let findings = scan_workspace(&repo_root(), &Config::default()).expect("scan");
    let engine: Vec<String> = findings
        .iter()
        .filter(|f| f.file.starts_with("crates/engine/") && f.rule == "panic-path")
        .map(ToString::to_string)
        .collect();
    assert!(engine.is_empty(), "engine findings: {engine:#?}");
}

#[test]
fn interproc_rules_are_clean_workspace_wide() {
    // PR 10 invariant: the request path holds no conflicting lock
    // orders, no unguarded recursion, and no reachable panic in the
    // `models`/`bench` reach crates.  All three interproc rules gate at
    // zero tolerance against the empty baseline.
    let findings = scan_workspace(&repo_root(), &Config::default()).expect("scan");
    let interproc: Vec<String> = live(&findings)
        .iter()
        .filter(|f| {
            f.rule == "lock-order" || f.rule == "recurse-request" || f.rule == "panic-reach"
        })
        .map(ToString::to_string)
        .collect();
    assert!(interproc.is_empty(), "interproc findings: {interproc:#?}");
    // Every waived panic-reach site carries its justification through
    // to the findings feed.
    for waived in findings
        .iter()
        .filter(|f| f.waived && f.rule == "panic-reach")
    {
        assert!(
            waived
                .justification
                .as_deref()
                .is_some_and(|text| !text.trim().is_empty()),
            "waived panic-reach lost its justification: {waived:?}"
        );
    }
}

#[test]
fn determinism_rules_are_clean_workspace_wide() {
    // Satellite triage outcome, pinned: no unordered containers in
    // hashed paths (det-map-iter == 0), and every float-eq /
    // wall-clock site either uses to_bits/elapsed idioms or carries a
    // justified pragma.
    let findings = scan_workspace(&repo_root(), &Config::default()).expect("scan");
    let det: Vec<String> = live(&findings)
        .iter()
        .filter(|f| f.rule.starts_with("det-"))
        .map(ToString::to_string)
        .collect();
    assert!(det.is_empty(), "determinism findings: {det:#?}");
    let poison: Vec<String> = live(&findings)
        .iter()
        .filter(|f| f.rule == "lock-poison" || f.rule == "bad-pragma")
        .map(ToString::to_string)
        .collect();
    assert!(poison.is_empty(), "poison/pragma findings: {poison:#?}");
}
