//! Benchmarks for the communication model (the Table 1/Table 2 kernels and
//! whole-plan evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypar_comm::{
    inter_elems, intra_elems, level_cost, LayerCommTensors, LayerScale, NetworkCommTensors,
    Parallelism, ScaleState,
};
use hypar_core::{baselines, evaluate::evaluate_plan};
use hypar_models::zoo;
use std::hint::black_box;

fn bench_table1_table2(c: &mut Criterion) {
    let conv = LayerCommTensors::conv("conv5", 32, (512, 14, 14), 3, 512, (14, 14), (7, 7));
    let scale = LayerScale::default();
    c.bench_function("table1_intra", |b| {
        b.iter(|| {
            intra_elems(Parallelism::Data, black_box(&conv), scale)
                + intra_elems(Parallelism::Model, black_box(&conv), scale)
        });
    });
    c.bench_function("table2_inter", |b| {
        b.iter(|| {
            inter_elems(
                Parallelism::Data,
                Parallelism::Model,
                black_box(3.2e6),
                0.25,
            ) + inter_elems(
                Parallelism::Model,
                Parallelism::Data,
                black_box(3.2e6),
                0.25,
            )
        });
    });
}

fn bench_level_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("level_cost");
    for name in ["Lenet-c", "VGG-E"] {
        let net = NetworkCommTensors::from_network(&zoo::by_name(name).unwrap(), 256).unwrap();
        let scales = ScaleState::identity(net.len());
        let assignment: Vec<Parallelism> = net
            .layers()
            .iter()
            .map(|l| {
                if l.is_conv {
                    Parallelism::Data
                } else {
                    Parallelism::Model
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(name), &net, |b, net| {
            b.iter(|| level_cost(black_box(net), &scales, &assignment));
        });
    }
    group.finish();
}

fn bench_evaluate_plan(c: &mut Criterion) {
    let net = NetworkCommTensors::from_network(&zoo::vgg_e(), 256).unwrap();
    let plan = baselines::one_weird_trick(&net, 4);
    c.bench_function("evaluate_plan_vgg_e_h4", |b| {
        b.iter(|| evaluate_plan(black_box(&net), plan.levels()));
    });
}

criterion_group!(
    benches,
    bench_table1_table2,
    bench_level_cost,
    bench_evaluate_plan
);
criterion_main!(benches);
