//! One benchmark per paper artifact: regenerating each table and figure
//! end-to-end (the same code paths the `repro` binary runs).
//!
//! The heavyweight sweeps (Figures 9/10: 256 simulations each) use reduced
//! Criterion sample counts.

use criterion::{criterion_group, criterion_main, Criterion};
use hypar_bench::experiments::{fig10, fig11, fig12, fig13, fig5, fig9, overall, tables};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1", |b| b.iter(|| black_box(tables::table1())));
    c.bench_function("table2", |b| b.iter(|| black_box(tables::table2())));
    c.bench_function("table3", |b| b.iter(|| black_box(tables::table3())));
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_optimized_parallelisms", |b| {
        b.iter(|| black_box(fig5::run()))
    });
}

fn bench_overall(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6to8_overall");
    group.sample_size(10);
    group.bench_function("run", |b| b.iter(|| black_box(overall::run())));
    group.finish();
}

fn bench_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_space_sweeps");
    group.sample_size(10);
    group.bench_function("fig9_lenet", |b| b.iter(|| black_box(fig9::run())));
    group.bench_function("fig10_vgg_a", |b| b.iter(|| black_box(fig10::run())));
    group.finish();
}

fn bench_scalability_and_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_fig12_fig13");
    group.sample_size(10);
    group.bench_function("fig11_scalability", |b| b.iter(|| black_box(fig11::run())));
    group.bench_function("fig12_topology", |b| b.iter(|| black_box(fig12::run())));
    group.bench_function("fig13_trick", |b| b.iter(|| black_box(fig13::run())));
    group.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_fig5,
    bench_overall,
    bench_sweeps,
    bench_scalability_and_topology
);
criterion_main!(benches);
