//! Benchmarks for the partition search — including the paper's complexity
//! claim: Algorithm 1 is linear in the number of weighted layers (§4.1),
//! so doubling the chain length should roughly double the runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypar_comm::{LayerCommTensors, NetworkCommTensors, ScaleState};
use hypar_core::{hierarchical, two_group};
use hypar_models::zoo;
use std::hint::black_box;

/// A synthetic alternating conv/fc chain of the given length.
fn synthetic_chain(num_layers: usize) -> NetworkCommTensors {
    let layers = (0..num_layers)
        .map(|i| {
            if i % 2 == 0 {
                LayerCommTensors::conv(
                    format!("conv{i}"),
                    64,
                    (32, 16, 16),
                    3,
                    32,
                    (16, 16),
                    (16, 16),
                )
            } else {
                LayerCommTensors::fully_connected(format!("fc{i}"), 64, 2048, 2048)
            }
        })
        .collect();
    NetworkCommTensors::from_layers("chain", 64, layers)
}

fn bench_linear_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_group_partition_linear");
    for num_layers in [16usize, 64, 256, 1024] {
        let net = synthetic_chain(num_layers);
        let scales = ScaleState::identity(num_layers);
        group.bench_with_input(BenchmarkId::from_parameter(num_layers), &net, |b, net| {
            b.iter(|| two_group::partition(black_box(net), black_box(&scales)));
        });
    }
    group.finish();
}

fn bench_hierarchical_zoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchical_partition_zoo");
    for name in ["Lenet-c", "AlexNet", "VGG-E"] {
        let net = NetworkCommTensors::from_network(&zoo::by_name(name).unwrap(), 256).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &net, |b, net| {
            b.iter(|| hierarchical::partition(black_box(net), 4));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_linear_time, bench_hierarchical_zoo);
criterion_main!(benches);
