//! Benchmarks for DAG planning: segment decomposition and the stitched
//! partition search over the branchy zoo, so future PRs can track the
//! cost of the graph path next to the chain path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypar_graph::{
    best_joint_graph, partition_graph, partition_graph_refined, zoo, DagNetwork, GraphBuilder,
    SegmentCommGraph, INPUT,
};
use hypar_models::ConvSpec;
use hypar_tensor::FeatureDims;
use std::hint::black_box;

/// A synthetic residual ladder: `num_blocks` blocks of two convolutions
/// with an identity skip each — the worst case for segment bookkeeping
/// relative to layer count.
fn residual_ladder(num_blocks: usize) -> DagNetwork {
    let mut g = GraphBuilder::new("ladder", FeatureDims::new(16, 16, 16));
    g.conv("stem", ConvSpec::same(16, 3), INPUT);
    let mut prev = "stem".to_owned();
    for b in 0..num_blocks {
        let (a, c, join) = (format!("b{b}_a"), format!("b{b}_b"), format!("b{b}"));
        g.conv(&a, ConvSpec::same(16, 3), &prev);
        g.conv(&c, ConvSpec::same(16, 3), &a);
        g.add(&join, &[&c, &prev]);
        prev = join;
    }
    g.fully_connected("fc", 10, &prev);
    g.build().expect("ladder is a valid graph")
}

fn bench_segment_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_segments");
    for num_blocks in [4usize, 16, 64] {
        let dag = residual_ladder(num_blocks);
        group.bench_with_input(BenchmarkId::from_parameter(num_blocks), &dag, |b, dag| {
            b.iter(|| black_box(dag).segments(black_box(64)).unwrap());
        });
    }
    group.finish();
}

fn bench_partition_graph_zoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_graph_zoo");
    for name in zoo::NAMES {
        let graph: SegmentCommGraph = zoo::by_name(name)
            .expect("zoo names resolve")
            .segments(256)
            .expect("zoo networks decompose");
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, graph| {
            b.iter(|| partition_graph(black_box(graph), black_box(4)));
        });
    }
    group.finish();
}

fn bench_partition_graph_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_graph_ladder");
    for num_blocks in [4usize, 16, 64] {
        let graph = residual_ladder(num_blocks).segments(64).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(num_blocks),
            &graph,
            |b, graph| {
                b.iter(|| partition_graph(black_box(graph), black_box(4)));
            },
        );
    }
    group.finish();
}

fn bench_best_joint_graph(c: &mut Criterion) {
    // The joint exhaustive baseline at (and up to) its feasibility
    // boundary: `L·H = 24` is the largest space `best_joint_graph`
    // accepts (2^24 ≈ 16.8M candidate plans).
    let mut group = c.benchmark_group("best_joint_graph");
    for (num_blocks, levels) in [(1usize, 3usize), (2, 3), (3, 3)] {
        let graph = residual_ladder(num_blocks).segments(64).unwrap();
        let slots = graph.num_layers() * levels;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{slots}slots")),
            &(graph, levels),
            |b, (graph, levels)| {
                b.iter(|| best_joint_graph(black_box(graph), black_box(*levels)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_refine_graph(c: &mut Criterion) {
    // The junction-aware refinement pass on DAGs where the exhaustive
    // joint search is a typed rejection: polynomial coordinate descent
    // (sweeps × L·H re-decisions × O((L+E)·H) evaluations) vs the
    // `O(2^{L·H})` enumeration that tops out at 24 slots.  ResNet-18 at
    // H=4 is 84 slots; the 64-block ladder is 516.
    let mut group = c.benchmark_group("refine_graph");
    let resnet = zoo::resnet18().segments(64).expect("zoo decomposes");
    assert!(
        best_joint_graph(&resnet, 4).is_err(),
        "ResNet-18 must exceed the exhaustive bound for this bench to mean anything"
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("resnet18"),
        &resnet,
        |b, graph| {
            b.iter(|| partition_graph_refined(black_box(graph), black_box(4)).unwrap());
        },
    );
    for num_blocks in [4usize, 16, 64] {
        let graph = residual_ladder(num_blocks).segments(64).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("ladder{num_blocks}")),
            &graph,
            |b, graph| {
                b.iter(|| partition_graph_refined(black_box(graph), black_box(4)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_segment_decomposition,
    bench_partition_graph_zoo,
    bench_partition_graph_ladder,
    bench_best_joint_graph,
    bench_refine_graph
);
criterion_main!(benches);
