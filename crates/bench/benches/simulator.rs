//! Benchmarks for the event-driven simulator: one full training-step
//! simulation per scheme and network, for chains and for branchy DAGs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypar_comm::NetworkCommTensors;
use hypar_core::{baselines, hierarchical};
use hypar_graph::{partition_graph, zoo as graph_zoo};
use hypar_models::{zoo, NetworkShapes};
use hypar_sim::{training, ArchConfig};
use std::hint::black_box;

fn bench_simulate_step(c: &mut Criterion) {
    let cfg = ArchConfig::paper();
    let mut group = c.benchmark_group("simulate_step");
    for name in ["Lenet-c", "AlexNet", "VGG-A"] {
        let shapes = NetworkShapes::infer(&zoo::by_name(name).unwrap(), 256).unwrap();
        let net = NetworkCommTensors::from_shapes(&shapes);
        for (scheme, plan) in [
            ("hypar", hierarchical::partition(&net, 4)),
            ("dp", baselines::all_data(&net, 4)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, scheme),
                &(&shapes, plan),
                |b, (shapes, plan)| {
                    b.iter(|| training::simulate_step(black_box(shapes), plan, &cfg));
                },
            );
        }
    }
    group.finish();
}

fn bench_large_array(c: &mut Criterion) {
    // 64 accelerators: the largest Figure 11 configuration.
    let shapes = NetworkShapes::infer(&zoo::vgg_a(), 256).unwrap();
    let net = NetworkCommTensors::from_shapes(&shapes);
    let plan = hierarchical::partition(&net, 6);
    let cfg = ArchConfig::paper();
    c.bench_function("simulate_step_vgg_a_64_accels", |b| {
        b.iter(|| training::simulate_step(black_box(&shapes), &plan, &cfg));
    });
}

fn bench_simulate_graph_step(c: &mut Criterion) {
    // The branchy counterpart: a full DAG training step with junction
    // tasks, per zoo network and scheduling mode.
    let cfg = ArchConfig::paper();
    let overlap = ArchConfig::paper().with_overlap(true);
    let mut group = c.benchmark_group("simulate_graph_step");
    for name in graph_zoo::NAMES {
        let graph = graph_zoo::by_name(name)
            .expect("zoo names resolve")
            .segments(64)
            .expect("zoo networks decompose");
        let plan = partition_graph(&graph, 4).expect("zoo segment graphs stitch");
        for (mode, cfg) in [("serial", &cfg), ("overlap", &overlap)] {
            group.bench_with_input(
                BenchmarkId::new(name, mode),
                &(&graph, &plan),
                |b, (graph, plan)| {
                    b.iter(|| training::simulate_graph_step(black_box(graph), plan, cfg));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulate_step,
    bench_large_array,
    bench_simulate_graph_step
);
criterion_main!(benches);
