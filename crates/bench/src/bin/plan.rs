//! Plan and simulate any zoo network on an accelerator array.
//!
//! ```text
//! plan <network> [--batch N] [--levels H] [--torus] [--overlap]
//!                [--scheme hypar|dp|mp|owt] [--trace FILE]
//! ```
//!
//! Prints the Figure-5-style parallelism grid and the simulated training
//! step (time, energy, communication).

use std::process::ExitCode;

use hypar_comm::NetworkCommTensors;
use hypar_core::{baselines, hierarchical, HierarchicalPlan};
use hypar_models::{zoo, NetworkShapes};
use hypar_sim::{training, ArchConfig, Topology};

fn usage() -> String {
    format!(
        "usage: plan <network> [--batch N] [--levels H] [--torus] [--overlap] \
         [--scheme hypar|dp|mp|owt] [--trace FILE]\n  networks: {}",
        zoo::NAMES.join(", ")
    )
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(name) = args.next() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    if name == "--help" || name == "-h" {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let Some(network) = zoo::by_name(&name) else {
        eprintln!("unknown network `{name}`\n{}", usage());
        return ExitCode::FAILURE;
    };

    let mut batch = 256u64;
    let mut levels = 4usize;
    let mut cfg = ArchConfig::paper();
    let mut scheme = "hypar".to_owned();
    let mut trace_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--batch" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => batch = v,
                None => {
                    eprintln!("--batch expects a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--levels" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v <= 16 => levels = v,
                _ => {
                    eprintln!("--levels expects an integer in 0..=16");
                    return ExitCode::FAILURE;
                }
            },
            "--torus" => cfg = cfg.with_topology(Topology::Torus),
            "--overlap" => cfg = cfg.with_overlap(true),
            "--scheme" => match args.next() {
                Some(v) => scheme = v,
                None => {
                    eprintln!("--scheme expects hypar|dp|mp|owt");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match args.next() {
                Some(v) => trace_path = Some(v),
                None => {
                    eprintln!("--trace expects a file path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    let shapes = match NetworkShapes::infer(&network, batch) {
        Ok(shapes) => shapes,
        Err(err) => {
            eprintln!("shape inference failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    let tensors = NetworkCommTensors::from_shapes(&shapes);
    let plan: HierarchicalPlan = match scheme.as_str() {
        "hypar" => hierarchical::partition(&tensors, levels),
        "dp" => baselines::all_data(&tensors, levels),
        "mp" => baselines::all_model(&tensors, levels),
        "owt" => baselines::one_weird_trick(&tensors, levels),
        other => {
            eprintln!("unknown scheme `{other}` (expected hypar|dp|mp|owt)");
            return ExitCode::FAILURE;
        }
    };

    println!("{plan}");
    let report = if let Some(path) = &trace_path {
        let (report, trace) =
            training::simulate_step_traced(&shapes, &plan, &cfg).expect("plan matches the network");
        if let Err(err) = std::fs::write(path, trace) {
            eprintln!("failed to write trace to {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("wrote chrome://tracing schedule to {path}");
        report
    } else {
        training::simulate_step(&shapes, &plan, &cfg).expect("plan matches the network")
    };
    println!(
        "simulated training step on {} accelerators ({}):",
        plan.num_accelerators(),
        cfg.topology
    );
    println!("  step time      : {}", report.step_time);
    println!("  energy         : {}", report.energy);
    println!(
        "    compute {} / dram {} / network {}",
        report.compute_energy, report.dram_energy, report.link_energy
    );
    println!("  communication  : {}", report.comm_bytes);
    for (h, bytes) in report.comm_bytes_per_level.iter().enumerate() {
        println!("    level H{}     : {}", h + 1, bytes);
    }
    println!("  dram traffic   : {}", report.dram_bytes);
    println!(
        "  footprint/accel: {} (fits {} HMC: {})",
        report.dram_footprint_bytes,
        hypar_tensor::Bytes(cfg.dram_capacity_bytes),
        report.fits_capacity(cfg.dram_capacity_bytes)
    );
    ExitCode::SUCCESS
}
