//! Regenerates every table and figure of the HyPar paper.
//!
//! ```text
//! repro [--exp <id>[,<id>...]] [--json <path>]
//!
//!   --exp    table1 table2 table3 fig5 fig6 fig7 fig8 fig9 fig10 fig11
//!            fig12 fig13, or `all` (default)
//!   --json   additionally dump the raw experiment data as JSON
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use hypar_bench::experiments::{
    self, ablation, batch_study, branchy, fig10, fig11, fig12, fig13, fig5, fig9,
    greedy_gap_branchy, overall, pe_model, tables,
};

fn usage() -> String {
    format!(
        "usage: repro [--exp <id>[,<id>...]] [--json <path>]\n  ids: {} fig13 ablation pe batch branchy greedy_gap_branchy all",
        experiments::EXPERIMENT_IDS.join(" ")
    )
}

fn main() -> ExitCode {
    let mut requested: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exp" => {
                let Some(value) = args.next() else {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                };
                requested.extend(value.split(',').map(str::to_owned));
            }
            "--json" => {
                let Some(value) = args.next() else {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                };
                json_path = Some(value);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    if requested.is_empty() || requested.iter().any(|r| r == "all") {
        requested = experiments::all_ids()
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
    }

    let mut json: BTreeMap<String, serde_json::Value> = BTreeMap::new();
    // Figures 6-8 share one simulation campaign; run it at most once.
    let mut overall_data: Option<overall::Overall> = None;
    let overall_cached = |data: &mut Option<overall::Overall>| -> overall::Overall {
        data.get_or_insert_with(overall::run).clone()
    };

    for id in &requested {
        match id.as_str() {
            "table1" => {
                let t = tables::table1();
                println!("{}", tables::table1_table(&t));
                json.insert(id.clone(), serde_json::to_value(&t).expect("serializable"));
            }
            "table2" => {
                let t = tables::table2();
                println!("{}", tables::table2_table(&t));
                json.insert(id.clone(), serde_json::to_value(&t).expect("serializable"));
            }
            "table3" => {
                let t = tables::table3();
                println!("{}", tables::table3_table(&t));
                json.insert(id.clone(), serde_json::to_value(&t).expect("serializable"));
            }
            "fig5" => {
                let f = fig5::run();
                println!("{}", fig5::render(&f));
                json.insert(id.clone(), serde_json::to_value(&f).expect("serializable"));
            }
            "fig6" => {
                let o = overall_cached(&mut overall_data);
                println!("{}", overall::fig6_table(&o));
                json.insert(id.clone(), serde_json::to_value(&o).expect("serializable"));
            }
            "fig7" => {
                let o = overall_cached(&mut overall_data);
                println!("{}", overall::fig7_table(&o));
                json.insert(id.clone(), serde_json::to_value(&o).expect("serializable"));
            }
            "fig8" => {
                let o = overall_cached(&mut overall_data);
                println!("{}", overall::fig8_table(&o));
                json.insert(id.clone(), serde_json::to_value(&o).expect("serializable"));
            }
            "fig9" => {
                let f = fig9::run();
                println!("{}", fig9::summary_table(&f));
                json.insert(id.clone(), serde_json::to_value(&f).expect("serializable"));
            }
            "fig10" => {
                let f = fig10::run();
                println!("{}", fig10::summary_table(&f));
                json.insert(id.clone(), serde_json::to_value(&f).expect("serializable"));
            }
            "fig11" => {
                let f = fig11::run();
                println!("{}", fig11::table(&f));
                json.insert(id.clone(), serde_json::to_value(&f).expect("serializable"));
            }
            "fig12" => {
                let f = fig12::run();
                println!("{}", fig12::table(&f));
                json.insert(id.clone(), serde_json::to_value(&f).expect("serializable"));
            }
            "fig13" => {
                let f = fig13::run();
                println!("{}", fig13::table(&f));
                json.insert(id.clone(), serde_json::to_value(&f).expect("serializable"));
            }
            "ablation" => {
                let a = ablation::run();
                println!("{}", ablation::render(&a));
                json.insert(id.clone(), serde_json::to_value(&a).expect("serializable"));
            }
            "pe" => {
                let a = pe_model::run();
                println!("{}", pe_model::table(&a));
                json.insert(id.clone(), serde_json::to_value(&a).expect("serializable"));
            }
            "batch" => {
                let s = batch_study::run();
                println!("{}", batch_study::table(&s));
                json.insert(id.clone(), serde_json::to_value(&s).expect("serializable"));
            }
            "branchy" => {
                let b = branchy::run();
                println!("{}", branchy::table(&b));
                json.insert(id.clone(), serde_json::to_value(&b).expect("serializable"));
            }
            "greedy_gap_branchy" => {
                let g = greedy_gap_branchy::run();
                println!("{}", greedy_gap_branchy::table(&g));
                json.insert(id.clone(), serde_json::to_value(&g).expect("serializable"));
            }
            other => {
                eprintln!("unknown experiment `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = json_path {
        let payload = serde_json::to_string_pretty(&json).expect("serializable");
        if let Err(err) = std::fs::write(&path, payload) {
            eprintln!("failed to write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("wrote JSON results to {path}");
    }
    ExitCode::SUCCESS
}
