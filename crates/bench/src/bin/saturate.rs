//! Saturation benchmark for the planning engine: drives the batch
//! (`plan_many`-shaped) and service (`handle_line`) front-ends at
//! increasing request counts, cold and hot cache, and reports throughput
//! plus latency percentiles.
//!
//! ```text
//! saturate [--short] [--out PATH] [--check PATH]
//!
//!   (default)     full sweep (10/100/1000 requests per cell), written to
//!                 BENCH_engine.json in the current directory
//!   --short       CI-sized sweep (10/25/50) — same schema, seconds not
//!                 minutes
//!   --out PATH    write the JSON document to PATH instead
//!   --check PATH  validate an existing document against the
//!                 `hypar-engine-saturation/v2` schema and exit
//! ```
//!
//! The cold cells plan distinct-fingerprint workloads on a fresh engine;
//! the hot cells replay the identical mix on the warmed engine, so the
//! cold/hot gap is exactly the plan cache's contribution.
//!
//! Every cell also folds its responses' canonical `state_hash`es (in
//! request order) into a per-cell `state_digest`, and the sweep asserts
//! the cold and hot digests of each front-end agree — a cache hit must
//! be bit-identical to the plan it replays, not merely "fast".

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use hypar_engine::scenario::LatencySummary;
use hypar_engine::{parallel, service, CacheStats, PlanEngine, PlanRequest};
use hypar_telemetry::statehash::{hash_hex, StateHasher};
use serde::{Serialize, Value};

/// Document format tag; bump when the shape changes.
/// v2 added the per-cell `state_digest` determinism pin.
const SCHEMA: &str = "hypar-engine-saturation/v2";

/// Hierarchy depth of every benchmark request: deep enough to exercise
/// the full recursion, cheap enough to saturate with thousands of plans.
const LEVELS: usize = 3;

/// Cheap chain networks the mix cycles through.
const NETS: [&str; 3] = ["lenet_c", "sfc", "sconv"];

fn usage() -> &'static str {
    "usage: saturate [--short] [--out PATH] [--check PATH]"
}

#[derive(Clone, Debug, Serialize)]
struct RunRecord {
    /// `cold_plan_many` / `hot_plan_many` / `cold_service` / `hot_service`.
    mode: String,
    /// Requests driven through the engine in this cell.
    requests: usize,
    /// Wall-clock time for the whole cell, in milliseconds.
    elapsed_ms: f64,
    /// `requests / elapsed`, in requests per second.
    requests_per_sec: f64,
    /// Per-request latency percentiles, in milliseconds.
    latency: LatencySummary,
    /// FNV digest over the cell's per-request `state_hash`es in request
    /// order; cold and hot cells of a front-end must agree.
    state_digest: String,
    /// Cache counters after the cell (fresh engine per cold/hot pair).
    cache: CacheStats,
}

#[derive(Clone, Debug, Serialize)]
struct BenchDoc {
    /// Always [`SCHEMA`].
    schema: String,
    /// `full` or `short`.
    mode: String,
    /// Hierarchy levels of every request.
    levels: usize,
    /// Worker threads available to `plan_many`-shaped cells.
    workers: usize,
    /// One record per (front-end, temperature, size) cell.
    runs: Vec<RunRecord>,
}

/// A mix of `n` distinct-fingerprint requests (network and batch vary).
fn request_mix(n: usize) -> Vec<PlanRequest> {
    (0..n)
        .map(|i| {
            PlanRequest::zoo(NETS[i % NETS.len()])
                .levels(LEVELS)
                .batch(8 + i as u64)
        })
        .collect()
}

/// Folds per-request state hashes (in request order) into one cell
/// digest, rendered the usual 16-hex-digit way.
fn cell_digest(hashes: &[String]) -> String {
    let mut h = StateHasher::new();
    h.write_str("saturation-digest/v1");
    for hash in hashes {
        h.write_str(hash);
    }
    hash_hex(h.finish())
}

fn record(mode: &str, cell: &CellRun, elapsed_ms: f64, cache: CacheStats) -> RunRecord {
    RunRecord {
        mode: mode.to_owned(),
        requests: cell.samples.len(),
        elapsed_ms,
        requests_per_sec: cell.samples.len() as f64 / (elapsed_ms / 1e3),
        latency: LatencySummary::from_samples(&cell.samples),
        state_digest: cell_digest(&cell.hashes),
        cache,
    }
}

/// Per-request latencies and state hashes of one cell, in request order.
struct CellRun {
    samples: Vec<f64>,
    hashes: Vec<String>,
}

/// One `plan_many`-shaped cell: fans the mix across the worker pool,
/// timing each request on its worker thread.
fn run_batch(engine: &PlanEngine, requests: &[PlanRequest], mode: &str) -> RunRecord {
    let started = Instant::now();
    let timed = parallel::map(requests, |request| {
        let t = Instant::now();
        let response = engine.plan(request).expect("benchmark workloads must plan");
        (t.elapsed().as_secs_f64() * 1e3, response.state_hash)
    });
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let timed = timed.expect("no benchmark worker panicked");
    let (samples, hashes) = timed.into_iter().unzip();
    record(
        mode,
        &CellRun { samples, hashes },
        elapsed_ms,
        engine.cache_stats(),
    )
}

/// One service cell: the same mix as serial line-delimited JSON, the way
/// a single stdin/TCP client would see it.
fn run_service(engine: &PlanEngine, lines: &[String], mode: &str) -> RunRecord {
    let started = Instant::now();
    let (samples, hashes): (Vec<f64>, Vec<String>) = lines
        .iter()
        .map(|line| {
            let t = Instant::now();
            let reply = service::handle_line(engine, line);
            let elapsed = t.elapsed().as_secs_f64() * 1e3;
            let value: Value =
                serde_json::from_str(&reply).expect("service replies are valid JSON");
            assert!(
                value.get("error").is_none(),
                "benchmark workloads must plan: {reply}"
            );
            let hash = value
                .get("state_hash")
                .and_then(Value::as_str)
                .expect("every planned reply carries a state_hash")
                .to_owned();
            (elapsed, hash)
        })
        .unzip();
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    record(
        mode,
        &CellRun { samples, hashes },
        elapsed_ms,
        engine.cache_stats(),
    )
}

fn run_sweep(short: bool) -> BenchDoc {
    let sizes: &[usize] = if short {
        &[10, 25, 50]
    } else {
        &[10, 100, 1000]
    };
    let mut runs = Vec::new();
    for &n in sizes {
        let requests = request_mix(n);
        let lines: Vec<String> = requests
            .iter()
            .map(|r| {
                format!(
                    r#"{{"network": "{}", "levels": {LEVELS}, "batch": {}}}"#,
                    NETS[(r.batch - 8) as usize % NETS.len()],
                    r.batch
                )
            })
            .collect();

        let engine = PlanEngine::new();
        eprintln!("plan_many cold/hot: {n} request(s)...");
        let cold = run_batch(&engine, &requests, "cold_plan_many");
        let hot = run_batch(&engine, &requests, "hot_plan_many");
        assert_eq!(
            cold.state_digest, hot.state_digest,
            "a cache hit must replay the cold plan bit-identically (plan_many, {n} requests)"
        );
        runs.push(cold);
        runs.push(hot);

        let engine = PlanEngine::new();
        eprintln!("service   cold/hot: {n} request(s)...");
        let cold = run_service(&engine, &lines, "cold_service");
        let hot = run_service(&engine, &lines, "hot_service");
        assert_eq!(
            cold.state_digest, hot.state_digest,
            "a cache hit must replay the cold plan bit-identically (service, {n} requests)"
        );
        runs.push(cold);
        runs.push(hot);
    }
    BenchDoc {
        schema: SCHEMA.to_owned(),
        mode: if short { "short" } else { "full" }.to_owned(),
        levels: LEVELS,
        workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        runs,
    }
}

/// Validates a saturation document: schema tag, required fields, sane
/// percentile ordering, and cold/hot cache behaviour.
fn check(value: &Value) -> Result<usize, String> {
    let schema = value.get("schema").and_then(Value::as_str);
    if schema != Some(SCHEMA) {
        return Err(format!("schema must be `{SCHEMA}`, got {schema:?}"));
    }
    let runs = value
        .get("runs")
        .and_then(Value::as_array)
        .ok_or("missing `runs` array")?;
    if runs.is_empty() {
        return Err("`runs` must not be empty".to_owned());
    }
    // (front-end, size) -> cold digest, to pin hot cells against.
    let mut cold_digests: Vec<((String, u64), String)> = Vec::new();
    for (i, run) in runs.iter().enumerate() {
        let ctx = |field: &str| format!("run {i}: bad `{field}`");
        let mode = run
            .get("mode")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("mode"))?;
        if !matches!(
            mode,
            "cold_plan_many" | "hot_plan_many" | "cold_service" | "hot_service"
        ) {
            return Err(format!("run {i}: unknown mode `{mode}`"));
        }
        let requests = run
            .get("requests")
            .and_then(Value::as_u64)
            .ok_or_else(|| ctx("requests"))?;
        let rps = run
            .get("requests_per_sec")
            .and_then(Value::as_f64)
            .ok_or_else(|| ctx("requests_per_sec"))?;
        if requests == 0 || !(rps.is_finite() && rps > 0.0) {
            return Err(format!(
                "run {i}: degenerate throughput ({requests} req, {rps}/s)"
            ));
        }
        let latency = run.get("latency").ok_or_else(|| ctx("latency"))?;
        let pct = |field: &str| {
            latency
                .get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| ctx(field))
        };
        let count = latency
            .get("count")
            .and_then(Value::as_u64)
            .ok_or_else(|| ctx("latency.count"))?;
        if count != requests {
            return Err(format!("run {i}: {count} samples for {requests} requests"));
        }
        let (p50, p90, p99, max) = (
            pct("p50_ms")?,
            pct("p90_ms")?,
            pct("p99_ms")?,
            pct("max_ms")?,
        );
        if !(p50 <= p90 && p90 <= p99 && p99 <= max) {
            return Err(format!(
                "run {i}: percentiles out of order ({p50} / {p90} / {p99} / {max})"
            ));
        }
        let digest = run
            .get("state_digest")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("state_digest"))?;
        if digest.len() != 16 || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("run {i}: malformed state_digest `{digest}`"));
        }
        let front_end = mode.trim_start_matches("cold_").trim_start_matches("hot_");
        let key = (front_end.to_owned(), requests);
        if mode.starts_with("cold") {
            cold_digests.push((key, digest.to_owned()));
        } else if let Some((_, cold)) = cold_digests.iter().find(|(k, _)| *k == key) {
            if cold != digest {
                return Err(format!(
                    "run {i}: hot digest {digest} disagrees with cold digest {cold} \
                     ({front_end}, {requests} requests) — cache replay drifted"
                ));
            }
        } else {
            return Err(format!("run {i}: hot cell without a matching cold cell"));
        }
        let cache_u64 = |field: &str| {
            run.get("cache")
                .and_then(|c| c.get(field))
                .and_then(Value::as_u64)
                .ok_or_else(|| ctx(field))
        };
        let hits = cache_u64("hits")?;
        let misses = cache_u64("misses")?;
        if mode.starts_with("cold") && hits != 0 {
            return Err(format!("run {i}: a cold cell recorded {hits} hit(s)"));
        }
        if mode.starts_with("hot") && hits < requests {
            return Err(format!(
                "run {i}: a hot cell must replay from cache ({hits} hit(s) of {requests})"
            ));
        }
        if hits + misses < requests {
            return Err(format!(
                "run {i}: {hits} + {misses} lookups for {requests} requests"
            ));
        }
    }
    Ok(runs.len())
}

fn main() -> ExitCode {
    let mut short = false;
    let mut out: Option<PathBuf> = None;
    let mut check_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--short" => short = true,
            "--out" => match args.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--out expects a file path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(path) => check_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--check expects a file path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("{}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let value: Value = match serde_json::from_str(&text) {
            Ok(value) => value,
            Err(err) => {
                eprintln!("{}: invalid JSON: {err}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match check(&value) {
            Ok(n) => {
                println!("{}: valid {SCHEMA} document, {n} run(s)", path.display());
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("{}: {err}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let doc = run_sweep(short);
    for run in &doc.runs {
        println!(
            "{:<16} {:>5} req  {:>10.1} req/s  p50 {:>8.3} ms  p99 {:>8.3} ms",
            run.mode, run.requests, run.requests_per_sec, run.latency.p50_ms, run.latency.p99_ms
        );
    }
    let path = out.unwrap_or_else(|| PathBuf::from("BENCH_engine.json"));
    let payload = match serde_json::to_string_pretty(&doc) {
        Ok(payload) => payload,
        Err(err) => {
            eprintln!("failed to serialize document: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(err) = std::fs::write(&path, payload) {
        eprintln!("failed to write {}: {err}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());
    ExitCode::SUCCESS
}
