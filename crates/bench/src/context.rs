//! Shared setup helpers for the experiments.

use std::sync::OnceLock;

use hypar_comm::{NetworkCommTensors, Parallelism};
use hypar_core::{evaluate::evaluate_plan, HierarchicalPlan};
use hypar_engine::PlanEngine;
use hypar_models::{zoo, NetworkShapes};

/// The paper's evaluation batch size (§6.1).
pub const PAPER_BATCH: u64 = 256;

/// The paper's hierarchy depth: four levels, sixteen accelerators.
pub const PAPER_LEVELS: usize = 4;

/// The shared planning engine behind the experiments.
///
/// One process-wide instance means every experiment (and every repetition
/// inside a benchmark loop) shares one plan cache: the Figure 11/12
/// campaigns re-evaluate overlapping `(network, strategy, levels)` points,
/// and repeated points are served in O(1) instead of re-planning and
/// re-simulating.
pub fn engine() -> &'static PlanEngine {
    static ENGINE: OnceLock<PlanEngine> = OnceLock::new();
    ENGINE.get_or_init(PlanEngine::new)
}

/// Inferred shapes for a zoo network.
///
/// # Panics
///
/// Panics on an unknown network name (the experiment registry only uses
/// zoo names).
#[must_use]
pub fn shapes(name: &str, batch: u64) -> NetworkShapes {
    let net = zoo::by_name(name).unwrap_or_else(|| panic!("unknown zoo network `{name}`"));
    NetworkShapes::infer(&net, batch).expect("zoo networks are valid")
}

/// Communication-model view for a zoo network.
#[must_use]
pub fn view(name: &str, batch: u64) -> NetworkCommTensors {
    NetworkCommTensors::from_shapes(&shapes(name, batch))
}

/// Wraps explicit per-level assignments into a costed [`HierarchicalPlan`]
/// (used by the Figure 9/10 sweeps to simulate arbitrary points).
#[must_use]
pub fn plan_from_levels(
    net: &NetworkCommTensors,
    levels: Vec<Vec<Parallelism>>,
) -> HierarchicalPlan {
    let total = evaluate_plan(net, &levels).total_elems();
    HierarchicalPlan::from_parts(
        net.name(),
        net.layers().iter().map(|l| l.name.clone()).collect(),
        levels,
        total,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_view_agree() {
        let s = shapes("Lenet-c", PAPER_BATCH);
        let v = view("Lenet-c", PAPER_BATCH);
        assert_eq!(s.len(), v.len());
        assert_eq!(v.batch(), PAPER_BATCH);
    }

    #[test]
    #[should_panic(expected = "unknown zoo network")]
    fn unknown_name_panics() {
        let _ = shapes("NopeNet", 1);
    }

    #[test]
    fn plan_from_levels_costs_with_the_model() {
        let net = view("Lenet-c", PAPER_BATCH);
        let levels = vec![vec![Parallelism::Data; 4]; 2];
        let plan = plan_from_levels(&net, levels.clone());
        assert_eq!(
            plan.total_comm_elems(),
            evaluate_plan(&net, &levels).total_elems()
        );
    }
}
