//! Ablations of the design choices DESIGN.md calls out — beyond the
//! paper's own evaluation:
//!
//! 1. **Junction scaling** — the paper leaves the hierarchical scope of
//!    the Table 2 junction tensor unspecified; how sensitive are the plans
//!    and the total communication to the interpretation?
//! 2. **Comm/compute overlap** — the paper's training step serializes
//!    communication behind each phase; how much would overlapping buy each
//!    scheme?
//! 3. **Greedy vs joint optimum** — Algorithm 2 optimizes level by level;
//!    how far is that from the joint optimum over all levels at once?

use hypar_comm::JunctionScaling;
use hypar_core::{baselines, exhaustive, hierarchical};
use hypar_graph::{partition_graph_with, zoo as graph_zoo};
use hypar_models::zoo;
use hypar_sim::{training, ArchConfig};
use serde::Serialize;

use crate::context::{shapes, view, PAPER_BATCH, PAPER_LEVELS};
use crate::report::{gigabytes, ratio, Table};

/// Junction-scaling sensitivity for one network.
#[derive(Clone, Debug, Serialize)]
pub struct JunctionRow {
    /// Network name.
    pub network: String,
    /// HyPar total communication (GB) when planning+costing under each
    /// interpretation: consumer (default), producer, unscaled.
    pub comm_gb: [f64; 3],
    /// Whether each alternative interpretation selects the identical plan
    /// to the consumer default: [producer, unscaled].
    pub same_plan: [bool; 2],
}

/// Overlap ablation for one network.
#[derive(Clone, Debug, Serialize)]
pub struct OverlapRow {
    /// Network name.
    pub network: String,
    /// Step-time speedup from enabling comm/compute overlap, for HyPar.
    pub hypar_speedup: f64,
    /// Step-time speedup from enabling overlap, for Data Parallelism.
    pub dp_speedup: f64,
}

/// Greedy-vs-joint gap for one small network.
#[derive(Clone, Debug, Serialize)]
pub struct GreedyRow {
    /// Network name.
    pub network: String,
    /// Hierarchy depth used (kept small so the joint space is enumerable).
    pub levels: usize,
    /// Greedy (Algorithm 2) total communication, elements.
    pub greedy: f64,
    /// Joint-optimum total communication, elements.
    pub joint: f64,
}

/// The full ablation dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Ablation {
    /// Junction-scaling sensitivity rows (all ten chain networks).
    pub junction: Vec<JunctionRow>,
    /// Junction-scaling sensitivity on the **branchy** zoo: the stitched
    /// DAG planner re-planned and re-priced (inter-segment junctions
    /// included) under each interpretation.
    pub junction_branchy: Vec<JunctionRow>,
    /// Overlap rows (all ten networks).
    pub overlap: Vec<OverlapRow>,
    /// Greedy-gap rows (small networks only).
    pub greedy: Vec<GreedyRow>,
}

/// Runs all three ablations.
#[must_use]
pub fn run() -> Ablation {
    let junction = zoo::NAMES
        .iter()
        .map(|name| {
            let net = view(name, PAPER_BATCH);
            let modes = [
                JunctionScaling::Consumer,
                JunctionScaling::Producer,
                JunctionScaling::Unscaled,
            ];
            let plans: Vec<_> = modes
                .iter()
                .map(|&m| hierarchical::partition_with(&net, PAPER_LEVELS, m))
                .collect();
            JunctionRow {
                network: (*name).to_owned(),
                comm_gb: [
                    plans[0].total_comm_bytes().gigabytes(),
                    plans[1].total_comm_bytes().gigabytes(),
                    plans[2].total_comm_bytes().gigabytes(),
                ],
                same_plan: [
                    plans[1].levels() == plans[0].levels(),
                    plans[2].levels() == plans[0].levels(),
                ],
            }
        })
        .collect();

    let junction_branchy = graph_zoo::NAMES
        .iter()
        .map(|name| {
            let graph = graph_zoo::by_name(name)
                .expect("zoo names resolve")
                .segments(PAPER_BATCH)
                .expect("zoo networks decompose");
            let modes = [
                JunctionScaling::Consumer,
                JunctionScaling::Producer,
                JunctionScaling::Unscaled,
            ];
            let plans: Vec<_> = modes
                .iter()
                .map(|&m| {
                    partition_graph_with(&graph, PAPER_LEVELS, m)
                        .expect("zoo segment graphs stitch")
                })
                .collect();
            JunctionRow {
                network: (*name).to_owned(),
                comm_gb: [
                    plans[0].total_comm_bytes().gigabytes(),
                    plans[1].total_comm_bytes().gigabytes(),
                    plans[2].total_comm_bytes().gigabytes(),
                ],
                same_plan: [
                    plans[1].levels() == plans[0].levels(),
                    plans[2].levels() == plans[0].levels(),
                ],
            }
        })
        .collect();

    let serial_cfg = ArchConfig::paper();
    let overlap_cfg = ArchConfig::paper().with_overlap(true);
    let overlap = zoo::NAMES
        .iter()
        .map(|name| {
            let shapes = shapes(name, PAPER_BATCH);
            let net = view(name, PAPER_BATCH);
            let hypar = hierarchical::partition(&net, PAPER_LEVELS);
            let dp = baselines::all_data(&net, PAPER_LEVELS);
            let speedup = |plan: &hypar_core::HierarchicalPlan| {
                let serial = training::simulate_step(&shapes, plan, &serial_cfg)
                    .expect("plan matches the network");
                let overlapped = training::simulate_step(&shapes, plan, &overlap_cfg)
                    .expect("plan matches the network");
                serial.step_time.value() / overlapped.step_time.value()
            };
            OverlapRow {
                network: (*name).to_owned(),
                hypar_speedup: speedup(&hypar),
                dp_speedup: speedup(&dp),
            }
        })
        .collect();

    let greedy = [
        ("SFC", 3usize),
        ("SCONV", 3),
        ("Lenet-c", 4),
        ("Cifar-c", 4),
    ]
    .iter()
    .map(|&(name, levels)| {
        let net = view(name, PAPER_BATCH);
        let greedy = hierarchical::partition(&net, levels).total_comm_elems();
        let (joint, _) =
            exhaustive::best_joint(&net, levels).expect("small networks fit the search bound");
        GreedyRow {
            network: name.to_owned(),
            levels,
            greedy,
            joint,
        }
    })
    .collect();

    Ablation {
        junction,
        junction_branchy,
        overlap,
        greedy,
    }
}

/// Renders the four ablation tables.
#[must_use]
pub fn render(a: &Ablation) -> String {
    let mut junction = Table::new(
        "Ablation 1: junction-scaling interpretation (HyPar comm, GB)",
        &[
            "network",
            "consumer",
            "producer",
            "unscaled",
            "same plan (prod/unscaled)",
        ],
    );
    for r in &a.junction {
        junction.row(&[
            r.network.clone(),
            gigabytes(r.comm_gb[0] * 1e9),
            gigabytes(r.comm_gb[1] * 1e9),
            gigabytes(r.comm_gb[2] * 1e9),
            format!("{}/{}", r.same_plan[0], r.same_plan[1]),
        ]);
    }

    let mut junction_branchy = Table::new(
        "Ablation 1b: junction-scaling interpretation on branchy DAGs (stitched HyPar comm, GB)",
        &[
            "network",
            "consumer",
            "producer",
            "unscaled",
            "same plan (prod/unscaled)",
        ],
    );
    for r in &a.junction_branchy {
        junction_branchy.row(&[
            r.network.clone(),
            gigabytes(r.comm_gb[0] * 1e9),
            gigabytes(r.comm_gb[1] * 1e9),
            gigabytes(r.comm_gb[2] * 1e9),
            format!("{}/{}", r.same_plan[0], r.same_plan[1]),
        ]);
    }

    let mut overlap = Table::new(
        "Ablation 2: comm/compute overlap (step-time speedup from overlapping)",
        &["network", "HyPar", "Data Par."],
    );
    for r in &a.overlap {
        overlap.row(&[
            r.network.clone(),
            ratio(r.hypar_speedup),
            ratio(r.dp_speedup),
        ]);
    }

    let mut greedy = Table::new(
        "Ablation 3: greedy per-level (Algorithm 2) vs joint optimum",
        &["network", "levels", "greedy/joint"],
    );
    for r in &a.greedy {
        greedy.row(&[
            r.network.clone(),
            r.levels.to_string(),
            format!("{:.4}", r.greedy / r.joint),
        ]);
    }

    format!("{junction}\n{junction_branchy}\n{overlap}\n{greedy}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> &'static Ablation {
        use std::sync::OnceLock;
        static DATA: OnceLock<Ablation> = OnceLock::new();
        DATA.get_or_init(run)
    }

    #[test]
    fn junction_interpretation_is_second_order() {
        // The intra-layer terms dominate; switching the junction scope must
        // not change total communication by more than ~2x anywhere, and
        // plans mostly coincide.
        let a = dataset();
        let mut same = 0;
        for r in &a.junction {
            let lo = r.comm_gb.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = r.comm_gb.iter().cloned().fold(0.0, f64::max);
            assert!(
                hi / lo < 2.0,
                "{}: junction interpretation changed comm {lo} -> {hi}",
                r.network
            );
            same += usize::from(r.same_plan[0]);
        }
        assert!(
            same >= 5,
            "most producer-scope plans should match consumer-scope plans"
        );
    }

    #[test]
    fn branchy_junction_interpretation_is_second_order_too() {
        // The DAG path now honors the JunctionScaling ablation: every
        // branchy zoo network gets re-planned and re-priced under each
        // interpretation, and — as on chains — the intra-layer terms
        // dominate.
        let a = dataset();
        assert_eq!(a.junction_branchy.len(), graph_zoo::NAMES.len());
        for r in &a.junction_branchy {
            let lo = r.comm_gb.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = r.comm_gb.iter().cloned().fold(0.0, f64::max);
            assert!(lo > 0.0, "{}", r.network);
            assert!(
                hi / lo < 2.0,
                "{}: junction interpretation changed comm {lo} -> {hi}",
                r.network
            );
        }
    }

    #[test]
    fn overlap_never_hurts_and_sometimes_matters() {
        // Overlap can only shorten the schedule. Notably it helps HyPar
        // *more* than DP on the big conv networks: DP's gradient traffic
        // exceeds the whole backward pass, so there is nothing to hide it
        // under, while HyPar's moderate traffic hides almost entirely.
        let a = dataset();
        let mut meaningful = 0;
        for r in &a.overlap {
            assert!(r.hypar_speedup >= 1.0 - 1e-9, "{}", r.network);
            assert!(r.dp_speedup >= 1.0 - 1e-9, "{}", r.network);
            if r.hypar_speedup > 1.2 || r.dp_speedup > 1.2 {
                meaningful += 1;
            }
        }
        assert!(
            meaningful >= 5,
            "overlap should matter for several networks"
        );
    }

    #[test]
    fn greedy_gap_is_small() {
        for r in &dataset().greedy {
            let gap = r.greedy / r.joint;
            assert!(
                (1.0..1.25).contains(&gap),
                "{}: greedy gap {gap}",
                r.network
            );
        }
    }

    #[test]
    fn render_emits_four_tables() {
        let text = render(dataset());
        assert_eq!(text.matches("Ablation").count(), 4);
        assert!(text.contains("branchy DAGs"));
    }
}
