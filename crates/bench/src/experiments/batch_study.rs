//! Batch-size study (extension of the paper's §6.5.2 discussion).
//!
//! The paper motivates Figure 13 with the observation that batch size
//! should be *chosen* — large for training throughput, small for
//! generalization — and that the best parallelism depends on it: the dp
//! cost `A(ΔW)` is batch-independent while the mp cost `A(F_{l+1})`
//! scales linearly with the batch.  This experiment sweeps the batch from
//! 32 to 4096 on VGG-A and reports how HyPar's plan and its advantage over
//! Data Parallelism shift.

use hypar_comm::{NetworkCommTensors, Parallelism};
use hypar_core::{baselines, hierarchical};
use hypar_models::{zoo, NetworkShapes};
use hypar_sim::{training, ArchConfig};
use serde::Serialize;

use crate::context::PAPER_LEVELS;
use crate::report::{ratio, Table};

/// One batch size.
#[derive(Clone, Debug, Serialize)]
pub struct BatchRow {
    /// Mini-batch size.
    pub batch: u64,
    /// Number of model-parallel choices in HyPar's plan (out of `L·H`).
    pub mp_choices: usize,
    /// HyPar performance normalized to Data Parallelism.
    pub speedup: f64,
    /// HyPar communication as a fraction of Data Parallelism's.
    pub comm_fraction: f64,
}

/// The batch-size study dataset.
#[derive(Clone, Debug, Serialize)]
pub struct BatchStudy {
    /// Network studied.
    pub network: String,
    /// Rows for batch 32..4096.
    pub rows: Vec<BatchRow>,
}

/// Runs the study on VGG-A.
#[must_use]
pub fn run() -> BatchStudy {
    run_for("VGG-A")
}

/// Runs the study for any zoo network.
#[must_use]
pub fn run_for(name: &str) -> BatchStudy {
    let network = zoo::by_name(name).expect("zoo network");
    let cfg = ArchConfig::paper();
    let rows = [32u64, 128, 256, 1024, 4096]
        .iter()
        .map(|&batch| {
            let shapes = NetworkShapes::infer(&network, batch).expect("valid network");
            let net = NetworkCommTensors::from_shapes(&shapes);
            let hypar = hierarchical::partition(&net, PAPER_LEVELS);
            let dp = baselines::all_data(&net, PAPER_LEVELS);
            let h_report =
                training::simulate_step(&shapes, &hypar, &cfg).expect("plan matches the network");
            let d_report =
                training::simulate_step(&shapes, &dp, &cfg).expect("plan matches the network");
            BatchRow {
                batch,
                mp_choices: hypar
                    .levels()
                    .iter()
                    .flatten()
                    .filter(|&&p| p == Parallelism::Model)
                    .count(),
                speedup: h_report.performance_gain_over(&d_report),
                comm_fraction: h_report.comm_bytes.value() / d_report.comm_bytes.value(),
            }
        })
        .collect();
    BatchStudy {
        network: name.to_owned(),
        rows,
    }
}

/// Renders the study.
#[must_use]
pub fn table(s: &BatchStudy) -> Table {
    let mut t = Table::new(
        format!("Batch-size study on {} (16 accelerators)", s.network),
        &["batch", "mp choices", "HyPar/DP perf", "HyPar/DP comm"],
    );
    for r in &s.rows {
        t.row(&[
            r.batch.to_string(),
            r.mp_choices.to_string(),
            ratio(r.speedup),
            format!("{:.3}", r.comm_fraction),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> &'static BatchStudy {
        use std::sync::OnceLock;
        static DATA: OnceLock<BatchStudy> = OnceLock::new();
        DATA.get_or_init(run)
    }

    #[test]
    fn small_batches_use_more_model_parallelism() {
        // A(F_out) shrinks with the batch, so mp becomes attractive for
        // more (layer, level) slots at small batches.
        let rows = &dataset().rows;
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(first.batch < last.batch);
        assert!(
            first.mp_choices >= last.mp_choices,
            "b{}: {} mp slots vs b{}: {}",
            first.batch,
            first.mp_choices,
            last.batch,
            last.mp_choices
        );
    }

    #[test]
    fn hypar_always_communicates_less_than_dp() {
        for r in &dataset().rows {
            assert!(
                r.comm_fraction <= 1.0 + 1e-12,
                "b{}: {}",
                r.batch,
                r.comm_fraction
            );
            assert!(r.speedup >= 1.0 - 1e-9, "b{}: {}", r.batch, r.speedup);
        }
    }

    #[test]
    fn covers_the_paper_batch_range() {
        let batches: Vec<u64> = dataset().rows.iter().map(|r| r.batch).collect();
        assert!(batches.contains(&32));
        assert!(batches.contains(&4096));
        assert!(batches.contains(&256));
    }
}
