//! Beyond the paper: hybrid parallelism on *branchy* (DAG) networks.
//!
//! The paper's evaluation stops at chain CNNs.  This experiment runs the
//! segment-stitched DAG planner (`hypar-graph`) over the branchy zoo —
//! a ResNet-18-style residual network and a small Inception-style
//! network — and compares HyPar's hybrid plan against the uniform
//! baselines under the identical communication model, inter-segment
//! junction traffic included.  On top of the analytic comparison it runs
//! the Figures 6–8-style validation: the discrete-event simulator
//! executes one whole-DAG training step (branch forwarding and join
//! gradient accumulation scheduled as junction tasks) for the hybrid plan
//! and its data-parallel baseline, reporting step time and energy.

use hypar_core::baselines;
use hypar_graph::{partition_graph, plan_segments, zoo};
use hypar_sim::{training, ArchConfig};
use serde::Serialize;

use crate::report::{ratio, Table};

/// One branchy network's comparison.
#[derive(Clone, Debug, Serialize)]
pub struct BranchyRow {
    /// Network name.
    pub network: String,
    /// Weighted layers.
    pub layers: usize,
    /// Chain segments the DAG decomposes into.
    pub segments: usize,
    /// Inter-segment junction edges.
    pub edges: usize,
    /// Total communication of one training step, in tensor elements.
    pub hybrid_elems: f64,
    /// Data Parallelism baseline, in elements.
    pub dp_elems: f64,
    /// Model Parallelism baseline, in elements.
    pub mp_elems: f64,
    /// "One weird trick" baseline, in elements.
    pub owt_elems: f64,
    /// dp / hybrid (× improvement; ≥ 1 means hybrid wins or ties).
    pub gain_over_dp: f64,
    /// min(dp, mp, owt) / hybrid.
    pub gain_over_best_baseline: f64,
    /// Simulated step time of the hybrid plan, in seconds.
    pub hybrid_step_seconds: f64,
    /// Simulated step time of the dp baseline, in seconds.
    pub dp_step_seconds: f64,
    /// Simulated step energy of the hybrid plan, in joules.
    pub hybrid_energy_joules: f64,
    /// Simulated step energy of the dp baseline, in joules.
    pub dp_energy_joules: f64,
    /// Simulated performance gain of hybrid over dp (Figure 6's metric).
    pub sim_gain_over_dp: f64,
    /// Simulated energy saving of hybrid over dp (Figure 7's metric).
    pub sim_energy_saving_over_dp: f64,
}

/// The branchy-zoo dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Branchy {
    /// Mini-batch size used throughout.
    pub batch: u64,
    /// Hierarchy depth used throughout.
    pub levels: usize,
    /// One row per branchy zoo network.
    pub rows: Vec<BranchyRow>,
}

/// Runs the comparison at the paper's evaluation setup (batch 256,
/// 16 accelerators).
///
/// # Panics
///
/// Panics if a zoo network fails to decompose or simulate (they are
/// validated at construction, so this indicates a bug).
#[must_use]
pub fn run() -> Branchy {
    let (batch, levels) = (256, 4);
    let cfg = ArchConfig::paper();
    let rows = zoo::NAMES
        .iter()
        .map(|name| {
            let dag = zoo::by_name(name).expect("zoo names resolve");
            let graph = dag.segments(batch).expect("zoo networks decompose");
            let hybrid_plan = partition_graph(&graph, levels).expect("zoo segment graphs stitch");
            let dp_plan = plan_segments(&graph, |s| baselines::all_data(s, levels))
                .expect("zoo segment graphs stitch");
            let hybrid = hybrid_plan.total_comm_elems();
            let dp = dp_plan.total_comm_elems();
            let mp = plan_segments(&graph, |s| baselines::all_model(s, levels))
                .expect("zoo segment graphs stitch")
                .total_comm_elems();
            let owt = plan_segments(&graph, |s| baselines::one_weird_trick(s, levels))
                .expect("zoo segment graphs stitch")
                .total_comm_elems();
            let hybrid_sim = training::simulate_graph_step(&graph, &hybrid_plan, &cfg)
                .expect("stitched plans cover the graph");
            let dp_sim = training::simulate_graph_step(&graph, &dp_plan, &cfg)
                .expect("stitched plans cover the graph");
            BranchyRow {
                network: (*name).to_owned(),
                layers: graph.num_layers(),
                segments: graph.num_segments(),
                edges: graph.edges().len(),
                hybrid_elems: hybrid,
                dp_elems: dp,
                mp_elems: mp,
                owt_elems: owt,
                gain_over_dp: dp / hybrid,
                gain_over_best_baseline: dp.min(mp).min(owt) / hybrid,
                hybrid_step_seconds: hybrid_sim.step_time.value(),
                dp_step_seconds: dp_sim.step_time.value(),
                hybrid_energy_joules: hybrid_sim.energy.value(),
                dp_energy_joules: dp_sim.energy.value(),
                sim_gain_over_dp: hybrid_sim.performance_gain_over(&dp_sim),
                sim_energy_saving_over_dp: hybrid_sim.energy_efficiency_over(&dp_sim),
            }
        })
        .collect();
    Branchy {
        batch,
        levels,
        rows,
    }
}

/// Renders the comparison.
#[must_use]
pub fn table(data: &Branchy) -> Table {
    let mut t = Table::new(
        format!(
            "Branchy zoo (DAG planner + simulator): hybrid vs baselines, B={} H={}",
            data.batch, data.levels
        ),
        &[
            "network",
            "layers",
            "segs",
            "edges",
            "hybrid GB",
            "dp GB",
            "vs dp",
            "vs best",
            "step ms",
            "dp step ms",
            "sim perf",
            "sim energy",
        ],
    );
    let gb = |elems: f64| format!("{:.3}", elems * 4.0 / 1e9);
    let ms = |seconds: f64| format!("{:.2}", seconds * 1e3);
    for r in &data.rows {
        t.row(&[
            r.network.clone(),
            r.layers.to_string(),
            r.segments.to_string(),
            r.edges.to_string(),
            gb(r.hybrid_elems),
            gb(r.dp_elems),
            ratio(r.gain_over_dp),
            ratio(r.gain_over_best_baseline),
            ms(r.hybrid_step_seconds),
            ms(r.dp_step_seconds),
            ratio(r.sim_gain_over_dp),
            ratio(r.sim_energy_saving_over_dp),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_branchy_zoo() {
        let data = run();
        assert_eq!(data.rows.len(), zoo::NAMES.len());
        for row in &data.rows {
            assert!(row.hybrid_elems > 0.0, "{}", row.network);
            assert!(
                row.hybrid_elems <= row.dp_elems.max(row.mp_elems),
                "{}: hybrid must not lose to both extremes",
                row.network
            );
            assert!(row.hybrid_step_seconds > 0.0, "{}", row.network);
            assert!(row.dp_step_seconds > 0.0, "{}", row.network);
            assert!(row.hybrid_energy_joules > 0.0, "{}", row.network);
        }
    }

    #[test]
    fn resnet_gains_are_substantial() {
        let data = run();
        let resnet = data.rows.iter().find(|r| r.network == "ResNet-18").unwrap();
        assert!(
            resnet.gain_over_dp > 1.0,
            "hybrid should beat dp on the residual network, got {}x",
            resnet.gain_over_dp
        );
        assert!(
            resnet.sim_gain_over_dp >= 1.0,
            "hybrid's simulated step should not lose to dp, got {}x",
            resnet.sim_gain_over_dp
        );
    }

    #[test]
    fn table_renders_every_row() {
        let data = run();
        let text = table(&data).to_string();
        for name in zoo::NAMES {
            assert!(text.contains(name), "{text}");
        }
    }
}
