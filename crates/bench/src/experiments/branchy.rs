//! Beyond the paper: hybrid parallelism on *branchy* (DAG) networks.
//!
//! The paper's evaluation stops at chain CNNs.  This experiment runs the
//! segment-stitched DAG planner (`hypar-graph`) over the branchy zoo —
//! a ResNet-18-style residual network and a small Inception-style
//! network — and compares HyPar's hybrid plan against the uniform
//! baselines under the identical communication model, inter-segment
//! junction traffic included.

use hypar_core::baselines;
use hypar_graph::{partition_graph, plan_segments, zoo};
use serde::Serialize;

use crate::report::{ratio, Table};

/// One branchy network's comparison.
#[derive(Clone, Debug, Serialize)]
pub struct BranchyRow {
    /// Network name.
    pub network: String,
    /// Weighted layers.
    pub layers: usize,
    /// Chain segments the DAG decomposes into.
    pub segments: usize,
    /// Inter-segment junction edges.
    pub edges: usize,
    /// Total communication of one training step, in tensor elements.
    pub hybrid_elems: f64,
    /// Data Parallelism baseline, in elements.
    pub dp_elems: f64,
    /// Model Parallelism baseline, in elements.
    pub mp_elems: f64,
    /// "One weird trick" baseline, in elements.
    pub owt_elems: f64,
    /// dp / hybrid (× improvement; ≥ 1 means hybrid wins or ties).
    pub gain_over_dp: f64,
    /// min(dp, mp, owt) / hybrid.
    pub gain_over_best_baseline: f64,
}

/// The branchy-zoo dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Branchy {
    /// Mini-batch size used throughout.
    pub batch: u64,
    /// Hierarchy depth used throughout.
    pub levels: usize,
    /// One row per branchy zoo network.
    pub rows: Vec<BranchyRow>,
}

/// Runs the comparison at the paper's evaluation setup (batch 256,
/// 16 accelerators).
///
/// # Panics
///
/// Panics if a zoo network fails to decompose (they are validated at
/// construction, so this indicates a bug).
#[must_use]
pub fn run() -> Branchy {
    let (batch, levels) = (256, 4);
    let rows = zoo::NAMES
        .iter()
        .map(|name| {
            let dag = zoo::by_name(name).expect("zoo names resolve");
            let graph = dag.segments(batch).expect("zoo networks decompose");
            let hybrid = partition_graph(&graph, levels).total_comm_elems();
            let dp = plan_segments(&graph, |s| baselines::all_data(s, levels)).total_comm_elems();
            let mp = plan_segments(&graph, |s| baselines::all_model(s, levels)).total_comm_elems();
            let owt =
                plan_segments(&graph, |s| baselines::one_weird_trick(s, levels)).total_comm_elems();
            BranchyRow {
                network: (*name).to_owned(),
                layers: graph.num_layers(),
                segments: graph.num_segments(),
                edges: graph.edges().len(),
                hybrid_elems: hybrid,
                dp_elems: dp,
                mp_elems: mp,
                owt_elems: owt,
                gain_over_dp: dp / hybrid,
                gain_over_best_baseline: dp.min(mp).min(owt) / hybrid,
            }
        })
        .collect();
    Branchy {
        batch,
        levels,
        rows,
    }
}

/// Renders the comparison.
#[must_use]
pub fn table(data: &Branchy) -> Table {
    let mut t = Table::new(
        format!(
            "Branchy zoo (DAG planner): hybrid vs baselines, B={} H={}",
            data.batch, data.levels
        ),
        &[
            "network",
            "layers",
            "segs",
            "edges",
            "hybrid GB",
            "dp GB",
            "mp GB",
            "vs dp",
            "vs best",
        ],
    );
    let gb = |elems: f64| format!("{:.3}", elems * 4.0 / 1e9);
    for r in &data.rows {
        t.row(&[
            r.network.clone(),
            r.layers.to_string(),
            r.segments.to_string(),
            r.edges.to_string(),
            gb(r.hybrid_elems),
            gb(r.dp_elems),
            gb(r.mp_elems),
            ratio(r.gain_over_dp),
            ratio(r.gain_over_best_baseline),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_branchy_zoo() {
        let data = run();
        assert_eq!(data.rows.len(), zoo::NAMES.len());
        for row in &data.rows {
            assert!(row.hybrid_elems > 0.0, "{}", row.network);
            assert!(
                row.hybrid_elems <= row.dp_elems.max(row.mp_elems),
                "{}: hybrid must not lose to both extremes",
                row.network
            );
        }
    }

    #[test]
    fn resnet_gains_are_substantial() {
        let data = run();
        let resnet = data.rows.iter().find(|r| r.network == "ResNet-18").unwrap();
        assert!(
            resnet.gain_over_dp > 1.0,
            "hybrid should beat dp on the residual network, got {}x",
            resnet.gain_over_dp
        );
    }

    #[test]
    fn table_renders_every_row() {
        let data = run();
        let text = table(&data).to_string();
        for name in zoo::NAMES {
            assert!(text.contains(name), "{text}");
        }
    }
}
