//! Figure 10: parallelism-space exploration for VGG-A.
//!
//! All layers keep HyPar's optimized choices except `conv5_2` and `fc1`,
//! whose parallelism is swept across all four hierarchy levels
//! (2^8 = 256 points).  The paper finds HyPar (4.97×) within 2% of the
//! sweep peak (5.05×) — the small gap is the price of optimizing total
//! communication as a proxy for performance, greedily per level.

use hypar_core::{baselines, hierarchical, sweep};
use hypar_sim::{training, ArchConfig};
use serde::Serialize;

use crate::context::{plan_from_levels, shapes, view, PAPER_BATCH, PAPER_LEVELS};
use crate::report::{ratio, Table};

/// One swept configuration.
#[derive(Clone, Debug, Serialize)]
pub struct Fig10Point {
    /// `conv5_2` choices at H1..H4 (`0` = dp, `1` = mp).
    pub conv5_2: String,
    /// `fc1` choices at H1..H4.
    pub fc1: String,
    /// Simulated performance normalized to Data Parallelism.
    pub perf: f64,
}

/// The Figure 10 dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Fig10 {
    /// All 256 swept points.
    pub points: Vec<Fig10Point>,
    /// The best-performing point.
    pub peak: Fig10Point,
    /// The point HyPar selects.
    pub hypar: Fig10Point,
}

fn layer_bits(plan_levels: &[Vec<hypar_comm::Parallelism>], layer: usize) -> String {
    plan_levels
        .iter()
        .map(|level| char::from(b'0' + level[layer].bit()))
        .collect()
}

/// Runs the 256-point sweep.
#[must_use]
pub fn run() -> Fig10 {
    let shapes = shapes("VGG-A", PAPER_BATCH);
    let net = view("VGG-A", PAPER_BATCH);
    let cfg = ArchConfig::paper();
    let base = hierarchical::partition(&net, PAPER_LEVELS);
    let dp = training::simulate_step(&shapes, &baselines::all_data(&net, PAPER_LEVELS), &cfg)
        .expect("plan matches the network");

    let conv5_2 = base
        .layer_names()
        .iter()
        .position(|n| n == "conv5_2")
        .expect("VGG-A has conv5_2");
    let fc1 = base
        .layer_names()
        .iter()
        .position(|n| n == "fc1")
        .expect("VGG-A has fc1");

    // Slots 0..4: conv5_2 at H1..H4; slots 4..8: fc1 at H1..H4.
    let slots: Vec<(usize, usize)> = (0..PAPER_LEVELS)
        .map(|h| (h, conv5_2))
        .chain((0..PAPER_LEVELS).map(|h| (h, fc1)))
        .collect();
    let swept = sweep::enumerate_overrides(&net, base.levels(), &slots);

    let points: Vec<Fig10Point> = std::thread::scope(|scope| {
        let handles: Vec<_> = swept
            .chunks(32)
            .map(|chunk| {
                let shapes = &shapes;
                let net = &net;
                let cfg = &cfg;
                let dp = &dp;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|point| {
                            let plan = plan_from_levels(net, point.levels.clone());
                            let report = training::simulate_step(shapes, &plan, cfg)
                                .expect("plan matches the network");
                            Fig10Point {
                                conv5_2: layer_bits(&point.levels, conv5_2),
                                fc1: layer_bits(&point.levels, fc1),
                                perf: report.performance_gain_over(dp),
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker"))
            .collect()
    });

    let peak = points
        .iter()
        .max_by(|a, b| a.perf.total_cmp(&b.perf))
        .expect("non-empty sweep")
        .clone();
    let hypar_conv = layer_bits(base.levels(), conv5_2);
    let hypar_fc = layer_bits(base.levels(), fc1);
    let hypar = points
        .iter()
        .find(|p| p.conv5_2 == hypar_conv && p.fc1 == hypar_fc)
        .expect("HyPar's plan is inside the swept space")
        .clone();
    Fig10 {
        points,
        peak,
        hypar,
    }
}

/// Renders the sweep summary.
#[must_use]
pub fn summary_table(fig: &Fig10) -> Table {
    let mut t = Table::new(
        "Figure 10: VGG-A parallelism space (conv5_2 x fc1 over H1..H4)",
        &["point", "conv5_2", "fc1", "perf vs DP"],
    );
    t.row(&[
        "peak".into(),
        fig.peak.conv5_2.clone(),
        fig.peak.fc1.clone(),
        ratio(fig.peak.perf),
    ]);
    t.row(&[
        "HyPar".into(),
        fig.hypar.conv5_2.clone(),
        fig.hypar.fc1.clone(),
        ratio(fig.hypar.perf),
    ]);
    let worst = fig
        .points
        .iter()
        .min_by(|a, b| a.perf.total_cmp(&b.perf))
        .expect("non-empty sweep");
    t.row(&[
        "worst".into(),
        worst.conv5_2.clone(),
        worst.fc1.clone(),
        ratio(worst.perf),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> &'static Fig10 {
        use std::sync::OnceLock;
        static DATA: OnceLock<Fig10> = OnceLock::new();
        DATA.get_or_init(run)
    }

    #[test]
    fn sweep_has_256_points() {
        assert_eq!(dataset().points.len(), 256);
    }

    #[test]
    fn hypar_is_close_to_the_peak() {
        // The paper's gap is 4.97 vs 5.05 (1.6%); allow a little more.
        let fig = dataset();
        assert!(
            fig.hypar.perf >= 0.93 * fig.peak.perf,
            "HyPar {} vs peak {}",
            fig.hypar.perf,
            fig.peak.perf
        );
    }

    #[test]
    fn fc1_prefers_all_mp_at_the_peak() {
        // Figure 10: the peak sits at fc1 = 1111.
        assert_eq!(dataset().peak.fc1, "1111");
    }

    #[test]
    fn hypar_beats_dp_substantially() {
        assert!(dataset().hypar.perf > 2.0);
    }
}
