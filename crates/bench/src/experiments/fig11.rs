//! Figure 11: scalability of HyPar vs Data Parallelism on VGG-A, from 1 to
//! 64 accelerators.
//!
//! Performance gains are normalized to a single accelerator; the second
//! series is the total communication per step.

use hypar_core::{baselines, hierarchical};
use hypar_sim::{training, ArchConfig};
use serde::Serialize;

use crate::context::{shapes, view, PAPER_BATCH};
use crate::report::{gigabytes, ratio, Table};

/// One array size.
#[derive(Clone, Debug, Serialize)]
pub struct Fig11Row {
    /// Number of accelerators (`2^H`).
    pub accelerators: u64,
    /// HyPar performance gain over one accelerator.
    pub hypar_gain: f64,
    /// Data Parallelism performance gain over one accelerator.
    pub dp_gain: f64,
    /// HyPar total communication per step, GB.
    pub hypar_comm_gb: f64,
    /// Data Parallelism total communication per step, GB.
    pub dp_comm_gb: f64,
}

/// The Figure 11 dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Fig11 {
    /// Rows for 1, 2, 4, ..., 64 accelerators.
    pub rows: Vec<Fig11Row>,
}

/// Runs the scalability study on VGG-A.
#[must_use]
pub fn run() -> Fig11 {
    run_for("VGG-A")
}

/// Runs the scalability study for any zoo network.
#[must_use]
pub fn run_for(name: &str) -> Fig11 {
    let shapes = shapes(name, PAPER_BATCH);
    let net = view(name, PAPER_BATCH);
    let cfg = ArchConfig::paper();
    let single = training::simulate_single_accelerator(&shapes, &cfg);

    let rows = (0..=6usize)
        .map(|levels| {
            let hypar = hierarchical::partition(&net, levels);
            let dp = baselines::all_data(&net, levels);
            let hypar_report = training::simulate_step(&shapes, &hypar, &cfg);
            let dp_report = training::simulate_step(&shapes, &dp, &cfg);
            Fig11Row {
                accelerators: 1 << levels,
                hypar_gain: hypar_report.performance_gain_over(&single),
                dp_gain: dp_report.performance_gain_over(&single),
                hypar_comm_gb: hypar_report.comm_bytes.gigabytes(),
                dp_comm_gb: dp_report.comm_bytes.gigabytes(),
            }
        })
        .collect();
    Fig11 { rows }
}

/// Renders the scalability table.
#[must_use]
pub fn table(fig: &Fig11) -> Table {
    let mut t = Table::new(
        "Figure 11: scalability on VGG-A (gain vs 1 accelerator; comm per step)",
        &["accels", "HyPar gain", "DP gain", "HyPar comm (GB)", "DP comm (GB)"],
    );
    for r in &fig.rows {
        t.row(&[
            r.accelerators.to_string(),
            ratio(r.hypar_gain),
            ratio(r.dp_gain),
            gigabytes(r.hypar_comm_gb * 1e9),
            gigabytes(r.dp_comm_gb * 1e9),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> &'static Fig11 {
        use std::sync::OnceLock;
        static DATA: OnceLock<Fig11> = OnceLock::new();
        DATA.get_or_init(run)
    }

    #[test]
    fn covers_1_to_64() {
        let accels: Vec<u64> = dataset().rows.iter().map(|r| r.accelerators).collect();
        assert_eq!(accels, vec![1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn hypar_always_at_least_matches_dp() {
        for r in &dataset().rows {
            assert!(
                r.hypar_gain >= r.dp_gain * (1.0 - 1e-9),
                "at {} accels: hypar {} vs dp {}",
                r.accelerators,
                r.hypar_gain,
                r.dp_gain
            );
            assert!(r.hypar_comm_gb <= r.dp_comm_gb + 1e-12);
        }
    }

    #[test]
    fn dp_gain_saturates_or_degrades_at_scale() {
        // The paper: DP's gain decreases beyond 8 accelerators.
        let rows = &dataset().rows;
        let dp_at = |n: u64| rows.iter().find(|r| r.accelerators == n).unwrap().dp_gain;
        assert!(dp_at(64) < dp_at(8) * 1.5, "DP should not keep scaling: {:?}",
            rows.iter().map(|r| r.dp_gain).collect::<Vec<_>>());
    }

    #[test]
    fn hypar_scales_further_than_dp() {
        let rows = &dataset().rows;
        let best_hypar = rows.iter().max_by(|a, b| a.hypar_gain.total_cmp(&b.hypar_gain)).unwrap();
        let best_dp = rows.iter().max_by(|a, b| a.dp_gain.total_cmp(&b.dp_gain)).unwrap();
        assert!(best_hypar.hypar_gain > best_dp.dp_gain);
        assert!(best_hypar.accelerators >= best_dp.accelerators);
    }

    #[test]
    fn single_accelerator_row_is_unity() {
        let first = &dataset().rows[0];
        assert!((first.hypar_gain - 1.0).abs() < 1e-9);
        assert!((first.dp_gain - 1.0).abs() < 1e-9);
        assert_eq!(first.hypar_comm_gb, 0.0);
    }
}
