//! Figure 11: scalability of HyPar vs Data Parallelism on VGG-A, from 1 to
//! 64 accelerators.
//!
//! Performance gains are normalized to a single accelerator; the second
//! series is the total communication per step.
//!
//! The campaign goes through the shared [`crate::context::engine`]: the
//! fourteen `(strategy, levels)` points are planned and simulated as one
//! parallel batch, and repeated runs (e.g. benchmark loops) are served
//! from the plan cache.

use hypar_engine::{PlanRequest, Strategy};
use hypar_sim::StepReport;
use serde::Serialize;

use crate::context::{engine, PAPER_BATCH};
use crate::report::{gigabytes, ratio, Table};

/// One array size.
#[derive(Clone, Debug, Serialize)]
pub struct Fig11Row {
    /// Number of accelerators (`2^H`).
    pub accelerators: u64,
    /// HyPar performance gain over one accelerator.
    pub hypar_gain: f64,
    /// Data Parallelism performance gain over one accelerator.
    pub dp_gain: f64,
    /// HyPar total communication per step, GB.
    pub hypar_comm_gb: f64,
    /// Data Parallelism total communication per step, GB.
    pub dp_comm_gb: f64,
}

/// The Figure 11 dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Fig11 {
    /// Rows for 1, 2, 4, ..., 64 accelerators.
    pub rows: Vec<Fig11Row>,
}

/// Runs the scalability study on VGG-A.
#[must_use]
pub fn run() -> Fig11 {
    run_for("VGG-A")
}

/// Runs the scalability study for any zoo network.
///
/// # Panics
///
/// Panics if the engine rejects a request (zoo sweeps are always valid).
#[must_use]
pub fn run_for(name: &str) -> Fig11 {
    let requests: Vec<PlanRequest> = (0..=6usize)
        .flat_map(|levels| {
            let base = PlanRequest::zoo(name)
                .batch(PAPER_BATCH)
                .levels(levels)
                .simulate(true);
            [base.clone(), base.strategy(Strategy::Dp)]
        })
        .collect();
    let simulations: Vec<StepReport> = engine()
        .plan_many(&requests)
        .into_iter()
        .map(|result| {
            result
                .expect("zoo sweeps plan")
                .simulation
                .expect("simulation requested")
        })
        .collect();

    // The levels = 0 plan runs the whole step on one accelerator: it is
    // the normalization baseline for both series.
    let single = simulations[0].clone();
    let rows = simulations
        .chunks(2)
        .enumerate()
        .map(|(levels, pair)| {
            let (hypar, dp) = (&pair[0], &pair[1]);
            Fig11Row {
                accelerators: 1 << levels,
                hypar_gain: hypar.performance_gain_over(&single),
                dp_gain: dp.performance_gain_over(&single),
                hypar_comm_gb: hypar.comm_bytes.gigabytes(),
                dp_comm_gb: dp.comm_bytes.gigabytes(),
            }
        })
        .collect();
    Fig11 { rows }
}

/// Renders the scalability table.
#[must_use]
pub fn table(fig: &Fig11) -> Table {
    let mut t = Table::new(
        "Figure 11: scalability on VGG-A (gain vs 1 accelerator; comm per step)",
        &[
            "accels",
            "HyPar gain",
            "DP gain",
            "HyPar comm (GB)",
            "DP comm (GB)",
        ],
    );
    for r in &fig.rows {
        t.row(&[
            r.accelerators.to_string(),
            ratio(r.hypar_gain),
            ratio(r.dp_gain),
            gigabytes(r.hypar_comm_gb * 1e9),
            gigabytes(r.dp_comm_gb * 1e9),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> &'static Fig11 {
        use std::sync::OnceLock;
        static DATA: OnceLock<Fig11> = OnceLock::new();
        DATA.get_or_init(run)
    }

    #[test]
    fn covers_1_to_64() {
        let accels: Vec<u64> = dataset().rows.iter().map(|r| r.accelerators).collect();
        assert_eq!(accels, vec![1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn hypar_always_at_least_matches_dp() {
        for r in &dataset().rows {
            assert!(
                r.hypar_gain >= r.dp_gain * (1.0 - 1e-9),
                "at {} accels: hypar {} vs dp {}",
                r.accelerators,
                r.hypar_gain,
                r.dp_gain
            );
            assert!(r.hypar_comm_gb <= r.dp_comm_gb + 1e-12);
        }
    }

    #[test]
    fn dp_gain_saturates_or_degrades_at_scale() {
        // The paper: DP's gain decreases beyond 8 accelerators.
        let rows = &dataset().rows;
        let dp_at = |n: u64| rows.iter().find(|r| r.accelerators == n).unwrap().dp_gain;
        assert!(
            dp_at(64) < dp_at(8) * 1.5,
            "DP should not keep scaling: {:?}",
            rows.iter().map(|r| r.dp_gain).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hypar_scales_further_than_dp() {
        let rows = &dataset().rows;
        let best_hypar = rows
            .iter()
            .max_by(|a, b| a.hypar_gain.total_cmp(&b.hypar_gain))
            .unwrap();
        let best_dp = rows
            .iter()
            .max_by(|a, b| a.dp_gain.total_cmp(&b.dp_gain))
            .unwrap();
        assert!(best_hypar.hypar_gain > best_dp.dp_gain);
        assert!(best_hypar.accelerators >= best_dp.accelerators);
    }

    #[test]
    fn single_accelerator_row_is_unity() {
        let first = &dataset().rows[0];
        assert!((first.hypar_gain - 1.0).abs() < 1e-9);
        assert!((first.dp_gain - 1.0).abs() < 1e-9);
        assert_eq!(first.hypar_comm_gb, 0.0);
    }
}
