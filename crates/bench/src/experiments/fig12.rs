//! Figure 12: H-tree vs torus topology under HyPar's optimized plans.
//!
//! Both series use HyPar's per-layer parallelisms; only the interconnect
//! differs.  Performance is normalized to Data Parallelism on the H-tree
//! (the paper's standard baseline).
//!
//! All thirty `(network, strategy, topology)` simulations run as one
//! parallel batch through the shared [`crate::context::engine`]; the
//! HyPar-on-H-tree and DP-on-H-tree points overlap with the Figure 6-8
//! campaign, so a combined run serves them from the plan cache.

use hypar_engine::{PlanRequest, Strategy};
use hypar_models::zoo;
use hypar_sim::{StepReport, Topology};
use serde::Serialize;

use crate::context::{engine, PAPER_BATCH, PAPER_LEVELS};
use crate::report::{gmean, ratio, Table};

/// One network's topology comparison.
#[derive(Clone, Debug, Serialize)]
pub struct Fig12Row {
    /// Network name.
    pub network: String,
    /// HyPar-on-torus performance normalized to Data Parallelism.
    pub torus: f64,
    /// HyPar-on-H-tree performance normalized to Data Parallelism.
    pub htree: f64,
}

/// The Figure 12 dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Fig12 {
    /// Per-network rows.
    pub rows: Vec<Fig12Row>,
    /// Geometric means (torus, H-tree).
    pub gmean: (f64, f64),
}

/// Runs the topology comparison over the ten networks.
///
/// # Panics
///
/// Panics if the engine rejects a request (zoo sweeps are always valid).
#[must_use]
pub fn run() -> Fig12 {
    let requests: Vec<PlanRequest> = zoo::NAMES
        .iter()
        .flat_map(|name| {
            let base = PlanRequest::zoo(*name)
                .batch(PAPER_BATCH)
                .levels(PAPER_LEVELS)
                .simulate(true);
            [
                base.clone(),                           // HyPar on the H-tree
                base.clone().topology(Topology::Torus), // HyPar on the torus
                base.strategy(Strategy::Dp),            // the DP baseline
            ]
        })
        .collect();
    let simulations: Vec<StepReport> = engine()
        .plan_many(&requests)
        .into_iter()
        .map(|result| {
            result
                .expect("zoo sweeps plan")
                .simulation
                .expect("simulation requested")
        })
        .collect();

    let rows: Vec<Fig12Row> = zoo::NAMES
        .iter()
        .zip(simulations.chunks(3))
        .map(|(name, sims)| {
            let (on_htree, on_torus, dp_htree) = (&sims[0], &sims[1], &sims[2]);
            Fig12Row {
                network: (*name).to_owned(),
                torus: on_torus.performance_gain_over(dp_htree),
                htree: on_htree.performance_gain_over(dp_htree),
            }
        })
        .collect();

    let gm = (
        gmean(&rows.iter().map(|r| r.torus).collect::<Vec<_>>()),
        gmean(&rows.iter().map(|r| r.htree).collect::<Vec<_>>()),
    );
    Fig12 { rows, gmean: gm }
}

/// Renders the topology comparison.
#[must_use]
pub fn table(fig: &Fig12) -> Table {
    let mut t = Table::new(
        "Figure 12: performance of torus and H tree (normalized to Data Parallelism)",
        &["network", "Torus", "H Tree"],
    );
    for r in &fig.rows {
        t.row(&[r.network.clone(), ratio(r.torus), ratio(r.htree)]);
    }
    t.row(&["Gmean".into(), ratio(fig.gmean.0), ratio(fig.gmean.1)]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> &'static Fig12 {
        use std::sync::OnceLock;
        static DATA: OnceLock<Fig12> = OnceLock::new();
        DATA.get_or_init(run)
    }

    #[test]
    fn htree_wins_on_gmean() {
        let fig = dataset();
        assert!(
            fig.gmean.1 > fig.gmean.0,
            "H-tree {} vs torus {}",
            fig.gmean.1,
            fig.gmean.0
        );
    }

    #[test]
    fn htree_at_least_matches_torus_per_network() {
        for r in &dataset().rows {
            assert!(r.htree >= r.torus * (1.0 - 1e-9), "{}", r.network);
        }
    }

    #[test]
    fn sfc_is_an_order_of_magnitude_on_both_topologies() {
        // "For SFC, both the two typologies have a speedup of more than
        // 10x" — our torus lands just under (9.7x); assert the order of
        // magnitude rather than the exact paper threshold.
        let sfc = dataset().rows.iter().find(|r| r.network == "SFC").unwrap();
        assert!(sfc.torus > 8.0, "torus {}", sfc.torus);
        assert!(sfc.htree > 10.0, "htree {}", sfc.htree);
    }

    #[test]
    fn rows_cover_the_zoo() {
        assert_eq!(dataset().rows.len(), 10);
    }
}
