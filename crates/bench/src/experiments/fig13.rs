//! Figure 13: HyPar vs Krizhevsky's "one weird trick" on single layers.
//!
//! The paper isolates `conv5` and `fc3` of VGG-E as one-layer workloads:
//! `conv5` at the small accuracy-friendly batch 32, `fc3` at the large
//! throughput-friendly batch 4096, each under hierarchies of 2, 3 and 4
//! levels.  The trick fixes conv→dp and fc→mp at every level; HyPar's
//! scale-aware search flips parallelism at deep levels once the per-group
//! batch has shrunk (§6.5.2), which is where its advantage comes from.

use hypar_core::{baselines, hierarchical};
use hypar_models::{ConvSpec, Network, NetworkShapes};
use hypar_sim::{training, ArchConfig};
use hypar_tensor::FeatureDims;
use serde::Serialize;

use crate::report::{gmean, ratio, Table};

/// One workload × hierarchy configuration.
#[derive(Clone, Debug, Serialize)]
pub struct Fig13Row {
    /// Label in the paper's format, e.g. `conv5-b32-h4`.
    pub label: String,
    /// HyPar performance relative to the trick.
    pub perf: f64,
    /// HyPar energy efficiency relative to the trick.
    pub energy: f64,
    /// HyPar's per-level choices for the layer (H1 first).
    pub hypar_bits: String,
    /// The trick's per-level choices.
    pub trick_bits: String,
}

/// The Figure 13 dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Fig13 {
    /// The six configuration rows.
    pub rows: Vec<Fig13Row>,
    /// Geometric means of (perf, energy).
    pub gmean: (f64, f64),
}

/// VGG-E's `conv5` block layer as a standalone workload: 3×3×512×512 on
/// 14×14 maps (`A(ΔW) = 2,359,296`, matching §6.5.2).
#[must_use]
pub fn conv5_network() -> Network {
    Network::builder("conv5", FeatureDims::new(512, 14, 14))
        .conv("conv5", ConvSpec::same(512, 3))
        .build()
        .expect("conv5 is a valid single-layer network")
}

/// VGG-E's `fc3` as a standalone workload: 4096 → 1000.
#[must_use]
pub fn fc3_network() -> Network {
    Network::builder("fc3", FeatureDims::flat(4096))
        .fully_connected("fc3", 1000)
        .build()
        .expect("fc3 is a valid single-layer network")
}

/// Runs the six configurations.
#[must_use]
pub fn run() -> Fig13 {
    let cfg = ArchConfig::paper();
    let cases: [(&str, Network, u64); 2] = [
        ("conv5-b32", conv5_network(), 32),
        ("fc3-b4096", fc3_network(), 4096),
    ];

    let mut rows = Vec::new();
    for (label, network, batch) in &cases {
        for levels in [2usize, 3, 4] {
            let shapes = NetworkShapes::infer(network, *batch).expect("valid network");
            let net = hypar_comm::NetworkCommTensors::from_shapes(&shapes);
            let hypar = hierarchical::partition(&net, levels);
            let trick = baselines::one_weird_trick(&net, levels);
            let hypar_report =
                training::simulate_step(&shapes, &hypar, &cfg).expect("plan matches the network");
            let trick_report =
                training::simulate_step(&shapes, &trick, &cfg).expect("plan matches the network");
            rows.push(Fig13Row {
                label: format!("{label}-h{levels}"),
                perf: hypar_report.performance_gain_over(&trick_report),
                energy: hypar_report.energy_efficiency_over(&trick_report),
                hypar_bits: (0..levels)
                    .map(|h| char::from(b'0' + hypar.choice(h, 0).bit()))
                    .collect(),
                trick_bits: (0..levels)
                    .map(|h| char::from(b'0' + trick.choice(h, 0).bit()))
                    .collect(),
            });
        }
    }

    let gm = (
        gmean(&rows.iter().map(|r| r.perf).collect::<Vec<_>>()),
        gmean(&rows.iter().map(|r| r.energy).collect::<Vec<_>>()),
    );
    Fig13 { rows, gmean: gm }
}

/// Renders the comparison.
#[must_use]
pub fn table(fig: &Fig13) -> Table {
    let mut t = Table::new(
        "Figure 13: HyPar vs the trick [Krizhevsky 2014]",
        &["config", "perf", "energy eff.", "HyPar plan", "trick plan"],
    );
    for r in &fig.rows {
        t.row(&[
            r.label.clone(),
            ratio(r.perf),
            ratio(r.energy),
            r.hypar_bits.clone(),
            r.trick_bits.clone(),
        ]);
    }
    t.row(&[
        "Gmean".into(),
        ratio(fig.gmean.0),
        ratio(fig.gmean.1),
        String::new(),
        String::new(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> &'static Fig13 {
        use std::sync::OnceLock;
        static DATA: OnceLock<Fig13> = OnceLock::new();
        DATA.get_or_init(run)
    }

    #[test]
    fn conv5_tensor_sizes_match_section_652() {
        let shapes = NetworkShapes::infer(&conv5_network(), 32).unwrap();
        assert_eq!(shapes.layer(0).weight_elems, 2_359_296);
        assert_eq!(shapes.layer(0).f_out_elems(), 3_211_264);
        let fc3 = NetworkShapes::infer(&fc3_network(), 4096).unwrap();
        assert_eq!(fc3.layer(0).weight_elems, 4_096_000);
        assert_eq!(fc3.layer(0).f_out_elems(), 4_096_000);
    }

    #[test]
    fn hypar_never_loses_to_the_trick() {
        for r in &dataset().rows {
            assert!(r.perf >= 1.0 - 1e-9, "{}: perf {}", r.label, r.perf);
            assert!(r.energy >= 1.0 - 1e-9, "{}: energy {}", r.label, r.energy);
        }
    }

    #[test]
    fn deeper_hierarchies_widen_the_conv5_gap() {
        // Figure 13: conv5-b32 gains grow with hierarchy depth (1.16 ->
        // 1.54 -> 2.20 in the paper).
        let perf_at = |label: &str| {
            dataset()
                .rows
                .iter()
                .find(|r| r.label == label)
                .unwrap()
                .perf
        };
        assert!(perf_at("conv5-b32-h3") >= perf_at("conv5-b32-h2"));
        assert!(perf_at("conv5-b32-h4") >= perf_at("conv5-b32-h3"));
    }

    #[test]
    fn hypar_flips_parallelism_at_deep_levels() {
        // §6.5.2: with the batch halved by upper dp levels, conv5 flips to
        // mp somewhere below the top.
        let h4 = dataset()
            .rows
            .iter()
            .find(|r| r.label == "conv5-b32-h4")
            .unwrap();
        assert_eq!(h4.trick_bits, "0000");
        assert!(h4.hypar_bits.contains('1'), "HyPar plan {}", h4.hypar_bits);
    }

    #[test]
    fn gmean_shows_an_overall_win() {
        let fig = dataset();
        assert!(fig.gmean.0 > 1.0);
        assert!(fig.gmean.1 >= 1.0);
    }
}
