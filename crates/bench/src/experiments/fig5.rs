//! Figure 5: the optimized parallelism of every weighted layer at all four
//! hierarchy levels, for the ten evaluation networks.

use hypar_core::{hierarchical, HierarchicalPlan};
use hypar_models::zoo;
use serde::Serialize;

use crate::context::{view, PAPER_BATCH, PAPER_LEVELS};

/// The ten optimized plans of Figure 5.
#[derive(Clone, Debug, Serialize)]
pub struct Fig5 {
    /// One plan per zoo network, in the paper's order.
    pub plans: Vec<HierarchicalPlan>,
}

/// Runs the HyPar partition for all ten networks at the paper's batch size
/// and hierarchy depth.
#[must_use]
pub fn run() -> Fig5 {
    let plans = zoo::NAMES
        .iter()
        .map(|name| hierarchical::partition(&view(name, PAPER_BATCH), PAPER_LEVELS))
        .collect();
    Fig5 { plans }
}

/// Renders every plan as the Figure-5-style dp/mp grid.
#[must_use]
pub fn render(fig: &Fig5) -> String {
    let mut out =
        String::from("== Figure 5: optimized parallelisms (dp/mp per layer per level) ==\n");
    for plan in &fig.plans {
        out.push('\n');
        out.push_str(&plan.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypar_comm::Parallelism::{Data, Model};

    #[test]
    fn ten_plans_with_four_levels() {
        let fig = run();
        assert_eq!(fig.plans.len(), 10);
        assert!(fig.plans.iter().all(|p| p.num_levels() == 4));
    }

    #[test]
    fn figure5_qualitative_pattern_holds() {
        let fig = run();
        // SCONV (index 1): all dp. SFC (index 0): top level all mp except
        // possibly the last tiny layer.
        assert!(fig.plans[1].levels().iter().flatten().all(|&p| p == Data));
        assert_eq!(fig.plans[0].choice(0, 0), Model);
        // Every VGG: conv1_1 dp at H1, fc1 mp at H1.
        for plan in &fig.plans[5..] {
            assert_eq!(plan.choice(0, 0), Data, "{}", plan.network());
            let fc1 = plan
                .layer_names()
                .iter()
                .position(|n| n == "fc1")
                .expect("VGG has fc1");
            assert_eq!(plan.choice(0, fc1), Model, "{}", plan.network());
        }
    }

    #[test]
    fn render_contains_every_network() {
        let text = render(&run());
        for name in zoo::NAMES {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
