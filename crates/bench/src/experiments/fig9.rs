//! Figure 9: parallelism-space exploration for Lenet-c.
//!
//! H2 and H3 are fixed to HyPar's optimized choices; all four layers at H1
//! and H4 are swept (2^8 = 256 points).  Each point is simulated and its
//! performance normalized to Data Parallelism.

use hypar_core::{baselines, hierarchical, sweep};
use hypar_sim::{training, ArchConfig};
use serde::Serialize;

use crate::context::{plan_from_levels, shapes, view, PAPER_BATCH, PAPER_LEVELS};
use crate::report::{ratio, Table};

/// One swept configuration.
#[derive(Clone, Debug, Serialize)]
pub struct Fig9Point {
    /// Bit pattern of the four layers at H1 (`0` = dp, `1` = mp, conv1
    /// first).
    pub h1: String,
    /// Bit pattern at H4.
    pub h4: String,
    /// Simulated performance normalized to Data Parallelism.
    pub perf: f64,
}

/// The Figure 9 dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Fig9 {
    /// All 256 swept points, in slot-bit order.
    pub points: Vec<Fig9Point>,
    /// The best-performing point.
    pub peak: Fig9Point,
    /// The point HyPar's partition algorithm selects.
    pub hypar: Fig9Point,
}

/// Runs the 256-point sweep.
#[must_use]
pub fn run() -> Fig9 {
    let shapes = shapes("Lenet-c", PAPER_BATCH);
    let net = view("Lenet-c", PAPER_BATCH);
    let cfg = ArchConfig::paper();
    let base = hierarchical::partition(&net, PAPER_LEVELS);
    let dp = training::simulate_step(&shapes, &baselines::all_data(&net, PAPER_LEVELS), &cfg)
        .expect("plan matches the network");

    let slots: Vec<(usize, usize)> = (0..net.len())
        .map(|l| (0, l))
        .chain((0..net.len()).map(|l| (3, l)))
        .collect();
    let swept = sweep::enumerate_overrides(&net, base.levels(), &slots);

    let points: Vec<Fig9Point> = std::thread::scope(|scope| {
        let handles: Vec<_> = swept
            .chunks(32)
            .map(|chunk| {
                let shapes = &shapes;
                let net = &net;
                let cfg = &cfg;
                let dp = &dp;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|point| {
                            let plan = plan_from_levels(net, point.levels.clone());
                            let report = training::simulate_step(shapes, &plan, cfg)
                                .expect("plan matches the network");
                            Fig9Point {
                                h1: plan.level_bits(0),
                                h4: plan.level_bits(3),
                                perf: report.performance_gain_over(dp),
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker"))
            .collect()
    });

    let peak = points
        .iter()
        .max_by(|a, b| a.perf.total_cmp(&b.perf))
        .expect("non-empty sweep")
        .clone();
    let hypar = points
        .iter()
        .find(|p| p.h1 == base.level_bits(0) && p.h4 == base.level_bits(3))
        .expect("HyPar's plan is inside the swept space")
        .clone();
    Fig9 {
        points,
        peak,
        hypar,
    }
}

/// Renders the sweep summary (peak, HyPar point, and the extremes).
#[must_use]
pub fn summary_table(fig: &Fig9) -> Table {
    let mut t = Table::new(
        "Figure 9: Lenet-c parallelism space (H1 x H4 sweep, H2/H3 fixed)",
        &["point", "H1", "H4", "perf vs DP"],
    );
    t.row(&[
        "peak".into(),
        fig.peak.h1.clone(),
        fig.peak.h4.clone(),
        ratio(fig.peak.perf),
    ]);
    t.row(&[
        "HyPar".into(),
        fig.hypar.h1.clone(),
        fig.hypar.h4.clone(),
        ratio(fig.hypar.perf),
    ]);
    let worst = fig
        .points
        .iter()
        .min_by(|a, b| a.perf.total_cmp(&b.perf))
        .expect("non-empty sweep");
    t.row(&[
        "worst".into(),
        worst.h1.clone(),
        worst.h4.clone(),
        ratio(worst.perf),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> &'static Fig9 {
        use std::sync::OnceLock;
        static DATA: OnceLock<Fig9> = OnceLock::new();
        DATA.get_or_init(run)
    }

    #[test]
    fn sweep_has_256_points() {
        assert_eq!(dataset().points.len(), 256);
    }

    #[test]
    fn hypar_is_at_or_near_the_peak() {
        // Figure 9: HyPar's choice coincides with the sweep peak (3.05x).
        let fig = dataset();
        assert!(
            fig.hypar.perf >= 0.97 * fig.peak.perf,
            "HyPar {} vs peak {}",
            fig.hypar.perf,
            fig.peak.perf
        );
    }

    #[test]
    fn peak_has_conv_dp_fc_mp_shape() {
        // Both conv layers dp and fc1 mp at H1; the tiny fc2 (5,000
        // weights) ties between dp and mp and is left free.
        let peak = &dataset().peak;
        assert!(
            peak.h1.starts_with("001"),
            "peak H1 should be 001x: {}",
            peak.h1
        );
    }

    #[test]
    fn all_dp_point_is_baseline() {
        // The all-dp point at H1/H4 with optimized H2/H3 is near 1x or
        // better; the worst point should be clearly below the peak.
        let fig = dataset();
        let worst = fig
            .points
            .iter()
            .map(|p| p.perf)
            .fold(f64::INFINITY, f64::min);
        assert!(worst < fig.peak.perf * 0.8);
    }
}
