//! Beyond the paper: the stitched DAG planner's **greedy gap** on branchy
//! networks — and how much of it the junction-aware refinement recovers.
//!
//! Figures 9/10 quantify how far Algorithm 2's level-by-level recursion
//! sits from the joint optimum on chains.  The segment-stitched DAG
//! planner (`hypar_graph::partition_graph`) is greedy in a second
//! direction as well — each segment is planned blind to the junction
//! traffic between segments — so this experiment compares **three**
//! planners over a zoo of *trimmed* residual/Inception-style networks
//! small enough to enumerate (`L·H ≤ 24`, the same feasibility bound the
//! chain search uses):
//!
//! * **stitched** — `partition_graph`, the production greedy planner;
//! * **refined** — `partition_graph_refined`, the polynomial
//!   coordinate-descent pass seeded from the stitched plan;
//! * **joint** — `best_joint_graph`, the exponential exhaustive optimum.
//!
//! The refined planner has no slot limit, so the experiment also runs it
//! on ResNet-18 (84 slots at `H = 4`), where the exhaustive search is a
//! typed rejection.

use hypar_graph::{
    best_joint_graph, partition_graph, partition_graph_refined, zoo, GraphBuilder,
    SegmentCommGraph, INPUT,
};
use hypar_models::ConvSpec;
use hypar_tensor::FeatureDims;
use serde::Serialize;

use crate::report::{ratio, Table};

/// The mini-batch size of the small-branchy zoo (kept modest: the joint
/// space, not the tensors, is the bottleneck).
pub const BATCH: u64 = 64;

/// One trimmed branchy network's stitched / refined / joint comparison.
#[derive(Clone, Debug, Serialize)]
pub struct GreedyGapRow {
    /// Network name.
    pub network: String,
    /// Weighted layers `L`.
    pub layers: usize,
    /// Chain segments the DAG decomposes into.
    pub segments: usize,
    /// Inter-segment junction edges.
    pub edges: usize,
    /// Hierarchy depth `H`.
    pub levels: usize,
    /// Joint search space exponent (`L·H`).
    pub slots: usize,
    /// Stitched greedy plan (`partition_graph`) total, in elements.
    pub stitched_elems: f64,
    /// Refined plan (`partition_graph_refined`) total, in elements.
    pub refined_elems: f64,
    /// Joint optimum (`best_joint_graph`) total, in elements.
    pub joint_elems: f64,
    /// `stitched / joint` (≥ 1; 1.0 means the greedy stitch is optimal).
    pub stitched_gap: f64,
    /// `refined / joint` (≥ 1; 1.0 means refinement reached the optimum).
    pub refined_gap: f64,
}

/// The refined planner beyond the enumeration bound: ResNet-18, where
/// `strategy: exhaustive` is a typed rejection but refinement just runs.
#[derive(Clone, Debug, Serialize)]
pub struct UnboundedRow {
    /// Network name.
    pub network: String,
    /// Weighted layers `L`.
    pub layers: usize,
    /// Hierarchy depth `H`.
    pub levels: usize,
    /// `L·H` — beyond the 24-slot exhaustive feasibility bound.
    pub slots: usize,
    /// Stitched greedy plan total, in elements.
    pub stitched_elems: f64,
    /// Refined plan total, in elements.
    pub refined_elems: f64,
    /// `stitched / refined` (≥ 1): the gap refinement recovered where no
    /// joint certificate exists.
    pub recovered: f64,
    /// The typed error `best_joint_graph` returns at this size.
    pub exhaustive_rejection: String,
}

/// The greedy-gap dataset.
#[derive(Clone, Debug, Serialize)]
pub struct GreedyGapBranchy {
    /// Mini-batch size used throughout.
    pub batch: u64,
    /// One row per trimmed branchy network (joint-certified).
    pub rows: Vec<GreedyGapRow>,
    /// The beyond-the-bound demonstration row.
    pub unbounded: UnboundedRow,
}

/// A single residual block — the smallest branchy shape: stem and body
/// convolutions `add`-joined into a classifier (3 layers, 3 segments).
fn tiny_res() -> SegmentCommGraph {
    let mut g = GraphBuilder::new("Tiny-Res", FeatureDims::new(8, 16, 16));
    g.conv("stem", ConvSpec::same(8, 3), INPUT)
        .conv("body", ConvSpec::same(8, 3), "stem")
        .add("join", &["stem", "body"])
        .fully_connected("fc", 10, "join");
    g.build().expect("valid graph").segments(BATCH).expect("ok")
}

/// A downsampling residual block with a 1×1 projection skip — the
/// ResNet stage-entry pattern (4 layers, 4 segments).
fn res_proj() -> SegmentCommGraph {
    let mut g = GraphBuilder::new("Res-Proj", FeatureDims::new(8, 16, 16));
    g.conv("stem", ConvSpec::same(8, 3), INPUT)
        .conv(
            "body",
            ConvSpec {
                out_channels: 16,
                kernel: 3,
                stride: 2,
                padding: 1,
            },
            "stem",
        )
        .conv(
            "proj",
            ConvSpec {
                out_channels: 16,
                kernel: 1,
                stride: 2,
                padding: 0,
            },
            "stem",
        )
        .add("join", &["body", "proj"])
        .fully_connected("fc", 10, "join");
    g.build().expect("valid graph").segments(BATCH).expect("ok")
}

/// A trimmed Inception module: two convolution branches concatenated into
/// a classifier (4 layers, 4 segments).
fn inception_trim() -> SegmentCommGraph {
    let mut g = GraphBuilder::new("Inception-Trim", FeatureDims::new(8, 16, 16));
    g.conv("stem", ConvSpec::same(16, 3), INPUT)
        .conv("b1x1", ConvSpec::same(8, 1), "stem")
        .conv("b3x3", ConvSpec::same(8, 3), "stem")
        .concat("mixed", &["b1x1", "b3x3"])
        .fully_connected("fc", 10, "mixed");
    g.build().expect("valid graph").segments(BATCH).expect("ok")
}

/// Two stacked residual blocks with two-convolution bodies — the deepest
/// trimmed net, sized to the enumeration boundary at `H = 3` (6 layers,
/// 18 slots).
fn res_pair() -> SegmentCommGraph {
    let mut g = GraphBuilder::new("Res-Pair", FeatureDims::new(8, 8, 8));
    g.conv("stem", ConvSpec::same(8, 3), INPUT)
        .conv("b1_a", ConvSpec::same(8, 3), "stem")
        .conv("b1_b", ConvSpec::same(8, 3), "b1_a")
        .add("b1", &["b1_b", "stem"])
        .conv("b2_a", ConvSpec::same(8, 3), "b1")
        .conv("b2_b", ConvSpec::same(8, 3), "b2_a")
        .add("b2", &["b2_b", "b1"])
        .fully_connected("fc", 10, "b2");
    g.build().expect("valid graph").segments(BATCH).expect("ok")
}

/// The small-branchy zoo: every graph with the hierarchy depth it is
/// enumerated at (`L·H ≤ 24`).
fn small_zoo() -> Vec<(SegmentCommGraph, usize)> {
    vec![
        (tiny_res(), 4),       // 12 slots
        (res_proj(), 4),       // 16 slots
        (inception_trim(), 4), // 16 slots
        (res_pair(), 3),       // 18 slots
    ]
}

/// Runs the three-way comparison across the small-branchy zoo, plus the
/// refined-only ResNet-18 demonstration.
///
/// # Panics
///
/// Panics if a zoo entry exceeds the enumeration bound or fails to
/// stitch (they are sized and validated at construction, so this
/// indicates a bug).
#[must_use]
pub fn run() -> GreedyGapBranchy {
    let rows = small_zoo()
        .into_iter()
        .map(|(graph, levels)| {
            let stitched = partition_graph(&graph, levels)
                .expect("zoo entries stitch")
                .total_comm_elems();
            let refined = partition_graph_refined(&graph, levels)
                .expect("zoo entries refine")
                .total_comm_elems();
            let joint = best_joint_graph(&graph, levels)
                .expect("zoo entries fit the enumeration bound")
                .total_comm_elems();
            GreedyGapRow {
                network: graph.name().to_owned(),
                layers: graph.num_layers(),
                segments: graph.num_segments(),
                edges: graph.edges().len(),
                levels,
                slots: graph.num_layers() * levels,
                stitched_elems: stitched,
                refined_elems: refined,
                joint_elems: joint,
                stitched_gap: stitched / joint,
                refined_gap: refined / joint,
            }
        })
        .collect();

    let levels = 4;
    let graph = zoo::resnet18().segments(BATCH).expect("zoo decomposes");
    let stitched = partition_graph(&graph, levels)
        .expect("zoo entries stitch")
        .total_comm_elems();
    let refined = partition_graph_refined(&graph, levels)
        .expect("zoo entries refine")
        .total_comm_elems();
    let exhaustive_rejection = best_joint_graph(&graph, levels)
        .expect_err("84 slots must exceed the bound")
        .to_string();
    let unbounded = UnboundedRow {
        network: graph.name().to_owned(),
        layers: graph.num_layers(),
        levels,
        slots: graph.num_layers() * levels,
        stitched_elems: stitched,
        refined_elems: refined,
        recovered: stitched / refined,
        exhaustive_rejection,
    };
    GreedyGapBranchy {
        batch: BATCH,
        rows,
        unbounded,
    }
}

/// Renders the comparison.
#[must_use]
pub fn table(data: &GreedyGapBranchy) -> Table {
    let mut t = Table::new(
        format!(
            "Greedy gap on branchy DAGs: stitched planner vs junction-aware refinement \
             vs joint exhaustive optimum, B={}",
            data.batch
        ),
        &[
            "network",
            "layers",
            "segs",
            "H",
            "slots",
            "stitched",
            "refined",
            "joint",
            "stitched/joint",
            "refined/joint",
        ],
    );
    for r in &data.rows {
        t.row(&[
            r.network.clone(),
            r.layers.to_string(),
            r.segments.to_string(),
            r.levels.to_string(),
            r.slots.to_string(),
            format!("{:.3e}", r.stitched_elems),
            format!("{:.3e}", r.refined_elems),
            format!("{:.3e}", r.joint_elems),
            ratio(r.stitched_gap),
            ratio(r.refined_gap),
        ]);
    }
    let u = &data.unbounded;
    t.row(&[
        u.network.clone(),
        u.layers.to_string(),
        "-".to_owned(),
        u.levels.to_string(),
        u.slots.to_string(),
        format!("{:.3e}", u.stitched_elems),
        format!("{:.3e}", u.refined_elems),
        "infeasible".to_owned(),
        "-".to_owned(),
        format!("recovers {}", ratio(u.recovered)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> &'static GreedyGapBranchy {
        use std::sync::OnceLock;
        static DATA: OnceLock<GreedyGapBranchy> = OnceLock::new();
        DATA.get_or_init(run)
    }

    #[test]
    fn covers_at_least_three_branchy_networks_within_the_bound() {
        let data = dataset();
        assert!(data.rows.len() >= 3);
        for row in &data.rows {
            assert!(row.segments > 1, "{} must be branchy", row.network);
            assert!(row.slots <= 24, "{} exceeds the bound", row.network);
        }
    }

    #[test]
    fn joint_lower_bounds_the_stitch_everywhere() {
        for row in &dataset().rows {
            assert!(
                row.joint_elems <= row.stitched_elems * (1.0 + 1e-12),
                "{}: joint {} vs stitched {}",
                row.network,
                row.joint_elems,
                row.stitched_elems
            );
            assert!(row.stitched_gap >= 1.0 - 1e-12, "{}", row.network);
            // Unlike the chain greedy gap (a few percent, Figures 9/10),
            // the segment-blind stitch can be severely suboptimal when
            // junction traffic rivals the tiny per-layer tensors: Res-Pair
            // measures ~3.1x.  Bound it loosely so a planner regression
            // (or a pricing bug) still fails loudly.
            assert!(
                row.stitched_gap < 5.0,
                "{}: unexpectedly large greedy gap {}",
                row.network,
                row.stitched_gap
            );
        }
    }

    #[test]
    fn refined_never_exceeds_stitched_and_certifies_against_the_joint_optimum() {
        // The issue's acceptance bar: on every joint-certified net the
        // refined plan matches the optimum (1.00x) or comes within 1.10x,
        // and never exceeds the stitched cost.
        for row in &dataset().rows {
            assert!(
                row.refined_elems <= row.stitched_elems * (1.0 + 1e-12),
                "{}: refined {} vs stitched {}",
                row.network,
                row.refined_elems,
                row.stitched_elems
            );
            assert!(
                row.refined_gap >= 1.0 - 1e-12,
                "{}: refined beat the certified optimum?",
                row.network
            );
            assert!(
                row.refined_gap <= 1.10,
                "{}: refinement left too much on the table ({}x)",
                row.network,
                row.refined_gap
            );
        }
    }

    #[test]
    fn refinement_reaches_the_joint_optimum_on_the_certified_zoo() {
        // Stronger than the 1.10x bar: on all four trimmed nets the
        // coordinate descent currently lands exactly on the joint
        // optimum's cost.  Pinned so a refinement regression is loud; if
        // a future cost-model change legitimately breaks exactness,
        // weaken this to the 1.10x criterion above with a note.
        for row in &dataset().rows {
            assert!(
                (row.refined_elems - row.joint_elems).abs() <= 1e-9 * row.joint_elems.max(1.0),
                "{}: refined {} vs joint {}",
                row.network,
                row.refined_elems,
                row.joint_elems
            );
        }
    }

    #[test]
    fn refinement_runs_beyond_the_exhaustive_bound() {
        let u = &dataset().unbounded;
        assert!(u.slots > 24, "ResNet-18 must exceed the bound");
        assert!(
            u.exhaustive_rejection.contains("exceeds"),
            "{}",
            u.exhaustive_rejection
        );
        assert!(
            u.refined_elems <= u.stitched_elems * (1.0 + 1e-12),
            "refined {} vs stitched {}",
            u.refined_elems,
            u.stitched_elems
        );
        assert!(u.recovered >= 1.0 - 1e-12);
    }

    #[test]
    fn table_renders_every_row() {
        let text = table(dataset()).to_string();
        for row in &dataset().rows {
            assert!(text.contains(&row.network), "{text}");
        }
        assert!(text.contains(&dataset().unbounded.network), "{text}");
        assert!(text.contains("infeasible"), "{text}");
    }
}
