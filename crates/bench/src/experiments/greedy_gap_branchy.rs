//! Beyond the paper: the stitched DAG planner's **greedy gap** on branchy
//! networks.
//!
//! Figures 9/10 quantify how far Algorithm 2's level-by-level recursion
//! sits from the joint optimum on chains.  The segment-stitched DAG
//! planner (`hypar_graph::partition_graph`) is greedy in a second
//! direction as well — each segment is planned blind to the junction
//! traffic between segments — so this experiment compares it against the
//! whole-graph joint exhaustive search
//! ([`hypar_graph::best_joint_graph`]) over a zoo of *trimmed*
//! residual/Inception-style networks small enough to enumerate
//! (`L·H ≤ 24`, the same feasibility bound the chain search uses).

use hypar_graph::{best_joint_graph, partition_graph, GraphBuilder, SegmentCommGraph, INPUT};
use hypar_models::ConvSpec;
use hypar_tensor::FeatureDims;
use serde::Serialize;

use crate::report::{ratio, Table};

/// The mini-batch size of the small-branchy zoo (kept modest: the joint
/// space, not the tensors, is the bottleneck).
pub const BATCH: u64 = 64;

/// One trimmed branchy network's stitched-vs-joint comparison.
#[derive(Clone, Debug, Serialize)]
pub struct GreedyGapRow {
    /// Network name.
    pub network: String,
    /// Weighted layers `L`.
    pub layers: usize,
    /// Chain segments the DAG decomposes into.
    pub segments: usize,
    /// Inter-segment junction edges.
    pub edges: usize,
    /// Hierarchy depth `H`.
    pub levels: usize,
    /// Joint search space exponent (`L·H`).
    pub slots: usize,
    /// Stitched greedy plan (`partition_graph`) total, in elements.
    pub stitched_elems: f64,
    /// Joint optimum (`best_joint_graph`) total, in elements.
    pub joint_elems: f64,
    /// `stitched / joint` (≥ 1; 1.0 means the greedy stitch is optimal).
    pub gap: f64,
}

/// The greedy-gap dataset.
#[derive(Clone, Debug, Serialize)]
pub struct GreedyGapBranchy {
    /// Mini-batch size used throughout.
    pub batch: u64,
    /// One row per trimmed branchy network.
    pub rows: Vec<GreedyGapRow>,
}

/// A single residual block — the smallest branchy shape: stem and body
/// convolutions `add`-joined into a classifier (3 layers, 3 segments).
fn tiny_res() -> SegmentCommGraph {
    let mut g = GraphBuilder::new("Tiny-Res", FeatureDims::new(8, 16, 16));
    g.conv("stem", ConvSpec::same(8, 3), INPUT)
        .conv("body", ConvSpec::same(8, 3), "stem")
        .add("join", &["stem", "body"])
        .fully_connected("fc", 10, "join");
    g.build().expect("valid graph").segments(BATCH).expect("ok")
}

/// A downsampling residual block with a 1×1 projection skip — the
/// ResNet stage-entry pattern (4 layers, 4 segments).
fn res_proj() -> SegmentCommGraph {
    let mut g = GraphBuilder::new("Res-Proj", FeatureDims::new(8, 16, 16));
    g.conv("stem", ConvSpec::same(8, 3), INPUT)
        .conv(
            "body",
            ConvSpec {
                out_channels: 16,
                kernel: 3,
                stride: 2,
                padding: 1,
            },
            "stem",
        )
        .conv(
            "proj",
            ConvSpec {
                out_channels: 16,
                kernel: 1,
                stride: 2,
                padding: 0,
            },
            "stem",
        )
        .add("join", &["body", "proj"])
        .fully_connected("fc", 10, "join");
    g.build().expect("valid graph").segments(BATCH).expect("ok")
}

/// A trimmed Inception module: two convolution branches concatenated into
/// a classifier (4 layers, 4 segments).
fn inception_trim() -> SegmentCommGraph {
    let mut g = GraphBuilder::new("Inception-Trim", FeatureDims::new(8, 16, 16));
    g.conv("stem", ConvSpec::same(16, 3), INPUT)
        .conv("b1x1", ConvSpec::same(8, 1), "stem")
        .conv("b3x3", ConvSpec::same(8, 3), "stem")
        .concat("mixed", &["b1x1", "b3x3"])
        .fully_connected("fc", 10, "mixed");
    g.build().expect("valid graph").segments(BATCH).expect("ok")
}

/// Two stacked residual blocks with two-convolution bodies — the deepest
/// trimmed net, sized to the enumeration boundary at `H = 3` (6 layers,
/// 18 slots).
fn res_pair() -> SegmentCommGraph {
    let mut g = GraphBuilder::new("Res-Pair", FeatureDims::new(8, 8, 8));
    g.conv("stem", ConvSpec::same(8, 3), INPUT)
        .conv("b1_a", ConvSpec::same(8, 3), "stem")
        .conv("b1_b", ConvSpec::same(8, 3), "b1_a")
        .add("b1", &["b1_b", "stem"])
        .conv("b2_a", ConvSpec::same(8, 3), "b1")
        .conv("b2_b", ConvSpec::same(8, 3), "b2_a")
        .add("b2", &["b2_b", "b1"])
        .fully_connected("fc", 10, "b2");
    g.build().expect("valid graph").segments(BATCH).expect("ok")
}

/// The small-branchy zoo: every graph with the hierarchy depth it is
/// enumerated at (`L·H ≤ 24`).
fn zoo() -> Vec<(SegmentCommGraph, usize)> {
    vec![
        (tiny_res(), 4),       // 12 slots
        (res_proj(), 4),       // 16 slots
        (inception_trim(), 4), // 16 slots
        (res_pair(), 3),       // 18 slots
    ]
}

/// Runs the stitched-vs-joint comparison across the small-branchy zoo.
///
/// # Panics
///
/// Panics if a zoo entry exceeds the enumeration bound (they are sized at
/// construction, so this indicates a bug).
#[must_use]
pub fn run() -> GreedyGapBranchy {
    let rows = zoo()
        .into_iter()
        .map(|(graph, levels)| {
            let stitched = partition_graph(&graph, levels).total_comm_elems();
            let joint = best_joint_graph(&graph, levels)
                .expect("zoo entries fit the enumeration bound")
                .total_comm_elems();
            GreedyGapRow {
                network: graph.name().to_owned(),
                layers: graph.num_layers(),
                segments: graph.num_segments(),
                edges: graph.edges().len(),
                levels,
                slots: graph.num_layers() * levels,
                stitched_elems: stitched,
                joint_elems: joint,
                gap: stitched / joint,
            }
        })
        .collect();
    GreedyGapBranchy { batch: BATCH, rows }
}

/// Renders the comparison.
#[must_use]
pub fn table(data: &GreedyGapBranchy) -> Table {
    let mut t = Table::new(
        format!(
            "Greedy gap on branchy DAGs: stitched planner vs joint exhaustive optimum, B={}",
            data.batch
        ),
        &[
            "network",
            "layers",
            "segs",
            "edges",
            "H",
            "slots",
            "stitched",
            "joint",
            "stitched/joint",
        ],
    );
    for r in &data.rows {
        t.row(&[
            r.network.clone(),
            r.layers.to_string(),
            r.segments.to_string(),
            r.edges.to_string(),
            r.levels.to_string(),
            r.slots.to_string(),
            format!("{:.3e}", r.stitched_elems),
            format!("{:.3e}", r.joint_elems),
            ratio(r.gap),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> &'static GreedyGapBranchy {
        use std::sync::OnceLock;
        static DATA: OnceLock<GreedyGapBranchy> = OnceLock::new();
        DATA.get_or_init(run)
    }

    #[test]
    fn covers_at_least_three_branchy_networks_within_the_bound() {
        let data = dataset();
        assert!(data.rows.len() >= 3);
        for row in &data.rows {
            assert!(row.segments > 1, "{} must be branchy", row.network);
            assert!(row.slots <= 24, "{} exceeds the bound", row.network);
        }
    }

    #[test]
    fn joint_lower_bounds_the_stitch_everywhere() {
        for row in &dataset().rows {
            assert!(
                row.joint_elems <= row.stitched_elems * (1.0 + 1e-12),
                "{}: joint {} vs stitched {}",
                row.network,
                row.joint_elems,
                row.stitched_elems
            );
            assert!(row.gap >= 1.0 - 1e-12, "{}", row.network);
            // Unlike the chain greedy gap (a few percent, Figures 9/10),
            // the segment-blind stitch can be severely suboptimal when
            // junction traffic rivals the tiny per-layer tensors: Res-Pair
            // measures ~3.1x.  Bound it loosely so a planner regression
            // (or a pricing bug) still fails loudly.
            assert!(
                row.gap < 5.0,
                "{}: unexpectedly large greedy gap {}",
                row.network,
                row.gap
            );
        }
    }

    #[test]
    fn table_renders_every_row() {
        let text = table(dataset()).to_string();
        for row in &dataset().rows {
            assert!(text.contains(&row.network), "{text}");
        }
    }
}
