//! One module per paper artifact; see the crate docs for the index.

pub mod ablation;
pub mod batch_study;
pub mod branchy;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig5;
pub mod fig9;
pub mod greedy_gap_branchy;
pub mod overall;
pub mod pe_model;
pub mod tables;

/// The identifiers accepted by the `repro` binary's `--exp` flag, in paper
/// order.
pub const EXPERIMENT_IDS: [&str; 11] = [
    "table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
];

/// Full identifier list including fig13 and the beyond-the-paper ablation
/// suite.
#[must_use]
pub fn all_ids() -> Vec<&'static str> {
    let mut ids = EXPERIMENT_IDS.to_vec();
    ids.push("fig13");
    ids.push("ablation");
    ids.push("pe");
    ids.push("batch");
    ids.push("branchy");
    ids.push("greedy_gap_branchy");
    ids
}
