//! Figures 6–8: performance, energy efficiency, and total communication of
//! Model Parallelism, Data Parallelism, and HyPar on the ten networks.

use hypar_core::{baselines, hierarchical};
use hypar_models::zoo;
use hypar_sim::{training, ArchConfig, StepReport};
use serde::Serialize;

use crate::context::{shapes, view, PAPER_BATCH, PAPER_LEVELS};
use crate::report::{gigabytes, gmean, ratio, Table};

/// Results for one network.
#[derive(Clone, Debug, Serialize)]
pub struct OverallRow {
    /// Network name.
    pub network: String,
    /// Model Parallelism performance normalized to Data Parallelism.
    pub mp_perf: f64,
    /// HyPar performance normalized to Data Parallelism (Figure 6).
    pub hypar_perf: f64,
    /// Model Parallelism energy efficiency normalized to Data Parallelism.
    pub mp_energy: f64,
    /// HyPar energy efficiency normalized to Data Parallelism (Figure 7).
    pub hypar_energy: f64,
    /// Total communication per step in GB (Figure 8).
    pub mp_comm_gb: f64,
    /// Data Parallelism communication per step in GB.
    pub dp_comm_gb: f64,
    /// HyPar communication per step in GB.
    pub hypar_comm_gb: f64,
}

/// The Figures 6–8 dataset: per-network rows plus geometric means.
#[derive(Clone, Debug, Serialize)]
pub struct Overall {
    /// Per-network results in the paper's order.
    pub rows: Vec<OverallRow>,
    /// Geometric mean of `mp_perf` / `hypar_perf`.
    pub gmean_perf: (f64, f64),
    /// Geometric mean of `mp_energy` / `hypar_energy`.
    pub gmean_energy: (f64, f64),
    /// Geometric mean of the three communication columns, in GB.
    pub gmean_comm_gb: (f64, f64, f64),
}

fn simulate(name: &str, cfg: &ArchConfig) -> (StepReport, StepReport, StepReport) {
    let shapes = shapes(name, PAPER_BATCH);
    let net = view(name, PAPER_BATCH);
    let hypar = hierarchical::partition(&net, PAPER_LEVELS);
    let dp = baselines::all_data(&net, PAPER_LEVELS);
    let mp = baselines::all_model(&net, PAPER_LEVELS);
    (
        training::simulate_step(&shapes, &mp, cfg).expect("plan matches the network"),
        training::simulate_step(&shapes, &dp, cfg).expect("plan matches the network"),
        training::simulate_step(&shapes, &hypar, cfg).expect("plan matches the network"),
    )
}

/// Runs the three schemes on all ten networks under `cfg`.
#[must_use]
pub fn run_with(cfg: &ArchConfig) -> Overall {
    let rows: Vec<OverallRow> = zoo::NAMES
        .iter()
        .map(|name| {
            let (mp, dp, hypar) = simulate(name, cfg);
            OverallRow {
                network: (*name).to_owned(),
                mp_perf: mp.performance_gain_over(&dp),
                hypar_perf: hypar.performance_gain_over(&dp),
                mp_energy: mp.energy_efficiency_over(&dp),
                hypar_energy: hypar.energy_efficiency_over(&dp),
                mp_comm_gb: mp.comm_bytes.gigabytes(),
                dp_comm_gb: dp.comm_bytes.gigabytes(),
                hypar_comm_gb: hypar.comm_bytes.gigabytes(),
            }
        })
        .collect();

    let col = |f: fn(&OverallRow) -> f64| -> Vec<f64> { rows.iter().map(f).collect() };
    // SCONV's HyPar == DP, whose comm ratio is exactly 1; all values are
    // positive so gmean is well-defined.
    Overall {
        gmean_perf: (gmean(&col(|r| r.mp_perf)), gmean(&col(|r| r.hypar_perf))),
        gmean_energy: (
            gmean(&col(|r| r.mp_energy)),
            gmean(&col(|r| r.hypar_energy)),
        ),
        gmean_comm_gb: (
            gmean(&col(|r| r.mp_comm_gb)),
            gmean(&col(|r| r.dp_comm_gb)),
            gmean(&col(|r| r.hypar_comm_gb)),
        ),
        rows,
    }
}

/// Runs with the paper's configuration.
#[must_use]
pub fn run() -> Overall {
    run_with(&ArchConfig::paper())
}

/// Figure 6: performance normalized to Data Parallelism.
#[must_use]
pub fn fig6_table(o: &Overall) -> Table {
    let mut t = Table::new(
        "Figure 6: performance normalized to Data Parallelism",
        &["network", "Model Par.", "Data Par.", "HyPar"],
    );
    for r in &o.rows {
        t.row(&[
            r.network.clone(),
            ratio(r.mp_perf),
            "1.00".into(),
            ratio(r.hypar_perf),
        ]);
    }
    t.row(&[
        "Gmean".into(),
        ratio(o.gmean_perf.0),
        "1.00".into(),
        ratio(o.gmean_perf.1),
    ]);
    t
}

/// Figure 7: energy efficiency normalized to Data Parallelism.
#[must_use]
pub fn fig7_table(o: &Overall) -> Table {
    let mut t = Table::new(
        "Figure 7: energy efficiency normalized to Data Parallelism",
        &["network", "Model Par.", "Data Par.", "HyPar"],
    );
    for r in &o.rows {
        t.row(&[
            r.network.clone(),
            ratio(r.mp_energy),
            "1.00".into(),
            ratio(r.hypar_energy),
        ]);
    }
    t.row(&[
        "Gmean".into(),
        ratio(o.gmean_energy.0),
        "1.00".into(),
        ratio(o.gmean_energy.1),
    ]);
    t
}

/// Figure 8: total communication per step in GB.
#[must_use]
pub fn fig8_table(o: &Overall) -> Table {
    let mut t = Table::new(
        "Figure 8: total communication per step (GB)",
        &["network", "Model Par.", "Data Par.", "HyPar"],
    );
    for r in &o.rows {
        t.row(&[
            r.network.clone(),
            gigabytes(r.mp_comm_gb * 1e9),
            gigabytes(r.dp_comm_gb * 1e9),
            gigabytes(r.hypar_comm_gb * 1e9),
        ]);
    }
    t.row(&[
        "Gmean".into(),
        gigabytes(o.gmean_comm_gb.0 * 1e9),
        gigabytes(o.gmean_comm_gb.1 * 1e9),
        gigabytes(o.gmean_comm_gb.2 * 1e9),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    // `run()` simulates 30 training steps; do it once for all assertions.
    fn dataset() -> &'static Overall {
        use std::sync::OnceLock;
        static DATA: OnceLock<Overall> = OnceLock::new();
        DATA.get_or_init(run)
    }

    #[test]
    fn hypar_beats_dp_everywhere_except_sconv() {
        for r in &dataset().rows {
            if r.network == "SCONV" {
                assert!((r.hypar_perf - 1.0).abs() < 1e-9, "SCONV should equal DP");
            } else {
                assert!(
                    r.hypar_perf > 1.0,
                    "{}: HyPar perf {}",
                    r.network,
                    r.hypar_perf
                );
            }
        }
    }

    #[test]
    fn mp_is_worst_except_for_sfc() {
        for r in &dataset().rows {
            if r.network == "SFC" {
                assert!(r.mp_perf > 1.0, "SFC: mp should beat dp");
                assert!(r.hypar_perf >= r.mp_perf, "SFC: HyPar should beat mp too");
            } else {
                assert!(r.mp_perf < 1.0, "{}: mp perf {}", r.network, r.mp_perf);
            }
        }
    }

    #[test]
    fn comm_ordering_matches_figure8() {
        for r in &dataset().rows {
            assert!(r.hypar_comm_gb <= r.dp_comm_gb + 1e-12, "{}", r.network);
            if r.network == "SFC" {
                assert!(r.mp_comm_gb < r.dp_comm_gb, "SFC: mp comm should be lower");
            } else {
                assert!(
                    r.mp_comm_gb > r.dp_comm_gb,
                    "{}: mp comm should be higher",
                    r.network
                );
            }
        }
    }

    #[test]
    fn dp_figure8_column_matches_paper() {
        // The all-dp totals the model reproduces exactly (DESIGN.md §2).
        let by_name: std::collections::HashMap<_, _> = dataset()
            .rows
            .iter()
            .map(|r| (r.network.as_str(), r.dp_comm_gb))
            .collect();
        assert!((by_name["SFC"] - 16.9).abs() / 16.9 < 0.01);
        assert!((by_name["SCONV"] - 0.0121).abs() / 0.0121 < 0.01);
        assert!((by_name["Lenet-c"] - 0.0517).abs() / 0.0517 < 0.01);
        assert!((by_name["VGG-A"] - 15.9).abs() / 15.9 < 0.02);
    }

    #[test]
    fn gmeans_are_consistent_with_rows() {
        let o = dataset();
        let hand = gmean(&o.rows.iter().map(|r| r.hypar_perf).collect::<Vec<_>>());
        assert!((o.gmean_perf.1 - hand).abs() < 1e-12);
    }

    #[test]
    fn tables_render() {
        let o = dataset();
        for t in [fig6_table(o), fig7_table(o), fig8_table(o)] {
            let s = t.to_string();
            assert!(s.contains("Gmean"));
            assert_eq!(t.len(), 11);
        }
    }
}
