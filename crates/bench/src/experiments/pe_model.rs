//! PE-model ablation: flat peak-throughput roofline vs the row-stationary
//! PE-array mapping (paper Figure 4(b)).
//!
//! The paper's headline results assume the processing units run near their
//! 84 GOPS/s density; this experiment re-times every network with the
//! analytical Eyeriss-style mapping (kernel folding, strip mining, reuse-
//! dependent SRAM traffic) and checks that HyPar's advantage over Data
//! Parallelism survives the more pessimistic compute model.

use hypar_core::{baselines, hierarchical};
use hypar_models::zoo;
use hypar_sim::{pe::PeArray, training, ArchConfig};
use serde::Serialize;

use crate::context::{shapes, view, PAPER_BATCH, PAPER_LEVELS};
use crate::report::{ratio, Table};

/// One network under both compute models.
#[derive(Clone, Debug, Serialize)]
pub struct PeRow {
    /// Network name.
    pub network: String,
    /// MAC-weighted average PE utilization under the row-stationary
    /// mapping (whole network, unpartitioned slice).
    pub avg_utilization: f64,
    /// HyPar-over-DP speedup with the flat compute model.
    pub speedup_flat: f64,
    /// HyPar-over-DP speedup with the detailed PE model.
    pub speedup_detailed: f64,
    /// HyPar step-time inflation from switching to the detailed model.
    pub hypar_slowdown: f64,
}

/// The PE ablation dataset.
#[derive(Clone, Debug, Serialize)]
pub struct PeAblation {
    /// Per-network rows.
    pub rows: Vec<PeRow>,
}

/// MAC-weighted utilization of a network on one processing unit.
#[must_use]
pub fn network_utilization(name: &str, batch: u64) -> f64 {
    let shapes = shapes(name, batch);
    let array = PeArray::paper();
    let mut macs = 0.0f64;
    let mut weighted = 0.0f64;
    for layer in shapes.layers() {
        let mapping = if layer.is_conv {
            array.map_conv(
                layer.kernel_extent,
                layer.input.channels,
                layer.conv_out.channels,
                layer.conv_out.height,
                layer.conv_out.width,
                batch,
            )
        } else {
            array.map_fc(layer.input.volume(), layer.conv_out.channels, batch)
        };
        macs += layer.macs_forward as f64;
        weighted += layer.macs_forward as f64 * mapping.utilization;
    }
    weighted / macs
}

/// Runs the ablation over the ten networks.
#[must_use]
pub fn run() -> PeAblation {
    let flat_cfg = ArchConfig::paper();
    let detailed_cfg = ArchConfig::paper().with_detailed_pe();
    let rows = zoo::NAMES
        .iter()
        .map(|name| {
            let shapes = shapes(name, PAPER_BATCH);
            let net = view(name, PAPER_BATCH);
            let hypar = hierarchical::partition(&net, PAPER_LEVELS);
            let dp = baselines::all_data(&net, PAPER_LEVELS);
            let h_flat = training::simulate_step(&shapes, &hypar, &flat_cfg)
                .expect("plan matches the network");
            let d_flat =
                training::simulate_step(&shapes, &dp, &flat_cfg).expect("plan matches the network");
            let h_det = training::simulate_step(&shapes, &hypar, &detailed_cfg)
                .expect("plan matches the network");
            let d_det = training::simulate_step(&shapes, &dp, &detailed_cfg)
                .expect("plan matches the network");
            PeRow {
                network: (*name).to_owned(),
                avg_utilization: network_utilization(name, PAPER_BATCH),
                speedup_flat: h_flat.performance_gain_over(&d_flat),
                speedup_detailed: h_det.performance_gain_over(&d_det),
                hypar_slowdown: h_det.step_time.value() / h_flat.step_time.value(),
            }
        })
        .collect();
    PeAblation { rows }
}

/// Renders the ablation table.
#[must_use]
pub fn table(a: &PeAblation) -> Table {
    let mut t = Table::new(
        "PE ablation: flat roofline vs row-stationary mapping",
        &[
            "network",
            "avg util.",
            "HyPar/DP flat",
            "HyPar/DP detailed",
            "HyPar slowdown",
        ],
    );
    for r in &a.rows {
        t.row(&[
            r.network.clone(),
            format!("{:.2}", r.avg_utilization),
            ratio(r.speedup_flat),
            ratio(r.speedup_detailed),
            ratio(r.hypar_slowdown),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> &'static PeAblation {
        use std::sync::OnceLock;
        static DATA: OnceLock<PeAblation> = OnceLock::new();
        DATA.get_or_init(run)
    }

    #[test]
    fn utilization_is_a_fraction_and_vgg_is_high() {
        for r in &dataset().rows {
            assert!(
                r.avg_utilization > 0.0 && r.avg_utilization <= 1.0,
                "{}",
                r.network
            );
        }
        let vgg = dataset()
            .rows
            .iter()
            .find(|r| r.network == "VGG-A")
            .unwrap();
        assert!(
            vgg.avg_utilization > 0.7,
            "VGG maps well: {}",
            vgg.avg_utilization
        );
    }

    #[test]
    fn detailed_model_never_speeds_compute_up() {
        for r in &dataset().rows {
            assert!(
                r.hypar_slowdown >= 1.0 - 1e-9,
                "{}: {}",
                r.network,
                r.hypar_slowdown
            );
        }
    }

    #[test]
    fn hypar_still_wins_under_the_detailed_model() {
        for r in &dataset().rows {
            assert!(
                r.speedup_detailed >= 1.0 - 1e-9,
                "{}: detailed speedup {}",
                r.network,
                r.speedup_detailed
            );
        }
    }

    #[test]
    fn small_map_networks_lose_the_most_utilization() {
        // Lenet/SCONV have narrow late-layer maps; VGG keeps 14-wide maps.
        let by_name: std::collections::HashMap<_, _> = dataset()
            .rows
            .iter()
            .map(|r| (r.network.as_str(), r.avg_utilization))
            .collect();
        assert!(by_name["SCONV"] < by_name["VGG-A"]);
    }
}
