//! Tables 1–3: the communication model's worked examples and the SFC/SCONV
//! hyper-parameters.

use hypar_comm::{inter_elems, intra_bytes, LayerCommTensors, LayerScale, Parallelism};
use hypar_models::zoo;
use serde::Serialize;

use crate::report::Table;

/// Table 1 rendered on the paper's §3.4 worked examples: intra-layer
/// communication of the 70×100 fc layer and the 5×5×20×50 conv layer at
/// batch 32.
#[derive(Clone, Debug, Serialize)]
pub struct Table1 {
    /// (layer, dp bytes, mp bytes) rows.
    pub rows: Vec<(String, f64, f64)>,
}

/// Runs the Table 1 examples.
#[must_use]
pub fn table1() -> Table1 {
    let fc = LayerCommTensors::fully_connected("fc 70x100 @B=32", 32, 70, 100);
    let conv = LayerCommTensors::conv(
        "conv 5x5x20x50 @B=32",
        32,
        (20, 12, 12),
        5,
        50,
        (8, 8),
        (8, 8),
    );
    let rows = [fc, conv]
        .iter()
        .map(|layer| {
            (
                layer.name.clone(),
                intra_bytes(Parallelism::Data, layer, LayerScale::default()).value(),
                intra_bytes(Parallelism::Model, layer, LayerScale::default()).value(),
            )
        })
        .collect();
    Table1 { rows }
}

/// Renders Table 1.
#[must_use]
pub fn table1_table(t: &Table1) -> Table {
    let mut out = Table::new(
        "Table 1: intra-layer communication (A(dW) under dp, A(F_out) under mp)",
        &["layer", "dp", "mp", "winner"],
    );
    for (name, dp, mp) in &t.rows {
        let winner = if dp < mp { "dp" } else { "mp" };
        out.row(&[
            name.clone(),
            hypar_tensor::Bytes(*dp).to_string(),
            hypar_tensor::Bytes(*mp).to_string(),
            winner.to_owned(),
        ]);
    }
    out
}

/// Table 2: the four inter-layer transition coefficients, instantiated on a
/// unit junction tensor.
#[derive(Clone, Debug, Serialize)]
pub struct Table2 {
    /// (transition, fraction of `A(junction)` exchanged one way) rows.
    pub rows: Vec<(String, f64)>,
}

/// Runs the Table 2 transitions.
#[must_use]
pub fn table2() -> Table2 {
    use Parallelism::{Data, Model};
    let rows = [(Data, Data), (Data, Model), (Model, Model), (Model, Data)]
        .iter()
        .map(|&(a, b)| {
            // One-way fraction of the junction tensor (the paper's table).
            (format!("{a}-{b}"), inter_elems(a, b, 1.0, 1.0) / 2.0)
        })
        .collect();
    Table2 { rows }
}

/// Renders Table 2 with the paper's coefficient notation.
#[must_use]
pub fn table2_table(t: &Table2) -> Table {
    let mut out = Table::new(
        "Table 2: inter-layer communication for layer transitions",
        &["transition", "amount"],
    );
    for (name, frac) in &t.rows {
        let amount = match (name.as_str(), *frac) {
            (_, 0.0) => "0".to_owned(),
            ("dp-mp", _) => "0.25 A(F) + 0.25 A(E)".to_owned(),
            _ => "0.5 A(E)".to_owned(),
        };
        out.row(&[name.clone(), amount]);
    }
    out
}

/// Table 3: the hyper-parameters of the two extreme networks.
#[derive(Clone, Debug, Serialize)]
pub struct Table3 {
    /// (network, description) rows, one per weighted layer.
    pub rows: Vec<(String, String)>,
}

/// Runs Table 3 (reads the zoo definitions).
#[must_use]
pub fn table3() -> Table3 {
    let mut rows = Vec::new();
    for net in [zoo::sfc(), zoo::sconv()] {
        for layer in net.layers() {
            rows.push((net.name().to_owned(), layer.to_string()));
        }
    }
    Table3 { rows }
}

/// Renders Table 3.
#[must_use]
pub fn table3_table(t: &Table3) -> Table {
    let mut out = Table::new(
        "Table 3: hyper-parameters for SFC and SCONV",
        &["network", "layer"],
    );
    for (net, layer) in &t.rows {
        out.row(&[net.clone(), layer.clone()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper_bytes() {
        let t = table1();
        assert_eq!(t.rows[0].1, 56_000.0); // fc dp
        assert_eq!(t.rows[0].2, 25_600.0); // fc mp
        assert_eq!(t.rows[1].1, 200_000.0); // conv dp
        assert_eq!(t.rows[1].2, 819_200.0); // conv mp
    }

    #[test]
    fn table2_coefficients() {
        let t = table2();
        let by_name: std::collections::HashMap<_, _> =
            t.rows.iter().map(|(n, f)| (n.clone(), *f)).collect();
        assert_eq!(by_name["dp-dp"], 0.0);
        assert_eq!(by_name["dp-mp"], 0.5);
        assert_eq!(by_name["mp-mp"], 0.5);
        assert_eq!(by_name["mp-dp"], 0.5);
    }

    #[test]
    fn table3_lists_eight_layers() {
        let t = table3();
        assert_eq!(t.rows.len(), 8); // 4 SFC + 4 SCONV
        assert!(t.rows[0].1.contains("8192"));
        assert!(t.rows[4].1.contains("20@5x5"));
    }

    #[test]
    fn renderers_do_not_panic() {
        let _ = table1_table(&table1()).to_string();
        let _ = table2_table(&table2()).to_string();
        let _ = table3_table(&table3()).to_string();
    }
}
