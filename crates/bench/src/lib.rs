//! Experiment harness regenerating every table and figure of the HyPar
//! paper.
//!
//! Each submodule of [`experiments`] corresponds to one artifact of the
//! paper's evaluation (§6) and exposes a `run()` function returning a
//! serializable result plus table renderers printing the same rows/series
//! the paper reports:
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`experiments::tables`]  | Tables 1–3 (communication model, SFC/SCONV hyper-parameters) |
//! | [`experiments::fig5`]    | Figure 5 — optimized parallelisms for ten networks |
//! | [`experiments::overall`] | Figures 6–8 — performance, energy efficiency, total communication |
//! | [`experiments::fig9`]    | Figure 9 — Lenet-c parallelism-space exploration |
//! | [`experiments::fig10`]   | Figure 10 — VGG-A conv5_2 × fc1 exploration |
//! | [`experiments::fig11`]   | Figure 11 — scalability from 1 to 64 accelerators |
//! | [`experiments::fig12`]   | Figure 12 — H-tree vs torus topology |
//! | [`experiments::fig13`]   | Figure 13 — HyPar vs "one weird trick" |
//! | [`experiments::branchy`] | beyond the paper — DAG planner on the branchy zoo (ResNet/Inception-class) |
//!
//! The `repro` binary drives them all:
//!
//! ```text
//! cargo run -p hypar-bench --bin repro -- --exp all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod context;
pub mod experiments;
pub mod report;
