//! Text tables and small statistics helpers for the experiment harness.

use std::fmt::Write as _;

/// Geometric mean, the aggregate the paper uses throughout its figures.
///
/// # Panics
///
/// Panics if `values` is empty or contains a non-positive value.
///
/// # Examples
///
/// ```
/// use hypar_bench::report::gmean;
/// assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn gmean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "gmean of an empty set");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "gmean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// A simple aligned text table used to print the paper-style rows of every
/// experiment.
///
/// # Examples
///
/// ```
/// use hypar_bench::report::Table;
///
/// let mut t = Table::new("demo", &["network", "gain"]);
/// t.row(&["Lenet-c".to_string(), "3.05".to_string()]);
/// let text = t.to_string();
/// assert!(text.contains("Lenet-c"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(out, "{h:>w$}  ");
        }
        let _ = writeln!(out);
        for (w, _) in widths.iter().zip(&self.headers) {
            let _ = write!(out, "{:->w$}  ", "");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(out, "{cell:>w$}  ");
            }
            let _ = writeln!(out);
        }
        f.write_str(&out)
    }
}

/// Formats a ratio the way the paper's figures label bars (3 significant
/// digits).
#[must_use]
pub fn ratio(value: f64) -> String {
    if value >= 100.0 {
        format!("{value:.0}")
    } else if value >= 10.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.2}")
    }
}

/// Formats a byte count in the paper's Figure 8 unit (GB, 3 significant
/// digits).
#[must_use]
pub fn gigabytes(bytes: f64) -> String {
    let gb = bytes / 1e9;
    if gb.abs() < 5e-9 {
        "0".to_owned()
    } else if gb >= 100.0 {
        format!("{gb:.0}")
    } else if gb >= 10.0 {
        format!("{gb:.1}")
    } else if gb >= 1.0 {
        format!("{gb:.2}")
    } else {
        format!("{gb:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_of_identical_values_is_the_value() {
        assert!((gmean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        let _ = gmean(&[1.0, 0.0]);
    }

    #[test]
    fn table_alignment_and_content() {
        let mut t = Table::new("x", &["a", "bbbb"]);
        t.row(&["12345".into(), "1".into()]);
        let s = t.to_string();
        assert!(s.contains("12345"));
        assert!(s.contains("== x =="));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn ratio_formats_by_magnitude() {
        assert_eq!(ratio(3.392), "3.39");
        assert_eq!(ratio(23.48), "23.5");
        assert_eq!(ratio(234.8), "235");
    }

    #[test]
    fn gigabyte_formats() {
        assert_eq!(gigabytes(16.9e9), "16.9");
        assert_eq!(gigabytes(0.0121e9), "0.0121");
        assert_eq!(gigabytes(1.47e9), "1.47");
        assert_eq!(gigabytes(157e9), "157");
    }
}
