//! Communication cost of one hierarchy level under a full assignment.

use hypar_tensor::Bytes;
use serde::{Deserialize, Serialize};

use crate::{
    inter_elems, intra_elems, JunctionScaling, NetworkCommTensors, Parallelism, ScaleState,
    PRECISION_BYTES,
};

/// The itemized communication of one hierarchy level: one intra-layer term
/// per weighted layer and one inter-layer term per junction between
/// adjacent layers.  All values are tensor elements crossing the
/// group-to-group boundary (both directions).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelCost {
    /// Intra-layer elements per layer (`len == L`).
    pub intra: Vec<f64>,
    /// Inter-layer elements per junction (`len == L - 1`).
    pub inter: Vec<f64>,
}

impl LevelCost {
    /// Total elements exchanged at this level.
    #[must_use]
    pub fn total_elems(&self) -> f64 {
        self.intra.iter().sum::<f64>() + self.inter.iter().sum::<f64>()
    }

    /// Total bytes exchanged at this level at fp32 precision.
    #[must_use]
    pub fn total_bytes(&self) -> Bytes {
        Bytes::from_elems(self.total_elems(), PRECISION_BYTES)
    }
}

/// Evaluates the communication of one hierarchy level for `assignment`,
/// with tensors scaled by `scales` (the choices committed at the levels
/// above).
///
/// This is the cost function minimized by Algorithm 1; it is exposed
/// separately so that exhaustive sweeps (Figures 9 and 10) and baseline
/// plans cost *arbitrary* assignments under the identical model.
///
/// # Panics
///
/// Panics if `assignment.len()` or `scales.len()` differ from the number of
/// weighted layers.
///
/// # Examples
///
/// ```
/// use hypar_comm::{level_cost, NetworkCommTensors, Parallelism, ScaleState};
/// use hypar_models::zoo;
///
/// let net = NetworkCommTensors::from_network(&zoo::lenet_c(), 256)?;
/// let scales = ScaleState::identity(net.len());
/// let all_dp = vec![Parallelism::Data; net.len()];
/// let cost = level_cost(&net, &scales, &all_dp);
/// // Data Parallelism: gradient exchange only, no junction traffic.
/// assert!(cost.inter.iter().all(|&x| x == 0.0));
/// assert_eq!(cost.total_elems(), 2.0 * 430_500.0);
/// # Ok::<(), hypar_models::NetworkError>(())
/// ```
#[must_use]
pub fn level_cost(
    net: &NetworkCommTensors,
    scales: &ScaleState,
    assignment: &[Parallelism],
) -> LevelCost {
    level_cost_with(net, scales, assignment, JunctionScaling::Consumer)
}

/// [`level_cost`] under an explicit [`JunctionScaling`] interpretation
/// (used by the model-ablation experiment).
///
/// # Panics
///
/// Same as [`level_cost`].
#[must_use]
pub fn level_cost_with(
    net: &NetworkCommTensors,
    scales: &ScaleState,
    assignment: &[Parallelism],
    mode: JunctionScaling,
) -> LevelCost {
    assert_eq!(
        assignment.len(),
        net.len(),
        "assignment must cover every weighted layer"
    );
    assert_eq!(
        scales.len(),
        net.len(),
        "scales must cover every weighted layer"
    );

    let intra = net
        .layers()
        .iter()
        .enumerate()
        .map(|(l, layer)| intra_elems(assignment[l], layer, scales.layer(l)))
        .collect();

    let inter = (0..net.len().saturating_sub(1))
        .map(|l| {
            inter_elems(
                assignment[l],
                assignment[l + 1],
                net.layer(l).junction_elems,
                scales.junction_scale_with(l, mode),
            )
        })
        .collect();

    LevelCost { intra, inter }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypar_models::zoo;
    use Parallelism::{Data, Model};

    fn lenet() -> NetworkCommTensors {
        NetworkCommTensors::from_network(&zoo::lenet_c(), 256).unwrap()
    }

    #[test]
    fn all_dp_has_no_inter_traffic() {
        let net = lenet();
        let cost = level_cost(&net, &ScaleState::identity(4), &[Data; 4]);
        assert!(cost.inter.iter().all(|&x| x == 0.0));
        assert_eq!(cost.intra.len(), 4);
        assert_eq!(cost.inter.len(), 3);
    }

    #[test]
    fn all_mp_pays_junctions() {
        let net = lenet();
        let cost = level_cost(&net, &ScaleState::identity(4), &[Model; 4]);
        assert!(cost.inter.iter().all(|&x| x > 0.0));
        // mp-mp junction costs exactly the junction tensor size.
        assert_eq!(cost.inter[0], net.layer(0).junction_elems);
    }

    #[test]
    fn hybrid_beats_both_extremes_for_lenet() {
        let net = lenet();
        let scales = ScaleState::identity(4);
        let dp = level_cost(&net, &scales, &[Data; 4]).total_elems();
        let mp = level_cost(&net, &scales, &[Model; 4]).total_elems();
        // The Figure 9 optimum: conv dp, fc mp.
        let hybrid = level_cost(&net, &scales, &[Data, Data, Model, Model]).total_elems();
        assert!(hybrid < dp, "hybrid {hybrid} should beat dp {dp}");
        assert!(hybrid < mp, "hybrid {hybrid} should beat mp {mp}");
    }

    #[test]
    fn total_bytes_applies_precision() {
        let net = lenet();
        let cost = level_cost(&net, &ScaleState::identity(4), &[Data; 4]);
        assert_eq!(cost.total_bytes().value(), cost.total_elems() * 4.0);
    }

    #[test]
    #[should_panic(expected = "assignment must cover")]
    fn wrong_assignment_length_panics() {
        let net = lenet();
        let _ = level_cost(&net, &ScaleState::identity(4), &[Data; 3]);
    }

    #[test]
    fn scaled_level_costs_shrink() {
        let net = lenet();
        let top = ScaleState::identity(4);
        let assignment = [Data, Data, Model, Model];
        let below = top.descend(&assignment);
        let c_top = level_cost(&net, &top, &assignment).total_elems();
        let c_below = level_cost(&net, &below, &assignment).total_elems();
        assert!(c_below < c_top);
    }
}
