//! HyPar's communication model (paper §3).
//!
//! Training a DNN across two groups of accelerators moves tensors between
//! the groups.  The paper decomposes this traffic into:
//!
//! * **intra-layer** communication (Table 1) — partial-sum exchanges caused
//!   by the parallelism chosen *for* a layer: gradient all-reduce under
//!   data parallelism, output-activation all-reduce under model
//!   parallelism ([`intra_elems`]);
//! * **inter-layer** communication (Table 2) — redistribution of the
//!   feature/error maps at the junction between two adjacent layers when
//!   their parallelisms differ in layout ([`inter_elems`]).
//!
//! Amounts are tensor **element counts crossing the link between the two
//! groups, both directions included** — the convention of the paper's
//! worked examples (56 KB = 2×70×100×4 B for a 70×100 fc layer under dp).
//! Multiply by [`PRECISION_BYTES`] for bytes.
//!
//! The hierarchical partition re-applies the model at every level of a
//! binary accelerator hierarchy; [`ScaleState`] tracks how each layer's
//! tensors shrink as upper levels commit to dp (batch halves) or mp
//! (kernel input dimension halves) — see `DESIGN.md` §2 for the full
//! derivation.
//!
//! # Examples
//!
//! The paper's §3.4 fully-connected example — 70 inputs, 100 outputs,
//! batch 32 — where model parallelism beats data parallelism:
//!
//! ```
//! use hypar_comm::{intra_bytes, LayerCommTensors, LayerScale, Parallelism};
//!
//! let fc = LayerCommTensors::fully_connected("fc", 32, 70, 100);
//! let dp = intra_bytes(Parallelism::Data, &fc, LayerScale::default());
//! let mp = intra_bytes(Parallelism::Model, &fc, LayerScale::default());
//! assert_eq!(dp.value(), 56_000.0);  // 2 x 70x100 x 4 B
//! assert_eq!(mp.value(), 25_600.0);  // 2 x 32x100 x 4 B
//! assert!(mp < dp);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
mod model;
mod parallelism;
mod scale;
mod tensors;

pub use cost::{level_cost, level_cost_with, LevelCost};
pub use model::{inter_bytes, inter_elems, inter_split, intra_bytes, intra_elems, PRECISION_BYTES};
pub use parallelism::Parallelism;
pub use scale::{junction_scale_between, JunctionScaling, LayerScale, ScaleState};
pub use tensors::{LayerCommTensors, NetworkCommTensors};
