//! The intra-layer (Table 1) and inter-layer (Table 2) communication
//! amounts.

use hypar_tensor::Bytes;

use crate::{LayerCommTensors, LayerScale, Parallelism};

/// Bytes per tensor element: the paper computes with 32-bit floating
/// point throughout (§6.1).
pub const PRECISION_BYTES: u32 = 4;

/// Intra-layer communication between the two groups of a partition, in
/// tensor elements (both directions), for a layer whose tensors are scaled
/// by `scale` from the levels above (Table 1).
///
/// * dp: the gradient `ΔW_l` is computed as partial sums by both groups and
///   must be exchanged to update the replicated kernels — `2·A(ΔW_l)`.
/// * mp: the produced output `F_{l+1}` exists as full-width partial sums in
///   both groups and must be exchanged before the next layer —
///   `2·A(F_{l+1})` (pre-pooling).
///
/// # Examples
///
/// The §3.4 convolutional example where data parallelism wins:
///
/// ```
/// use hypar_comm::{intra_elems, LayerCommTensors, LayerScale, Parallelism};
///
/// let conv = LayerCommTensors::conv("c", 32, (20, 12, 12), 5, 50, (8, 8), (8, 8));
/// let dp = intra_elems(Parallelism::Data, &conv, LayerScale::default());
/// let mp = intra_elems(Parallelism::Model, &conv, LayerScale::default());
/// assert_eq!(dp, 2.0 * 25_000.0);       // 200 KB at fp32
/// assert_eq!(mp, 2.0 * 32.0 * 3_200.0); // 819.2 KB at fp32
/// assert!(dp < mp);
/// ```
#[must_use]
pub fn intra_elems(choice: Parallelism, layer: &LayerCommTensors, scale: LayerScale) -> f64 {
    match choice {
        Parallelism::Data => 2.0 * layer.weight_elems * scale.weight_scale(),
        Parallelism::Model => 2.0 * layer.output_elems * scale.output_scale(),
    }
}

/// [`intra_elems`] converted to bytes at the paper's fp32 precision.
#[must_use]
pub fn intra_bytes(choice: Parallelism, layer: &LayerCommTensors, scale: LayerScale) -> Bytes {
    Bytes::from_elems(intra_elems(choice, layer, scale), PRECISION_BYTES)
}

/// Inter-layer communication between the two groups at the junction
/// between adjacent layers `l` (parallelism `prev`) and `l+1` (parallelism
/// `next`), in tensor elements (both directions), per Table 2.
///
/// `junction_elems` is the full batched size of the tensor passed between
/// the layers (`A(F_{l+1}) = A(E_{l+1})`, post-pooling) and
/// `junction_scale` the fraction of it in the sub-problem's scope.
///
/// The four transitions:
///
/// | transition | amount (one direction) |
/// |------------|------------------------|
/// | dp→dp      | `0`                    |
/// | dp→mp      | `0.25·A(F) + 0.25·A(E)`|
/// | mp→mp      | `0.5·A(E)`             |
/// | mp→dp      | `0.5·A(E)`             |
///
/// # Examples
///
/// ```
/// use hypar_comm::{inter_elems, Parallelism};
///
/// let j = 1000.0;
/// assert_eq!(inter_elems(Parallelism::Data, Parallelism::Data, j, 1.0), 0.0);
/// assert_eq!(inter_elems(Parallelism::Data, Parallelism::Model, j, 1.0), 1000.0);
/// assert_eq!(inter_elems(Parallelism::Model, Parallelism::Model, j, 1.0), 1000.0);
/// ```
#[must_use]
pub fn inter_elems(
    prev: Parallelism,
    next: Parallelism,
    junction_elems: f64,
    junction_scale: f64,
) -> f64 {
    use Parallelism::{Data, Model};
    let feature = junction_elems * junction_scale;
    let error = junction_elems * junction_scale;
    let one_way = match (prev, next) {
        (Data, Data) => 0.0,
        (Data, Model) => 0.25 * feature + 0.25 * error,
        (Model, Model) | (Model, Data) => 0.5 * error,
    };
    2.0 * one_way
}

/// [`inter_elems`] split into its two temporal components: the
/// feature-map transfer (`F_{l+1}`, paid during the forward pass) and the
/// error transfer (`E_{l+1}`, paid during the backward pass).
///
/// The sum of the two components equals [`inter_elems`]; the event-driven
/// simulator schedules them at the points in the training step where they
/// actually occur.
///
/// # Examples
///
/// ```
/// use hypar_comm::{inter_split, Parallelism};
///
/// let (f, e) = inter_split(Parallelism::Data, Parallelism::Model, 1000.0, 1.0);
/// assert_eq!((f, e), (500.0, 500.0));
/// let (f, e) = inter_split(Parallelism::Model, Parallelism::Data, 1000.0, 1.0);
/// assert_eq!((f, e), (0.0, 1000.0));
/// ```
#[must_use]
pub fn inter_split(
    prev: Parallelism,
    next: Parallelism,
    junction_elems: f64,
    junction_scale: f64,
) -> (f64, f64) {
    use Parallelism::{Data, Model};
    let scaled = junction_elems * junction_scale;
    let (f_one_way, e_one_way) = match (prev, next) {
        (Data, Data) => (0.0, 0.0),
        (Data, Model) => (0.25 * scaled, 0.25 * scaled),
        (Model, Model) | (Model, Data) => (0.0, 0.5 * scaled),
    };
    (2.0 * f_one_way, 2.0 * e_one_way)
}

/// [`inter_elems`] converted to bytes at the paper's fp32 precision.
#[must_use]
pub fn inter_bytes(
    prev: Parallelism,
    next: Parallelism,
    junction_elems: f64,
    junction_scale: f64,
) -> Bytes {
    Bytes::from_elems(
        inter_elems(prev, next, junction_elems, junction_scale),
        PRECISION_BYTES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use Parallelism::{Data, Model};

    fn paper_fc() -> LayerCommTensors {
        LayerCommTensors::fully_connected("fc", 32, 70, 100)
    }

    #[test]
    fn table1_fc_example_bytes() {
        // §3.4: dp 56 KB, mp 25.6 KB for the 70x100 fc layer at B=32.
        assert_eq!(
            intra_bytes(Data, &paper_fc(), LayerScale::default()).value(),
            56_000.0
        );
        assert_eq!(
            intra_bytes(Model, &paper_fc(), LayerScale::default()).value(),
            25_600.0
        );
    }

    #[test]
    fn table1_conv_example_bytes() {
        // §3.4: dp 200 KB, mp 819.2 KB for the 5x5x20x50 conv at B=32.
        let conv = LayerCommTensors::conv("c", 32, (20, 12, 12), 5, 50, (8, 8), (8, 8));
        assert_eq!(
            intra_bytes(Data, &conv, LayerScale::default()).value(),
            200_000.0
        );
        assert_eq!(
            intra_bytes(Model, &conv, LayerScale::default()).value(),
            819_200.0
        );
    }

    #[test]
    fn section_652_vgg_e_conv5_and_fc3() {
        // §6.5.2: conv5 of VGG-E at b32: A(ΔW)=2,359,296 < A(F)=3,211,264.
        let conv5 = LayerCommTensors::conv("conv5", 32, (512, 14, 14), 3, 512, (14, 14), (7, 7));
        assert_eq!(conv5.weight_elems, 2_359_296.0);
        assert_eq!(conv5.output_elems, 3_211_264.0);
        // fc3 at b4096: A(ΔW) = A(F) = 4,096,000.
        let fc3 = LayerCommTensors::fully_connected("fc3", 4096, 4096, 1000);
        assert_eq!(fc3.weight_elems, 4_096_000.0);
        assert_eq!(fc3.output_elems, 4_096_000.0);
    }

    #[test]
    fn dp_intra_is_batch_independent() {
        let b32 = LayerCommTensors::fully_connected("fc", 32, 70, 100);
        let b4096 = LayerCommTensors::fully_connected("fc", 4096, 70, 100);
        let s = LayerScale::default();
        assert_eq!(intra_elems(Data, &b32, s), intra_elems(Data, &b4096, s));
        assert!(intra_elems(Model, &b32, s) < intra_elems(Model, &b4096, s));
    }

    #[test]
    fn scales_shrink_the_right_tensor() {
        let fc = paper_fc();
        let after_dp = LayerScale::default().descend(Data);
        // One dp level above: mp cost halves (batch), dp cost unchanged.
        assert_eq!(
            intra_elems(Data, &fc, after_dp),
            intra_elems(Data, &fc, LayerScale::default())
        );
        assert_eq!(
            intra_elems(Model, &fc, after_dp),
            intra_elems(Model, &fc, LayerScale::default()) / 2.0
        );
        let after_mp = LayerScale::default().descend(Model);
        // One mp level above: dp cost halves (kernel input dim), mp cost unchanged.
        assert_eq!(
            intra_elems(Data, &fc, after_mp),
            intra_elems(Data, &fc, LayerScale::default()) / 2.0
        );
        assert_eq!(
            intra_elems(Model, &fc, after_mp),
            intra_elems(Model, &fc, LayerScale::default())
        );
    }

    #[test]
    fn table2_transitions() {
        let j = 4000.0;
        assert_eq!(inter_elems(Data, Data, j, 1.0), 0.0);
        assert_eq!(
            inter_elems(Data, Model, j, 1.0),
            2.0 * (0.25 * j + 0.25 * j)
        );
        assert_eq!(inter_elems(Model, Model, j, 1.0), 2.0 * 0.5 * j);
        assert_eq!(inter_elems(Model, Data, j, 1.0), 2.0 * 0.5 * j);
    }

    #[test]
    fn inter_bytes_uses_fp32() {
        assert_eq!(inter_bytes(Model, Data, 1000.0, 1.0).value(), 4000.0);
    }

    proptest! {
        #[test]
        fn intra_is_nonnegative_and_scales_linearly(
            w in 1.0f64..1e9, o in 1.0f64..1e9, k in 0u32..8
        ) {
            let layer = LayerCommTensors {
                name: "l".into(), is_conv: true,
                weight_elems: w, input_elems: o, output_elems: o, junction_elems: o,
            };
            let mut scale = LayerScale::default();
            for _ in 0..k { scale = scale.descend(Data); }
            let dp = intra_elems(Data, &layer, scale);
            let mp = intra_elems(Model, &layer, scale);
            prop_assert!(dp >= 0.0 && mp >= 0.0);
            prop_assert_eq!(dp, 2.0 * w); // dp never shrinks under dp-only descent
            prop_assert_eq!(mp, 2.0 * o * 0.5f64.powi(k as i32));
        }

        #[test]
        fn inter_split_sums_to_inter(
            a in any::<bool>(), b in any::<bool>(), j in 1.0f64..1e9, k in 0u32..8
        ) {
            let prev = Parallelism::from_bit(a);
            let next = Parallelism::from_bit(b);
            let scale = 0.5f64.powi(k as i32);
            let (f, e) = inter_split(prev, next, j, scale);
            prop_assert!(f >= 0.0 && e >= 0.0);
            prop_assert_eq!(f + e, inter_elems(prev, next, j, scale));
        }

        #[test]
        fn inter_is_zero_iff_dp_dp(a in any::<bool>(), b in any::<bool>(), j in 1.0f64..1e9) {
            let prev = Parallelism::from_bit(a);
            let next = Parallelism::from_bit(b);
            let cost = inter_elems(prev, next, j, 1.0);
            if prev == Data && next == Data {
                prop_assert_eq!(cost, 0.0);
            } else {
                prop_assert!(cost > 0.0);
                prop_assert_eq!(cost, j); // all non-dp-dp transitions cost exactly A(junction)
            }
        }
    }
}
