//! The per-layer parallelism choice.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The parallelism assigned to one weighted layer at one hierarchy level.
///
/// Lowercase "data/model parallelism" in the paper: under **data
/// parallelism** both groups hold a full copy of the layer's kernel and
/// split the mini-batch; under **model parallelism** the kernel is split
/// along its input dimension (Figure 1) and both groups see the full
/// batch.
///
/// # Examples
///
/// ```
/// use hypar_comm::Parallelism;
///
/// assert_eq!(Parallelism::Data.to_string(), "dp");
/// assert_eq!(Parallelism::Model.flipped(), Parallelism::Data);
/// assert_eq!(Parallelism::from_bit(true), Parallelism::Model);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Parallelism {
    /// Data parallelism: batch partitioned, kernels replicated.
    Data,
    /// Model parallelism: kernels partitioned, batch replicated.
    Model,
}

impl Parallelism {
    /// Both variants, in `{dp, mp}` order — handy for exhaustive sweeps.
    pub const BOTH: [Self; 2] = [Self::Data, Self::Model];

    /// The other choice.
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Self::Data => Self::Model,
            Self::Model => Self::Data,
        }
    }

    /// Decodes the figure-9/10 bit convention of the paper: `0` is dp, `1`
    /// is mp.
    #[must_use]
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Self::Model
        } else {
            Self::Data
        }
    }

    /// Encodes to the paper's bit convention: dp is `0`, mp is `1`.
    #[must_use]
    pub fn bit(self) -> u8 {
        match self {
            Self::Data => 0,
            Self::Model => 1,
        }
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Data => write!(f, "dp"),
            Self::Model => write!(f, "mp"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_shorthand() {
        assert_eq!(Parallelism::Data.to_string(), "dp");
        assert_eq!(Parallelism::Model.to_string(), "mp");
    }

    #[test]
    fn flip_is_involutive() {
        for p in Parallelism::BOTH {
            assert_eq!(p.flipped().flipped(), p);
            assert_ne!(p.flipped(), p);
        }
    }

    #[test]
    fn bit_round_trip() {
        for p in Parallelism::BOTH {
            assert_eq!(Parallelism::from_bit(p.bit() == 1), p);
        }
    }

    #[test]
    fn both_covers_two_distinct_variants() {
        assert_eq!(Parallelism::BOTH.len(), 2);
        assert_ne!(Parallelism::BOTH[0], Parallelism::BOTH[1]);
    }
}
