//! Hierarchical tensor-scale bookkeeping.
//!
//! Algorithm 2 in the paper applies the two-group partition recursively:
//! after a level commits to an assignment, each of the two sub-groups faces
//! the *same* network with *smaller* tensors.  Which tensors shrink depends
//! on the committed choice per layer (Figure 1):
//!
//! * **dp** partitions the mini-batch → the layer's batch fraction halves;
//! * **mp** partitions the kernel along its input dimension → the layer's
//!   input-feature fraction halves (its *output* stays full width, as the
//!   partial-sum responsibility covers all output features).

use hypar_tensor::Frac;
use serde::{Deserialize, Serialize};

use crate::Parallelism;

/// How the junction tensor between two adjacent layers is scoped when the
/// hierarchical partition descends a level.
///
/// The paper's Table 2 formulas reference `A(F_{l+1})`/`A(E_{l+1})` but do
/// not say which *fraction* of the junction tensor a sub-group owns when
/// the producing and consuming layers have been partitioned differently by
/// the levels above.  This crate defaults to the **consumer** scope (see
/// `DESIGN.md` §2); the other interpretations are kept for the ablation in
/// the experiment harness.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JunctionScaling {
    /// The consumer layer's L-tensor layout: `bat[l+1] · fin[l+1]`
    /// (default — reproduces the paper's Figure 5 patterns).
    #[default]
    Consumer,
    /// The producer layer's R-tensor layout: `bat[l]`.
    Producer,
    /// No scaling: every level sees the full junction tensor.
    Unscaled,
}

/// The accumulated tensor fractions of one layer after zero or more
/// hierarchy levels have committed their parallelism.
///
/// # Examples
///
/// ```
/// use hypar_comm::{LayerScale, Parallelism};
///
/// let s = LayerScale::default()
///     .descend(Parallelism::Data)
///     .descend(Parallelism::Data)
///     .descend(Parallelism::Model);
/// assert_eq!(s.batch_fraction().value(), 0.25);
/// assert_eq!(s.input_fraction().value(), 0.5);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerScale {
    bat: Frac,
    fin: Frac,
}

impl LayerScale {
    /// The unpartitioned scale (both fractions are 1).
    pub const IDENTITY: Self = Self {
        bat: Frac::ONE,
        fin: Frac::ONE,
    };

    /// The batch fraction accumulated from data-parallel choices above.
    #[must_use]
    pub fn batch_fraction(self) -> Frac {
        self.bat
    }

    /// The input-feature (kernel input dimension) fraction accumulated from
    /// model-parallel choices above.
    #[must_use]
    pub fn input_fraction(self) -> Frac {
        self.fin
    }

    /// The scale after one more level commits `choice` for this layer.
    #[must_use]
    pub fn descend(self, choice: Parallelism) -> Self {
        match choice {
            Parallelism::Data => Self {
                bat: self.bat.halved(),
                fin: self.fin,
            },
            Parallelism::Model => Self {
                bat: self.bat,
                fin: self.fin.halved(),
            },
        }
    }

    /// Fraction of `A(W_l)`/`A(ΔW_l)` a sub-group holds: kernels shrink
    /// only along their input dimension (mp).
    #[must_use]
    pub fn weight_scale(self) -> f64 {
        self.fin.value()
    }

    /// Fraction of the produced output `A(F_{l+1})`/`A(E_{l+1})` in this
    /// layer's computation scope: outputs shrink only with the batch (dp) —
    /// under mp each group is responsible for full-width partial sums.
    #[must_use]
    pub fn output_scale(self) -> f64 {
        self.bat.value()
    }

    /// Fraction of the consumed input `A(F_l)`/`A(E_l)`: shrinks with both
    /// the batch (dp) and the feature dimension (mp).
    #[must_use]
    pub fn input_scale(self) -> f64 {
        self.bat.value() * self.fin.value()
    }
}

/// The scales of every layer of a network at some depth of the hierarchy.
///
/// # Examples
///
/// ```
/// use hypar_comm::{Parallelism, ScaleState};
///
/// let state = ScaleState::identity(3)
///     .descend(&[Parallelism::Data, Parallelism::Model, Parallelism::Model]);
/// assert_eq!(state.layer(0).batch_fraction().value(), 0.5);
/// assert_eq!(state.layer(1).input_fraction().value(), 0.5);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleState {
    layers: Vec<LayerScale>,
}

impl ScaleState {
    /// The unpartitioned state for a network of `len` weighted layers.
    #[must_use]
    pub fn identity(len: usize) -> Self {
        Self {
            layers: vec![LayerScale::IDENTITY; len],
        }
    }

    /// Number of layers tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the state tracks no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The scale of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    #[must_use]
    pub fn layer(&self, l: usize) -> LayerScale {
        self.layers[l]
    }

    /// All per-layer scales in order.
    #[must_use]
    pub fn layers(&self) -> &[LayerScale] {
        &self.layers
    }

    /// The state after one more level commits `assignment`.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the tracked layer count —
    /// an assignment always covers every weighted layer.
    #[must_use]
    pub fn descend(&self, assignment: &[Parallelism]) -> Self {
        assert_eq!(
            assignment.len(),
            self.layers.len(),
            "assignment must cover every weighted layer"
        );
        Self {
            layers: self
                .layers
                .iter()
                .zip(assignment)
                .map(|(s, &p)| s.descend(p))
                .collect(),
        }
    }

    /// The junction scale between layer `l` and `l+1`: the fraction of the
    /// junction tensor a sub-group is responsible for, referenced to the
    /// **consumer** layer's layout (see DESIGN.md §2).
    ///
    /// # Panics
    ///
    /// Panics if `l + 1` is out of range.
    #[must_use]
    pub fn junction_scale(&self, l: usize) -> f64 {
        self.junction_scale_with(l, JunctionScaling::Consumer)
    }

    /// [`ScaleState::junction_scale`] under an explicit
    /// [`JunctionScaling`] interpretation.
    ///
    /// # Panics
    ///
    /// Panics if `l + 1` is out of range.
    #[must_use]
    pub fn junction_scale_with(&self, l: usize, mode: JunctionScaling) -> f64 {
        junction_scale_between(self.layers[l], self.layers[l + 1], mode)
    }
}

/// The fraction of a junction tensor in scope between an arbitrary
/// producer/consumer layer pair, under a [`JunctionScaling`]
/// interpretation.
///
/// For adjacent chain layers this is exactly
/// [`ScaleState::junction_scale_with`]; the DAG pipeline also prices
/// *inter-segment* junctions, where the producing and consuming layers
/// live in different segments and carry independently accumulated scales.
///
/// # Examples
///
/// ```
/// use hypar_comm::{junction_scale_between, JunctionScaling, LayerScale, Parallelism};
///
/// let producer = LayerScale::default().descend(Parallelism::Data);
/// let consumer = LayerScale::default().descend(Parallelism::Model);
/// assert_eq!(junction_scale_between(producer, consumer, JunctionScaling::Consumer), 0.5);
/// assert_eq!(junction_scale_between(producer, consumer, JunctionScaling::Producer), 0.5);
/// assert_eq!(junction_scale_between(producer, consumer, JunctionScaling::Unscaled), 1.0);
/// ```
#[must_use]
pub fn junction_scale_between(
    producer: LayerScale,
    consumer: LayerScale,
    mode: JunctionScaling,
) -> f64 {
    match mode {
        JunctionScaling::Consumer => consumer.input_scale(),
        JunctionScaling::Producer => producer.output_scale(),
        JunctionScaling::Unscaled => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_is_all_ones() {
        let s = ScaleState::identity(4);
        for l in 0..4 {
            assert_eq!(s.layer(l).weight_scale(), 1.0);
            assert_eq!(s.layer(l).output_scale(), 1.0);
            assert_eq!(s.layer(l).input_scale(), 1.0);
        }
    }

    #[test]
    fn dp_halves_batch_only() {
        let s = LayerScale::default().descend(Parallelism::Data);
        assert_eq!(s.output_scale(), 0.5);
        assert_eq!(s.weight_scale(), 1.0);
        assert_eq!(s.input_scale(), 0.5);
    }

    #[test]
    fn mp_halves_input_features_only() {
        let s = LayerScale::default().descend(Parallelism::Model);
        assert_eq!(s.output_scale(), 1.0);
        assert_eq!(s.weight_scale(), 0.5);
        assert_eq!(s.input_scale(), 0.5);
    }

    #[test]
    fn input_scale_is_product_of_both() {
        let s = LayerScale::default()
            .descend(Parallelism::Data)
            .descend(Parallelism::Model)
            .descend(Parallelism::Data);
        assert_eq!(s.input_scale(), 0.125);
        assert_eq!(s.weight_scale(), 0.5);
        assert_eq!(s.output_scale(), 0.25);
    }

    #[test]
    fn junction_scale_uses_consumer_layout() {
        let state = ScaleState::identity(2).descend(&[Parallelism::Data, Parallelism::Model]);
        // Junction 0->1 follows layer 1 (mp): feature fraction 1/2.
        assert_eq!(state.junction_scale(0), 0.5);
    }

    #[test]
    fn junction_scaling_modes_disagree_when_layers_diverge() {
        let state = ScaleState::identity(2).descend(&[Parallelism::Data, Parallelism::Model]);
        assert_eq!(state.junction_scale_with(0, JunctionScaling::Consumer), 0.5);
        // Producer (layer 0, dp): batch fraction 1/2.
        assert_eq!(state.junction_scale_with(0, JunctionScaling::Producer), 0.5);
        assert_eq!(state.junction_scale_with(0, JunctionScaling::Unscaled), 1.0);
        // Two levels of divergence: consumer 1/4 features, producer 1/4 batch.
        let deeper = state.descend(&[Parallelism::Data, Parallelism::Model]);
        assert_eq!(
            deeper.junction_scale_with(0, JunctionScaling::Consumer),
            0.25
        );
        assert_eq!(
            deeper.junction_scale_with(0, JunctionScaling::Producer),
            0.25
        );
        // Mixed choices make them diverge.
        let mixed = ScaleState::identity(2)
            .descend(&[Parallelism::Data, Parallelism::Data])
            .descend(&[Parallelism::Data, Parallelism::Model]);
        assert_eq!(
            mixed.junction_scale_with(0, JunctionScaling::Producer),
            0.25
        );
        assert_eq!(
            mixed.junction_scale_with(0, JunctionScaling::Consumer),
            0.25
        );
    }

    #[test]
    fn junction_scaling_default_is_consumer() {
        assert_eq!(JunctionScaling::default(), JunctionScaling::Consumer);
    }

    #[test]
    #[should_panic(expected = "assignment must cover every weighted layer")]
    fn mismatched_assignment_panics() {
        let _ = ScaleState::identity(3).descend(&[Parallelism::Data]);
    }

    proptest! {
        /// Any sequence of H descents leaves every layer's input scale at
        /// exactly 2^-H: each level halves each layer's work once.
        #[test]
        fn work_halves_once_per_level(choices in proptest::collection::vec(any::<bool>(), 0..16)) {
            let mut s = LayerScale::default();
            for &c in &choices {
                s = s.descend(Parallelism::from_bit(c));
            }
            let expected = 0.5f64.powi(choices.len() as i32);
            prop_assert_eq!(s.input_scale(), expected);
        }

        /// Descent order does not matter (the fractions commute).
        #[test]
        fn descent_commutes(a in any::<bool>(), b in any::<bool>()) {
            let pa = Parallelism::from_bit(a);
            let pb = Parallelism::from_bit(b);
            let s1 = LayerScale::default().descend(pa).descend(pb);
            let s2 = LayerScale::default().descend(pb).descend(pa);
            prop_assert_eq!(s1, s2);
        }
    }
}
