//! Per-layer tensor element counts consumed by the communication model.

use hypar_models::{NetworkError, NetworkShapes};
use serde::{Deserialize, Serialize};

/// The tensor sizes of one weighted layer that the communication model
/// needs, as element counts (batched where applicable).
///
/// These are the `A(·)` quantities of the paper: `weight_elems = A(W_l) =
/// A(ΔW_l)`, `output_elems = A(F_{l+1})` *as produced* (pre-pooling, the
/// model-parallel partial-sum tensor), and `junction_elems` the post-pooling
/// tensor actually handed to the next layer (the Table 2 tensor; equals
/// `A(E_{l+1})` at that junction).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerCommTensors {
    /// Layer name for reporting.
    pub name: String,
    /// Whether the layer is convolutional.
    pub is_conv: bool,
    /// `A(W_l)` — kernel/gradient elements.
    pub weight_elems: f64,
    /// `A(F_l)` — batched input feature-map elements.
    pub input_elems: f64,
    /// `A(F_{l+1})` — batched produced output elements, pre-pooling.
    pub output_elems: f64,
    /// Batched junction elements passed to the next layer, post-pooling.
    pub junction_elems: f64,
}

impl LayerCommTensors {
    /// Convenience constructor for a fully-connected layer, used heavily in
    /// tests and the paper's worked examples.
    ///
    /// # Examples
    ///
    /// ```
    /// use hypar_comm::LayerCommTensors;
    /// let fc = LayerCommTensors::fully_connected("fc", 32, 70, 100);
    /// assert_eq!(fc.weight_elems, 7_000.0);
    /// assert_eq!(fc.output_elems, 3_200.0);
    /// ```
    #[must_use]
    pub fn fully_connected(name: impl Into<String>, batch: u64, inputs: u64, outputs: u64) -> Self {
        Self {
            name: name.into(),
            is_conv: false,
            weight_elems: (inputs * outputs) as f64,
            input_elems: (batch * inputs) as f64,
            output_elems: (batch * outputs) as f64,
            junction_elems: (batch * outputs) as f64,
        }
    }

    /// Convenience constructor for a convolutional layer given explicit
    /// tensor extents; `out_hw`/`pooled_hw` are the pre-/post-pooling
    /// spatial extents.
    #[must_use]
    pub fn conv(
        name: impl Into<String>,
        batch: u64,
        in_chw: (u64, u64, u64),
        kernel: u64,
        out_channels: u64,
        out_hw: (u64, u64),
        pooled_hw: (u64, u64),
    ) -> Self {
        let (c_in, h_in, w_in) = in_chw;
        Self {
            name: name.into(),
            is_conv: true,
            weight_elems: (kernel * kernel * c_in * out_channels) as f64,
            input_elems: (batch * c_in * h_in * w_in) as f64,
            output_elems: (batch * out_channels * out_hw.0 * out_hw.1) as f64,
            junction_elems: (batch * out_channels * pooled_hw.0 * pooled_hw.1) as f64,
        }
    }
}

/// The communication-model view of a whole network: one
/// [`LayerCommTensors`] per weighted layer.
///
/// # Examples
///
/// ```
/// use hypar_comm::NetworkCommTensors;
/// use hypar_models::zoo;
///
/// let net = NetworkCommTensors::from_network(&zoo::lenet_c(), 256)?;
/// assert_eq!(net.len(), 4);
/// assert_eq!(net.layer(2).weight_elems, 400_000.0); // fc1: 800x500
/// # Ok::<(), hypar_models::NetworkError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkCommTensors {
    name: String,
    batch: u64,
    layers: Vec<LayerCommTensors>,
}

impl NetworkCommTensors {
    /// Builds the communication view from already-inferred shapes.
    #[must_use]
    pub fn from_shapes(shapes: &NetworkShapes) -> Self {
        let layers = shapes
            .layers()
            .iter()
            .map(|l| LayerCommTensors {
                name: l.name.clone(),
                is_conv: l.is_conv,
                weight_elems: l.weight_elems as f64,
                input_elems: l.f_in_elems() as f64,
                output_elems: l.f_out_elems() as f64,
                junction_elems: l.junction_elems() as f64,
            })
            .collect();
        Self {
            name: shapes.name().to_owned(),
            batch: shapes.batch(),
            layers,
        }
    }

    /// Runs shape inference on `net` at `batch` and builds the
    /// communication view.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetworkError`] from shape inference.
    pub fn from_network(net: &hypar_models::Network, batch: u64) -> Result<Self, NetworkError> {
        Ok(Self::from_shapes(&NetworkShapes::infer(net, batch)?))
    }

    /// Builds directly from a list of per-layer tensors (tests, synthetic
    /// workloads).
    #[must_use]
    pub fn from_layers(name: impl Into<String>, batch: u64, layers: Vec<LayerCommTensors>) -> Self {
        Self {
            name: name.into(),
            batch,
            layers,
        }
    }

    /// The network name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The mini-batch size the tensors were computed for.
    #[must_use]
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Number of weighted layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The per-layer tensors in network order.
    #[must_use]
    pub fn layers(&self) -> &[LayerCommTensors] {
        &self.layers
    }

    /// The tensors of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    #[must_use]
    pub fn layer(&self, l: usize) -> &LayerCommTensors {
        &self.layers[l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypar_models::zoo;

    #[test]
    fn fc_constructor_matches_paper_example() {
        let fc = LayerCommTensors::fully_connected("fc", 32, 70, 100);
        assert_eq!(fc.weight_elems, 7000.0);
        assert_eq!(fc.input_elems, 32.0 * 70.0);
        assert_eq!(fc.output_elems, 3200.0);
        assert_eq!(fc.junction_elems, 3200.0);
        assert!(!fc.is_conv);
    }

    #[test]
    fn conv_constructor_matches_paper_example() {
        // Paper §3.4: F_l [12x12x20], W [5x5x20]x50, F_{l+1} [8x8x50], B=32.
        let conv = LayerCommTensors::conv("c", 32, (20, 12, 12), 5, 50, (8, 8), (8, 8));
        assert_eq!(conv.weight_elems, 25_000.0);
        assert_eq!(conv.output_elems, 32.0 * 3200.0);
        assert!(conv.is_conv);
    }

    #[test]
    fn from_network_matches_shape_inference() {
        let view = NetworkCommTensors::from_network(&zoo::lenet_c(), 256).unwrap();
        assert_eq!(view.len(), 4);
        assert_eq!(view.batch(), 256);
        assert_eq!(view.name(), "Lenet-c");
        // conv1: pre-pool 20x24x24 batched, post-pool 20x12x12 batched.
        assert_eq!(view.layer(0).output_elems, 256.0 * 11520.0);
        assert_eq!(view.layer(0).junction_elems, 256.0 * 2880.0);
    }

    #[test]
    fn pre_pool_output_differs_from_junction_only_with_pooling() {
        let view = NetworkCommTensors::from_network(&zoo::lenet_c(), 1).unwrap();
        assert!(view.layer(0).output_elems > view.layer(0).junction_elems);
        // fc layers have no pooling: produced == junction.
        assert_eq!(view.layer(2).output_elems, view.layer(2).junction_elems);
    }
}
