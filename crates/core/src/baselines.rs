//! Baseline parallelism plans: Data Parallelism, Model Parallelism, and
//! Krizhevsky's "one weird trick".
//!
//! Uppercase "Data/Model Parallelism" in the paper means *every* layer at
//! *every* hierarchy level uses that parallelism.  The "one weird trick"
//! [Krizhevsky 2014] assigns data parallelism to convolutional layers and
//! model parallelism to fully-connected layers, at every level; the paper's
//! §6.5.2 shows why this is sub-optimal (it ignores both the batch-scale
//! crossover at deep levels and the inter-layer junction traffic).

use hypar_comm::{NetworkCommTensors, Parallelism};

use crate::evaluate::evaluate_plan;
use crate::HierarchicalPlan;

fn uniform_plan(
    net: &NetworkCommTensors,
    num_levels: usize,
    choose: impl Fn(&hypar_comm::LayerCommTensors) -> Parallelism,
) -> HierarchicalPlan {
    let level: Vec<Parallelism> = net.layers().iter().map(choose).collect();
    let levels = vec![level; num_levels];
    let total = evaluate_plan(net, &levels).total_elems();
    HierarchicalPlan::from_parts(
        net.name(),
        net.layers().iter().map(|l| l.name.clone()).collect(),
        levels,
        total,
    )
}

/// The default **Data Parallelism** baseline: dp everywhere.
#[must_use]
pub fn all_data(net: &NetworkCommTensors, num_levels: usize) -> HierarchicalPlan {
    uniform_plan(net, num_levels, |_| Parallelism::Data)
}

/// The default **Model Parallelism** baseline: mp everywhere.
#[must_use]
pub fn all_model(net: &NetworkCommTensors, num_levels: usize) -> HierarchicalPlan {
    uniform_plan(net, num_levels, |_| Parallelism::Model)
}

/// Krizhevsky's **"one weird trick"**: conv layers dp, fc layers mp, at
/// every level.
///
/// # Examples
///
/// ```
/// use hypar_comm::{NetworkCommTensors, Parallelism};
/// use hypar_core::baselines;
/// use hypar_models::zoo;
///
/// let net = NetworkCommTensors::from_network(&zoo::alexnet(), 256)?;
/// let owt = baselines::one_weird_trick(&net, 4);
/// assert_eq!(owt.choice(0, 0), Parallelism::Data);   // conv1
/// assert_eq!(owt.choice(3, 7), Parallelism::Model);  // fc3 at H4
/// # Ok::<(), hypar_models::NetworkError>(())
/// ```
#[must_use]
pub fn one_weird_trick(net: &NetworkCommTensors, num_levels: usize) -> HierarchicalPlan {
    uniform_plan(net, num_levels, |layer| {
        if layer.is_conv {
            Parallelism::Data
        } else {
            Parallelism::Model
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical;
    use hypar_models::zoo;

    fn view(name: &str) -> NetworkCommTensors {
        NetworkCommTensors::from_network(&zoo::by_name(name).unwrap(), 256).unwrap()
    }

    #[test]
    fn hypar_never_loses_to_any_baseline_on_the_zoo() {
        // The paper's headline claim, checked under the cost model for all
        // ten networks: hybrid ≤ min(DP, MP, OWT).
        for name in zoo::NAMES {
            let net = view(name);
            let hypar = hierarchical::partition(&net, 4).total_comm_elems();
            let dp = all_data(&net, 4).total_comm_elems();
            let mp = all_model(&net, 4).total_comm_elems();
            let owt = one_weird_trick(&net, 4).total_comm_elems();
            let best = dp.min(mp).min(owt);
            assert!(
                hypar <= best * (1.0 + 1e-12),
                "{name}: HyPar {hypar} worse than best baseline {best}"
            );
        }
    }

    #[test]
    fn mp_beats_dp_only_for_sfc() {
        // Figures 6/8: Model Parallelism wins over Data Parallelism only for
        // the all-fc extreme network SFC.
        for name in zoo::NAMES {
            let net = view(name);
            let dp = all_data(&net, 4).total_comm_elems();
            let mp = all_model(&net, 4).total_comm_elems();
            if name == "SFC" {
                assert!(mp < dp, "SFC: mp {mp} should beat dp {dp}");
            } else {
                assert!(dp < mp, "{name}: dp {dp} should beat mp {mp}");
            }
        }
    }

    #[test]
    fn owt_equals_dp_for_pure_conv_and_mp_for_pure_fc() {
        let sconv = view("SCONV");
        assert_eq!(
            one_weird_trick(&sconv, 4).total_comm_elems(),
            all_data(&sconv, 4).total_comm_elems()
        );
        let sfc = view("SFC");
        assert_eq!(
            one_weird_trick(&sfc, 4).total_comm_elems(),
            all_model(&sfc, 4).total_comm_elems()
        );
    }

    #[test]
    fn baselines_have_requested_shape() {
        let net = view("AlexNet");
        let plan = all_data(&net, 3);
        assert_eq!(plan.num_levels(), 3);
        assert_eq!(plan.num_layers(), 8);
        assert_eq!(plan.network(), "AlexNet");
    }

    #[test]
    fn hypar_strictly_beats_owt_somewhere() {
        // §6.5.2: the trick is beatable. At least one zoo network must show
        // a strict win for the optimizer.
        let mut strict = 0;
        for name in zoo::NAMES {
            let net = view(name);
            let hypar = hierarchical::partition(&net, 4).total_comm_elems();
            let owt = one_weird_trick(&net, 4).total_comm_elems();
            if hypar < owt * (1.0 - 1e-9) {
                strict += 1;
            }
        }
        assert!(
            strict > 0,
            "HyPar should strictly beat the trick on some network"
        );
    }
}
