//! Costing an arbitrary hierarchical plan under the communication model.

use hypar_comm::{
    level_cost_with, JunctionScaling, LevelCost, NetworkCommTensors, Parallelism, ScaleState,
};
use hypar_tensor::Bytes;
use serde::{Deserialize, Serialize};

/// The itemized cost of a hierarchical plan.
///
/// `per_level[h]` is the communication of one group pair at level `h`
/// (top = 0); there are `2^h` such pairs, so the recursion
/// `com = com_h + 2·com_n` of Algorithm 2 weights level `h` by `2^h` in
/// [`PlanCost::total_elems`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanCost {
    /// Itemized cost of one group pair at each level, top first.
    pub per_level: Vec<LevelCost>,
}

impl PlanCost {
    /// Communication of one group pair at level `h`, in elements.
    #[must_use]
    pub fn level_elems(&self, h: usize) -> f64 {
        self.per_level[h].total_elems()
    }

    /// Total array-wide communication in elements: level `h` has `2^h`
    /// group pairs.
    #[must_use]
    pub fn total_elems(&self) -> f64 {
        self.per_level
            .iter()
            .enumerate()
            .map(|(h, c)| (1u64 << h) as f64 * c.total_elems())
            .sum()
    }

    /// Array-wide communication per level (pair cost × pair count), in
    /// elements.
    #[must_use]
    pub fn weighted_level_elems(&self) -> Vec<f64> {
        self.per_level
            .iter()
            .enumerate()
            .map(|(h, c)| (1u64 << h) as f64 * c.total_elems())
            .collect()
    }

    /// Total array-wide communication in bytes (fp32).
    #[must_use]
    pub fn total_bytes(&self) -> Bytes {
        Bytes::from_elems(self.total_elems(), hypar_comm::PRECISION_BYTES)
    }
}

/// Costs an arbitrary hierarchical assignment (`levels[h][l]`, top level
/// first) under the communication model, evolving the tensor scales exactly
/// as the planner does.
///
/// # Panics
///
/// Panics if any level does not cover every weighted layer.
///
/// # Examples
///
/// ```
/// use hypar_comm::{NetworkCommTensors, Parallelism};
/// use hypar_core::evaluate::evaluate_plan;
/// use hypar_models::zoo;
///
/// let net = NetworkCommTensors::from_network(&zoo::sfc(), 256)?;
/// let all_dp = vec![vec![Parallelism::Data; net.len()]; 4];
/// let cost = evaluate_plan(&net, &all_dp);
/// // Data Parallelism communicates 2·A(W) per pair at every level:
/// // (1+2+4+8) pairs x 2 x 140,722,176 weights.
/// assert_eq!(cost.total_elems(), 15.0 * 2.0 * 140_722_176.0);
/// # Ok::<(), hypar_models::NetworkError>(())
/// ```
#[must_use]
pub fn evaluate_plan(net: &NetworkCommTensors, levels: &[Vec<Parallelism>]) -> PlanCost {
    evaluate_plan_with(net, levels, JunctionScaling::Consumer)
}

/// [`evaluate_plan`] under an explicit [`JunctionScaling`] interpretation
/// (used by the model-ablation experiment).
///
/// # Panics
///
/// Same as [`evaluate_plan`].
#[must_use]
pub fn evaluate_plan_with(
    net: &NetworkCommTensors,
    levels: &[Vec<Parallelism>],
    mode: JunctionScaling,
) -> PlanCost {
    let mut scales = ScaleState::identity(net.len());
    let mut per_level = Vec::with_capacity(levels.len());
    for assignment in levels {
        per_level.push(level_cost_with(net, &scales, assignment, mode));
        scales = scales.descend(assignment);
    }
    PlanCost { per_level }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypar_models::zoo;
    use Parallelism::{Data, Model};

    #[test]
    fn figure8_all_dp_totals_match_paper_exactly() {
        // Paper Figure 8, Data Parallelism column: SFC 16.9 GB,
        // SCONV 0.0121 GB, Lenet-c 0.0517 GB at B=256, H=4.
        let cases = [("SFC", 16.9), ("SCONV", 0.0121), ("Lenet-c", 0.0517)];
        for (name, gb) in cases {
            let net = NetworkCommTensors::from_network(&zoo::by_name(name).unwrap(), 256).unwrap();
            let plan = vec![vec![Data; net.len()]; 4];
            let measured = evaluate_plan(&net, &plan).total_bytes().gigabytes();
            assert!(
                (measured - gb).abs() / gb < 0.01,
                "{name}: measured {measured:.4} GB, paper {gb} GB"
            );
        }
    }

    #[test]
    fn empty_plan_costs_nothing() {
        let net = NetworkCommTensors::from_network(&zoo::lenet_c(), 256).unwrap();
        let cost = evaluate_plan(&net, &[]);
        assert_eq!(cost.total_elems(), 0.0);
        assert!(cost.per_level.is_empty());
    }

    #[test]
    fn level_weighting_is_power_of_two() {
        let net = NetworkCommTensors::from_network(&zoo::sfc(), 256).unwrap();
        let plan = vec![vec![Data; net.len()]; 3];
        let cost = evaluate_plan(&net, &plan);
        // dp never shrinks weights, so every level pair costs the same.
        let per_pair = cost.level_elems(0);
        assert_eq!(cost.level_elems(1), per_pair);
        assert_eq!(cost.total_elems(), (1.0 + 2.0 + 4.0) * per_pair);
        assert_eq!(
            cost.weighted_level_elems(),
            vec![per_pair, 2.0 * per_pair, 4.0 * per_pair]
        );
    }

    #[test]
    fn mixed_plan_scales_descend_between_levels() {
        let net = NetworkCommTensors::from_network(&zoo::lenet_c(), 256).unwrap();
        let level = vec![Data, Data, Model, Model];
        let cost = evaluate_plan(&net, &[level.clone(), level]);
        // Same assignment, smaller tensors: the second level's pair cost
        // must be strictly cheaper.
        assert!(cost.level_elems(1) < cost.level_elems(0));
    }

    #[test]
    fn all_mp_junction_traffic_present() {
        let net = NetworkCommTensors::from_network(&zoo::sfc(), 256).unwrap();
        let plan = vec![vec![Model; net.len()]; 2];
        let cost = evaluate_plan(&net, &plan);
        assert!(cost.per_level[0].inter.iter().all(|&x| x > 0.0));
    }
}
