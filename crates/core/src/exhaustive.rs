//! Brute-force search over parallelism assignments.
//!
//! The paper motivates the dynamic program by noting that naive enumeration
//! is `O(2^L)` per level (§3.4).  This module implements that enumeration —
//! it validates the DP's optimality in tests and quantifies the *greedy
//! gap* of the level-by-level recursion against the joint optimum over all
//! levels at once (the effect visible in Figure 10, where HyPar attains
//! 4.97× against a sweep peak of 5.05×).

use hypar_comm::{level_cost, NetworkCommTensors, Parallelism, ScaleState};

use crate::evaluate::evaluate_plan;

/// Decodes a bit pattern into a per-layer assignment; bit `l` (LSB first)
/// is layer `l`, `0` = dp, `1` = mp.
///
/// # Examples
///
/// ```
/// use hypar_comm::Parallelism::{Data, Model};
/// use hypar_core::exhaustive::assignment_from_bits;
///
/// assert_eq!(assignment_from_bits(0b0110, 4), vec![Data, Model, Model, Data]);
/// ```
#[must_use]
pub fn assignment_from_bits(bits: u64, len: usize) -> Vec<Parallelism> {
    (0..len)
        .map(|l| Parallelism::from_bit(bits >> l & 1 == 1))
        .collect()
}

/// Exhaustively finds the minimum-communication assignment for **one**
/// level (`O(2^L)`), for validating [`crate::two_group::partition`].
///
/// # Panics
///
/// Panics if the network is empty or has more than 24 layers (the
/// enumeration would be infeasible — use the dynamic program).
#[must_use]
pub fn best_level(net: &NetworkCommTensors, scales: &ScaleState) -> (f64, Vec<Parallelism>) {
    let len = net.len();
    assert!(len > 0, "cannot partition an empty network");
    assert!(
        len <= 24,
        "exhaustive level search is infeasible beyond 24 layers"
    );
    let mut best_cost = f64::INFINITY;
    let mut best_bits = 0u64;
    for bits in 0..(1u64 << len) {
        let assignment = assignment_from_bits(bits, len);
        let cost = level_cost(net, scales, &assignment).total_elems();
        if cost < best_cost {
            best_cost = cost;
            best_bits = bits;
        }
    }
    (best_cost, assignment_from_bits(best_bits, len))
}

/// Exhaustively finds the minimum-communication **joint** plan over all
/// `num_levels` levels at once (`O(2^{L·H})`), for quantifying the greedy
/// gap of Algorithm 2.
///
/// # Panics
///
/// Panics if the network is empty or `L·H > 24`.
#[must_use]
pub fn best_joint(net: &NetworkCommTensors, num_levels: usize) -> (f64, Vec<Vec<Parallelism>>) {
    let len = net.len();
    assert!(len > 0, "cannot partition an empty network");
    let total_bits = len * num_levels;
    assert!(
        total_bits <= 24,
        "exhaustive joint search is infeasible beyond 24 slots"
    );
    let mut best_cost = f64::INFINITY;
    let mut best_bits = 0u64;
    for bits in 0..(1u64 << total_bits) {
        let levels: Vec<Vec<Parallelism>> = (0..num_levels)
            .map(|h| assignment_from_bits(bits >> (h * len), len))
            .collect();
        let cost = evaluate_plan(net, &levels).total_elems();
        if cost < best_cost {
            best_cost = cost;
            best_bits = bits;
        }
    }
    let levels = (0..num_levels)
        .map(|h| assignment_from_bits(best_bits >> (h * len), len))
        .collect();
    (best_cost, levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hierarchical, two_group};
    use hypar_comm::LayerCommTensors;
    use hypar_models::zoo;
    use proptest::prelude::*;

    fn view(name: &str) -> NetworkCommTensors {
        NetworkCommTensors::from_network(&zoo::by_name(name).unwrap(), 256).unwrap()
    }

    #[test]
    fn dp_matches_exhaustive_on_small_zoo_networks() {
        // All networks with L <= 13: 2^13 points is still instant.
        for name in [
            "SFC", "SCONV", "Lenet-c", "Cifar-c", "AlexNet", "VGG-A", "VGG-B",
        ] {
            let net = view(name);
            let scales = ScaleState::identity(net.len());
            let dp = two_group::partition(&net, &scales);
            let (brute_cost, _) = best_level(&net, &scales);
            assert!(
                (dp.comm_elems - brute_cost).abs() <= 1e-9 * brute_cost.max(1.0),
                "{name}: DP {} vs exhaustive {brute_cost}",
                dp.comm_elems
            );
        }
    }

    #[test]
    fn dp_matches_exhaustive_at_descended_scales() {
        let net = view("AlexNet");
        let mut scales = ScaleState::identity(net.len());
        for _ in 0..3 {
            let dp = two_group::partition(&net, &scales);
            let (brute_cost, _) = best_level(&net, &scales);
            assert!((dp.comm_elems - brute_cost).abs() <= 1e-9 * brute_cost.max(1.0));
            scales = scales.descend(&dp.assignment);
        }
    }

    #[test]
    fn greedy_is_close_to_joint_optimum_on_lenet() {
        // L=4, H=3 -> 2^12 joint plans.
        let net = view("Lenet-c");
        let greedy = hierarchical::partition(&net, 3).total_comm_elems();
        let (joint, _) = best_joint(&net, 3);
        assert!(joint <= greedy + 1e-9);
        // The paper's greedy gap is small (4.97 vs 5.05 in Figure 10).
        assert!(
            greedy <= joint * 1.25,
            "greedy {greedy} too far from joint {joint}"
        );
    }

    #[test]
    fn bits_round_trip() {
        for bits in 0..16u64 {
            let a = assignment_from_bits(bits, 4);
            let back = a
                .iter()
                .enumerate()
                .fold(0u64, |acc, (l, p)| acc | (u64::from(p.bit()) << l));
            assert_eq!(back, bits);
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn joint_search_guards_size() {
        let net = view("VGG-E");
        let _ = best_joint(&net, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The dynamic program is optimal for arbitrary synthetic networks.
        #[test]
        fn dp_is_optimal_on_random_networks(
            layer_params in proptest::collection::vec(
                (1u64..2000, 1u64..2000, any::<bool>()), 1..9
            ),
            batch in 1u64..512,
            descents in proptest::collection::vec(any::<bool>(), 0..4),
        ) {
            let layers: Vec<LayerCommTensors> = layer_params
                .iter()
                .enumerate()
                .map(|(i, &(w_in, out, is_conv))| LayerCommTensors {
                    name: format!("l{i}"),
                    is_conv,
                    weight_elems: (w_in * out) as f64,
                    input_elems: (batch * w_in) as f64,
                    output_elems: (batch * out) as f64,
                    junction_elems: (batch * out) as f64,
                })
                .collect();
            let len = layers.len();
            let net = NetworkCommTensors::from_layers("rand", batch, layers);
            let mut scales = ScaleState::identity(len);
            for &d in &descents {
                let assignment: Vec<_> = (0..len)
                    .map(|l| Parallelism::from_bit(d ^ (l % 2 == 0)))
                    .collect();
                scales = scales.descend(&assignment);
            }
            let dp = two_group::partition(&net, &scales);
            let (brute, _) = best_level(&net, &scales);
            prop_assert!((dp.comm_elems - brute).abs() <= 1e-9 * brute.max(1.0),
                "DP {} vs exhaustive {}", dp.comm_elems, brute);
        }
    }
}
