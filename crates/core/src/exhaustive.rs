//! Brute-force search over parallelism assignments.
//!
//! The paper motivates the dynamic program by noting that naive enumeration
//! is `O(2^L)` per level (§3.4).  This module implements that enumeration —
//! it validates the DP's optimality in tests and quantifies the *greedy
//! gap* of the level-by-level recursion against the joint optimum over all
//! levels at once (the effect visible in Figure 10, where HyPar attains
//! 4.97× against a sweep peak of 5.05×).
//!
//! Every search space is validated up front: infeasible requests surface as
//! typed [`ExhaustiveError`]s instead of panics, so the long-running plan
//! service can expose the brute-force strategies to untrusted input.  The
//! shared [`AssignmentSpace`] enumerator backs [`best_level`],
//! [`best_joint`], and the DAG-side joint search in `hypar-graph`.

use std::fmt;

use hypar_comm::{level_cost, NetworkCommTensors, Parallelism, ScaleState};

use crate::evaluate::evaluate_plan;

/// Upper bound on the number of binary slots (`layers × levels`) a
/// brute-force search may enumerate: `2^24` ≈ 16.8M candidate plans.
pub const SLOT_LIMIT: usize = 24;

/// Why a brute-force search could not run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ExhaustiveError {
    /// The network has no weighted layers to assign.
    Empty,
    /// The search space exceeds [`SLOT_LIMIT`] binary slots.
    TooLarge {
        /// The requested number of slots (`layers × levels`).
        slots: usize,
    },
}

impl fmt::Display for ExhaustiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExhaustiveError::Empty => {
                write!(f, "cannot search an empty network (no weighted layers)")
            }
            ExhaustiveError::TooLarge { slots } => write!(
                f,
                "exhaustive search over {slots} slots (layers x levels) exceeds the \
                 feasibility limit of {SLOT_LIMIT} — use the dynamic program"
            ),
        }
    }
}

impl std::error::Error for ExhaustiveError {}

/// Iterator over every bit pattern of a validated brute-force search
/// space: `2^slots` patterns, bit `i` (LSB first) being slot `i`'s dp/mp
/// choice in the paper's Figure 9/10 convention (`0` = dp, `1` = mp).
///
/// Construct through [`assignment_space`]; decode per-layer runs with
/// [`assignment_from_bits`].
///
/// # Examples
///
/// ```
/// use hypar_core::exhaustive::assignment_space;
///
/// let space = assignment_space(3)?;
/// assert_eq!(space.len(), 8);
/// assert_eq!(space.last(), Some(0b111));
/// assert!(assignment_space(64).is_err());
/// # Ok::<(), hypar_core::exhaustive::ExhaustiveError>(())
/// ```
#[derive(Clone, Debug)]
pub struct AssignmentSpace {
    next: u64,
    end: u64,
}

impl Iterator for AssignmentSpace {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        (self.next < self.end).then(|| {
            let bits = self.next;
            self.next += 1;
            bits
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.end - self.next) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for AssignmentSpace {}

/// Validates a `2^slots` search space against [`SLOT_LIMIT`] and returns
/// its pattern enumerator.
///
/// # Errors
///
/// Returns [`ExhaustiveError::TooLarge`] when `slots > SLOT_LIMIT`.
pub fn assignment_space(slots: usize) -> Result<AssignmentSpace, ExhaustiveError> {
    if slots > SLOT_LIMIT {
        return Err(ExhaustiveError::TooLarge { slots });
    }
    Ok(AssignmentSpace {
        next: 0,
        end: 1u64 << slots,
    })
}

/// Decodes a bit pattern into a per-layer assignment; bit `l` (LSB first)
/// is layer `l`, `0` = dp, `1` = mp.
///
/// # Examples
///
/// ```
/// use hypar_comm::Parallelism::{Data, Model};
/// use hypar_core::exhaustive::assignment_from_bits;
///
/// assert_eq!(assignment_from_bits(0b0110, 4), vec![Data, Model, Model, Data]);
/// ```
#[must_use]
pub fn assignment_from_bits(bits: u64, len: usize) -> Vec<Parallelism> {
    (0..len)
        .map(|l| Parallelism::from_bit(bits >> l & 1 == 1))
        .collect()
}

/// Exhaustively finds the minimum-communication assignment for **one**
/// level (`O(2^L)`), for validating [`crate::two_group::partition`].
///
/// # Errors
///
/// Returns [`ExhaustiveError::Empty`] for a network without weighted
/// layers and [`ExhaustiveError::TooLarge`] beyond [`SLOT_LIMIT`] layers
/// (the enumeration would be infeasible — use the dynamic program).
pub fn best_level(
    net: &NetworkCommTensors,
    scales: &ScaleState,
) -> Result<(f64, Vec<Parallelism>), ExhaustiveError> {
    let len = net.len();
    if len == 0 {
        return Err(ExhaustiveError::Empty);
    }
    let mut best_cost = f64::INFINITY;
    let mut best_bits = 0u64;
    for bits in assignment_space(len)? {
        let assignment = assignment_from_bits(bits, len);
        let cost = level_cost(net, scales, &assignment).total_elems();
        if cost < best_cost {
            best_cost = cost;
            best_bits = bits;
        }
    }
    Ok((best_cost, assignment_from_bits(best_bits, len)))
}

/// Exhaustively finds the minimum-communication **joint** plan over all
/// `num_levels` levels at once (`O(2^{L·H})`), for quantifying the greedy
/// gap of Algorithm 2.
///
/// # Errors
///
/// Returns [`ExhaustiveError::Empty`] for a network without weighted
/// layers and [`ExhaustiveError::TooLarge`] when
/// `L·H > `[`SLOT_LIMIT`].
pub fn best_joint(
    net: &NetworkCommTensors,
    num_levels: usize,
) -> Result<(f64, Vec<Vec<Parallelism>>), ExhaustiveError> {
    let len = net.len();
    if len == 0 {
        return Err(ExhaustiveError::Empty);
    }
    let mut best_cost = f64::INFINITY;
    let mut best_bits = 0u64;
    for bits in assignment_space(len * num_levels)? {
        let levels: Vec<Vec<Parallelism>> = (0..num_levels)
            .map(|h| assignment_from_bits(bits >> (h * len), len))
            .collect();
        let cost = evaluate_plan(net, &levels).total_elems();
        if cost < best_cost {
            best_cost = cost;
            best_bits = bits;
        }
    }
    let levels = (0..num_levels)
        .map(|h| assignment_from_bits(best_bits >> (h * len), len))
        .collect();
    Ok((best_cost, levels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hierarchical, two_group};
    use hypar_comm::LayerCommTensors;
    use hypar_models::zoo;
    use proptest::prelude::*;

    fn view(name: &str) -> NetworkCommTensors {
        NetworkCommTensors::from_network(&zoo::by_name(name).unwrap(), 256).unwrap()
    }

    #[test]
    fn dp_matches_exhaustive_on_small_zoo_networks() {
        // All networks with L <= 13: 2^13 points is still instant.
        for name in [
            "SFC", "SCONV", "Lenet-c", "Cifar-c", "AlexNet", "VGG-A", "VGG-B",
        ] {
            let net = view(name);
            let scales = ScaleState::identity(net.len());
            let dp = two_group::partition(&net, &scales);
            let (brute_cost, _) = best_level(&net, &scales).unwrap();
            assert!(
                (dp.comm_elems - brute_cost).abs() <= 1e-9 * brute_cost.max(1.0),
                "{name}: DP {} vs exhaustive {brute_cost}",
                dp.comm_elems
            );
        }
    }

    #[test]
    fn dp_matches_exhaustive_at_descended_scales() {
        let net = view("AlexNet");
        let mut scales = ScaleState::identity(net.len());
        for _ in 0..3 {
            let dp = two_group::partition(&net, &scales);
            let (brute_cost, _) = best_level(&net, &scales).unwrap();
            assert!((dp.comm_elems - brute_cost).abs() <= 1e-9 * brute_cost.max(1.0));
            scales = scales.descend(&dp.assignment);
        }
    }

    #[test]
    fn greedy_is_close_to_joint_optimum_on_lenet() {
        // L=4, H=3 -> 2^12 joint plans.
        let net = view("Lenet-c");
        let greedy = hierarchical::partition(&net, 3).total_comm_elems();
        let (joint, _) = best_joint(&net, 3).unwrap();
        assert!(joint <= greedy + 1e-9);
        // The paper's greedy gap is small (4.97 vs 5.05 in Figure 10).
        assert!(
            greedy <= joint * 1.25,
            "greedy {greedy} too far from joint {joint}"
        );
    }

    #[test]
    fn bits_round_trip() {
        for bits in 0..16u64 {
            let a = assignment_from_bits(bits, 4);
            let back = a
                .iter()
                .enumerate()
                .fold(0u64, |acc, (l, p)| acc | (u64::from(p.bit()) << l));
            assert_eq!(back, bits);
        }
    }

    #[test]
    fn assignment_space_enumerates_every_pattern_once() {
        let space = assignment_space(4).unwrap();
        assert_eq!(space.len(), 16);
        let patterns: Vec<u64> = space.collect();
        assert_eq!(patterns, (0..16).collect::<Vec<u64>>());
        // The empty space has exactly one (empty) assignment.
        assert_eq!(assignment_space(0).unwrap().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn oversized_searches_are_typed_errors_not_panics() {
        // VGG-E has 19 layers: 19 x 4 = 76 slots for the joint search.
        let net = view("VGG-E");
        assert_eq!(
            best_joint(&net, 4).unwrap_err(),
            ExhaustiveError::TooLarge { slots: 76 }
        );
        // A 30-layer network overflows even the single-level search — the
        // class of input that used to `assert!` inside a service worker.
        let layers: Vec<LayerCommTensors> = (0..30)
            .map(|i| LayerCommTensors::fully_connected(format!("fc{i}"), 32, 64, 64))
            .collect();
        let wide = NetworkCommTensors::from_layers("wide", 32, layers);
        let err = best_level(&wide, &ScaleState::identity(30)).unwrap_err();
        assert_eq!(err, ExhaustiveError::TooLarge { slots: 30 });
        assert!(err.to_string().contains("feasibility limit"));
    }

    #[test]
    fn empty_network_is_a_typed_error() {
        let empty = NetworkCommTensors::from_layers("empty", 32, Vec::new());
        assert_eq!(
            best_level(&empty, &ScaleState::identity(0)).unwrap_err(),
            ExhaustiveError::Empty
        );
        assert_eq!(best_joint(&empty, 2).unwrap_err(), ExhaustiveError::Empty);
        assert!(ExhaustiveError::Empty.to_string().contains("empty"));
    }

    #[test]
    fn zero_levels_joint_plan_is_trivial() {
        let net = view("Lenet-c");
        let (cost, levels) = best_joint(&net, 0).unwrap();
        assert_eq!(cost, 0.0);
        assert!(levels.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The dynamic program is optimal for arbitrary synthetic networks.
        #[test]
        fn dp_is_optimal_on_random_networks(
            layer_params in proptest::collection::vec(
                (1u64..2000, 1u64..2000, any::<bool>()), 1..9
            ),
            batch in 1u64..512,
            descents in proptest::collection::vec(any::<bool>(), 0..4),
        ) {
            let layers: Vec<LayerCommTensors> = layer_params
                .iter()
                .enumerate()
                .map(|(i, &(w_in, out, is_conv))| LayerCommTensors {
                    name: format!("l{i}"),
                    is_conv,
                    weight_elems: (w_in * out) as f64,
                    input_elems: (batch * w_in) as f64,
                    output_elems: (batch * out) as f64,
                    junction_elems: (batch * out) as f64,
                })
                .collect();
            let len = layers.len();
            let net = NetworkCommTensors::from_layers("rand", batch, layers);
            let mut scales = ScaleState::identity(len);
            for &d in &descents {
                let assignment: Vec<_> = (0..len)
                    .map(|l| Parallelism::from_bit(d ^ (l % 2 == 0)))
                    .collect();
                scales = scales.descend(&assignment);
            }
            let dp = two_group::partition(&net, &scales);
            let (brute, _) = best_level(&net, &scales).unwrap();
            prop_assert!((dp.comm_elems - brute).abs() <= 1e-9 * brute.max(1.0),
                "DP {} vs exhaustive {}", dp.comm_elems, brute);
        }
    }
}
