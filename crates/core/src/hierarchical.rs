//! Algorithm 2: hierarchical partition over a binary accelerator tree.
//!
//! Applies [`crate::two_group::partition`] level by level.  The paper
//! phrases this recursively (`com = com_h + 2·com_n`); because both
//! sub-groups of a level see identical sub-problems, the recursion
//! collapses to one iteration per level with the per-layer tensor scales
//! halved according to the committed assignment.

use hypar_comm::{JunctionScaling, NetworkCommTensors, ScaleState};

use crate::evaluate::evaluate_plan_with;
use crate::two_group;
use crate::HierarchicalPlan;

/// Runs the full HyPar partition for an array of `2^num_levels`
/// accelerators.
///
/// `num_levels == 0` yields a trivial plan (a single accelerator, no
/// communication), mirroring the recursion's base case `(0, [])`.
///
/// # Panics
///
/// Panics if the network has no weighted layers.
///
/// # Examples
///
/// ```
/// use hypar_comm::NetworkCommTensors;
/// use hypar_core::hierarchical;
/// use hypar_models::zoo;
///
/// let net = NetworkCommTensors::from_network(&zoo::vgg_a(), 256)?;
/// let plan = hierarchical::partition(&net, 4);
/// assert_eq!(plan.num_levels(), 4);
/// assert_eq!(plan.num_accelerators(), 16);
/// # Ok::<(), hypar_models::NetworkError>(())
/// ```
#[must_use]
pub fn partition(net: &NetworkCommTensors, num_levels: usize) -> HierarchicalPlan {
    partition_with(net, num_levels, JunctionScaling::Consumer)
}

/// [`partition`] under an explicit [`JunctionScaling`] interpretation
/// (used by the model-ablation experiment).
///
/// # Panics
///
/// Same as [`partition`].
#[must_use]
pub fn partition_with(
    net: &NetworkCommTensors,
    num_levels: usize,
    mode: JunctionScaling,
) -> HierarchicalPlan {
    let mut scales = ScaleState::identity(net.len());
    let mut levels = Vec::with_capacity(num_levels);
    for _ in 0..num_levels {
        let result = two_group::partition_with(net, &scales, mode);
        scales = scales.descend(&result.assignment);
        levels.push(result.assignment);
    }
    let total = evaluate_plan_with(net, &levels, mode).total_elems();
    HierarchicalPlan::from_parts(
        net.name(),
        net.layers().iter().map(|l| l.name.clone()).collect(),
        levels,
        total,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypar_comm::Parallelism::{Data, Model};
    use hypar_models::zoo;

    fn view(name: &str) -> NetworkCommTensors {
        NetworkCommTensors::from_network(&zoo::by_name(name).unwrap(), 256).unwrap()
    }

    #[test]
    fn zero_levels_is_free() {
        let plan = partition(&view("Lenet-c"), 0);
        assert_eq!(plan.num_levels(), 0);
        assert_eq!(plan.num_accelerators(), 1);
        assert_eq!(plan.total_comm_elems(), 0.0);
    }

    #[test]
    fn sconv_all_levels_all_dp() {
        // Figure 5(b): every layer of SCONV at every level is dp.
        let plan = partition(&view("SCONV"), 4);
        assert!(plan.levels().iter().flatten().all(|&p| p == Data));
    }

    #[test]
    fn sfc_flips_fc1_to_dp_at_a_deep_level() {
        // Figure 5(a): SFC is all-mp except fc1 at one deep level, where the
        // accumulated mp choices have shrunk A(ΔW) below A(F_out).
        let plan = partition(&view("SFC"), 4);
        assert_eq!(plan.choice(0, 0), Model);
        let fc1_choices: Vec<_> = (0..4).map(|h| plan.choice(h, 0)).collect();
        assert!(
            fc1_choices.contains(&Data),
            "fc1 should flip to dp at some level, got {fc1_choices:?}"
        );
        // The three large fc layers stay mp at the top level.
        for l in 1..3 {
            assert_eq!(plan.choice(0, l), Model);
        }
    }

    #[test]
    fn lenet_matches_figure9_peak_pattern() {
        // Figure 9's peak is H1 = 0011 and H4 = 0011 (conv dp, fc mp).  Our
        // model reproduces H1 exactly; at H4 the tiny fc2 layer (5,000
        // weights) sits on a 2.4% dp/mp knife edge, so only conv-dp and
        // fc1-mp are asserted there (see EXPERIMENTS.md).
        let plan = partition(&view("Lenet-c"), 4);
        assert_eq!(plan.level_bits(0), "0011");
        assert!(
            plan.level_bits(3).starts_with("001"),
            "H4 = {}",
            plan.level_bits(3)
        );
    }

    #[test]
    fn vgg_a_conv_mostly_dp_fc_mostly_mp_at_top() {
        let plan = partition(&view("VGG-A"), 4);
        let net = view("VGG-A");
        for (l, layer) in net.layers().iter().enumerate() {
            let choice = plan.choice(0, l);
            if layer.is_conv {
                assert_eq!(choice, Data, "conv layer {} at H1", layer.name);
            } else if layer.name != "fc3" {
                // fc1/fc2 are the giant fc layers; fc3 is small and may tie.
                assert_eq!(choice, Model, "fc layer {} at H1", layer.name);
            }
        }
    }

    #[test]
    fn total_matches_evaluate_plan() {
        for name in ["SFC", "Lenet-c", "AlexNet", "VGG-A"] {
            let net = view(name);
            let plan = partition(&net, 4);
            let recomputed = crate::evaluate::evaluate_plan(&net, plan.levels()).total_elems();
            assert_eq!(plan.total_comm_elems(), recomputed, "{name}");
        }
    }

    #[test]
    fn deeper_hierarchies_extend_shallower_ones() {
        // Greedy level-by-level: the first h levels of an H-level plan equal
        // the h-level plan.
        let net = view("AlexNet");
        let shallow = partition(&net, 2);
        let deep = partition(&net, 5);
        assert_eq!(&deep.levels()[..2], shallow.levels());
    }
}
