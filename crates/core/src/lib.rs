//! HyPar's partition search — the paper's primary contribution (§4).
//!
//! Given a network's tensor sizes ([`hypar_comm::NetworkCommTensors`]) and
//! an accelerator array organized as a binary hierarchy of `H` levels
//! (`2^H` accelerators), HyPar chooses **data or model parallelism per
//! weighted layer per level** so that the total communication of one
//! training step is minimized:
//!
//! * [`two_group::partition`] — Algorithm 1: a layer-wise dynamic program
//!   (two states per layer, Viterbi traceback) that partitions work between
//!   two groups in `O(L)` time;
//! * [`hierarchical::partition`] — Algorithm 2: applies Algorithm 1 at
//!   every level, halving the per-layer tensor scales committed above
//!   (`com = com_h + 2·com_n`);
//! * [`evaluate::evaluate_plan`] — costs *any* hierarchical plan under the
//!   identical model, so baselines and sweeps are directly comparable;
//! * [`baselines`] — Data Parallelism, Model Parallelism, and Krizhevsky's
//!   "one weird trick";
//! * [`exhaustive`] — brute-force optima used to validate the dynamic
//!   program and to quantify the greedy gap of the hierarchical recursion;
//! * [`refine`] — polynomial coordinate descent closing part of that
//!   greedy gap: re-decides each committed bit against the true plan
//!   cost, monotonically, to a fixed point;
//! * [`sweep`] — the restricted design-space enumerations of Figures 9/10.
//!
//! # Examples
//!
//! ```
//! use hypar_comm::NetworkCommTensors;
//! use hypar_core::{baselines, hierarchical};
//! use hypar_models::zoo;
//!
//! let net = NetworkCommTensors::from_network(&zoo::lenet_c(), 256)?;
//! let plan = hierarchical::partition(&net, 4);
//! let dp = baselines::all_data(&net, 4);
//! assert!(plan.total_comm_elems() < dp.total_comm_elems());
//! # Ok::<(), hypar_models::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baselines;
pub mod evaluate;
pub mod exhaustive;
pub mod hierarchical;
mod plan;
pub mod refine;
pub mod sweep;
pub mod two_group;

pub use evaluate::PlanCost;
pub use exhaustive::ExhaustiveError;
pub use plan::HierarchicalPlan;
