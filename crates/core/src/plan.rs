//! The hierarchical parallelism plan produced by the partition search.

use std::fmt;

use hypar_comm::{Parallelism, ScaleState};
use hypar_telemetry::{StateHash, StateHasher};
use hypar_tensor::Bytes;
use serde::{Deserialize, Serialize};

/// A complete parallelism plan: one dp/mp choice per weighted layer per
/// hierarchy level, together with its total communication under the cost
/// model — the paper's `P[h][l]` output of Algorithm 2.
///
/// Level `0` is the top of the hierarchy (the paper's `H1`): the first
/// split of the whole array into two halves.
///
/// # Examples
///
/// ```
/// use hypar_comm::NetworkCommTensors;
/// use hypar_core::hierarchical;
/// use hypar_models::zoo;
///
/// let net = NetworkCommTensors::from_network(&zoo::sconv(), 256)?;
/// let plan = hierarchical::partition(&net, 4);
/// assert_eq!(plan.num_accelerators(), 16);
/// // SCONV is all-convolutional: every choice is data parallelism (Fig. 5b).
/// assert!(plan.levels().iter().flatten().all(|p| *p == hypar_comm::Parallelism::Data));
/// # Ok::<(), hypar_models::NetworkError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalPlan {
    network: String,
    layer_names: Vec<String>,
    levels: Vec<Vec<Parallelism>>,
    total_comm_elems: f64,
}

impl HierarchicalPlan {
    /// Assembles a plan from raw parts.  Used by the planner, the
    /// baselines, and the sweeps; `total_comm_elems` must come from
    /// [`crate::evaluate::evaluate_plan`] (or the planner's equivalent
    /// accumulation) so that all plans are comparable.
    ///
    /// # Panics
    ///
    /// Panics if the levels do not all cover `layer_names.len()` layers.
    #[must_use]
    pub fn from_parts(
        network: impl Into<String>,
        layer_names: Vec<String>,
        levels: Vec<Vec<Parallelism>>,
        total_comm_elems: f64,
    ) -> Self {
        for level in &levels {
            assert_eq!(
                level.len(),
                layer_names.len(),
                "level must cover every weighted layer"
            );
        }
        Self {
            network: network.into(),
            layer_names,
            levels,
            total_comm_elems,
        }
    }

    /// The network this plan was computed for.
    #[must_use]
    pub fn network(&self) -> &str {
        &self.network
    }

    /// Per-layer names, for display.
    #[must_use]
    pub fn layer_names(&self) -> &[String] {
        &self.layer_names
    }

    /// The per-level assignments, top level first.
    #[must_use]
    pub fn levels(&self) -> &[Vec<Parallelism>] {
        &self.levels
    }

    /// Number of hierarchy levels `H`.
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of weighted layers `L`.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layer_names.len()
    }

    /// Number of accelerators this plan drives (`2^H`).
    #[must_use]
    pub fn num_accelerators(&self) -> u64 {
        1u64 << self.levels.len()
    }

    /// The choice for layer `l` at hierarchy level `h` (0 = top).
    ///
    /// # Panics
    ///
    /// Panics if `h` or `l` is out of range.
    #[must_use]
    pub fn choice(&self, h: usize, l: usize) -> Parallelism {
        self.levels[h][l]
    }

    /// Total communication of one training step in tensor elements,
    /// weighted over the hierarchy (`com = com_h + 2·com_n`).
    #[must_use]
    pub fn total_comm_elems(&self) -> f64 {
        self.total_comm_elems
    }

    /// Total communication of one training step in bytes (fp32).
    #[must_use]
    pub fn total_comm_bytes(&self) -> Bytes {
        Bytes::from_elems(self.total_comm_elems, hypar_comm::PRECISION_BYTES)
    }

    /// The tensor scales at the leaves of the hierarchy (each individual
    /// accelerator's share), obtained by descending through every level.
    #[must_use]
    pub fn leaf_scales(&self) -> ScaleState {
        let mut scales = ScaleState::identity(self.num_layers());
        for level in &self.levels {
            scales = scales.descend(level);
        }
        scales
    }

    /// The per-layer bit pattern of level `h` in the paper's Figure 9/10
    /// convention (`0` = dp, `1` = mp, layer 0 first).
    #[must_use]
    pub fn level_bits(&self, h: usize) -> String {
        self.levels[h]
            .iter()
            .map(|p| char::from(b'0' + p.bit()))
            .collect()
    }
}

impl StateHash for HierarchicalPlan {
    /// Folds the complete plan: network and layer names, every per-level
    /// dp/mp bit (level 0 first, layer 0 first — the canonical layout
    /// every planner emits), and the total cost **bit-exactly**.  Two
    /// plans hash equal iff they are indistinguishable on the wire, so a
    /// one-ulp cost drift or a single flipped bit changes the digest.
    fn state_hash_into(&self, h: &mut StateHasher) {
        h.write_str("plan/v1");
        h.write_str(&self.network);
        h.write_u64(self.layer_names.len() as u64);
        for name in &self.layer_names {
            h.write_str(name);
        }
        h.write_u64(self.levels.len() as u64);
        for level in &self.levels {
            for p in level {
                h.write_bool(*p == Parallelism::Model);
            }
        }
        h.write_f64(self.total_comm_elems);
    }
}

impl fmt::Display for HierarchicalPlan {
    /// Renders the Figure-5-style grid: one row per weighted layer, one
    /// column per hierarchy level.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} — {} layers x {} levels, total comm {}",
            self.network,
            self.num_layers(),
            self.num_levels(),
            self.total_comm_bytes()
        )?;
        let width = self
            .layer_names
            .iter()
            .map(|n| n.len())
            .max()
            .unwrap_or(5)
            .max(5);
        write!(f, "{:width$}", "layer")?;
        for h in 0..self.num_levels() {
            write!(f, "  H{}", h + 1)?;
        }
        writeln!(f)?;
        for (l, name) in self.layer_names.iter().enumerate() {
            write!(f, "{name:width$}")?;
            for level in &self.levels {
                write!(f, "  {}", level[l])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Parallelism::{Data, Model};

    fn sample() -> HierarchicalPlan {
        HierarchicalPlan::from_parts(
            "demo",
            vec!["conv1".into(), "fc1".into()],
            vec![vec![Data, Model], vec![Data, Data]],
            1000.0,
        )
    }

    #[test]
    fn accessors() {
        let plan = sample();
        assert_eq!(plan.num_levels(), 2);
        assert_eq!(plan.num_layers(), 2);
        assert_eq!(plan.num_accelerators(), 4);
        assert_eq!(plan.choice(0, 1), Model);
        assert_eq!(plan.total_comm_bytes().value(), 4000.0);
    }

    #[test]
    fn level_bits_follow_paper_convention() {
        let plan = sample();
        assert_eq!(plan.level_bits(0), "01");
        assert_eq!(plan.level_bits(1), "00");
    }

    #[test]
    fn leaf_scales_descend_all_levels() {
        let plan = sample();
        let scales = plan.leaf_scales();
        // conv1: dp at both levels -> batch 1/4.
        assert_eq!(scales.layer(0).batch_fraction().value(), 0.25);
        // fc1: mp then dp -> batch 1/2, features 1/2.
        assert_eq!(scales.layer(1).batch_fraction().value(), 0.5);
        assert_eq!(scales.layer(1).input_fraction().value(), 0.5);
    }

    #[test]
    fn display_contains_grid() {
        let text = sample().to_string();
        assert!(text.contains("H1"));
        assert!(text.contains("H2"));
        assert!(text.contains("conv1"));
        assert!(text.contains("mp"));
    }

    #[test]
    fn state_hash_pins_bits_and_cost() {
        let base = sample().state_hash();
        assert_eq!(base, sample().state_hash(), "hashing is deterministic");
        // Flip one dp/mp bit.
        let flipped = HierarchicalPlan::from_parts(
            "demo",
            vec!["conv1".into(), "fc1".into()],
            vec![vec![Data, Model], vec![Data, Model]],
            1000.0,
        );
        assert_ne!(base, flipped.state_hash());
        // Drift the cost by one ulp.
        let drifted = HierarchicalPlan::from_parts(
            "demo",
            vec!["conv1".into(), "fc1".into()],
            vec![vec![Data, Model], vec![Data, Data]],
            f64::from_bits(1000.0f64.to_bits() + 1),
        );
        assert_ne!(base, drifted.state_hash());
    }

    #[test]
    #[should_panic(expected = "level must cover")]
    fn ragged_levels_panic() {
        let _ = HierarchicalPlan::from_parts(
            "bad",
            vec!["a".into(), "b".into()],
            vec![vec![Data]],
            0.0,
        );
    }
}
