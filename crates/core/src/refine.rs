//! Coordinate-descent refinement of hierarchical plans.
//!
//! Algorithm 2 commits its dp/mp choices greedily — level by level on a
//! chain, and segment by segment on a DAG — so the committed plan can sit
//! above the joint optimum (the paper's Figures 9/10 measure the chain
//! gap; the `greedy_gap_branchy` experiment measures the far larger
//! branchy one).  This module closes part of that gap without the
//! exponential joint enumeration: [`descend`] sweeps the plan's
//! per-layer-per-level bits, re-deciding each against the **true** total
//! cost of the whole plan, and iterates to a fixed point.  Acceptance is
//! strictly-improving, so the cost decreases monotonically and
//! termination is guaranteed (the assignment space is finite); a sweep
//! cap bounds the worst case anyway.
//!
//! The pass is cost-model agnostic: callers supply the evaluator, so the
//! same loop refines a chain plan against
//! [`crate::evaluate::evaluate_plan`] ([`refine_partition`]) and a
//! whole-DAG plan against `hypar_graph`'s junction-aware evaluator
//! (`hypar_graph::refine`).  In FlexFlow terms this is a deterministic
//! local search over the strategy space the MCMC sampler explores; in
//! Tofu terms, a per-group re-decision under the committed remainder.

use hypar_comm::Parallelism;
use serde::Serialize;

/// Hard cap on full sweeps over the plan.  Each accepted flip strictly
/// lowers the cost, so descent terminates on its own; the cap only bounds
/// pathological cost surfaces.  Reaching it is reported, never an error.
pub const MAX_SWEEPS: usize = 32;

/// What one [`descend`] run did.
#[derive(Copy, Clone, Debug, PartialEq, Serialize)]
pub struct DescentReport {
    /// Full sweeps executed (including the final no-improvement sweep
    /// that certifies the fixed point).
    pub sweeps: usize,
    /// Bit flips accepted.
    pub flips: u64,
    /// Cost of the seed plan, in the caller's evaluator units.
    pub seed_cost: f64,
    /// Cost after refinement (`<= seed_cost`).
    pub refined_cost: f64,
}

impl DescentReport {
    /// `seed_cost / refined_cost` (≥ 1): how much the descent recovered.
    #[must_use]
    pub fn improvement(&self) -> f64 {
        // hypar-allow: det-float-eq — exact-zero guard before division; a zero-cost plan has an exact 0.0, not an epsilon
        if self.refined_cost == 0.0 {
            1.0
        } else {
            self.seed_cost / self.refined_cost
        }
    }
}

/// Coordinate descent over a plan's dp/mp bits: for each layer (in
/// `layer_order`, outermost loop) and each level (top first), flip the
/// bit, keep the flip iff the caller's `cost` strictly decreases, and
/// sweep again until a full sweep accepts nothing (or [`MAX_SWEEPS`]).
///
/// `layer_order` is the per-sweep layer visiting order — callers put the
/// layers whose bits interact most (e.g. segment-boundary layers priced
/// by junction traffic) first so they settle before the interior.  Layers
/// outside `layer_order` are never touched; duplicate entries are legal
/// and simply revisit the layer within the sweep.
///
/// `cost` is called with the full candidate plan and must be a pure
/// function of it.  Strict-improvement acceptance makes the sequence of
/// accepted costs strictly decreasing, so the returned plan never costs
/// more than the seed.
///
/// # Panics
///
/// Panics if `layer_order` indexes a layer some level does not cover.
pub fn descend(
    levels: &mut [Vec<Parallelism>],
    layer_order: &[usize],
    mut cost: impl FnMut(&[Vec<Parallelism>]) -> f64,
) -> DescentReport {
    let seed_cost = cost(levels);
    let mut current = seed_cost;
    let mut flips = 0u64;
    let mut sweeps = 0usize;
    while sweeps < MAX_SWEEPS {
        sweeps += 1;
        let mut improved = false;
        for &l in layer_order {
            for h in 0..levels.len() {
                let old = levels[h][l];
                levels[h][l] = old.flipped();
                let candidate = cost(levels);
                if candidate < current {
                    current = candidate;
                    flips += 1;
                    improved = true;
                } else {
                    levels[h][l] = old;
                }
            }
        }
        if !improved {
            break;
        }
    }
    DescentReport {
        sweeps,
        flips,
        seed_cost,
        refined_cost: current,
    }
}

/// Algorithm 2's chain plan, refined: seeds from
/// [`crate::hierarchical::partition`] and descends every bit against
/// [`crate::evaluate::evaluate_plan`]'s total — the level-by-level greedy
/// gap of the recursion (Figures 9/10) closed by polynomial local search
/// instead of the `O(2^{L·H})` joint enumeration.
///
/// # Panics
///
/// Panics if the network has no weighted layers (as
/// [`crate::hierarchical::partition`] does).
#[must_use]
pub fn refine_partition(
    net: &hypar_comm::NetworkCommTensors,
    num_levels: usize,
) -> crate::HierarchicalPlan {
    refine_partition_with(net, num_levels, hypar_comm::JunctionScaling::Consumer)
}

/// [`refine_partition`] under an explicit
/// [`hypar_comm::JunctionScaling`] interpretation.
///
/// # Panics
///
/// Same as [`refine_partition`].
#[must_use]
pub fn refine_partition_with(
    net: &hypar_comm::NetworkCommTensors,
    num_levels: usize,
    mode: hypar_comm::JunctionScaling,
) -> crate::HierarchicalPlan {
    refine_partition_reported_with(net, num_levels, mode).0
}

/// [`refine_partition`] returning the [`DescentReport`] alongside the
/// plan, so callers (the engine's telemetry layer) can surface the sweep
/// and flip counts the descent performed.
///
/// # Panics
///
/// Same as [`refine_partition`].
#[must_use]
pub fn refine_partition_reported(
    net: &hypar_comm::NetworkCommTensors,
    num_levels: usize,
) -> (crate::HierarchicalPlan, DescentReport) {
    refine_partition_reported_with(net, num_levels, hypar_comm::JunctionScaling::Consumer)
}

/// [`refine_partition_reported`] under an explicit
/// [`hypar_comm::JunctionScaling`] interpretation.
///
/// # Panics
///
/// Same as [`refine_partition`].
#[must_use]
pub fn refine_partition_reported_with(
    net: &hypar_comm::NetworkCommTensors,
    num_levels: usize,
    mode: hypar_comm::JunctionScaling,
) -> (crate::HierarchicalPlan, DescentReport) {
    let seed = crate::hierarchical::partition_with(net, num_levels, mode);
    let mut levels = seed.levels().to_vec();
    let order: Vec<usize> = (0..net.len()).collect();
    let report = descend(&mut levels, &order, |candidate| {
        crate::evaluate::evaluate_plan_with(net, candidate, mode).total_elems()
    });
    let plan = crate::HierarchicalPlan::from_parts(
        net.name(),
        net.layers().iter().map(|l| l.name.clone()).collect(),
        levels,
        report.refined_cost,
    );
    (plan, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate::evaluate_plan, exhaustive, hierarchical};
    use hypar_comm::NetworkCommTensors;
    use hypar_models::zoo;

    fn view(name: &str, batch: u64) -> NetworkCommTensors {
        NetworkCommTensors::from_network(&zoo::by_name(name).unwrap(), batch).unwrap()
    }

    #[test]
    fn descend_never_regresses_and_reports_consistently() {
        let net = view("Lenet-c", 256);
        for levels in [0usize, 1, 3, 4] {
            let seed = hierarchical::partition(&net, levels);
            let mut bits = seed.levels().to_vec();
            let order: Vec<usize> = (0..net.len()).collect();
            let report = descend(&mut bits, &order, |c| evaluate_plan(&net, c).total_elems());
            assert!(report.refined_cost <= report.seed_cost, "H{levels}");
            assert_eq!(report.seed_cost, seed.total_comm_elems(), "H{levels}");
            assert_eq!(
                report.refined_cost,
                evaluate_plan(&net, &bits).total_elems(),
                "H{levels}: reported cost must be the final plan's"
            );
            assert!(report.sweeps >= 1 || levels == 0);
        }
    }

    #[test]
    fn refined_chain_plan_matches_the_joint_optimum_on_small_nets() {
        // Small enough to certify: the chain exhaustive search fits the
        // 24-slot bound, and coordinate descent from the DP seed lands on
        // the same cost.
        for (name, levels) in [("Lenet-c", 4), ("SFC", 4), ("SCONV", 4)] {
            let net = view(name, 256);
            let refined = refine_partition(&net, levels);
            let (joint_cost, _) = exhaustive::best_joint(&net, levels).unwrap();
            assert!(
                refined.total_comm_elems() <= joint_cost * (1.0 + 1e-12)
                    && refined.total_comm_elems() >= joint_cost * (1.0 - 1e-12),
                "{name}: refined {} vs joint {joint_cost}",
                refined.total_comm_elems()
            );
        }
    }

    #[test]
    fn refined_chain_plan_never_exceeds_the_dp_seed() {
        for name in ["AlexNet", "VGG-A", "SFC"] {
            let net = view(name, 256);
            let seed = hierarchical::partition(&net, 4).total_comm_elems();
            let refined = refine_partition(&net, 4).total_comm_elems();
            assert!(refined <= seed, "{name}: {refined} vs seed {seed}");
        }
    }

    #[test]
    fn reported_variant_matches_the_plain_one() {
        let net = view("SFC", 256);
        let plain = refine_partition(&net, 4);
        let (plan, report) = refine_partition_reported(&net, 4);
        assert_eq!(plan, plain);
        assert_eq!(report.refined_cost, plan.total_comm_elems());
        assert!(report.sweeps >= 1);
    }

    #[test]
    fn zero_levels_is_a_trivial_fixed_point() {
        let net = view("Lenet-c", 256);
        let plan = refine_partition(&net, 0);
        assert_eq!(plan.num_levels(), 0);
        assert_eq!(plan.total_comm_elems(), 0.0);
    }

    #[test]
    fn improvement_is_seed_over_refined() {
        let r = DescentReport {
            sweeps: 2,
            flips: 3,
            seed_cost: 10.0,
            refined_cost: 5.0,
        };
        assert_eq!(r.improvement(), 2.0);
        let trivial = DescentReport {
            sweeps: 1,
            flips: 0,
            seed_cost: 0.0,
            refined_cost: 0.0,
        };
        assert_eq!(trivial.improvement(), 1.0);
    }
}
