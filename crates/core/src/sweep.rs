//! Restricted design-space sweeps (Figures 9 and 10).
//!
//! Full enumeration of the parallelism space is `2^{L·H}`; the paper's
//! case studies instead fix most of the optimized plan and sweep a subset
//! of *(level, layer)* slots: Figure 9 frees all four Lenet-c layers at
//! levels H1 and H4 (256 points), Figure 10 frees `conv5_2` and `fc1` of
//! VGG-A at all four levels (256 points).
//! [`enumerate_overrides`] expresses both.

use hypar_comm::{NetworkCommTensors, Parallelism};
use serde::{Deserialize, Serialize};

use crate::evaluate::evaluate_plan;

/// One point of a design-space sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Bit `i` is the choice of slot `i` (`0` = dp, `1` = mp).
    pub slot_bits: u64,
    /// The complete per-level assignment of this point.
    pub levels: Vec<Vec<Parallelism>>,
    /// Total communication of the point, in tensor elements.
    pub comm_elems: f64,
}

/// Enumerates every combination of dp/mp over the given *(level, layer)*
/// `slots`, holding all other choices at `base_levels`, and costs each
/// resulting plan under the communication model.
///
/// Points are returned in `slot_bits` order (`0..2^slots`).
///
/// # Panics
///
/// Panics if more than 20 slots are requested (the sweep would exceed a
/// million points), if a slot is out of range, or if `base_levels` is
/// ragged.
///
/// # Examples
///
/// ```
/// use hypar_comm::{NetworkCommTensors, Parallelism};
/// use hypar_core::{hierarchical, sweep};
/// use hypar_models::zoo;
///
/// let net = NetworkCommTensors::from_network(&zoo::lenet_c(), 256)?;
/// let base = hierarchical::partition(&net, 4);
/// // Figure 9: sweep all four layers at H1 and H4.
/// let slots: Vec<(usize, usize)> =
///     (0..4).map(|l| (0, l)).chain((0..4).map(|l| (3, l))).collect();
/// let points = sweep::enumerate_overrides(&net, base.levels(), &slots);
/// assert_eq!(points.len(), 256);
/// # Ok::<(), hypar_models::NetworkError>(())
/// ```
#[must_use]
pub fn enumerate_overrides(
    net: &NetworkCommTensors,
    base_levels: &[Vec<Parallelism>],
    slots: &[(usize, usize)],
) -> Vec<SweepPoint> {
    assert!(slots.len() <= 20, "sweep beyond 2^20 points is infeasible");
    for &(h, l) in slots {
        assert!(h < base_levels.len(), "slot level {h} out of range");
        assert!(l < net.len(), "slot layer {l} out of range");
    }

    let mut points = Vec::with_capacity(1 << slots.len());
    for bits in 0..(1u64 << slots.len()) {
        let mut levels = base_levels.to_vec();
        for (i, &(h, l)) in slots.iter().enumerate() {
            levels[h][l] = Parallelism::from_bit(bits >> i & 1 == 1);
        }
        let comm_elems = evaluate_plan(net, &levels).total_elems();
        points.push(SweepPoint {
            slot_bits: bits,
            levels,
            comm_elems,
        });
    }
    points
}

/// The minimum-communication point of a sweep, or `None` for an empty
/// sweep (a zero-slot enumeration still yields one point, so `None`
/// only reaches callers that built their own point list).
#[must_use]
pub fn best_point(points: &[SweepPoint]) -> Option<&SweepPoint> {
    points
        .iter()
        .min_by(|a, b| a.comm_elems.total_cmp(&b.comm_elems))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical;
    use hypar_models::zoo;

    fn lenet() -> NetworkCommTensors {
        NetworkCommTensors::from_network(&zoo::lenet_c(), 256).unwrap()
    }

    fn figure9_slots() -> Vec<(usize, usize)> {
        (0..4)
            .map(|l| (0, l))
            .chain((0..4).map(|l| (3, l)))
            .collect()
    }

    #[test]
    fn sweep_covers_all_points_and_contains_base() {
        let net = lenet();
        let base = hierarchical::partition(&net, 4);
        let points = enumerate_overrides(&net, base.levels(), &figure9_slots());
        assert_eq!(points.len(), 256);
        // The base (HyPar) plan appears at the bits matching its own choices.
        let hit = points
            .iter()
            .find(|p| p.levels == base.levels())
            .expect("base plan must be in the sweep");
        assert_eq!(hit.comm_elems, base.total_comm_elems());
    }

    #[test]
    fn sweep_minimum_is_the_hypar_plan_for_lenet() {
        // Figure 9: the peak of the swept space coincides with HyPar's plan.
        let net = lenet();
        let base = hierarchical::partition(&net, 4);
        let points = enumerate_overrides(&net, base.levels(), &figure9_slots());
        let best = best_point(&points).expect("sweep is non-empty");
        assert_eq!(best.comm_elems, base.total_comm_elems());
        assert!(best_point(&[]).is_none());
    }

    #[test]
    fn slot_bits_map_to_levels() {
        let net = lenet();
        let base = hierarchical::partition(&net, 4);
        let slots = [(1usize, 2usize)];
        let points = enumerate_overrides(&net, base.levels(), &slots);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].levels[1][2], Parallelism::Data);
        assert_eq!(points[1].levels[1][2], Parallelism::Model);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_panics() {
        let net = lenet();
        let base = hierarchical::partition(&net, 4);
        let _ = enumerate_overrides(&net, base.levels(), &[(9, 0)]);
    }
}
