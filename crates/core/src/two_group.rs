//! Algorithm 1: partition between two (groups of) accelerators.
//!
//! A layer-wise dynamic program with two states per layer — dp or mp —
//! whose transition costs are the Table 2 junction amounts and whose
//! emission costs are the Table 1 intra-layer amounts.  Linear in the
//! number of weighted layers; the Viterbi-style traceback recovers the
//! minimizing assignment.

use hypar_comm::{
    inter_elems, intra_elems, JunctionScaling, NetworkCommTensors, Parallelism, ScaleState,
};

/// The outcome of one two-group partition: the minimum communication (in
/// tensor elements, both directions) and the per-layer assignment achieving
/// it.
#[derive(Clone, Debug, PartialEq)]
pub struct TwoGroupPartition {
    /// Minimum total communication at this level, in tensor elements.
    pub comm_elems: f64,
    /// The per-layer parallelism achieving it.
    pub assignment: Vec<Parallelism>,
}

/// Runs Algorithm 1 for a network whose tensors are scaled by `scales`
/// (identity scales at the top of the hierarchy).
///
/// Ties are broken toward **data parallelism**, both in the final state and
/// in the traceback: dp→dp junctions are free, so on equal cost dp keeps
/// future options open (and matches the paper's preference for dp in
/// inference, §3.3).
///
/// # Panics
///
/// Panics if the network is empty or `scales.len() != net.len()`.
///
/// # Examples
///
/// ```
/// use hypar_comm::{NetworkCommTensors, Parallelism, ScaleState};
/// use hypar_core::two_group;
/// use hypar_models::zoo;
///
/// let net = NetworkCommTensors::from_network(&zoo::lenet_c(), 256)?;
/// let result = two_group::partition(&net, &ScaleState::identity(net.len()));
/// // Figure 9: conv layers dp, fc layers mp.
/// use Parallelism::{Data, Model};
/// assert_eq!(result.assignment, vec![Data, Data, Model, Model]);
/// # Ok::<(), hypar_models::NetworkError>(())
/// ```
#[must_use]
pub fn partition(net: &NetworkCommTensors, scales: &ScaleState) -> TwoGroupPartition {
    partition_with(net, scales, JunctionScaling::Consumer)
}

/// [`partition`] under an explicit [`JunctionScaling`] interpretation
/// (used by the model-ablation experiment).
///
/// # Panics
///
/// Same as [`partition`].
#[must_use]
pub fn partition_with(
    net: &NetworkCommTensors,
    scales: &ScaleState,
    mode: JunctionScaling,
) -> TwoGroupPartition {
    use Parallelism::{Data, Model};

    let num_layers = net.len();
    assert!(num_layers > 0, "cannot partition an empty network");
    assert_eq!(
        scales.len(),
        num_layers,
        "scales must cover every weighted layer"
    );

    // com[l][s]: minimum accumulated communication with layer l in state s.
    // parent[l][s]: the state of layer l-1 on that minimum path.
    let mut com = vec![[0.0f64; 2]; num_layers];
    let mut parent = vec![[Data; 2]; num_layers];

    let intra = |l: usize, p: Parallelism| intra_elems(p, net.layer(l), scales.layer(l));
    let inter = |l: usize, prev: Parallelism, next: Parallelism| {
        inter_elems(
            prev,
            next,
            net.layer(l).junction_elems,
            scales.junction_scale_with(l, mode),
        )
    };

    com[0] = [intra(0, Data), intra(0, Model)];

    for l in 1..num_layers {
        for (s, &state) in [Data, Model].iter().enumerate() {
            let from_dp = com[l - 1][0] + inter(l - 1, Data, state);
            let from_mp = com[l - 1][1] + inter(l - 1, Model, state);
            // `<=` keeps dp as the predecessor on ties.
            let (best, who) = if from_dp <= from_mp {
                (from_dp, Data)
            } else {
                (from_mp, Model)
            };
            com[l][s] = best + intra(l, state);
            parent[l][s] = who;
        }
    }

    // Final state: dp wins ties.
    let mut state = if com[num_layers - 1][0] <= com[num_layers - 1][1] {
        Data
    } else {
        Model
    };
    let comm_elems = com[num_layers - 1][state.bit() as usize];

    let mut assignment = vec![Data; num_layers];
    for l in (0..num_layers).rev() {
        assignment[l] = state;
        if l > 0 {
            state = parent[l][state.bit() as usize];
        }
    }

    TwoGroupPartition {
        comm_elems,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypar_comm::{level_cost, LayerCommTensors};
    use hypar_models::zoo;
    use Parallelism::{Data, Model};

    fn view(net: &hypar_models::Network, batch: u64) -> NetworkCommTensors {
        NetworkCommTensors::from_network(net, batch).unwrap()
    }

    #[test]
    fn reported_cost_matches_level_cost_of_assignment() {
        for name in hypar_models::zoo::NAMES {
            let net = view(&hypar_models::zoo::by_name(name).unwrap(), 256);
            let scales = ScaleState::identity(net.len());
            let result = partition(&net, &scales);
            let recomputed = level_cost(&net, &scales, &result.assignment).total_elems();
            assert!(
                (result.comm_elems - recomputed).abs() < 1e-6 * recomputed.max(1.0),
                "{name}: DP cost {} != recomputed {recomputed}",
                result.comm_elems
            );
        }
    }

    #[test]
    fn lenet_chooses_conv_dp_fc_mp() {
        let net = view(&zoo::lenet_c(), 256);
        let result = partition(&net, &ScaleState::identity(4));
        assert_eq!(result.assignment, vec![Data, Data, Model, Model]);
    }

    #[test]
    fn sconv_is_all_dp_and_sfc_mostly_mp() {
        let sconv = view(&zoo::sconv(), 256);
        let r = partition(&sconv, &ScaleState::identity(4));
        assert_eq!(r.assignment, vec![Data; 4]);

        let sfc = view(&zoo::sfc(), 256);
        let r = partition(&sfc, &ScaleState::identity(4));
        // The three big fc layers prefer mp at the top level (Figure 5a).
        assert_eq!(&r.assignment[..3], &[Model, Model, Model]);
    }

    #[test]
    fn single_layer_network_picks_cheaper_table1_side() {
        let fc = LayerCommTensors::fully_connected("fc", 32, 70, 100);
        let net = NetworkCommTensors::from_layers("one", 32, vec![fc]);
        let r = partition(&net, &ScaleState::identity(1));
        assert_eq!(r.assignment, vec![Model]); // 25.6 KB < 56 KB
        assert_eq!(r.comm_elems, 2.0 * 32.0 * 100.0);
    }

    #[test]
    fn tie_breaks_toward_dp() {
        // With batch == in_features, A(ΔW) == A(F_out): intra costs tie
        // exactly and dp must win (the paper's §6.5.2 fc3-b4096 argument).
        let layer = LayerCommTensors::fully_connected("fc", 128, 128, 50);
        assert_eq!(layer.weight_elems, layer.output_elems);
        let net = NetworkCommTensors::from_layers("tie", 128, vec![layer]);
        let r = partition(&net, &ScaleState::identity(1));
        assert_eq!(r.assignment, vec![Data]);
    }

    #[test]
    fn deep_chain_runs_in_linear_time_shape() {
        // 1000 alternating layers: just exercise that the DP handles long
        // chains and returns a full assignment.
        let layers: Vec<LayerCommTensors> = (0..1000)
            .map(|i| {
                if i % 2 == 0 {
                    LayerCommTensors::conv("c", 8, (16, 8, 8), 3, 16, (8, 8), (8, 8))
                } else {
                    LayerCommTensors::fully_connected("f", 8, 1024, 1024)
                }
            })
            .collect();
        let net = NetworkCommTensors::from_layers("chain", 8, layers);
        let r = partition(&net, &ScaleState::identity(1000));
        assert_eq!(r.assignment.len(), 1000);
        assert!(r.comm_elems > 0.0);
    }

    #[test]
    fn scales_change_the_decision() {
        // VGG-E conv5 at b32: dp at identity scales, mp once the batch has
        // been halved twice (the Figure 13 crossover).
        let conv5 = LayerCommTensors::conv("conv5", 32, (512, 14, 14), 3, 512, (14, 14), (7, 7));
        let net = NetworkCommTensors::from_layers("conv5", 32, vec![conv5]);
        let top = ScaleState::identity(1);
        assert_eq!(partition(&net, &top).assignment, vec![Data]);
        let deeper = top.descend(&[Data]).descend(&[Data]);
        assert_eq!(partition(&net, &deeper).assignment, vec![Model]);
    }
}
