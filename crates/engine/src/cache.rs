//! The engine's LRU plan cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use serde::Serialize;

use crate::fingerprint::Fingerprint;
use crate::request::PlanResponse;

/// Hit/miss counters and occupancy of a [`PlanCache`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Maximum number of entries.
    pub capacity: usize,
    /// Entries evicted to make room for newer ones.
    pub evictions: u64,
    /// Times a lock poisoned by a panicking planner thread was recovered
    /// instead of propagated (each post-poison lock acquisition counts).
    pub poison_recoveries: u64,
}

struct Entry {
    value: Arc<PlanResponse>,
    last_used: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe least-recently-used cache of [`PlanResponse`]s keyed by
/// workload [`Fingerprint`].
///
/// Eviction scans for the stale entry on insert; with the engine's default
/// capacity (1024) that linear scan is far cheaper than the planning work
/// it saves.  A capacity of 0 disables storage entirely.
///
/// The cache **recovers from mutex poisoning**: if a planner thread
/// panics while holding the lock, later lookups take the inner state as
/// is instead of propagating the poison.  Every mutation the cache
/// performs under the lock keeps the map coherent at each step (plain
/// counter bumps, `HashMap` insert/remove), so the recovered state is at
/// worst missing one entry — a poisoned service keeps answering instead
/// of 500ing every subsequent request.
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    poison_recoveries: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity,
            poison_recoveries: AtomicU64::new(0),
        }
    }

    /// Acquires the inner lock, recovering (and counting) a poisoned
    /// mutex instead of propagating the poison.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                poisoned.into_inner()
            }
        }
    }

    /// Looks a fingerprint up, counting a hit or miss.
    #[must_use]
    pub fn get(&self, key: Fingerprint) -> Option<Arc<PlanResponse>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.map.get_mut(&key.0).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.value)
        });
        match found {
            Some(value) => {
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores a response, evicting the least-recently-used entry when the
    /// cache is full.
    pub fn insert(&self, key: Fingerprint, value: Arc<PlanResponse>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key.0) {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&oldest);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key.0,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Current counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            capacity: self.capacity,
            evictions: inner.evictions,
            poison_recoveries: self.poison_recoveries.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Strategy;
    use hypar_core::HierarchicalPlan;

    fn response(tag: u64) -> Arc<PlanResponse> {
        Arc::new(PlanResponse {
            network: format!("n{tag}"),
            batch: 1,
            levels: 0,
            accelerators: 1,
            strategy: Strategy::Hypar,
            fingerprint: String::new(),
            state_hash: String::new(),
            cache_hit: false,
            total_comm_elems: 0.0,
            total_comm_bytes: 0.0,
            plan: HierarchicalPlan::from_parts("n", vec![], vec![], 0.0),
            simulation: None,
            timing: None,
        })
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache = PlanCache::new(4);
        assert!(cache.get(Fingerprint(1)).is_none());
        cache.insert(Fingerprint(1), response(1));
        assert!(cache.get(Fingerprint(1)).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        cache.insert(Fingerprint(1), response(1));
        cache.insert(Fingerprint(2), response(2));
        assert!(cache.get(Fingerprint(1)).is_some()); // 2 is now the LRU
        cache.insert(Fingerprint(3), response(3));
        assert!(cache.get(Fingerprint(2)).is_none());
        assert!(cache.get(Fingerprint(1)).is_some());
        assert!(cache.get(Fingerprint(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.poison_recoveries, 0);
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_panicking() {
        // A planner thread that panics while holding the cache lock must
        // not condemn every later request: get/insert/stats recover the
        // inner state from the poisoned mutex.
        let cache = std::sync::Arc::new(PlanCache::new(4));
        cache.insert(Fingerprint(1), response(1));
        let poisoner = std::sync::Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("poison the cache lock");
        })
        .join();
        assert!(cache.inner.is_poisoned(), "the lock must actually poison");

        assert!(cache.get(Fingerprint(1)).is_some());
        cache.insert(Fingerprint(2), response(2));
        assert!(cache.get(Fingerprint(2)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 2);
        // The recovery path is no longer silent: every post-poison lock
        // acquisition (get, insert, get, and the stats call itself) is
        // counted.
        assert_eq!(stats.poison_recoveries, 4);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = PlanCache::new(0);
        cache.insert(Fingerprint(1), response(1));
        assert!(cache.get(Fingerprint(1)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
