//! The [`PlanEngine`]: request resolution, strategy dispatch, caching.

use std::fmt;
use std::sync::Arc;

use hypar_comm::{NetworkCommTensors, Parallelism};
use hypar_core::{baselines, evaluate::evaluate_plan, exhaustive, hierarchical, HierarchicalPlan};
use hypar_models::zoo;
use hypar_models::{ConvSpec, Network, NetworkShapes, PoolKind, PoolSpec};
use hypar_sim::{training, ArchConfig};
use hypar_tensor::FeatureDims;

use crate::cache::{CacheStats, PlanCache};
use crate::fingerprint::{fingerprint, Fingerprint};
use crate::parallel;
use crate::request::{CustomNetwork, NetworkRef, PlanRequest, PlanResponse, Strategy};

/// Upper bound on `layers × levels` for [`Strategy::Exhaustive`] — beyond
/// this the `2^(L·H)` joint search is infeasible (mirrors
/// `hypar_core::exhaustive`'s own guard).
const EXHAUSTIVE_SLOT_LIMIT: usize = 24;

/// Upper bound on the hierarchy depth a request may ask for.  `2^16`
/// accelerators is already far beyond the paper's largest array (64) and
/// anything the simulator can turn around interactively; the bound also
/// keeps untrusted service input from wedging or overflowing the
/// `1 << levels` accelerator count.
const MAX_LEVELS: usize = 16;

/// Why a request could not be planned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The zoo has no network under the requested name.
    UnknownNetwork(String),
    /// The custom network specification was malformed.
    InvalidNetwork(String),
    /// The request combined options inconsistently (e.g. `explicit`
    /// without assignments, or an oversized exhaustive search).
    InvalidRequest(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownNetwork(name) => write!(
                f,
                "unknown network `{name}` (zoo: {})",
                zoo::NAMES.join(", ")
            ),
            EngineError::InvalidNetwork(msg) => write!(f, "invalid network: {msg}"),
            EngineError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The planning engine: one instance serves many requests, memoizing
/// every computed plan in an LRU cache keyed by workload fingerprint.
///
/// The engine is `Sync`; [`PlanEngine::plan_many`] and the TCP front-end
/// share one instance (and therefore one cache) across threads.
#[derive(Debug)]
pub struct PlanEngine {
    cache: PlanCache,
}

impl Default for PlanEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanEngine {
    /// Default plan-cache capacity.
    pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

    /// An engine with the default cache capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_cache_capacity(Self::DEFAULT_CACHE_CAPACITY)
    }

    /// An engine whose cache holds at most `capacity` plans (0 disables
    /// caching).
    #[must_use]
    pub fn with_cache_capacity(capacity: usize) -> Self {
        PlanEngine {
            cache: PlanCache::new(capacity),
        }
    }

    /// Plans one request, serving repeated workloads from the cache.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] for unknown networks, malformed custom
    /// specs, or inconsistent request options.
    pub fn plan(&self, request: &PlanRequest) -> Result<PlanResponse, EngineError> {
        let resolved = Resolved::new(request)?;
        let key = resolved.fingerprint();
        if let Some(cached) = self.cache.get(key) {
            let mut response = (*cached).clone();
            response.cache_hit = true;
            return Ok(response);
        }
        let response = Arc::new(resolved.compute(key));
        self.cache.insert(key, Arc::clone(&response));
        Ok((*response).clone())
    }

    /// Plans a batch of requests in parallel, preserving order.
    ///
    /// Results are deterministic and identical to calling [`Self::plan`]
    /// serially, except for the `cache_hit` flag on *duplicate* requests
    /// within one batch (which depends on scheduling).
    pub fn plan_many(&self, requests: &[PlanRequest]) -> Vec<Result<PlanResponse, EngineError>> {
        parallel::map(requests, |request| self.plan(request))
    }

    /// Cache hit/miss counters and occupancy.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// A request resolved through shape inference, ready to plan.
struct Resolved {
    shapes: NetworkShapes,
    tensors: NetworkCommTensors,
    cfg: ArchConfig,
    strategy: Strategy,
    assignments: Option<Vec<Vec<Parallelism>>>,
    levels: usize,
    simulate: bool,
}

impl Resolved {
    fn new(request: &PlanRequest) -> Result<Self, EngineError> {
        if request.levels > MAX_LEVELS {
            return Err(EngineError::InvalidRequest(format!(
                "levels {} exceeds the limit of {MAX_LEVELS} (2^{MAX_LEVELS} accelerators); \
                 the service refuses workloads that cannot be simulated",
                request.levels
            )));
        }
        let network = resolve_network(&request.network)?;
        let shapes = NetworkShapes::infer(&network, request.batch)
            .map_err(|e| EngineError::InvalidNetwork(e.to_string()))?;
        let tensors = NetworkCommTensors::from_shapes(&shapes);
        let assignments = match request.strategy {
            Strategy::Explicit => Some(parse_assignments(request, tensors.len())?),
            Strategy::Exhaustive => {
                let slots = tensors.len() * request.levels;
                if slots > EXHAUSTIVE_SLOT_LIMIT {
                    return Err(EngineError::InvalidRequest(format!(
                        "exhaustive search over {slots} slots exceeds the limit of \
                         {EXHAUSTIVE_SLOT_LIMIT} (layers x levels)"
                    )));
                }
                None
            }
            _ => None,
        };
        Ok(Resolved {
            shapes,
            tensors,
            cfg: ArchConfig::paper().with_topology(request.topology),
            strategy: request.strategy,
            assignments,
            levels: request.levels,
            simulate: request.simulate,
        })
    }

    fn fingerprint(&self) -> Fingerprint {
        fingerprint(
            &self.tensors,
            self.levels,
            self.strategy,
            self.assignments.as_deref(),
            &self.cfg,
            self.simulate,
        )
    }

    fn compute(&self, key: Fingerprint) -> PlanResponse {
        let plan = self.run_strategy();
        let simulation = self
            .simulate
            .then(|| training::simulate_step(&self.shapes, &plan, &self.cfg));
        PlanResponse {
            network: self.tensors.name().to_owned(),
            batch: self.tensors.batch(),
            levels: self.levels,
            accelerators: plan.num_accelerators(),
            strategy: self.strategy,
            fingerprint: key.to_string(),
            cache_hit: false,
            total_comm_elems: plan.total_comm_elems(),
            total_comm_bytes: plan.total_comm_bytes().value(),
            plan,
            simulation,
        }
    }

    fn run_strategy(&self) -> HierarchicalPlan {
        let net = &self.tensors;
        match self.strategy {
            Strategy::Hypar => hierarchical::partition(net, self.levels),
            Strategy::Dp => baselines::all_data(net, self.levels),
            Strategy::Mp => baselines::all_model(net, self.levels),
            Strategy::Owt => baselines::one_weird_trick(net, self.levels),
            Strategy::Exhaustive => {
                let (cost, levels) = exhaustive::best_joint(net, self.levels);
                HierarchicalPlan::from_parts(net.name(), layer_names(net), levels, cost)
            }
            Strategy::Explicit => {
                let levels = self
                    .assignments
                    .clone()
                    .expect("explicit strategy resolved assignments");
                let cost = evaluate_plan(net, &levels).total_elems();
                HierarchicalPlan::from_parts(net.name(), layer_names(net), levels, cost)
            }
        }
    }
}

fn layer_names(net: &NetworkCommTensors) -> Vec<String> {
    net.layers().iter().map(|l| l.name.clone()).collect()
}

/// Resolves a network reference, forgiving zoo-name spelling: `"VGG-A"`,
/// `"vgg_a"`, and `"vgga"` are the same network.
fn resolve_network(reference: &NetworkRef) -> Result<Network, EngineError> {
    match reference {
        NetworkRef::Zoo(name) => {
            if let Some(net) = zoo::by_name(name) {
                return Ok(net);
            }
            let canonical = |s: &str| {
                s.chars()
                    .filter(char::is_ascii_alphanumeric)
                    .map(|c| c.to_ascii_lowercase())
                    .collect::<String>()
            };
            let wanted = canonical(name);
            zoo::NAMES
                .iter()
                .find(|candidate| canonical(candidate) == wanted)
                .and_then(|candidate| zoo::by_name(candidate))
                .ok_or_else(|| EngineError::UnknownNetwork(name.clone()))
        }
        NetworkRef::Custom(custom) => build_custom(custom),
    }
}

fn build_custom(custom: &CustomNetwork) -> Result<Network, EngineError> {
    let invalid = |msg: String| EngineError::InvalidNetwork(msg);
    let input = FeatureDims::new(
        custom.input.channels,
        custom.input.height,
        custom.input.width,
    );
    let name = custom.name.clone().unwrap_or_else(|| "custom".to_owned());
    let mut builder = Network::builder(name, input);
    for (index, layer) in custom.layers.iter().enumerate() {
        match layer.kind.as_str() {
            "conv" => {
                let kernel = layer
                    .kernel
                    .ok_or_else(|| invalid(format!("conv layer {index} needs a `kernel`")))?;
                if kernel == 0 {
                    return Err(invalid(format!(
                        "conv layer {index}: kernel must be positive"
                    )));
                }
                let spec = ConvSpec {
                    out_channels: layer.out,
                    kernel,
                    stride: layer.stride.unwrap_or(1),
                    padding: layer.padding.unwrap_or((kernel - 1) / 2),
                };
                let name = layer
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("conv{}", index + 1));
                builder.conv(name, spec);
            }
            "fc" => {
                let name = layer
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("fc{}", index + 1));
                builder.fully_connected(name, layer.out);
            }
            other => {
                return Err(invalid(format!(
                    "layer {index}: unknown kind `{other}` (expected conv|fc)"
                )))
            }
        }
        if let Some(window) = layer.pool {
            builder.pool(PoolSpec {
                size: window,
                stride: window,
                kind: PoolKind::Max,
            });
        }
    }
    builder.build().map_err(|e| invalid(e.to_string()))
}

fn parse_assignments(
    request: &PlanRequest,
    num_layers: usize,
) -> Result<Vec<Vec<Parallelism>>, EngineError> {
    let bits = request.assignments.as_ref().ok_or_else(|| {
        EngineError::InvalidRequest(
            "strategy `explicit` needs `assignments` (one dp/mp bit string per level)".to_owned(),
        )
    })?;
    if bits.len() != request.levels {
        return Err(EngineError::InvalidRequest(format!(
            "got {} assignment strings for {} levels",
            bits.len(),
            request.levels
        )));
    }
    bits.iter()
        .enumerate()
        .map(|(h, level)| {
            if level.len() != num_layers {
                return Err(EngineError::InvalidRequest(format!(
                    "level {h} assignment `{level}` must cover {num_layers} layers"
                )));
            }
            level
                .chars()
                .map(|c| match c {
                    '0' => Ok(Parallelism::Data),
                    '1' => Ok(Parallelism::Model),
                    other => Err(EngineError::InvalidRequest(format!(
                        "level {h}: invalid assignment character `{other}` (expected 0 or 1)"
                    ))),
                })
                .collect()
        })
        .collect()
}
