//! The [`PlanEngine`]: request resolution, strategy dispatch, caching.

use std::fmt;
use std::sync::Arc;

use hypar_comm::{NetworkCommTensors, Parallelism};
use hypar_core::{
    baselines, evaluate::evaluate_plan, exhaustive, hierarchical, refine, HierarchicalPlan,
};
use hypar_graph::{zoo as graph_zoo, DagNetwork, SegmentCommGraph};
use hypar_models::zoo;
use hypar_models::{ConvSpec, Layer, Network, NetworkShapes, PoolKind, PoolSpec};
use hypar_sim::{training, ArchConfig};
use hypar_telemetry::{duration_ns_since, RegistrySnapshot, SpanRecorder};
use hypar_tensor::FeatureDims;

use crate::cache::{CacheStats, PlanCache};
use crate::fingerprint::{fingerprint, fingerprint_dag, Fingerprint};
use crate::metrics::EngineMetrics;
use crate::parallel;
use crate::request::{
    CustomNetwork, GraphSpec, NetworkRef, PlanRequest, PlanResponse, PlanTiming, Strategy,
};

/// Upper bound on `layers × levels` for [`Strategy::Exhaustive`] — beyond
/// this the `2^(L·H)` joint search is infeasible.  Chains and branchy
/// DAGs share the bound (it is `hypar_core::exhaustive`'s own guard, which
/// the graph-side joint search reuses).
const EXHAUSTIVE_SLOT_LIMIT: usize = exhaustive::SLOT_LIMIT;

/// Upper bound on the hierarchy depth a request may ask for.  `2^16`
/// accelerators is already far beyond the paper's largest array (64) and
/// anything the simulator can turn around interactively; the bound also
/// keeps untrusted service input from wedging or overflowing the
/// `1 << levels` accelerator count.
const MAX_LEVELS: usize = 16;

/// Why a request could not be planned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The zoo has no network under the requested name.
    UnknownNetwork(String),
    /// The custom network specification was malformed.
    InvalidNetwork(String),
    /// The request combined options inconsistently (e.g. `explicit`
    /// without assignments, or an oversized exhaustive search).
    InvalidRequest(String),
    /// A planner worker thread panicked; the batch degraded to
    /// per-request errors instead of aborting the service.
    WorkerPanicked,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownNetwork(name) => write!(
                f,
                "unknown network `{name}` (zoo: {}; branchy zoo: {})",
                zoo::NAMES.join(", "),
                graph_zoo::NAMES.join(", ")
            ),
            EngineError::InvalidNetwork(msg) => write!(f, "invalid network: {msg}"),
            EngineError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            EngineError::WorkerPanicked => write!(
                f,
                "internal: a planner worker thread panicked; the request was abandoned"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// The planning engine: one instance serves many requests, memoizing
/// every computed plan in an LRU cache keyed by workload fingerprint.
///
/// The engine is `Sync`; [`PlanEngine::plan_many`] and the TCP front-end
/// share one instance (and therefore one cache) across threads.
#[derive(Debug)]
pub struct PlanEngine {
    cache: PlanCache,
    metrics: EngineMetrics,
}

impl Default for PlanEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanEngine {
    /// Default plan-cache capacity.
    pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

    /// An engine with the default cache capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_cache_capacity(Self::DEFAULT_CACHE_CAPACITY)
    }

    /// An engine whose cache holds at most `capacity` plans (0 disables
    /// caching).
    #[must_use]
    pub fn with_cache_capacity(capacity: usize) -> Self {
        PlanEngine {
            cache: PlanCache::new(capacity),
            metrics: EngineMetrics::new(),
        }
    }

    /// Plans one request, serving repeated workloads from the cache.
    ///
    /// Every call is counted and timed in the engine's metric registry
    /// (see [`PlanEngine::metrics_snapshot`]); with `trace: true` on the
    /// request, the response additionally carries the request's own
    /// [`PlanTiming`] span tree.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] for unknown networks, malformed custom
    /// specs, or inconsistent request options.
    pub fn plan(&self, request: &PlanRequest) -> Result<PlanResponse, EngineError> {
        self.metrics.requests.inc();
        self.metrics.inflight.add(1);
        let mut root = SpanRecorder::start("plan");
        let result = self.plan_recorded(request, &mut root);
        self.metrics.inflight.sub(1);
        let span = root.finish();
        self.metrics.plan_latency_ns.record(span.duration_ns);
        match result {
            Ok(mut response) => {
                if request.trace {
                    response.timing = Some(PlanTiming {
                        total_ns: span.duration_ns,
                        trace: span,
                    });
                }
                Ok(response)
            }
            Err(err) => {
                self.metrics.errors.inc();
                Err(err)
            }
        }
    }

    /// The `plan` pipeline proper, with every stage recorded under
    /// `root`.  Returned responses never carry timing: the caller
    /// attaches the finished span tree, and the cache stores timing-free
    /// entries so traced and untraced requests share them.
    fn plan_recorded(
        &self,
        request: &PlanRequest,
        root: &mut SpanRecorder,
    ) -> Result<PlanResponse, EngineError> {
        let resolved = root.time_in("resolve", |span| Resolved::new(request, span))?;
        let key = resolved.fingerprint();
        if let Some(cached) = root.time("cache_lookup", || self.cache.get(key)) {
            let mut response = (*cached).clone();
            response.cache_hit = true;
            return Ok(response);
        }
        // hypar-allow: det-wall-clock — compute-latency metric; recorded to telemetry, never folded into fingerprints or state hashes
        let compute_started = std::time::Instant::now();
        let response =
            root.time_in("compute", |span| resolved.compute(key, span, &self.metrics))?;
        self.metrics
            .plan_compute_ns
            .record(duration_ns_since(compute_started));
        let response = Arc::new(response);
        self.cache.insert(key, Arc::clone(&response));
        Ok((*response).clone())
    }

    /// Plans a batch of requests in parallel, preserving order.
    ///
    /// Results are deterministic and identical to calling [`Self::plan`]
    /// serially, except for the `cache_hit` flag on *duplicate* requests
    /// within one batch (which depends on scheduling).
    pub fn plan_many(&self, requests: &[PlanRequest]) -> Vec<Result<PlanResponse, EngineError>> {
        parallel::map(requests, |request| self.plan(request)).unwrap_or_else(|_| {
            // A panicked worker costs the batch typed errors, not the
            // process: the service keeps answering.
            requests
                .iter()
                .map(|_| Err(EngineError::WorkerPanicked))
                .collect()
        })
    }

    /// Cache hit/miss counters and occupancy.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A point-in-time snapshot of the engine's metric registry: request
    /// and error counters, the in-flight gauge, search counters
    /// (refine sweeps/flips, exhaustive candidates, segments planned),
    /// and latency histograms with p50/p90/p99 summaries.
    #[must_use]
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.metrics.snapshot()
    }
}

/// The pipeline view a request resolves to: the chain pipeline for flat
/// networks (and branch-free DAGs, which linearize into it), or the
/// segment decomposition for branchy DAGs.
enum Workload {
    Chain {
        shapes: NetworkShapes,
        tensors: NetworkCommTensors,
    },
    Dag(SegmentCommGraph),
}

/// A request resolved through shape inference, ready to plan.
struct Resolved {
    workload: Workload,
    cfg: ArchConfig,
    strategy: Strategy,
    assignments: Option<Vec<Vec<Parallelism>>>,
    levels: usize,
    simulate: bool,
}

impl Resolved {
    fn new(request: &PlanRequest, span: &mut SpanRecorder) -> Result<Self, EngineError> {
        if request.levels > MAX_LEVELS {
            return Err(EngineError::InvalidRequest(format!(
                "levels {} exceeds the limit of {MAX_LEVELS} (2^{MAX_LEVELS} accelerators); \
                 the service refuses workloads that cannot be simulated",
                request.levels
            )));
        }
        let mut network = resolve_network(&request.network)?;
        // A branch-free DAG *is* a chain: lower it so it flows through the
        // chain pipeline (and shares its cache entries) bit-identically.
        if let ResolvedNet::Dag(dag) = &network {
            if dag.is_chain() {
                let chain = dag
                    .linearize()
                    .map_err(|e| EngineError::InvalidNetwork(e.to_string()))?;
                network = ResolvedNet::Chain(chain);
            }
        }
        // `refine: true` is a modifier spelling of the refined strategy:
        // both resolve — and therefore fingerprint and cache — as
        // `Strategy::Refined`.
        let strategy = match (request.strategy, request.refine) {
            (strategy, false) => strategy,
            (Strategy::Hypar | Strategy::Refined, true) => Strategy::Refined,
            (other, true) => {
                return Err(EngineError::InvalidRequest(format!(
                    "`refine: true` applies to strategy `hypar` (or `refined`), not `{other}`"
                )))
            }
        };
        let (workload, assignments) = match network {
            ResolvedNet::Chain(chain) => {
                let shapes = NetworkShapes::infer(&chain, request.batch)
                    .map_err(|e| EngineError::InvalidNetwork(e.to_string()))?;
                let tensors = NetworkCommTensors::from_shapes(&shapes);
                let assignments = validate_strategy(request, tensors.len())?;
                (Workload::Chain { shapes, tensors }, assignments)
            }
            ResolvedNet::Dag(dag) => {
                let graph = span
                    .time("segment_decomposition", || dag.segments(request.batch))
                    .map_err(|e| EngineError::InvalidNetwork(e.to_string()))?;
                let assignments = validate_strategy(request, graph.num_layers())?;
                (Workload::Dag(graph), assignments)
            }
        };
        Ok(Resolved {
            workload,
            cfg: ArchConfig::paper().with_topology(request.topology),
            strategy,
            assignments,
            levels: request.levels,
            simulate: request.simulate,
        })
    }

    fn fingerprint(&self) -> Fingerprint {
        match &self.workload {
            Workload::Chain { tensors, .. } => fingerprint(
                tensors,
                self.levels,
                self.strategy,
                self.assignments.as_deref(),
                &self.cfg,
                self.simulate,
            ),
            Workload::Dag(graph) => fingerprint_dag(
                graph,
                self.levels,
                self.strategy,
                self.assignments.as_deref(),
                &self.cfg,
                self.simulate,
            ),
        }
    }

    fn compute(
        &self,
        key: Fingerprint,
        span: &mut SpanRecorder,
        metrics: &EngineMetrics,
    ) -> Result<PlanResponse, EngineError> {
        let sim_failed = |e: hypar_sim::SimError| EngineError::InvalidRequest(e.to_string());
        let (network, batch, plan, simulation) = match &self.workload {
            Workload::Chain { shapes, tensors } => {
                let plan = self.run_chain_strategy(tensors, span, metrics)?;
                let simulation = if self.simulate {
                    metrics.sim_steps.inc();
                    Some(
                        span.time("simulate", || {
                            training::simulate_step(shapes, &plan, &self.cfg)
                        })
                        .map_err(sim_failed)?,
                    )
                } else {
                    None
                };
                (tensors.name().to_owned(), tensors.batch(), plan, simulation)
            }
            Workload::Dag(graph) => {
                let plan = self.run_dag_strategy(graph, span, metrics)?;
                let simulation = if self.simulate {
                    metrics.sim_steps.inc();
                    Some(
                        span.time("simulate", || {
                            training::simulate_graph_step(graph, &plan, &self.cfg)
                        })
                        .map_err(sim_failed)?,
                    )
                } else {
                    None
                };
                (graph.name().to_owned(), graph.batch(), plan, simulation)
            }
        };
        let mut response = PlanResponse {
            network,
            batch,
            levels: self.levels,
            accelerators: plan.num_accelerators(),
            strategy: self.strategy,
            fingerprint: key.to_string(),
            state_hash: String::new(),
            cache_hit: false,
            total_comm_elems: plan.total_comm_elems(),
            total_comm_bytes: plan.total_comm_bytes().value(),
            plan,
            simulation,
            timing: None,
        };
        // Stamped once at compute time and shared by every cache hit:
        // the digest describes the content, which hits return verbatim
        // (`cache_hit`/`timing` are excluded for exactly that reason).
        response.state_hash = response.compute_state_hash();
        Ok(response)
    }

    fn run_chain_strategy(
        &self,
        net: &NetworkCommTensors,
        span: &mut SpanRecorder,
        metrics: &EngineMetrics,
    ) -> Result<HierarchicalPlan, EngineError> {
        Ok(match self.strategy {
            Strategy::Hypar => span.time("search", || hierarchical::partition(net, self.levels)),
            Strategy::Dp => span.time("search", || baselines::all_data(net, self.levels)),
            Strategy::Mp => span.time("search", || baselines::all_model(net, self.levels)),
            Strategy::Owt => span.time("search", || baselines::one_weird_trick(net, self.levels)),
            Strategy::Refined => {
                let (plan, report) = span.time_in("refine", |s| {
                    let (plan, report) = refine::refine_partition_reported(net, self.levels);
                    s.counter("sweeps", report.sweeps as u64);
                    s.counter("flips", report.flips);
                    (plan, report)
                });
                metrics.refine_sweeps.add(report.sweeps as u64);
                metrics.refine_flips.add(report.flips);
                plan
            }
            Strategy::Exhaustive => {
                // The slot guard ran at resolution, so the candidate
                // count (2^slots) fits comfortably in a u64.
                let candidates = 1u64 << (net.len() * self.levels);
                metrics.exhaustive_candidates.add(candidates);
                let (cost, levels) = span.time_in("exhaustive", |s| {
                    s.counter("candidates", candidates);
                    exhaustive::best_joint(net, self.levels)
                        .map_err(|e| EngineError::InvalidRequest(e.to_string()))
                })?;
                HierarchicalPlan::from_parts(net.name(), layer_names(net), levels, cost)
            }
            Strategy::Explicit => {
                // Resolution guarantees assignments for the explicit
                // strategy; keep the drift guard typed rather than a panic
                // a service request could reach.
                let levels = self.assignments.clone().ok_or_else(|| {
                    EngineError::InvalidRequest(
                        "strategy `explicit` lost its assignments during resolution".to_owned(),
                    )
                })?;
                let cost = span.time("evaluate", || evaluate_plan(net, &levels).total_elems());
                HierarchicalPlan::from_parts(net.name(), layer_names(net), levels, cost)
            }
        })
    }

    /// Plans a branchy DAG.  The segment-local strategies (hypar and the
    /// uniform baselines) fan their segments across the [`parallel::map`]
    /// pool — segments are independent until the stitch — while
    /// `exhaustive` runs the whole-graph joint search and `explicit`
    /// evaluates the supplied whole-graph assignment, both priced by the
    /// identical stitched model.
    fn run_dag_strategy(
        &self,
        graph: &SegmentCommGraph,
        span: &mut SpanRecorder,
        metrics: &EngineMetrics,
    ) -> Result<HierarchicalPlan, EngineError> {
        // Stitch/evaluate mismatches are typed `GraphError`s; an engine
        // whose own per-segment plans disagree with the graph is a bug,
        // but it costs the request an error JSON, never the process.
        let graph_failed = |e: hypar_graph::GraphError| EngineError::InvalidRequest(e.to_string());
        // Fans the segment-local seed planning across the pool, counted
        // and timed as one `plan_segments` span (the segments run
        // concurrently, so per-segment child spans would overlap).
        let plan_segments = |span: &mut SpanRecorder,
                             plan_one: fn(&NetworkCommTensors, usize) -> HierarchicalPlan|
         -> Result<Vec<HierarchicalPlan>, EngineError> {
            let segments = graph.segments();
            metrics.segments_planned.add(segments.len() as u64);
            span.time_in("plan_segments", |s| {
                s.counter("segments", segments.len() as u64);
                parallel::map(segments, |segment| plan_one(segment, self.levels))
                    .map_err(|_| EngineError::WorkerPanicked)
            })
        };
        let plan_one: fn(&NetworkCommTensors, usize) -> HierarchicalPlan = match self.strategy {
            Strategy::Hypar => hierarchical::partition,
            Strategy::Dp => baselines::all_data,
            Strategy::Mp => baselines::all_model,
            Strategy::Owt => baselines::one_weird_trick,
            Strategy::Refined => {
                // The junction-aware pass: stitched seed, then
                // whole-graph coordinate descent.  Segments still fan out
                // across the pool for the seed.
                let plans = plan_segments(span, hierarchical::partition)?;
                let stitched = span
                    .time("stitch", || hypar_graph::stitch(graph, &plans))
                    .map_err(graph_failed)?;
                let (refined, report) = span
                    .time_in("refine", |s| {
                        let result = hypar_graph::refine_graph_plan(graph, &stitched);
                        if let Ok((_, report)) = &result {
                            s.counter("sweeps", report.sweeps as u64);
                            s.counter("flips", report.flips);
                        }
                        result
                    })
                    .map_err(graph_failed)?;
                metrics.refine_sweeps.add(report.sweeps as u64);
                metrics.refine_flips.add(report.flips);
                return Ok(refined);
            }
            Strategy::Exhaustive => {
                // The slot guard ran at resolution, so the candidate
                // count (2^slots) fits comfortably in a u64.
                let candidates = 1u64 << (graph.num_layers() * self.levels);
                metrics.exhaustive_candidates.add(candidates);
                return span.time_in("exhaustive", |s| {
                    s.counter("candidates", candidates);
                    hypar_graph::best_joint_graph(graph, self.levels)
                        .map_err(|e| EngineError::InvalidRequest(e.to_string()))
                });
            }
            Strategy::Explicit => {
                // Resolution guarantees assignments for the explicit
                // strategy; keep the drift guard typed rather than a panic
                // a service request could reach.
                let levels = self.assignments.clone().ok_or_else(|| {
                    EngineError::InvalidRequest(
                        "strategy `explicit` lost its assignments during resolution".to_owned(),
                    )
                })?;
                let cost = span
                    .time("evaluate", || {
                        hypar_graph::evaluate_graph_plan(graph, &levels)
                    })
                    .map_err(graph_failed)?;
                return Ok(HierarchicalPlan::from_parts(
                    graph.name(),
                    graph_layer_names(graph),
                    levels,
                    cost,
                ));
            }
        };
        let plans = plan_segments(span, plan_one)?;
        span.time("stitch", || hypar_graph::stitch(graph, &plans))
            .map_err(graph_failed)
    }
}

fn layer_names(net: &NetworkCommTensors) -> Vec<String> {
    net.layers().iter().map(|l| l.name.clone()).collect()
}

/// All weighted layer names of a DAG, concatenated in canonical segment
/// order — the layout [`hypar_graph::stitch`]ed plans use.
fn graph_layer_names(graph: &SegmentCommGraph) -> Vec<String> {
    graph
        .segments()
        .iter()
        .flat_map(|s| s.layers())
        .map(|l| l.name.clone())
        .collect()
}

/// Validates the strategy-specific request options against the resolved
/// workload (shared by the chain and DAG paths): `explicit` needs parsed
/// assignments covering every weighted layer, `exhaustive` a feasible
/// `layers × levels` search space.
fn validate_strategy(
    request: &PlanRequest,
    num_layers: usize,
) -> Result<Option<Vec<Vec<Parallelism>>>, EngineError> {
    match request.strategy {
        Strategy::Explicit => Ok(Some(parse_assignments(request, num_layers)?)),
        Strategy::Exhaustive => {
            let slots = num_layers * request.levels;
            if slots > EXHAUSTIVE_SLOT_LIMIT {
                return Err(EngineError::InvalidRequest(format!(
                    "exhaustive search over {slots} slots exceeds the limit of \
                     {EXHAUSTIVE_SLOT_LIMIT} (layers x levels)"
                )));
            }
            Ok(None)
        }
        _ => Ok(None),
    }
}

/// What a [`NetworkRef`] resolves to before planning.
enum ResolvedNet {
    Chain(Network),
    Dag(DagNetwork),
}

/// Resolves a network reference.  Zoo lookups are forgiving (`"VGG-A"`,
/// `"vgg_a"`, and `"vgga"` are the same network) and fall through from
/// the paper's chain zoo to the branchy graph zoo
/// (`"resnet18"`, `"inception-mini"`).
fn resolve_network(reference: &NetworkRef) -> Result<ResolvedNet, EngineError> {
    match reference {
        NetworkRef::Zoo(name) => zoo::by_name(name)
            .map(ResolvedNet::Chain)
            .or_else(|| graph_zoo::by_name(name).map(ResolvedNet::Dag))
            .ok_or_else(|| EngineError::UnknownNetwork(name.clone())),
        NetworkRef::Custom(custom) => build_custom(custom).map(ResolvedNet::Chain),
        NetworkRef::Graph(graph) => build_graph(graph).map(ResolvedNet::Dag),
    }
}

/// Converts the layer fields shared by [`crate::LayerSpec`] and
/// [`crate::GraphNodeSpec`] into a [`Layer`], rejecting fields that do not
/// apply to the kind.  The error carries no position — callers prefix
/// their own layer/node context.
fn build_layer(
    name: &str,
    kind: &str,
    out: u64,
    kernel: Option<u64>,
    stride: Option<u64>,
    padding: Option<u64>,
    pool: Option<u64>,
) -> Result<Layer, String> {
    let mut layer = match kind {
        "conv" => {
            let kernel = kernel.ok_or_else(|| "conv needs a `kernel`".to_owned())?;
            if kernel == 0 {
                return Err("kernel must be positive".to_owned());
            }
            Layer::conv(
                name,
                ConvSpec {
                    out_channels: out,
                    kernel,
                    stride: stride.unwrap_or(1),
                    padding: padding.unwrap_or((kernel - 1) / 2),
                },
            )
        }
        "fc" => {
            if kernel.is_some() || stride.is_some() || padding.is_some() {
                return Err("`kernel`/`stride`/`padding` do not apply to fc".to_owned());
            }
            Layer::fully_connected(name, out)
        }
        other => return Err(format!("unknown kind `{other}` (expected conv|fc)")),
    };
    if let Some(window) = pool {
        layer = layer.with_pool(PoolSpec {
            size: window,
            stride: window,
            kind: PoolKind::Max,
        });
    }
    Ok(layer)
}

fn build_custom(custom: &CustomNetwork) -> Result<Network, EngineError> {
    let invalid = |msg: String| EngineError::InvalidNetwork(msg);
    let input = build_input(&custom.input)?;
    let name = custom.name.clone().unwrap_or_else(|| "custom".to_owned());
    let mut builder = Network::builder(name, input);
    for (index, spec) in custom.layers.iter().enumerate() {
        let name = spec
            .name
            .clone()
            .unwrap_or_else(|| format!("{}{}", spec.kind, index + 1));
        let layer = build_layer(
            &name,
            &spec.kind,
            spec.out,
            spec.kernel,
            spec.stride,
            spec.padding,
            spec.pool,
        )
        .map_err(|msg| invalid(format!("layer {index}: {msg}")))?;
        builder.layer(layer);
    }
    builder.build().map_err(|e| invalid(e.to_string()))
}

/// Validates untrusted input dimensions before handing them to
/// [`FeatureDims::new`] (which panics on zero).
fn build_input(input: &crate::request::InputSpec) -> Result<FeatureDims, EngineError> {
    if input.channels == 0 || input.height == 0 || input.width == 0 {
        return Err(EngineError::InvalidNetwork(
            "input dimensions must be positive".to_owned(),
        ));
    }
    Ok(FeatureDims::new(input.channels, input.height, input.width))
}

/// Builds a validated [`DagNetwork`] from an inline [`GraphSpec`].
fn build_graph(spec: &GraphSpec) -> Result<DagNetwork, EngineError> {
    let invalid = |msg: String| EngineError::InvalidNetwork(msg);
    let input = build_input(&spec.input)?;
    let name = spec.name.clone().unwrap_or_else(|| "graph".to_owned());
    let mut builder = hypar_graph::GraphBuilder::new(name, input);
    let mut previous: Option<String> = None;
    for (index, node) in spec.nodes.iter().enumerate() {
        let inputs: Vec<String> = match &node.inputs {
            Some(list) => list.clone(),
            None => vec![previous
                .clone()
                .unwrap_or_else(|| hypar_graph::INPUT.to_owned())],
        };
        let context = |msg: String| invalid(format!("node {index} (`{}`): {msg}", node.name));
        match node.kind.as_str() {
            "conv" | "fc" => {
                let [from] = inputs.as_slice() else {
                    return Err(context(format!(
                        "layer nodes take exactly one input, got {}",
                        inputs.len()
                    )));
                };
                let out = node
                    .out
                    .ok_or_else(|| context(format!("`{}` needs `out`", node.kind)))?;
                let layer = build_layer(
                    &node.name,
                    &node.kind,
                    out,
                    node.kernel,
                    node.stride,
                    node.padding,
                    node.pool,
                )
                .map_err(context)?;
                builder.layer(layer, from.clone());
            }
            "add" | "concat" => {
                if node.out.is_some()
                    || node.kernel.is_some()
                    || node.stride.is_some()
                    || node.padding.is_some()
                    || node.pool.is_some()
                {
                    return Err(context(format!(
                        "`out`/`kernel`/`stride`/`padding`/`pool` do not apply to `{}` nodes",
                        node.kind
                    )));
                }
                let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
                if node.kind == "add" {
                    builder.add(&node.name, &refs);
                } else {
                    builder.concat(&node.name, &refs);
                }
            }
            other => {
                return Err(context(format!(
                    "unknown kind `{other}` (expected conv|fc|add|concat)"
                )))
            }
        }
        previous = Some(node.name.clone());
    }
    builder.build().map_err(|e| invalid(e.to_string()))
}

fn parse_assignments(
    request: &PlanRequest,
    num_layers: usize,
) -> Result<Vec<Vec<Parallelism>>, EngineError> {
    let bits = request.assignments.as_ref().ok_or_else(|| {
        EngineError::InvalidRequest(
            "strategy `explicit` needs `assignments` (one dp/mp bit string per level)".to_owned(),
        )
    })?;
    if bits.len() != request.levels {
        return Err(EngineError::InvalidRequest(format!(
            "got {} assignment strings for {} levels",
            bits.len(),
            request.levels
        )));
    }
    bits.iter()
        .enumerate()
        .map(|(h, level)| {
            if level.len() != num_layers {
                return Err(EngineError::InvalidRequest(format!(
                    "level {h} assignment `{level}` must cover {num_layers} layers"
                )));
            }
            level
                .chars()
                .map(|c| match c {
                    '0' => Ok(Parallelism::Data),
                    '1' => Ok(Parallelism::Model),
                    other => Err(EngineError::InvalidRequest(format!(
                        "level {h}: invalid assignment character `{other}` (expected 0 or 1)"
                    ))),
                })
                .collect()
        })
        .collect()
}
