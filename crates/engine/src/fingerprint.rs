//! Stable workload fingerprints — the plan cache's keys.
//!
//! A fingerprint hashes the **resolved** workload, not the request text:
//! the network's inferred tensor sizes, the batch, the hierarchy depth,
//! the strategy (plus explicit assignments, when given), the architecture
//! configuration, and whether simulation was requested.  Two requests that
//! resolve to the same workload — e.g. the zoo name `"vgg_a"` and an
//! inline custom spec with identical layers — therefore share a cache
//! entry, while anything that changes the answer changes the key.

use std::fmt;

use hypar_comm::{LayerCommTensors, NetworkCommTensors, Parallelism};
use hypar_graph::SegmentCommGraph;
use hypar_sim::ArchConfig;
use serde::{Serialize, Value};

use crate::request::Strategy;

/// A 64-bit FNV-1a fingerprint of a resolved planning workload.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Incremental FNV-1a hasher over primitive fields.
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn u64(&mut self, n: u64) {
        self.bytes(&n.to_le_bytes());
    }

    fn f64(&mut self, n: f64) {
        self.bytes(&n.to_bits().to_le_bytes());
    }

    fn bool(&mut self, b: bool) {
        self.bytes(&[u8::from(b)]);
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// Hashes the workload-relevant fields of one layer's comm tensors
    /// (names are labels, not inputs — see [`fingerprint`]).
    fn layer(&mut self, layer: &LayerCommTensors) {
        self.bool(layer.is_conv);
        self.f64(layer.weight_elems);
        self.f64(layer.input_elems);
        self.f64(layer.output_elems);
        self.f64(layer.junction_elems);
    }

    /// Hashes optional explicit per-level assignments — one encoding
    /// shared by the chain and DAG fingerprints so the two cache-key
    /// rules cannot drift.
    fn assignments(&mut self, assignments: Option<&[Vec<Parallelism>]>) {
        match assignments {
            None => self.bool(false),
            Some(levels) => {
                self.bool(true);
                self.u64(levels.len() as u64);
                for level in levels {
                    for p in level {
                        self.bool(*p == Parallelism::Model);
                    }
                }
            }
        }
    }

    /// Hashes a serde value tree canonically (variant tag + contents).
    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.bytes(&[0]),
            Value::Bool(b) => {
                self.bytes(&[1]);
                self.bool(*b);
            }
            Value::U64(n) => {
                self.bytes(&[2]);
                self.u64(*n);
            }
            Value::I64(n) => {
                self.bytes(&[3]);
                self.u64(*n as u64);
            }
            Value::F64(n) => {
                self.bytes(&[4]);
                self.f64(*n);
            }
            Value::String(s) => {
                self.bytes(&[5]);
                self.str(s);
            }
            Value::Array(items) => {
                self.bytes(&[6]);
                self.u64(items.len() as u64);
                for item in items {
                    self.value(item);
                }
            }
            Value::Object(fields) => {
                self.bytes(&[7]);
                self.u64(fields.len() as u64);
                for (k, val) in fields {
                    self.str(k);
                    self.value(val);
                }
            }
        }
    }
}

/// Fingerprints a resolved workload.
///
/// Layer and network *names* are deliberately excluded: they label the
/// answer but never change it.
#[must_use]
pub fn fingerprint(
    tensors: &NetworkCommTensors,
    levels: usize,
    strategy: Strategy,
    assignments: Option<&[Vec<Parallelism>]>,
    cfg: &ArchConfig,
    simulate: bool,
) -> Fingerprint {
    let mut h = Fnv::new();
    h.u64(tensors.batch());
    h.u64(tensors.len() as u64);
    for layer in tensors.layers() {
        h.layer(layer);
    }
    h.u64(levels as u64);
    h.u64(strategy.tag());
    h.assignments(assignments);
    // The architecture config covers topology, bandwidths, energy model,
    // precision, and the PE grid; hashing its serialized form keeps the
    // fingerprint in sync with any future ArchConfig fields for free.
    h.value(&cfg.to_value());
    h.bool(simulate);
    Fingerprint(h.0)
}

/// Fingerprints a resolved *branchy DAG* workload: the segment
/// decomposition's tensors and junction edges in place of the chain's
/// layer list.
///
/// The segment graph comes from a canonically-ordered
/// [`hypar_graph::DagNetwork`], so the fingerprint is stable across
/// node-insertion order; a leading marker domain-separates DAG keys from
/// chain keys (branch-free DAGs never reach here — they linearize and
/// share the chain fingerprint).
#[must_use]
pub fn fingerprint_dag(
    graph: &SegmentCommGraph,
    levels: usize,
    strategy: Strategy,
    assignments: Option<&[Vec<Parallelism>]>,
    cfg: &ArchConfig,
    simulate: bool,
) -> Fingerprint {
    let mut h = Fnv::new();
    h.str("dag");
    h.u64(graph.batch());
    h.u64(graph.num_segments() as u64);
    for segment in graph.segments() {
        h.u64(segment.len() as u64);
        for layer in segment.layers() {
            h.layer(layer);
        }
    }
    h.u64(graph.edges().len() as u64);
    for edge in graph.edges() {
        h.u64(edge.from as u64);
        h.u64(edge.to as u64);
        h.f64(edge.elems);
        h.f64(edge.join_elems);
    }
    h.u64(levels as u64);
    h.u64(strategy.tag());
    h.assignments(assignments);
    h.value(&cfg.to_value());
    h.bool(simulate);
    Fingerprint(h.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypar_models::zoo;
    use hypar_sim::Topology;

    fn tensors(name: &str, batch: u64) -> NetworkCommTensors {
        NetworkCommTensors::from_network(&zoo::by_name(name).unwrap(), batch).unwrap()
    }

    #[test]
    fn identical_workloads_agree() {
        let a = fingerprint(
            &tensors("VGG-A", 256),
            4,
            Strategy::Hypar,
            None,
            &ArchConfig::paper(),
            false,
        );
        let b = fingerprint(
            &tensors("VGG-A", 256),
            4,
            Strategy::Hypar,
            None,
            &ArchConfig::paper(),
            false,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn every_knob_changes_the_key() {
        let base = fingerprint(
            &tensors("VGG-A", 256),
            4,
            Strategy::Hypar,
            None,
            &ArchConfig::paper(),
            false,
        );
        let batch = fingerprint(
            &tensors("VGG-A", 128),
            4,
            Strategy::Hypar,
            None,
            &ArchConfig::paper(),
            false,
        );
        let levels = fingerprint(
            &tensors("VGG-A", 256),
            2,
            Strategy::Hypar,
            None,
            &ArchConfig::paper(),
            false,
        );
        let strategy = fingerprint(
            &tensors("VGG-A", 256),
            4,
            Strategy::Dp,
            None,
            &ArchConfig::paper(),
            false,
        );
        let topology = fingerprint(
            &tensors("VGG-A", 256),
            4,
            Strategy::Hypar,
            None,
            &ArchConfig::paper().with_topology(Topology::Torus),
            false,
        );
        let simulate = fingerprint(
            &tensors("VGG-A", 256),
            4,
            Strategy::Hypar,
            None,
            &ArchConfig::paper(),
            true,
        );
        let network = fingerprint(
            &tensors("VGG-B", 256),
            4,
            Strategy::Hypar,
            None,
            &ArchConfig::paper(),
            false,
        );
        for other in [batch, levels, strategy, topology, simulate, network] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn display_is_16_hex_digits() {
        assert_eq!(Fingerprint(0xdead_beef).to_string(), "00000000deadbeef");
    }
}
