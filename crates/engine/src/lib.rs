//! The HyPar planning **engine**: the library pipeline
//! (`models → comm → core → sim`) packaged as a cached, parallel planning
//! service.
//!
//! HyPar's value is the partition *search* — choosing data vs. model
//! parallelism per layer per hierarchy level to minimize communication
//! (paper §4).  Callers used to hand-wire the four library crates and
//! recompute identical plans from scratch; this crate centralizes that
//! pipeline behind one API:
//!
//! * [`PlanRequest`] / [`PlanResponse`] — a serde-JSON description of a
//!   planning workload: network (zoo name — chain or branchy —, custom
//!   layer spec, or inline DAG node spec), batch size, hierarchy levels,
//!   strategy (`hypar`/`dp`/`mp`/`owt`/`exhaustive`/`explicit`),
//!   topology, and an optional full discrete-event simulation of the
//!   training step;  branchy DAGs are decomposed into chain segments by
//!   `hypar-graph` and planned segment by segment with inter-segment
//!   junction accounting;
//! * [`PlanEngine`] — resolves requests through the pipeline, memoizing
//!   results in an LRU [`cache::PlanCache`] keyed by a stable
//!   [`fingerprint::Fingerprint`] of the *resolved* workload (network
//!   shapes, not names), so repeated and equivalent queries are served in
//!   O(1);
//! * [`PlanEngine::plan_many`] — fans a batch of requests across CPU
//!   cores with deterministic, order-preserving results;
//! * [`service`] — a line-delimited JSON front-end over any
//!   `BufRead`/`Write` pair or a TCP listener, used by the `hypar-engine`
//!   binary;
//! * [`scenario`] — reproducible sweep files (`scenarios/*.json`) run as a
//!   batch through the engine;
//! * **telemetry** — every request is timed into a metrics registry
//!   ([`PlanEngine::metrics_snapshot`], the service's `{"stats": true}`
//!   command); `trace: true` on a request attaches a [`PlanTiming`] span
//!   tree without changing its cache fingerprint;
//! * **determinism** — every [`PlanResponse`] carries a canonical
//!   [`state_hash`](PlanResponse::state_hash) content digest; [`record`]
//!   appends request/response JSONL logs (`--record PATH` on the binary)
//!   that the companion `hypar-replay` crate re-executes and diffs, and
//!   `scenarios/golden.json` pins every scenario's hash in CI.
//!
//! # Examples
//!
//! ```
//! use hypar_engine::{PlanEngine, PlanRequest, Strategy};
//!
//! let engine = PlanEngine::new();
//! let request = PlanRequest::zoo("vgg_a").levels(4).batch(256);
//! let first = engine.plan(&request)?;
//! assert!(!first.cache_hit);
//! let again = engine.plan(&request)?;
//! assert!(again.cache_hit);
//! assert_eq!(first.plan, again.plan);
//!
//! // Baselines go through the same cache-keyed pipeline.
//! let dp = engine.plan(&request.clone().strategy(Strategy::Dp))?;
//! assert!(first.total_comm_elems <= dp.total_comm_elems);
//! # Ok::<(), hypar_engine::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
mod engine;
pub mod fingerprint;
mod metrics;
pub mod parallel;
pub mod record;
mod request;
pub mod scenario;
pub mod service;

pub use cache::CacheStats;
pub use engine::{EngineError, PlanEngine};
pub use record::{RecordEntry, Recorder};
pub use request::{
    CustomNetwork, GraphNodeSpec, GraphSpec, InputSpec, LayerSpec, NetworkRef, PlanRequest,
    PlanResponse, PlanTiming, Strategy,
};
