//! The `hypar-engine` binary: HyPar's planning engine as a service.
//!
//! ```text
//! hypar-engine [--scenarios FILE...] [--listen ADDR] [--cache-capacity N]
//!              [--json PATH] [--record PATH]
//!
//!   (default)          serve line-delimited JSON PlanRequests on
//!                      stdin/stdout; `{"stats": true}` (or the legacy
//!                      `{"cmd": "stats"}`) reports cache + metrics
//!   --scenarios FILE   run one or more scenario files and print a summary
//!   --json PATH        with --scenarios: also dump the full reports as JSON
//!   --listen ADDR      serve the same protocol over TCP (e.g. 127.0.0.1:7878)
//!   --cache-capacity N plan-cache size (default 1024; 0 disables)
//!   --record PATH      append every planned request + response (with its
//!                      canonical state_hash) to a JSONL replay log for
//!                      the `hypar-replay` harness; works in all modes
//! ```
//!
//! Example request:
//!
//! ```text
//! echo '{"network": "vgg_a", "levels": 4, "simulate": true}' | hypar-engine
//! ```

use std::io::{self, BufReader};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use hypar_engine::{scenario, service, PlanEngine, Recorder};

fn usage() -> &'static str {
    "usage: hypar-engine [--scenarios FILE...] [--listen ADDR] \
     [--cache-capacity N] [--json PATH] [--record PATH]\n  \
     default mode reads line-delimited JSON PlanRequests from stdin"
}

fn main() -> ExitCode {
    let mut scenario_paths: Vec<PathBuf> = Vec::new();
    let mut listen: Option<String> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut record_path: Option<PathBuf> = None;
    let mut capacity = PlanEngine::DEFAULT_CACHE_CAPACITY;

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenarios" => {
                while args.peek().is_some_and(|path| !path.starts_with("--")) {
                    scenario_paths.extend(args.next().map(PathBuf::from));
                }
                if scenario_paths.is_empty() {
                    eprintln!("--scenarios expects at least one file\n{}", usage());
                    return ExitCode::FAILURE;
                }
            }
            "--listen" => match args.next() {
                Some(addr) => listen = Some(addr),
                None => {
                    eprintln!("--listen expects an address\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--json" => match args.next() {
                Some(path) => json_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--json expects a file path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--record" => match args.next() {
                Some(path) => record_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--record expects a file path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--cache-capacity" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => capacity = n,
                None => {
                    eprintln!(
                        "--cache-capacity expects a non-negative integer\n{}",
                        usage()
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    let engine = PlanEngine::with_cache_capacity(capacity);

    let recorder = match record_path {
        Some(path) => match Recorder::append_to(&path) {
            Ok(recorder) => Some(Arc::new(recorder)),
            Err(err) => {
                eprintln!("failed to open record log {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    if !scenario_paths.is_empty() {
        return run_scenarios(
            &engine,
            &scenario_paths,
            json_path.as_deref(),
            recorder.as_deref(),
        );
    }

    if let Some(addr) = listen {
        return match service::serve_tcp_recorded(Arc::new(engine), addr.as_str(), recorder) {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("failed to serve on {addr}: {err}");
                ExitCode::FAILURE
            }
        };
    }

    let stdin = io::stdin();
    let mut stdout = io::stdout();
    match service::serve_lines_recorded(
        &engine,
        BufReader::new(stdin.lock()),
        &mut stdout,
        recorder.as_deref(),
    ) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("i/o error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run_scenarios(
    engine: &PlanEngine,
    paths: &[PathBuf],
    json_path: Option<&std::path::Path>,
    recorder: Option<&Recorder>,
) -> ExitCode {
    let mut reports = Vec::new();
    let mut failures = 0usize;
    for path in paths {
        let scenario = match scenario::load(path) {
            Ok(s) => s,
            Err(err) => {
                // Structured like the service's error objects, so scripts
                // driving `--scenarios` can parse stderr: the typed
                // ScenarioError keeps kind/path/message separable.
                use serde::Serialize;
                let value = serde::Value::Object(vec![("error".to_owned(), err.to_value())]);
                match serde_json::to_string(&value) {
                    Ok(json) => eprintln!("{json}"),
                    Err(_) => eprintln!("{err}"),
                }
                return ExitCode::FAILURE;
            }
        };
        let report = scenario::run(engine, &scenario);
        if let Some(recorder) = recorder {
            if let Err(err) = scenario::record_report(recorder, &scenario, &report) {
                eprintln!("record write failed: {err}");
                return ExitCode::FAILURE;
            }
        }
        println!("{report}");
        failures += report.num_errors();
        reports.push(report);
    }
    if let Some(path) = json_path {
        let payload = match serde_json::to_string_pretty(&reports) {
            Ok(payload) => payload,
            Err(err) => {
                eprintln!("failed to serialize reports: {err}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(err) = std::fs::write(path, payload) {
            eprintln!("failed to write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote JSON reports to {}", path.display());
    }
    if failures > 0 {
        eprintln!("{failures} request(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
