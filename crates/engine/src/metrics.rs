//! The engine's pre-registered telemetry instruments.
//!
//! One [`EngineMetrics`] lives inside each [`crate::PlanEngine`]; the
//! handles are registered once at construction so the per-request path
//! touches only lock-free atomics.  [`crate::PlanEngine::metrics_snapshot`]
//! (and the service's `{"stats": true}` admin command) export the whole
//! registry as one JSON object.

use std::sync::Arc;

use hypar_telemetry::{Counter, Gauge, Histogram, Registry, RegistrySnapshot};

/// Shared handles into the engine's metric [`Registry`].
///
/// Counter/histogram names are the snapshot's JSON keys — stable wire
/// surface, documented in the README's telemetry section.
#[derive(Debug)]
pub(crate) struct EngineMetrics {
    registry: Registry,
    /// `requests`: [`crate::PlanEngine::plan`] calls (hits, misses, and
    /// failures alike).
    pub requests: Arc<Counter>,
    /// `errors`: requests answered with an [`crate::EngineError`].
    pub errors: Arc<Counter>,
    /// `inflight`: requests currently inside `plan` (gauge).
    pub inflight: Arc<Gauge>,
    /// `plan_latency_ns`: end-to-end latency of every `plan` call.
    pub plan_latency_ns: Arc<Histogram>,
    /// `plan_compute_ns`: latency of the cache-miss compute path only.
    pub plan_compute_ns: Arc<Histogram>,
    /// `refine_sweeps`: coordinate-descent sweeps run by `refined` plans.
    pub refine_sweeps: Arc<Counter>,
    /// `refine_flips`: dp/mp bit flips those sweeps accepted.
    pub refine_flips: Arc<Counter>,
    /// `exhaustive_candidates`: joint assignments enumerated by
    /// `exhaustive` searches.
    pub exhaustive_candidates: Arc<Counter>,
    /// `segments_planned`: chain segments planned for branchy DAGs.
    pub segments_planned: Arc<Counter>,
    /// `sim_steps`: discrete-event training-step simulations run.
    pub sim_steps: Arc<Counter>,
}

impl EngineMetrics {
    pub fn new() -> Self {
        let registry = Registry::new();
        EngineMetrics {
            requests: registry.counter("requests"),
            errors: registry.counter("errors"),
            inflight: registry.gauge("inflight"),
            plan_latency_ns: registry.histogram("plan_latency_ns"),
            plan_compute_ns: registry.histogram("plan_compute_ns"),
            refine_sweeps: registry.counter("refine_sweeps"),
            refine_flips: registry.counter("refine_flips"),
            exhaustive_candidates: registry.counter("exhaustive_candidates"),
            segments_planned: registry.counter("segments_planned"),
            sim_steps: registry.counter("sim_steps"),
            registry,
        }
    }

    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }
}
