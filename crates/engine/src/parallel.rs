//! Order-preserving parallel map over scoped threads.
//!
//! The workspace has no external thread-pool dependency, so batch planning
//! fans out with `std::thread::scope`: the input is split into one
//! contiguous chunk per available core and results are reassembled in
//! input order, which keeps [`crate::PlanEngine::plan_many`]
//! deterministic.

use std::thread;

/// Applies `f` to every item, in parallel, preserving input order.
///
/// Falls back to a serial loop for small inputs or single-core hosts.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let workers = thread::available_parallelism()
        .map_or(1, usize::from)
        .min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("parallel map worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = map(&items, |n| n * 2);
        assert_eq!(doubled, (0..1000).map(|n| n * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(map(&[] as &[u64], |n| *n), Vec::<u64>::new());
        assert_eq!(map(&[7u64], |n| n + 1), vec![8]);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u64> = (0..256).collect();
        let _ = map(&items, |_| {
            seen.lock().unwrap().insert(thread::current().id());
        });
        let threads = seen.lock().unwrap().len();
        if thread::available_parallelism().map_or(1, usize::from) > 1 {
            assert!(threads > 1, "expected fan-out, saw {threads} thread(s)");
        }
    }
}
