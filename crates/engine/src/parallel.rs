//! Order-preserving parallel map over scoped threads.
//!
//! The workspace has no external thread-pool dependency, so batch planning
//! fans out with `std::thread::scope`: the input is split into one
//! contiguous chunk per available core and results are reassembled in
//! input order, which keeps [`crate::PlanEngine::plan_many`]
//! deterministic.
//!
//! A panicking worker **degrades to a typed [`WorkerPanic`] error**
//! instead of re-panicking in the caller: one buggy planner input must
//! cost its batch an error reply, never the service process.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::thread;

/// A worker thread (or the serial fallback closure) panicked; the whole
/// map is abandoned and the caller decides how to degrade.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerPanic;

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a parallel map worker panicked")
    }
}

impl std::error::Error for WorkerPanic {}

/// Applies `f` to every item, in parallel, preserving input order.
///
/// Falls back to a serial loop for small inputs or single-core hosts.
/// A panic in `f` — on any thread, serial path included — is captured
/// and surfaced as `Err(WorkerPanic)`; every worker is still joined, so
/// no thread outlives the call.
pub fn map<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Result<Vec<R>, WorkerPanic> {
    let workers = thread::available_parallelism()
        .map_or(1, usize::from)
        .min(items.len());
    if workers <= 1 {
        return panic::catch_unwind(AssertUnwindSafe(|| items.iter().map(&f).collect()))
            .map_err(|_| WorkerPanic);
    }
    let chunk_len = items.len().div_ceil(workers);
    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        // Join every handle before returning: an early return would let
        // `scope` auto-join a panicked straggler and re-raise its panic.
        let mut out = Vec::with_capacity(items.len());
        let mut panicked = false;
        for handle in handles {
            match handle.join() {
                Ok(chunk) => out.extend(chunk),
                Err(_) => panicked = true,
            }
        }
        if panicked {
            Err(WorkerPanic)
        } else {
            Ok(out)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = map(&items, |n| n * 2).expect("no worker panics");
        assert_eq!(doubled, (0..1000).map(|n| n * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(map(&[] as &[u64], |n| *n), Ok(Vec::<u64>::new()));
        assert_eq!(map(&[7u64], |n| n + 1), Ok(vec![8]));
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::BTreeSet;
        use std::sync::{Mutex, PoisonError};
        let seen = Mutex::new(BTreeSet::new());
        let items: Vec<u64> = (0..256).collect();
        let _ = map(&items, |_| {
            seen.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(format!("{:?}", thread::current().id()));
        });
        let threads = seen.lock().unwrap_or_else(PoisonError::into_inner).len();
        if thread::available_parallelism().map_or(1, usize::from) > 1 {
            assert!(threads > 1, "expected fan-out, saw {threads} thread(s)");
        }
    }

    #[test]
    fn worker_panic_degrades_to_a_typed_error() {
        // Silence the default hook: the panics below are deliberate.
        let hook = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let items: Vec<u64> = (0..64).collect();
        let result = map(&items, |n| {
            assert!(*n != 13, "boom");
            *n
        });
        // Several chunks may panic (13 plus nothing else): every worker
        // is joined and the call still returns the typed error.
        let multi = map(&items, |n| {
            assert!(n % 7 != 0, "boom everywhere");
            *n
        });
        panic::set_hook(hook);
        assert_eq!(result, Err(WorkerPanic));
        assert_eq!(multi, Err(WorkerPanic));
        assert_eq!(WorkerPanic.to_string(), "a parallel map worker panicked");
    }

    #[test]
    fn serial_path_panic_is_also_typed() {
        let hook = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let result = map(&[1u64], |_| -> u64 { panic!("serial boom") });
        panic::set_hook(hook);
        assert_eq!(result, Err(WorkerPanic));
    }
}
