//! Request/response recording: the write half of the golden-replay
//! harness.
//!
//! A [`Recorder`] appends one [`RecordEntry`] per planned request to a
//! JSONL log — the request as submitted, the full response (including
//! its canonical `state_hash`) or the error it drew.  The companion
//! `hypar-replay` binary re-executes such a log against the current
//! build and diffs the hashes, attributing any divergence down to the
//! first differing span, plan bit, or cost.
//!
//! Recording is engaged with `--record PATH` on the `hypar-engine`
//! binary, in every mode: the stdin/TCP service logs each `PlanRequest`
//! line it answers (admin commands and unparseable lines are not
//! workloads and are skipped), and the scenario runner logs every
//! request of every scenario in request order.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, PoisonError};

use serde::{DeError, Deserialize, Serialize};

use crate::engine::EngineError;
use crate::request::{PlanRequest, PlanResponse};

/// One recorded request outcome: exactly one of `response`/`error` is
/// set.
///
/// Serializes as `{"request": .., "response": .., "error": ..}`; the
/// unset half is `null` and may be omitted when parsing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecordEntry {
    /// The request as the engine received it.
    pub request: PlanRequest,
    /// The successful response, with its `state_hash` stamped.
    pub response: Option<PlanResponse>,
    /// The failure message, when the engine rejected the request.  Typed
    /// rejections are part of the pinned behaviour too: a replay that
    /// turns an error into a plan (or vice versa) is drift.
    pub error: Option<String>,
}

impl RecordEntry {
    /// Builds an entry from a request and the engine's answer to it.
    #[must_use]
    pub fn from_outcome(
        request: &PlanRequest,
        outcome: &Result<PlanResponse, EngineError>,
    ) -> Self {
        match outcome {
            Ok(response) => RecordEntry {
                request: request.clone(),
                response: Some(response.clone()),
                error: None,
            },
            Err(err) => RecordEntry {
                request: request.clone(),
                response: None,
                error: Some(err.to_string()),
            },
        }
    }

    /// The recorded state hash, when the entry holds a response.
    #[must_use]
    pub fn state_hash(&self) -> Option<&str> {
        self.response.as_ref().map(|r| r.state_hash.as_str())
    }
}

/// An append-only JSONL sink of [`RecordEntry`]s, safe to share across
/// the service's connection threads (one mutex-guarded buffered writer;
/// the lock recovers from poisoning like the plan cache does — a
/// panicking thread costs at most its own line).
#[derive(Debug)]
pub struct Recorder {
    sink: Mutex<BufWriter<File>>,
}

impl Recorder {
    /// Opens (creating or appending to) a record log at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be opened.
    pub fn append_to(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Recorder {
            sink: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Appends one entry as a JSON line and flushes it (replay logs are
    /// often read while the service still runs; a torn tail line would
    /// poison the whole log).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on write failure.
    pub fn record(&self, entry: &RecordEntry) -> io::Result<()> {
        let line = serde_json::to_string(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut sink = self.sink.lock().unwrap_or_else(PoisonError::into_inner);
        writeln!(sink, "{line}")?;
        sink.flush()
    }

    /// Convenience for the planning paths: records the outcome of one
    /// request.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on write failure.
    pub fn record_outcome(
        &self,
        request: &PlanRequest,
        outcome: &Result<PlanResponse, EngineError>,
    ) -> io::Result<()> {
        self.record(&RecordEntry::from_outcome(request, outcome))
    }
}

/// Parses a JSONL record log, tagging malformed lines with their
/// 1-based line number.  Blank lines are skipped.
///
/// # Errors
///
/// Returns a [`DeError`] naming the first unparseable line.
pub fn parse_log(text: &str) -> Result<Vec<RecordEntry>, DeError> {
    let mut entries = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry: RecordEntry = serde_json::from_str(line)
            .map_err(|e| DeError::custom(format!("line {}: {e}", index + 1)))?;
        entries.push(entry);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PlanEngine;

    #[test]
    fn entries_round_trip_through_jsonl() {
        let engine = PlanEngine::new();
        let ok_request = PlanRequest::zoo("sfc").levels(2);
        let bad_request = PlanRequest::zoo("no-such-net");
        let lines = [
            RecordEntry::from_outcome(&ok_request, &engine.plan(&ok_request)),
            RecordEntry::from_outcome(&bad_request, &engine.plan(&bad_request)),
        ];
        let text: String = lines
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let parsed = parse_log(&text).unwrap();
        assert_eq!(parsed, lines.to_vec());
        assert!(parsed[0].state_hash().is_some());
        assert_eq!(parsed[1].state_hash(), None);
        assert!(parsed[1].error.as_deref().unwrap().contains("unknown"));
    }

    #[test]
    fn parse_log_names_the_bad_line() {
        let err = parse_log("\n{nope\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn recorder_appends_flushed_lines() {
        let dir = std::env::temp_dir().join(format!(
            "hypar-record-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        let engine = PlanEngine::new();
        let request = PlanRequest::zoo("sfc").levels(2);
        {
            let recorder = Recorder::append_to(&path).unwrap();
            recorder
                .record_outcome(&request, &engine.plan(&request))
                .unwrap();
            recorder
                .record_outcome(&request, &engine.plan(&request))
                .unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let entries = parse_log(&text).unwrap();
        assert_eq!(entries.len(), 2);
        // The cache hit replays the identical content hash.
        assert_eq!(entries[0].state_hash(), entries[1].state_hash());
        std::fs::remove_dir_all(&dir).ok();
    }
}
