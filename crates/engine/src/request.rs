//! The engine's wire types: [`PlanRequest`] in, [`PlanResponse`] out.

use std::fmt;
use std::str::FromStr;

use hypar_core::HierarchicalPlan;
use hypar_sim::{StepReport, Topology};
use hypar_telemetry::{statehash, Span, StateHash, StateHasher};
use serde::{DeError, Deserialize, Serialize, Value};

/// Which planner produces the per-layer parallelism assignment.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// HyPar's hierarchical dynamic program (Algorithm 2) — the default.
    Hypar,
    /// All-layers data parallelism at every level.
    Dp,
    /// All-layers model parallelism at every level.
    Mp,
    /// Krizhevsky's "one weird trick": dp for conv, mp for fc.
    Owt,
    /// The HyPar plan improved by polynomial coordinate-descent
    /// refinement: on a branchy DAG the junction-aware pass re-decides
    /// every bit against the whole-graph cost (closing the stitcher's
    /// greedy gap); on a chain it closes Algorithm 2's level-by-level
    /// greedy gap the same way.  Equivalent to `strategy: "hypar"` with
    /// `refine: true`.
    Refined,
    /// Brute-force joint optimum over all levels (guarded to ≤ 24 slots).
    Exhaustive,
    /// The request supplies the assignment itself via
    /// [`PlanRequest::assignments`] (one dp/mp bit string per level).
    Explicit,
}

impl Strategy {
    /// All strategies, for iteration and help text.
    pub const ALL: [Strategy; 7] = [
        Strategy::Hypar,
        Strategy::Dp,
        Strategy::Mp,
        Strategy::Owt,
        Strategy::Refined,
        Strategy::Exhaustive,
        Strategy::Explicit,
    ];

    /// The wire name (`hypar`, `dp`, `mp`, `owt`, `refined`,
    /// `exhaustive`, `explicit`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Hypar => "hypar",
            Strategy::Dp => "dp",
            Strategy::Mp => "mp",
            Strategy::Owt => "owt",
            Strategy::Refined => "refined",
            Strategy::Exhaustive => "exhaustive",
            Strategy::Explicit => "explicit",
        }
    }

    /// A stable small integer identifying the strategy in fingerprints.
    #[must_use]
    pub(crate) fn tag(self) -> u64 {
        match self {
            Strategy::Hypar => 0,
            Strategy::Dp => 1,
            Strategy::Mp => 2,
            Strategy::Owt => 3,
            Strategy::Exhaustive => 4,
            Strategy::Explicit => 5,
            Strategy::Refined => 6,
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Strategy::ALL
            .into_iter()
            .find(|st| st.name() == s)
            .ok_or_else(|| {
                format!(
                    "unknown strategy `{s}` \
                     (expected hypar|dp|mp|owt|refined|exhaustive|explicit)"
                )
            })
    }
}

impl Serialize for Strategy {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_owned())
    }
}

impl Deserialize for Strategy {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("strategy string", v))?;
        s.parse().map_err(DeError::custom)
    }
}

/// Input feature-map extent of a custom network.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputSpec {
    /// Channels `C` (1 for flat inputs).
    pub channels: u64,
    /// Spatial height `H` (1 for flat inputs).
    pub height: u64,
    /// Spatial width `W`; for flat inputs, the feature count.
    pub width: u64,
}

/// One weighted layer of a custom network.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Layer name; defaults to `conv<i>` / `fc<i>`.
    pub name: Option<String>,
    /// `"conv"` or `"fc"`.
    pub kind: String,
    /// Output channels (conv) or output neurons (fc).
    pub out: u64,
    /// Square kernel extent; required for conv layers.
    pub kernel: Option<u64>,
    /// Convolution stride (default 1).
    pub stride: Option<u64>,
    /// Zero padding per border (default: "same", `(kernel - 1) / 2`).
    pub padding: Option<u64>,
    /// Attach a non-overlapping max pool with this window (e.g. 2).
    pub pool: Option<u64>,
}

/// A custom (non-zoo) network described inline in the request.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CustomNetwork {
    /// Network name used in reports (default `custom`).
    pub name: Option<String>,
    /// Input feature-map extent.
    pub input: InputSpec,
    /// Weighted layers, first to last.
    pub layers: Vec<LayerSpec>,
}

/// One node of an inline DAG network: a weighted layer (`conv`/`fc`) or a
/// join (`add`/`concat`), wired to its producers by name.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphNodeSpec {
    /// Unique node name; other nodes reference it through `inputs`.
    pub name: String,
    /// `"conv"`, `"fc"`, `"add"`, or `"concat"`.
    pub kind: String,
    /// Output channels (conv) or output neurons (fc); joins take none.
    pub out: Option<u64>,
    /// Square kernel extent; required for conv nodes.
    pub kernel: Option<u64>,
    /// Convolution stride (default 1).
    pub stride: Option<u64>,
    /// Zero padding per border (default: "same", `(kernel - 1) / 2`).
    pub padding: Option<u64>,
    /// Attach a non-overlapping max pool with this window (layers only).
    pub pool: Option<u64>,
    /// Producer node names (`"input"` for the graph input).  Defaults to
    /// the previous node in the list (the graph input for the first), so
    /// chain prefixes stay terse.
    pub inputs: Option<Vec<String>>,
}

/// A branchy (DAG) network described inline in the request; distinguished
/// from [`CustomNetwork`] by carrying `nodes` instead of `layers`.
///
/// ```json
/// {"name": "tiny-res",
///  "input": {"channels": 8, "height": 16, "width": 16},
///  "nodes": [
///    {"name": "stem", "kind": "conv", "out": 8, "kernel": 3},
///    {"name": "body", "kind": "conv", "out": 8, "kernel": 3},
///    {"name": "join", "kind": "add", "inputs": ["stem", "body"]},
///    {"name": "fc", "kind": "fc", "out": 10, "inputs": ["join"]}]}
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphSpec {
    /// Network name used in reports (default `graph`).
    pub name: Option<String>,
    /// Input feature-map extent.
    pub input: InputSpec,
    /// The DAG nodes, in any topological-consistent listing order (the
    /// engine canonicalizes, so listing order never changes the plan or
    /// the cache key).
    pub nodes: Vec<GraphNodeSpec>,
}

/// How the request names its network: a zoo model or an inline spec.
#[derive(Clone, Debug, PartialEq)]
pub enum NetworkRef {
    /// A zoo network by (forgiving) name: the paper's ten chain networks
    /// (`"VGG-A"`, `"vgg_a"`, and `"vgga"` all resolve identically) or a
    /// branchy graph-zoo network (`"resnet18"`, `"inception-mini"`).
    Zoo(String),
    /// An inline custom chain network (a `layers` object).
    Custom(CustomNetwork),
    /// An inline DAG network (a `nodes` object).
    Graph(GraphSpec),
}

impl Serialize for NetworkRef {
    fn to_value(&self) -> Value {
        match self {
            NetworkRef::Zoo(name) => Value::String(name.clone()),
            NetworkRef::Custom(custom) => custom.to_value(),
            NetworkRef::Graph(graph) => graph.to_value(),
        }
    }
}

impl Deserialize for NetworkRef {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(name) => Ok(NetworkRef::Zoo(name.clone())),
            Value::Object(_) if v.get("nodes").is_some() => {
                GraphSpec::from_value(v).map(NetworkRef::Graph)
            }
            Value::Object(_) => CustomNetwork::from_value(v).map(NetworkRef::Custom),
            _ => Err(DeError::expected(
                "zoo name string, custom network object (`layers`), or DAG object (`nodes`)",
                v,
            )),
        }
    }
}

/// One planning workload.
///
/// On the wire this is a JSON object; all fields except `network` may be
/// omitted, defaulting to the paper's evaluation setup (batch 256, four
/// levels, HyPar strategy, H-tree, no simulation):
///
/// ```json
/// {"network": "vgg_a", "levels": 4, "strategy": "hypar", "simulate": true}
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PlanRequest {
    /// The network to plan for.
    pub network: NetworkRef,
    /// Mini-batch size `B` (default 256, the paper's §6.1 setting).
    pub batch: u64,
    /// Binary hierarchy depth `H` (`2^H` accelerators; default 4).
    pub levels: usize,
    /// Which planner to run (default [`Strategy::Hypar`]).
    pub strategy: Strategy,
    /// For [`Strategy::Explicit`]: one bit string per level, layer 0
    /// first, `0` = dp, `1` = mp (the paper's Figure 9/10 convention).
    pub assignments: Option<Vec<String>>,
    /// Inter-accelerator topology (default H-tree).
    pub topology: Topology,
    /// Whether to run the full discrete-event training-step simulation.
    pub simulate: bool,
    /// Run the coordinate-descent refinement pass on top of the `hypar`
    /// plan — a modifier spelling of [`Strategy::Refined`]: the engine
    /// resolves `strategy: "hypar", refine: true` to the identical
    /// workload (and cache entry) as `strategy: "refined"`.  Rejected
    /// with any other strategy.
    pub refine: bool,
    /// Attach a [`PlanTiming`] section (wall-clock span tree of the
    /// request's processing) to the response.  Tracing never changes the
    /// plan and is **excluded from the fingerprint**, so traced and
    /// untraced spellings of a workload share one cache entry.
    pub trace: bool,
}

impl PlanRequest {
    /// A request for a zoo network with paper defaults.
    #[must_use]
    pub fn zoo(name: impl Into<String>) -> Self {
        PlanRequest {
            network: NetworkRef::Zoo(name.into()),
            batch: 256,
            levels: 4,
            strategy: Strategy::Hypar,
            assignments: None,
            topology: Topology::HTree,
            simulate: false,
            refine: false,
            trace: false,
        }
    }

    /// A request for an inline custom network with paper defaults.
    #[must_use]
    pub fn custom(network: CustomNetwork) -> Self {
        PlanRequest {
            network: NetworkRef::Custom(network),
            ..PlanRequest::zoo("")
        }
    }

    /// A request for an inline DAG network with paper defaults.
    #[must_use]
    pub fn graph(network: GraphSpec) -> Self {
        PlanRequest {
            network: NetworkRef::Graph(network),
            ..PlanRequest::zoo("")
        }
    }

    /// Sets the mini-batch size.
    #[must_use]
    pub fn batch(mut self, batch: u64) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the hierarchy depth.
    #[must_use]
    pub fn levels(mut self, levels: usize) -> Self {
        self.levels = levels;
        self
    }

    /// Sets the planning strategy.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Supplies an explicit per-level assignment and selects
    /// [`Strategy::Explicit`].
    #[must_use]
    pub fn assignments(mut self, bits: Vec<String>) -> Self {
        self.assignments = Some(bits);
        self.strategy = Strategy::Explicit;
        self
    }

    /// Sets the inter-accelerator topology.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Enables (or disables) the discrete-event simulation.
    #[must_use]
    pub fn simulate(mut self, simulate: bool) -> Self {
        self.simulate = simulate;
        self
    }

    /// Enables (or disables) the refinement modifier (see
    /// [`PlanRequest::refine`]).
    #[must_use]
    pub fn refine(mut self, refine: bool) -> Self {
        self.refine = refine;
        self
    }

    /// Enables (or disables) the response timing trace (see
    /// [`PlanRequest::trace`]).
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

impl Serialize for PlanRequest {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("network".to_owned(), self.network.to_value()),
            ("batch".to_owned(), Value::U64(self.batch)),
            ("levels".to_owned(), Value::U64(self.levels as u64)),
            ("strategy".to_owned(), self.strategy.to_value()),
            (
                "topology".to_owned(),
                Value::String(topology_name(self.topology).to_owned()),
            ),
            ("simulate".to_owned(), Value::Bool(self.simulate)),
            ("refine".to_owned(), Value::Bool(self.refine)),
            ("trace".to_owned(), Value::Bool(self.trace)),
        ];
        if let Some(assignments) = &self.assignments {
            fields.push(("assignments".to_owned(), assignments.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for PlanRequest {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.as_object().is_none() {
            return Err(DeError::expected("request object", v));
        }
        let network = v
            .get("network")
            .ok_or_else(|| DeError::missing_field("network", "PlanRequest"))
            .and_then(NetworkRef::from_value)?;
        let defaults = PlanRequest::zoo("");
        Ok(PlanRequest {
            network,
            batch: field_or(v, "batch", defaults.batch)?,
            levels: field_or(v, "levels", defaults.levels)?,
            strategy: field_or(v, "strategy", defaults.strategy)?,
            assignments: field_or(v, "assignments", None)?,
            topology: match v.get("topology") {
                Some(t) => parse_topology(t)?,
                None => Topology::HTree,
            },
            simulate: field_or(v, "simulate", false)?,
            refine: field_or(v, "refine", false)?,
            trace: field_or(v, "trace", false)?,
        })
    }
}

fn field_or<T: Deserialize>(v: &Value, field: &str, default: T) -> Result<T, DeError> {
    match v.get(field) {
        Some(inner) if !inner.is_null() => T::from_value(inner).map_err(|e| e.in_field(field)),
        _ => Ok(default),
    }
}

fn parse_topology(v: &Value) -> Result<Topology, DeError> {
    let s = v
        .as_str()
        .ok_or_else(|| DeError::expected("topology string", v))?;
    match s.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
        "htree" | "tree" => Ok(Topology::HTree),
        "torus" => Ok(Topology::Torus),
        other => Err(DeError::custom(format!(
            "unknown topology `{other}` (expected htree|torus)"
        ))),
    }
}

/// The lowercase wire name of a topology.
#[must_use]
pub(crate) fn topology_name(topology: Topology) -> &'static str {
    match topology {
        Topology::HTree => "htree",
        Topology::Torus => "torus",
    }
}

/// Wall-clock timing of one request's processing, attached to a
/// [`PlanResponse`] when the request set `trace: true`.
///
/// The span tree mirrors the engine's pipeline: a `plan` root with
/// `resolve` (network resolution, shape inference, and — for branchy
/// DAGs — `segment_decomposition`) and `cache_lookup` children, plus,
/// on a cache miss, a `compute` subtree covering the strategy search
/// (`plan_segments`/`stitch`/`refine`/`exhaustive`/…) and `simulate`.
/// A cache hit's trace stops at the lookup — the compute subtree
/// belongs to whichever request populated the entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanTiming {
    /// End-to-end wall-clock of [`crate::PlanEngine::plan`], ns.
    pub total_ns: u64,
    /// The span tree (root span `plan`; its duration equals `total_ns`).
    pub trace: Span,
}

/// The engine's answer to one [`PlanRequest`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanResponse {
    /// Resolved network name (zoo canonical name or the custom name).
    pub network: String,
    /// Mini-batch size the plan was computed for.
    pub batch: u64,
    /// Hierarchy depth.
    pub levels: usize,
    /// Number of accelerators (`2^levels`).
    pub accelerators: u64,
    /// The strategy that produced the plan.
    pub strategy: Strategy,
    /// Stable fingerprint of the resolved workload (the cache key), hex.
    pub fingerprint: String,
    /// Canonical digest of the response's *content* — everything above
    /// and below except `cache_hit`, `timing`, and this field itself —
    /// as 16 hex digits.  Plan bits, costs, and simulation fields fold
    /// in bit-exactly ([`hypar_telemetry::StateHash`]), so two responses
    /// share a `state_hash` iff a caller could not tell them apart: the
    /// determinism guarantee `scenarios/golden.json` pins and the
    /// `hypar-replay` harness diffs across commits.  Like `timing`, the
    /// hash is an output of planning, never an input to the cache
    /// fingerprint.
    pub state_hash: String,
    /// Whether this response was served from the plan cache.
    pub cache_hit: bool,
    /// Total communication of one training step, in tensor elements.
    pub total_comm_elems: f64,
    /// Total communication of one training step, in bytes (fp32).
    pub total_comm_bytes: f64,
    /// The full per-layer-per-level plan.
    pub plan: HierarchicalPlan,
    /// Discrete-event simulation of one training step, when requested.
    pub simulation: Option<StepReport>,
    /// Wall-clock timing breakdown, when the request set `trace: true`.
    /// Never stored in the plan cache (a cached entry is timing-free;
    /// the trace always describes *this* request's processing).
    pub timing: Option<PlanTiming>,
}

impl PlanResponse {
    /// Recomputes the canonical content digest this response *should*
    /// carry (see [`PlanResponse::state_hash`]).  The engine stamps the
    /// field at compute time; replay tooling re-derives it to validate
    /// logs and manifests against tampering or drift.
    #[must_use]
    pub fn compute_state_hash(&self) -> String {
        let mut h = StateHasher::new();
        h.write_str("response/v1");
        h.write_str(&self.network);
        h.write_u64(self.batch);
        h.write_u64(self.levels as u64);
        h.write_u64(self.accelerators);
        h.write_str(self.strategy.name());
        h.write_str(&self.fingerprint);
        h.write_f64(self.total_comm_elems);
        h.write_f64(self.total_comm_bytes);
        self.plan.state_hash_into(&mut h);
        match &self.simulation {
            None => h.write_bool(false),
            Some(report) => {
                h.write_bool(true);
                report.state_hash_into(&mut h);
            }
        }
        statehash::hash_hex(h.finish())
    }
}
