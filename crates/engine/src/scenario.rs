//! Reproducible scenario files: a named batch of [`PlanRequest`]s run
//! through the engine in one parallel sweep.
//!
//! A scenario file is a JSON object:
//!
//! ```json
//! {
//!   "name": "lenet-levels",
//!   "description": "Lenet-c from 1 to 64 accelerators",
//!   "requests": [
//!     {"network": "lenet_c", "levels": 0},
//!     {"network": "lenet_c", "levels": 4, "simulate": true}
//!   ]
//! }
//! ```

use std::fmt;
use std::path::Path;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::engine::PlanEngine;
use crate::request::{PlanRequest, PlanResponse};

/// A parsed scenario file.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Scenario {
    /// Scenario name, used in reports.
    pub name: String,
    /// Optional free-form description.
    pub description: Option<String>,
    /// The workloads, run in order (results keep this order).
    pub requests: Vec<PlanRequest>,
}

impl Deserialize for Scenario {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.as_object().is_none() {
            return Err(DeError::expected("scenario object", v));
        }
        let name = match v.get("name") {
            Some(n) => String::from_value(n).map_err(|e| e.in_field("name"))?,
            None => "scenario".to_owned(),
        };
        let description = match v.get("description") {
            Some(d) if !d.is_null() => {
                Some(String::from_value(d).map_err(|e| e.in_field("description"))?)
            }
            _ => None,
        };
        let requests = v
            .get("requests")
            .ok_or_else(|| DeError::missing_field("requests", "Scenario"))
            .and_then(|r| Vec::<PlanRequest>::from_value(r).map_err(|e| e.in_field("requests")))?;
        Ok(Scenario {
            name,
            description,
            requests,
        })
    }
}

/// The outcome of one request inside a scenario run.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ScenarioEntry {
    /// Index into [`Scenario::requests`].
    pub index: usize,
    /// The planned response, when the request succeeded.
    pub response: Option<PlanResponse>,
    /// The failure message, when it did not.
    pub error: Option<String>,
}

/// The result of running a whole scenario.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// One entry per request, in request order.
    pub entries: Vec<ScenarioEntry>,
    /// Cache activity attributable to *this* run: hit/miss counts are the
    /// delta over the run, occupancy is measured after it.
    pub cache: crate::CacheStats,
}

impl ScenarioReport {
    /// Number of failed requests.
    #[must_use]
    pub fn num_errors(&self) -> usize {
        self.entries.iter().filter(|e| e.error.is_some()).count()
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenario `{}`: {} request(s)",
            self.name,
            self.entries.len()
        )?;
        for entry in &self.entries {
            match (&entry.response, &entry.error) {
                (Some(r), _) => {
                    write!(
                        f,
                        "  [{:>3}] {:<10} {:<10} H{} B{}  comm {:>14.0} elems  {}",
                        entry.index,
                        r.network,
                        r.strategy.name(),
                        r.levels,
                        r.batch,
                        // An H0 plan reports an exact zero that may carry a
                        // negative sign; normalize it for display.
                        if r.total_comm_elems == 0.0 {
                            0.0
                        } else {
                            r.total_comm_elems
                        },
                        if r.cache_hit { "cached" } else { "computed" },
                    )?;
                    if let Some(sim) = &r.simulation {
                        write!(f, "  step {}", sim.step_time)?;
                    }
                    writeln!(f)?;
                }
                (None, Some(err)) => writeln!(f, "  [{:>3}] error: {err}", entry.index)?,
                (None, None) => writeln!(f, "  [{:>3}] (empty)", entry.index)?,
            }
        }
        write!(
            f,
            "  cache: {} hit(s), {} miss(es), {} entr(ies)",
            self.cache.hits, self.cache.misses, self.cache.entries
        )
    }
}

/// Parses a scenario from JSON text.
///
/// # Errors
///
/// Returns the underlying JSON/shape error message.
pub fn parse(text: &str) -> Result<Scenario, String> {
    serde_json::from_str(text).map_err(|e| e.to_string())
}

/// Loads a scenario file from disk.
///
/// # Errors
///
/// Returns an error for unreadable files or malformed scenarios.
pub fn load(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Runs every request of a scenario through the engine, in parallel.
#[must_use]
pub fn run(engine: &PlanEngine, scenario: &Scenario) -> ScenarioReport {
    let before = engine.cache_stats();
    let results = engine.plan_many(&scenario.requests);
    let entries = results
        .into_iter()
        .enumerate()
        .map(|(index, result)| match result {
            Ok(response) => ScenarioEntry {
                index,
                response: Some(response),
                error: None,
            },
            Err(err) => ScenarioEntry {
                index,
                response: None,
                error: Some(err.to_string()),
            },
        })
        .collect();
    let after = engine.cache_stats();
    ScenarioReport {
        name: scenario.name.clone(),
        entries,
        cache: crate::CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            ..after
        },
    }
}
