//! Reproducible scenario files: a named batch of [`PlanRequest`]s run
//! through the engine in one parallel sweep.
//!
//! A scenario file is a JSON object:
//!
//! ```json
//! {
//!   "name": "lenet-levels",
//!   "description": "Lenet-c from 1 to 64 accelerators",
//!   "requests": [
//!     {"network": "lenet_c", "levels": 0},
//!     {"network": "lenet_c", "levels": 4, "simulate": true}
//!   ]
//! }
//! ```

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use hypar_telemetry::percentile;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::engine::PlanEngine;
use crate::parallel;
use crate::record::{RecordEntry, Recorder};
use crate::request::{PlanRequest, PlanResponse};

/// Why a scenario file could not be turned into a [`Scenario`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// The file could not be read at all.
    Io {
        /// The path that failed to read.
        path: PathBuf,
        /// The underlying I/O error message.
        message: String,
    },
    /// The text was not a well-formed scenario (bad JSON or bad shape).
    Parse {
        /// The originating file, when the text came from one.
        path: Option<PathBuf>,
        /// The underlying JSON/shape error message.
        message: String,
    },
}

impl ScenarioError {
    /// Stable machine-readable discriminant (`"io"` / `"parse"`), used as
    /// the `kind` field of the service's error JSON.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ScenarioError::Io { .. } => "io",
            ScenarioError::Parse { .. } => "parse",
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            ScenarioError::Parse {
                path: Some(path),
                message,
            } => write!(f, "{}: {message}", path.display()),
            ScenarioError::Parse {
                path: None,
                message,
            } => f.write_str(message),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl Serialize for ScenarioError {
    fn to_value(&self) -> Value {
        let (path, message) = match self {
            ScenarioError::Io { path, message } => (Some(path), message),
            ScenarioError::Parse { path, message } => (path.as_ref(), message),
        };
        let mut fields = vec![("kind".to_owned(), Value::String(self.kind().to_owned()))];
        if let Some(path) = path {
            fields.push(("path".to_owned(), Value::String(path.display().to_string())));
        }
        fields.push(("message".to_owned(), Value::String(message.clone())));
        Value::Object(fields)
    }
}

/// A parsed scenario file.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Scenario {
    /// Scenario name, used in reports.
    pub name: String,
    /// Optional free-form description.
    pub description: Option<String>,
    /// The workloads, run in order (results keep this order).
    pub requests: Vec<PlanRequest>,
}

impl Deserialize for Scenario {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.as_object().is_none() {
            return Err(DeError::expected("scenario object", v));
        }
        let name = match v.get("name") {
            Some(n) => String::from_value(n).map_err(|e| e.in_field("name"))?,
            None => "scenario".to_owned(),
        };
        let description = match v.get("description") {
            Some(d) if !d.is_null() => {
                Some(String::from_value(d).map_err(|e| e.in_field("description"))?)
            }
            _ => None,
        };
        let requests = v
            .get("requests")
            .ok_or_else(|| DeError::missing_field("requests", "Scenario"))
            .and_then(|r| Vec::<PlanRequest>::from_value(r).map_err(|e| e.in_field("requests")))?;
        Ok(Scenario {
            name,
            description,
            requests,
        })
    }
}

/// The outcome of one request inside a scenario run.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ScenarioEntry {
    /// Index into [`Scenario::requests`].
    pub index: usize,
    /// Wall-clock time this request spent inside the engine, in
    /// milliseconds (measured on the worker thread, so cache hits report
    /// microsecond-scale values).
    pub latency_ms: f64,
    /// The planned response, when the request succeeded.
    pub response: Option<PlanResponse>,
    /// The failure message, when it did not.
    pub error: Option<String>,
}

/// Nearest-rank percentile summary of the per-entry latencies of one run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Samples summarized (one per request).
    pub count: usize,
    /// Arithmetic mean, in milliseconds.
    pub mean_ms: f64,
    /// Median latency, in milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile latency, in milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile latency, in milliseconds.
    pub p99_ms: f64,
    /// Slowest request, in milliseconds.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarizes a set of latency samples (order irrelevant).
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        LatencySummary {
            count: sorted.len(),
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_ms: percentile(&sorted, 0.50),
            p90_ms: percentile(&sorted, 0.90),
            p99_ms: percentile(&sorted, 0.99),
            max_ms: sorted[sorted.len() - 1],
        }
    }
}

/// The result of running a whole scenario.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// One entry per request, in request order.
    pub entries: Vec<ScenarioEntry>,
    /// Cache activity attributable to *this* run: hit/miss/eviction
    /// counts are the delta over the run, occupancy is measured after it.
    pub cache: crate::CacheStats,
    /// Percentile summary of the per-entry latencies.
    pub latency: LatencySummary,
}

impl ScenarioReport {
    /// Number of failed requests.
    #[must_use]
    pub fn num_errors(&self) -> usize {
        self.entries.iter().filter(|e| e.error.is_some()).count()
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenario `{}`: {} request(s)",
            self.name,
            self.entries.len()
        )?;
        for entry in &self.entries {
            match (&entry.response, &entry.error) {
                (Some(r), _) => {
                    write!(
                        f,
                        "  [{:>3}] {:<10} {:<10} H{} B{}  comm {:>14.0} elems  {}",
                        entry.index,
                        r.network,
                        r.strategy.name(),
                        r.levels,
                        r.batch,
                        // An H0 plan reports an exact zero that may carry a
                        // negative sign; normalize it for display.
                        // hypar-allow: det-float-eq — exact-zero sentinel for display normalization; -0.0 compares equal on purpose
                        if r.total_comm_elems == 0.0 {
                            0.0
                        } else {
                            r.total_comm_elems
                        },
                        if r.cache_hit { "cached" } else { "computed" },
                    )?;
                    if let Some(sim) = &r.simulation {
                        write!(f, "  step {}", sim.step_time)?;
                    }
                    writeln!(f)?;
                }
                (None, Some(err)) => writeln!(f, "  [{:>3}] error: {err}", entry.index)?,
                (None, None) => writeln!(f, "  [{:>3}] (empty)", entry.index)?,
            }
        }
        writeln!(
            f,
            "  cache: {} hit(s), {} miss(es), {} entr(ies), {} eviction(s)",
            self.cache.hits, self.cache.misses, self.cache.entries, self.cache.evictions
        )?;
        write!(
            f,
            "  latency: p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, max {:.3} ms over {} request(s)",
            self.latency.p50_ms,
            self.latency.p90_ms,
            self.latency.p99_ms,
            self.latency.max_ms,
            self.latency.count
        )
    }
}

/// Parses a scenario from JSON text.
///
/// # Errors
///
/// Returns [`ScenarioError::Parse`] carrying the JSON/shape error.
pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
    serde_json::from_str(text).map_err(|e| ScenarioError::Parse {
        path: None,
        message: e.to_string(),
    })
}

/// Loads a scenario file from disk.
///
/// # Errors
///
/// Returns [`ScenarioError::Io`] for unreadable files and
/// [`ScenarioError::Parse`] (tagged with the path) for malformed ones.
pub fn load(path: &Path) -> Result<Scenario, ScenarioError> {
    let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
        path: path.to_owned(),
        message: e.to_string(),
    })?;
    parse(&text).map_err(|e| match e {
        ScenarioError::Parse { message, .. } => ScenarioError::Parse {
            path: Some(path.to_owned()),
            message,
        },
        other => other,
    })
}

/// Appends one [`RecordEntry`] per request of a finished run to
/// `recorder`, in request order (the report preserves it), so a scenario
/// sweep under `--record` yields the same replayable JSONL log shape as
/// the line service.
///
/// # Errors
///
/// Returns the first I/O error from the record sink.
pub fn record_report(
    recorder: &Recorder,
    scenario: &Scenario,
    report: &ScenarioReport,
) -> io::Result<()> {
    for (request, entry) in scenario.requests.iter().zip(&report.entries) {
        recorder.record(&RecordEntry {
            request: request.clone(),
            response: entry.response.clone(),
            error: entry.error.clone(),
        })?;
    }
    Ok(())
}

/// Runs every request of a scenario through the engine, in parallel,
/// timing each request on its worker thread.
#[must_use]
pub fn run(engine: &PlanEngine, scenario: &Scenario) -> ScenarioReport {
    let before = engine.cache_stats();
    let results = parallel::map(&scenario.requests, |request| {
        // hypar-allow: det-wall-clock — per-request latency metric; feeds the report's percentiles, never a fingerprint or state hash
        let started = Instant::now();
        let result = engine.plan(request);
        (result, started.elapsed().as_secs_f64() * 1e3)
    })
    .unwrap_or_else(|_| {
        // A panicked worker degrades the whole run to per-request
        // errors; the scenario report still renders.
        scenario
            .requests
            .iter()
            .map(|_| (Err(crate::EngineError::WorkerPanicked), 0.0))
            .collect()
    });
    let entries: Vec<ScenarioEntry> = results
        .into_iter()
        .enumerate()
        .map(|(index, (result, latency_ms))| match result {
            Ok(response) => ScenarioEntry {
                index,
                latency_ms,
                response: Some(response),
                error: None,
            },
            Err(err) => ScenarioEntry {
                index,
                latency_ms,
                response: None,
                error: Some(err.to_string()),
            },
        })
        .collect();
    let after = engine.cache_stats();
    let samples: Vec<f64> = entries.iter().map(|e| e.latency_ms).collect();
    ScenarioReport {
        name: scenario.name.clone(),
        entries,
        cache: crate::CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            evictions: after.evictions - before.evictions,
            poison_recoveries: after.poison_recoveries - before.poison_recoveries,
            ..after
        },
        latency: LatencySummary::from_samples(&samples),
    }
}
