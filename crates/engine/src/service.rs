//! Line-delimited JSON service front-ends.
//!
//! One request per line in, one response per line out — over any
//! `BufRead`/`Write` pair ([`serve_lines`], used for stdin/stdout) or a
//! TCP listener ([`serve_tcp`], one thread per connection, all sharing
//! the engine's plan cache).
//!
//! Besides [`crate::PlanRequest`] objects, a line may carry an admin
//! command:
//!
//! * `{"stats": true}` — the full telemetry snapshot
//!   `{"cache": <CacheStats>, "metrics": <RegistrySnapshot>}`;
//! * `{"cmd": "stats"}` — the legacy cache-only form, answered with the
//!   engine's [`crate::CacheStats`] alone.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::thread;

use serde::Value;

use crate::engine::PlanEngine;
use crate::request::PlanRequest;

/// Handles one request line, returning the JSON reply (never fails — every
/// error becomes an `{"error": ...}` object).
#[must_use]
pub fn handle_line(engine: &PlanEngine, line: &str) -> String {
    let parsed: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(err) => return error_json(&format!("invalid JSON: {err}")),
    };
    if parsed.get("stats").and_then(Value::as_bool) == Some(true) {
        return stats_json(engine);
    }
    if let Some(cmd) = parsed.get("cmd").and_then(Value::as_str) {
        return match cmd {
            "stats" => reply_json(&engine.cache_stats()),
            other => error_json(&format!("unknown command `{other}`")),
        };
    }
    match serde_json::from_value::<PlanRequest>(&parsed) {
        Ok(request) => match engine.plan(&request) {
            Ok(response) => reply_json(&response),
            Err(err) => error_json(&err.to_string()),
        },
        Err(err) => error_json(&format!("invalid request: {err}")),
    }
}

/// Builds the `{"stats": true}` reply: the cache counters plus the full
/// engine metrics registry, under stable `cache`/`metrics` keys.
fn stats_json(engine: &PlanEngine) -> String {
    use serde::Serialize;
    let value = Value::Object(vec![
        ("cache".to_owned(), engine.cache_stats().to_value()),
        ("metrics".to_owned(), engine.metrics_snapshot().to_value()),
    ]);
    serde_json::to_string(&value)
        .unwrap_or_else(|err| error_json(&format!("stats serialization failed: {err}")))
}

/// Serializes a reply, degrading to an error object rather than panicking
/// the serving thread if serialization ever fails.
fn reply_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value)
        .unwrap_or_else(|err| error_json(&format!("response serialization failed: {err}")))
}

fn error_json(message: &str) -> String {
    let value = Value::Object(vec![(
        "error".to_owned(),
        Value::String(message.to_owned()),
    )]);
    // A flat string-valued object cannot fail to serialize; fall back to a
    // hand-built constant rather than unwinding a service thread.
    serde_json::to_string(&value)
        .unwrap_or_else(|_| "{\"error\": \"error serialization failed\"}".to_owned())
}

/// Serves line-delimited JSON requests from `input` to `output` until EOF.
/// Blank lines are skipped; the output is flushed after every reply.
///
/// # Errors
///
/// Returns the first I/O error encountered.
pub fn serve_lines<R: BufRead, W: Write>(
    engine: &PlanEngine,
    input: R,
    output: &mut W,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(output, "{}", handle_line(engine, &line))?;
        output.flush()?;
    }
    Ok(())
}

/// Binds a TCP listener and serves each connection on its own thread,
/// sharing one engine (and therefore one plan cache) across clients.
/// Blocks forever.
///
/// # Errors
///
/// Returns an error if the address cannot be bound.
pub fn serve_tcp(engine: Arc<PlanEngine>, addr: impl ToSocketAddrs) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!(
        "hypar-engine listening on {}",
        listener
            .local_addr()
            .map_or_else(|_| "<unknown>".to_owned(), |a| a.to_string())
    );
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(err) => {
                eprintln!("accept failed: {err}");
                continue;
            }
        };
        let engine = Arc::clone(&engine);
        thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(clone) => BufReader::new(clone),
                Err(err) => {
                    eprintln!("connection split failed: {err}");
                    return;
                }
            };
            let mut writer = stream;
            if let Err(err) = serve_lines(&engine, reader, &mut writer) {
                eprintln!("connection error: {err}");
            }
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_json_becomes_error_object() {
        let engine = PlanEngine::new();
        let reply = handle_line(&engine, "{nope");
        let value: Value = serde_json::from_str(&reply).unwrap();
        assert!(value.get("error").is_some());
    }

    #[test]
    fn stats_command_answers() {
        let engine = PlanEngine::new();
        let reply = handle_line(&engine, r#"{"cmd": "stats"}"#);
        let value: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(value.get("hits").and_then(Value::as_u64), Some(0));
        assert_eq!(value.get("capacity").and_then(Value::as_u64), Some(1024));
    }

    #[test]
    fn stats_true_returns_cache_and_metrics_sections() {
        let engine = PlanEngine::new();
        let _ = handle_line(&engine, "{\"network\": \"sfc\", \"levels\": 2}");
        let reply = handle_line(&engine, r#"{"stats": true}"#);
        let value: Value = serde_json::from_str(&reply).unwrap();
        let cache = value.get("cache").expect("cache section");
        assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(1));
        assert_eq!(cache.get("evictions").and_then(Value::as_u64), Some(0));
        let metrics = value.get("metrics").expect("metrics section");
        let counters = metrics.get("counters").expect("counters section");
        assert_eq!(counters.get("requests").and_then(Value::as_u64), Some(1));
        let latency = metrics
            .get("histograms")
            .and_then(|h| h.get("plan_latency_ns"))
            .expect("plan_latency_ns histogram");
        assert_eq!(latency.get("count").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn serve_lines_round_trips_requests() {
        let engine = PlanEngine::new();
        let input =
            "{\"network\": \"sfc\", \"levels\": 2}\n\n{\"network\": \"sfc\", \"levels\": 2}\n";
        let mut output = Vec::new();
        serve_lines(&engine, input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        let second: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(first.get("cache_hit").and_then(Value::as_bool), Some(false));
        assert_eq!(second.get("cache_hit").and_then(Value::as_bool), Some(true));
    }
}
