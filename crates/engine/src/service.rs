//! Line-delimited JSON service front-ends.
//!
//! One request per line in, one response per line out — over any
//! `BufRead`/`Write` pair ([`serve_lines`], used for stdin/stdout) or a
//! TCP listener ([`serve_tcp`], one thread per connection, all sharing
//! the engine's plan cache).
//!
//! Besides [`crate::PlanRequest`] objects, a line may carry an admin
//! command:
//!
//! * `{"stats": true}` — the full telemetry snapshot
//!   `{"cache": <CacheStats>, "metrics": <RegistrySnapshot>}`, with every
//!   metrics section key-sorted so the reply is byte-deterministic;
//! * `{"cmd": "stats"}` — the legacy spelling, answered **byte-identically**
//!   to `{"stats": true}` (pinned by test so dashboards can migrate
//!   spelling-by-spelling).
//!
//! When the engine runs with `--record PATH`, every planning line (not
//! admin commands, not unparseable lines) is appended to a JSONL
//! [`crate::RecordEntry`] log for the `hypar-replay` harness.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::thread;

use serde::Value;

use crate::engine::PlanEngine;
use crate::record::Recorder;
use crate::request::PlanRequest;

/// Handles one request line, returning the JSON reply (never fails — every
/// error becomes an `{"error": ...}` object).
#[must_use]
pub fn handle_line(engine: &PlanEngine, line: &str) -> String {
    handle_line_recorded(engine, line, None)
}

/// [`handle_line`] with an optional record sink: planning requests (and
/// their outcomes) are appended to `recorder`; admin commands and lines
/// that never parsed into a request are not workloads and are skipped.
/// Recording failures are reported on stderr but never fail the request —
/// observability must not take the service down.
#[must_use]
pub fn handle_line_recorded(
    engine: &PlanEngine,
    line: &str,
    recorder: Option<&Recorder>,
) -> String {
    let parsed: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(err) => return error_json(&format!("invalid JSON: {err}")),
    };
    if parsed.get("stats").and_then(Value::as_bool) == Some(true) {
        return stats_json(engine);
    }
    if let Some(cmd) = parsed.get("cmd").and_then(Value::as_str) {
        return match cmd {
            "stats" => stats_json(engine),
            other => error_json(&format!("unknown command `{other}`")),
        };
    }
    match serde_json::from_value::<PlanRequest>(&parsed) {
        Ok(request) => {
            let outcome = engine.plan(&request);
            if let Some(recorder) = recorder {
                if let Err(err) = recorder.record_outcome(&request, &outcome) {
                    eprintln!("record write failed: {err}");
                }
            }
            match outcome {
                Ok(response) => reply_json(&response),
                Err(err) => error_json(&err.to_string()),
            }
        }
        Err(err) => error_json(&format!("invalid request: {err}")),
    }
}

/// Builds the `{"stats": true}` reply: the cache counters plus the full
/// engine metrics registry, under stable `cache`/`metrics` keys.  The
/// registry snapshot is key-sorted, so two engines that observed the same
/// traffic produce byte-identical stats replies.
fn stats_json(engine: &PlanEngine) -> String {
    use serde::Serialize;
    let value = Value::Object(vec![
        ("cache".to_owned(), engine.cache_stats().to_value()),
        ("metrics".to_owned(), engine.metrics_snapshot().to_value()),
    ]);
    serde_json::to_string(&value)
        .unwrap_or_else(|err| error_json(&format!("stats serialization failed: {err}")))
}

/// Serializes a reply, degrading to an error object rather than panicking
/// the serving thread if serialization ever fails.
fn reply_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value)
        .unwrap_or_else(|err| error_json(&format!("response serialization failed: {err}")))
}

fn error_json(message: &str) -> String {
    let value = Value::Object(vec![(
        "error".to_owned(),
        Value::String(message.to_owned()),
    )]);
    // A flat string-valued object cannot fail to serialize; fall back to a
    // hand-built constant rather than unwinding a service thread.
    serde_json::to_string(&value)
        .unwrap_or_else(|_| "{\"error\": \"error serialization failed\"}".to_owned())
}

/// Serves line-delimited JSON requests from `input` to `output` until EOF.
/// Blank lines are skipped; the output is flushed after every reply.
///
/// # Errors
///
/// Returns the first I/O error encountered.
pub fn serve_lines<R: BufRead, W: Write>(
    engine: &PlanEngine,
    input: R,
    output: &mut W,
) -> io::Result<()> {
    serve_lines_recorded(engine, input, output, None)
}

/// [`serve_lines`] with an optional record sink (see
/// [`handle_line_recorded`]).
///
/// # Errors
///
/// Returns the first I/O error encountered on the reply stream.
pub fn serve_lines_recorded<R: BufRead, W: Write>(
    engine: &PlanEngine,
    input: R,
    output: &mut W,
    recorder: Option<&Recorder>,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(output, "{}", handle_line_recorded(engine, &line, recorder))?;
        output.flush()?;
    }
    Ok(())
}

/// Binds a TCP listener and serves each connection on its own thread,
/// sharing one engine (and therefore one plan cache) across clients.
/// Blocks forever.
///
/// # Errors
///
/// Returns an error if the address cannot be bound.
pub fn serve_tcp(engine: Arc<PlanEngine>, addr: impl ToSocketAddrs) -> io::Result<()> {
    serve_tcp_recorded(engine, addr, None)
}

/// [`serve_tcp`] with an optional shared record sink: every connection
/// thread appends to the same JSONL log (the [`Recorder`] serializes
/// writes internally).
///
/// # Errors
///
/// Returns an error if the address cannot be bound.
pub fn serve_tcp_recorded(
    engine: Arc<PlanEngine>,
    addr: impl ToSocketAddrs,
    recorder: Option<Arc<Recorder>>,
) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!(
        "hypar-engine listening on {}",
        listener
            .local_addr()
            .map_or_else(|_| "<unknown>".to_owned(), |a| a.to_string())
    );
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(err) => {
                eprintln!("accept failed: {err}");
                continue;
            }
        };
        let engine = Arc::clone(&engine);
        let recorder = recorder.clone();
        thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(clone) => BufReader::new(clone),
                Err(err) => {
                    eprintln!("connection split failed: {err}");
                    return;
                }
            };
            let mut writer = stream;
            if let Err(err) =
                serve_lines_recorded(&engine, reader, &mut writer, recorder.as_deref())
            {
                eprintln!("connection error: {err}");
            }
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_json_becomes_error_object() {
        let engine = PlanEngine::new();
        let reply = handle_line(&engine, "{nope");
        let value: Value = serde_json::from_str(&reply).unwrap();
        assert!(value.get("error").is_some());
    }

    #[test]
    fn stats_command_answers() {
        let engine = PlanEngine::new();
        let reply = handle_line(&engine, r#"{"cmd": "stats"}"#);
        let value: Value = serde_json::from_str(&reply).unwrap();
        let cache = value.get("cache").expect("cache section");
        assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(0));
        assert_eq!(cache.get("capacity").and_then(Value::as_u64), Some(1024));
    }

    #[test]
    fn legacy_stats_spelling_is_byte_identical_to_new_one() {
        let engine = PlanEngine::new();
        let _ = handle_line(&engine, "{\"network\": \"sfc\", \"levels\": 2}");
        let legacy = handle_line(&engine, r#"{"cmd": "stats"}"#);
        let new = handle_line(&engine, r#"{"stats": true}"#);
        assert_eq!(legacy, new);
    }

    #[test]
    fn stats_true_returns_cache_and_metrics_sections() {
        let engine = PlanEngine::new();
        let _ = handle_line(&engine, "{\"network\": \"sfc\", \"levels\": 2}");
        let reply = handle_line(&engine, r#"{"stats": true}"#);
        let value: Value = serde_json::from_str(&reply).unwrap();
        let cache = value.get("cache").expect("cache section");
        assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(1));
        assert_eq!(cache.get("evictions").and_then(Value::as_u64), Some(0));
        let metrics = value.get("metrics").expect("metrics section");
        let counters = metrics.get("counters").expect("counters section");
        assert_eq!(counters.get("requests").and_then(Value::as_u64), Some(1));
        let latency = metrics
            .get("histograms")
            .and_then(|h| h.get("plan_latency_ns"))
            .expect("plan_latency_ns histogram");
        assert_eq!(latency.get("count").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn recorded_service_logs_workloads_but_not_admin_lines() {
        let dir = std::env::temp_dir().join(format!(
            "hypar-service-record-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        let engine = PlanEngine::new();
        let recorder = Recorder::append_to(&path).unwrap();
        let input = "{\"network\": \"sfc\", \"levels\": 2}\n\
                     {\"stats\": true}\n\
                     {nope\n\
                     {\"network\": \"no-such-net\"}\n";
        let mut output = Vec::new();
        serve_lines_recorded(&engine, input.as_bytes(), &mut output, Some(&recorder)).unwrap();
        drop(recorder);
        let text = std::fs::read_to_string(&path).unwrap();
        let entries = crate::record::parse_log(&text).unwrap();
        // The plan and the typed rejection are logged; the stats command
        // and the unparseable line are not.
        assert_eq!(entries.len(), 2);
        assert!(entries[0].state_hash().is_some());
        assert!(entries[1].error.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_lines_round_trips_requests() {
        let engine = PlanEngine::new();
        let input =
            "{\"network\": \"sfc\", \"levels\": 2}\n\n{\"network\": \"sfc\", \"levels\": 2}\n";
        let mut output = Vec::new();
        serve_lines(&engine, input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        let second: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(first.get("cache_hit").and_then(Value::as_bool), Some(false));
        assert_eq!(second.get("cache_hit").and_then(Value::as_bool), Some(true));
    }
}
