//! Adversarial input through the service loop: malformed, truncated,
//! deeply nested, and absurdly large request bytes must yield a typed
//! error JSON line — never a panic, never an unbounded stall.

use std::time::{Duration, Instant};

use hypar_engine::{service, PlanEngine};
use serde_json::Value;

/// Pushes one hostile line through the full service loop and asserts
/// the reply is a single well-formed `{"error": ...}` object.
fn expect_error_reply(engine: &PlanEngine, line: &str) -> String {
    let reply = service::handle_line(engine, line);
    let value: Value = serde_json::from_str(&reply)
        .unwrap_or_else(|e| panic!("reply must be valid JSON ({e}): {reply}"));
    let message = value
        .get("error")
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("reply must be a typed error: {reply}"))
        .to_owned();
    assert!(!message.is_empty());
    message
}

#[test]
fn malformed_and_truncated_json_yields_typed_errors() {
    let engine = PlanEngine::new();
    for line in [
        "{nope",
        "]",
        "{\"network\": \"vgg_a\"",    // truncated object
        "{\"network\": \"vgg_a\", }", // trailing comma
        "\"just a string\"",          // wrong top-level shape
        "{\"network\": 42}",          // wrong field type
        "{\"network\": \"vgg_a\"} trailing",
        "{\"cmd\": \"reboot\"}", // unknown admin command
        "{\"network\": \"vgg_a\", \"levels\": -1}",
        "{\"network\": \"vgg_a\", \"strategy\": \"quantum\"}",
        "\u{0}\u{1}\u{2}",
        "{\"network\": {\"nodes\": []}}", // empty DAG
    ] {
        expect_error_reply(&engine, line);
    }
}

#[test]
fn deeply_nested_input_is_rejected_not_a_stack_overflow() {
    let engine = PlanEngine::new();
    // A malicious client can send megabytes of `[` with no closers; the
    // recursive parser must refuse at its depth bound instead of
    // overflowing the thread stack (which would abort the process, not
    // just the request).
    let bombs = [
        "[".repeat(200_000),
        "{\"a\":".repeat(200_000),
        format!("{{\"network\": {}}}", "[".repeat(200_000)),
        format!("{}0{}", "[".repeat(1_000), "]".repeat(1_000)),
    ];
    for bomb in &bombs {
        let message = expect_error_reply(&engine, bomb);
        assert!(
            message.contains("invalid JSON"),
            "depth bombs are parse errors: {message}"
        );
    }
}

#[test]
fn huge_fields_are_bounded_in_time_and_yield_errors() {
    let engine = PlanEngine::new();
    let huge_name = format!("{{\"network\": \"{}\"}}", "x".repeat(4 << 20));
    let huge_assignments = format!(
        "{{\"network\": \"vgg_a\", \"strategy\": \"explicit\", \"assignments\": [\"{}\"]}}",
        "0".repeat(4 << 20)
    );
    let many_fields = {
        let fields: Vec<String> = (0..100_000).map(|i| format!("\"f{i}\": {i}")).collect();
        format!("{{\"network\": \"vgg_a\", {}}}", fields.join(", "))
    };
    // A wide-but-shallow array bomb: lots of elements, legal depth.
    let wide_array = format!(
        "{{\"network\": \"vgg_a\", \"assignments\": [{}]}}",
        vec!["\"0\""; 100_000].join(",")
    );

    // (line, must_reject): unknown fields are ignored and assignments
    // without `strategy: explicit` are inert, so the many-fields and
    // wide-array bombs degrade to legitimate vgg_a requests — the
    // guarantee there is bounded latency, not rejection.
    let cases = [
        (&huge_name, true),
        (&huge_assignments, true),
        (&wide_array, false),
        (&many_fields, false),
    ];
    for (line, must_reject) in cases {
        let started = Instant::now();
        let reply = service::handle_line(&engine, line);
        let elapsed = started.elapsed();
        // Megabyte-scale garbage must be dispatched in interactive time —
        // parsing is linear and hostile shapes never reach the planner.
        // The generous bound keeps the test meaningful without being
        // flaky on slow machines.
        assert!(
            elapsed < Duration::from_secs(10),
            "hostile {}-byte line took {elapsed:?}",
            line.len()
        );
        let value: Value = serde_json::from_str(&reply).expect("reply parses");
        if must_reject {
            assert!(
                value.get("error").is_some(),
                "line must be rejected: {}...",
                &reply[..reply.len().min(200)]
            );
        } else {
            assert!(
                value.get("error").is_some() || value.get("state_hash").is_some(),
                "reply must be typed: {}...",
                &reply[..reply.len().min(200)]
            );
        }
    }
}

#[test]
fn the_service_loop_survives_a_hostile_session_and_still_plans() {
    let engine = PlanEngine::new();
    let mut input = String::new();
    input.push_str(&"[".repeat(50_000));
    input.push('\n');
    input.push_str("{truncated\n");
    input.push_str("{\"network\": \"no-such-net\"}\n");
    input.push_str("{\"network\": \"sfc\", \"levels\": 2}\n");

    let mut output = Vec::new();
    service::serve_lines(&engine, input.as_bytes(), &mut output).unwrap();
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "{text}");
    for line in &lines[..3] {
        let value: Value = serde_json::from_str(line).unwrap();
        assert!(value.get("error").is_some(), "{line}");
    }
    // The session is still healthy: the final, legitimate request plans.
    let last: Value = serde_json::from_str(lines[3]).unwrap();
    assert!(last.get("state_hash").is_some(), "{}", lines[3]);
    assert_eq!(last.get("cache_hit").and_then(Value::as_bool), Some(false));
}
