//! Integration tests of the DAG planning path: branchy zoo and inline
//! graph requests end to end through the engine, cache semantics, chain
//! linearization equivalence, and fingerprint stability.

use hypar_engine::{
    CustomNetwork, EngineError, GraphNodeSpec, GraphSpec, InputSpec, LayerSpec, PlanEngine,
    PlanRequest, Strategy,
};
use proptest::prelude::*;

fn graph_node(name: &str, kind: &str, inputs: &[&str]) -> GraphNodeSpec {
    GraphNodeSpec {
        name: name.to_owned(),
        kind: kind.to_owned(),
        out: None,
        kernel: None,
        stride: None,
        padding: None,
        pool: None,
        inputs: Some(inputs.iter().map(|s| (*s).to_owned()).collect()),
    }
}

fn conv_node(name: &str, out: u64, kernel: u64, inputs: &[&str]) -> GraphNodeSpec {
    GraphNodeSpec {
        out: Some(out),
        kernel: Some(kernel),
        ..graph_node(name, "conv", inputs)
    }
}

fn fc_node(name: &str, out: u64, inputs: &[&str]) -> GraphNodeSpec {
    GraphNodeSpec {
        out: Some(out),
        ..graph_node(name, "fc", inputs)
    }
}

/// The tiny residual block's four nodes, fully wired (so any listing
/// order is valid), selected by `order`.
fn tiny_res_spec(order: &[usize]) -> GraphSpec {
    let nodes = [
        conv_node("stem", 8, 3, &["input"]),
        conv_node("body", 8, 3, &["stem"]),
        graph_node("join", "add", &["stem", "body"]),
        fc_node("fc", 10, &["join"]),
    ];
    GraphSpec {
        name: Some("tiny-res".to_owned()),
        input: InputSpec {
            channels: 8,
            height: 16,
            width: 16,
        },
        nodes: order.iter().map(|&i| nodes[i].clone()).collect(),
    }
}

#[test]
fn branchy_zoo_requests_plan_and_cache() {
    let engine = PlanEngine::new();
    let request = PlanRequest::zoo("resnet18").levels(4).batch(64);

    let first = engine.plan(&request).unwrap();
    assert!(!first.cache_hit);
    assert_eq!(first.network, "ResNet-18");
    assert_eq!(first.accelerators, 16);
    assert_eq!(first.plan.num_layers(), 21);
    assert!(first.total_comm_elems > 0.0);
    assert!(first.simulation.is_none());

    let second = engine.plan(&request).unwrap();
    assert!(second.cache_hit, "identical DAG request must hit the cache");
    assert_eq!(first.fingerprint, second.fingerprint);
    assert_eq!(first.plan, second.plan);

    // Forgiving spelling resolves to the same cached workload.
    let spelled = engine
        .plan(&PlanRequest::zoo("ResNet-18").levels(4).batch(64))
        .unwrap();
    assert!(spelled.cache_hit);
    assert_eq!(spelled.fingerprint, first.fingerprint);
}

#[test]
fn dag_strategies_are_ordered_sensibly() {
    let engine = PlanEngine::new();
    let base = PlanRequest::zoo("inception-mini").levels(4).batch(128);
    let hybrid = engine.plan(&base.clone()).unwrap();
    let dp = engine.plan(&base.clone().strategy(Strategy::Dp)).unwrap();
    let mp = engine.plan(&base.clone().strategy(Strategy::Mp)).unwrap();
    // Hybrid optimizes the intra-segment traffic the baselines fix, so it
    // must not lose to both extremes at once.
    assert!(hybrid.total_comm_elems <= dp.total_comm_elems.max(mp.total_comm_elems));
    // Each strategy is its own cache entry.
    let fingerprints = [&hybrid, &dp, &mp]
        .iter()
        .map(|r| r.fingerprint.clone())
        .collect::<std::collections::HashSet<_>>();
    assert_eq!(fingerprints.len(), 3);
}

#[test]
fn inline_graph_request_round_trips_and_plans() {
    let request = PlanRequest::graph(tiny_res_spec(&[0, 1, 2, 3]))
        .batch(32)
        .levels(3);
    let text = serde_json::to_string(&request).unwrap();
    let back: PlanRequest = serde_json::from_str(&text).unwrap();
    assert_eq!(back, request);

    let engine = PlanEngine::new();
    let response = engine.plan(&request).unwrap();
    assert_eq!(response.network, "tiny-res");
    assert_eq!(response.plan.num_layers(), 3);
    assert_eq!(response.levels, 3);
}

#[test]
fn chain_shaped_dag_linearizes_into_the_chain_pipeline() {
    // A DAG spec with no joins and a CustomNetwork with identical layers
    // must resolve to the *same* workload — same fingerprint, shared
    // cache entry.
    let engine = PlanEngine::new();
    let custom = engine
        .plan(&PlanRequest::custom(CustomNetwork {
            name: Some("chain".to_owned()),
            input: InputSpec {
                channels: 8,
                height: 16,
                width: 16,
            },
            layers: vec![
                LayerSpec {
                    name: Some("stem".to_owned()),
                    kind: "conv".to_owned(),
                    out: 8,
                    kernel: Some(3),
                    stride: None,
                    padding: None,
                    pool: None,
                },
                LayerSpec {
                    name: Some("fc".to_owned()),
                    kind: "fc".to_owned(),
                    out: 10,
                    kernel: None,
                    stride: None,
                    padding: None,
                    pool: None,
                },
            ],
        }))
        .unwrap();
    let dag = engine
        .plan(&PlanRequest::graph(GraphSpec {
            name: Some("chain-as-dag".to_owned()),
            input: InputSpec {
                channels: 8,
                height: 16,
                width: 16,
            },
            nodes: vec![
                conv_node("stem", 8, 3, &["input"]),
                fc_node("fc", 10, &["stem"]),
            ],
        }))
        .unwrap();
    assert_eq!(dag.fingerprint, custom.fingerprint);
    assert!(dag.cache_hit, "linearized chain DAG must share the entry");
    assert_eq!(dag.total_comm_elems, custom.total_comm_elems);
}

#[test]
fn chain_shaped_dag_supports_every_chain_strategy() {
    // Linearization happens before strategy dispatch, so even exhaustive
    // and explicit work on a branch-free DAG spec.
    let engine = PlanEngine::new();
    let spec = GraphSpec {
        name: None,
        input: InputSpec {
            channels: 1,
            height: 1,
            width: 64,
        },
        nodes: vec![fc_node("fc1", 32, &["input"]), fc_node("fc2", 8, &["fc1"])],
    };
    let exhaustive = engine
        .plan(
            &PlanRequest::graph(spec.clone())
                .levels(2)
                .strategy(Strategy::Exhaustive),
        )
        .unwrap();
    let hypar = engine.plan(&PlanRequest::graph(spec).levels(2)).unwrap();
    assert!(exhaustive.total_comm_elems <= hypar.total_comm_elems);
}

#[test]
fn branchy_exhaustive_plans_through_the_engine_and_caches() {
    // tiny-res has 3 weighted layers: 3 x 4 = 12 slots, 4096 joint plans.
    let engine = PlanEngine::new();
    let base = PlanRequest::graph(tiny_res_spec(&[0, 1, 2, 3]))
        .batch(32)
        .levels(4);

    let joint = engine
        .plan(&base.clone().strategy(Strategy::Exhaustive))
        .unwrap();
    assert!(!joint.cache_hit);
    assert_eq!(joint.network, "tiny-res");
    assert_eq!(joint.plan.num_layers(), 3);
    assert_eq!(joint.plan.num_levels(), 4);
    assert!(joint.total_comm_elems > 0.0);

    // The joint optimum lower-bounds every other strategy's plan.
    let hybrid = engine.plan(&base.clone()).unwrap();
    let dp = engine.plan(&base.clone().strategy(Strategy::Dp)).unwrap();
    for other in [&hybrid, &dp] {
        assert!(
            joint.total_comm_elems <= other.total_comm_elems * (1.0 + 1e-12),
            "joint {} vs {} {}",
            joint.total_comm_elems,
            other.strategy.name(),
            other.total_comm_elems
        );
        assert_ne!(joint.fingerprint, other.fingerprint);
    }

    // Fingerprinted, cached, and simulatable like every other DAG plan.
    let again = engine
        .plan(&base.clone().strategy(Strategy::Exhaustive))
        .unwrap();
    assert!(again.cache_hit, "identical exhaustive request must hit");
    assert_eq!(again.fingerprint, joint.fingerprint);
    let simulated = engine
        .plan(&base.strategy(Strategy::Exhaustive).simulate(true))
        .unwrap();
    let sim = simulated
        .simulation
        .expect("simulate attaches a StepReport");
    assert!(sim.step_time.value() > 0.0);
}

#[test]
fn branchy_explicit_assignments_plan_through_the_engine() {
    let engine = PlanEngine::new();
    // Three layers (stem, body, fc in canonical order), two levels:
    // all-dp at the top, fc flipped to mp below.
    let request = PlanRequest::graph(tiny_res_spec(&[0, 1, 2, 3]))
        .batch(32)
        .levels(2)
        .assignments(vec!["000".to_owned(), "001".to_owned()]);
    let response = engine.plan(&request).unwrap();
    assert_eq!(response.strategy, Strategy::Explicit);
    assert_eq!(response.plan.level_bits(0), "000");
    assert_eq!(response.plan.level_bits(1), "001");

    // A different assignment is a different workload (own cache entry).
    let other = engine
        .plan(
            &PlanRequest::graph(tiny_res_spec(&[0, 1, 2, 3]))
                .batch(32)
                .levels(2)
                .assignments(vec!["000".to_owned(), "000".to_owned()]),
        )
        .unwrap();
    assert!(!other.cache_hit);
    assert_ne!(other.fingerprint, response.fingerprint);

    // The exhaustive joint optimum can only be at least as good as any
    // explicit point of the same space.
    let joint = engine
        .plan(
            &PlanRequest::graph(tiny_res_spec(&[0, 1, 2, 3]))
                .batch(32)
                .levels(2)
                .strategy(Strategy::Exhaustive),
        )
        .unwrap();
    assert!(joint.total_comm_elems <= response.total_comm_elems * (1.0 + 1e-12));
}

#[test]
fn branchy_strategy_misuse_is_a_typed_error() {
    let engine = PlanEngine::new();

    // ResNet-18 has 21 layers: 21 x 2 = 42 slots, over the 24-slot bound.
    let err = engine
        .plan(
            &PlanRequest::zoo("resnet18")
                .levels(2)
                .batch(16)
                .strategy(Strategy::Exhaustive),
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidRequest(_)), "{err}");
    assert!(err.to_string().contains("42 slots"), "{err}");

    // Explicit without assignments (and with malformed ones) stays typed.
    let err = engine
        .plan(
            &PlanRequest::zoo("resnet18")
                .levels(2)
                .batch(16)
                .strategy(Strategy::Explicit),
        )
        .unwrap_err();
    assert!(err.to_string().contains("assignments"), "{err}");
    let err = engine
        .plan(
            &PlanRequest::graph(tiny_res_spec(&[0, 1, 2, 3]))
                .batch(32)
                .levels(2)
                .assignments(vec!["00".to_owned(), "00".to_owned()]),
        )
        .unwrap_err();
    assert!(err.to_string().contains("3 layers"), "{err}");
}

#[test]
fn no_dag_request_reaches_a_panic_whatever_the_strategy_or_shape() {
    // The whole DAG planning path — resolution, per-segment planning,
    // stitching, refinement, joint search, explicit evaluation,
    // simulation — must answer every request with Ok or a typed error.
    // Any panic unwinds this test and fails it.
    let engine = PlanEngine::new();
    for strategy in Strategy::ALL {
        for levels in [0usize, 1, 4, 17] {
            for batch in [0u64, 1, 32] {
                for simulate in [false, true] {
                    let mut request = PlanRequest::graph(tiny_res_spec(&[0, 1, 2, 3]))
                        .batch(batch)
                        .levels(levels)
                        .strategy(strategy)
                        .simulate(simulate);
                    if strategy == Strategy::Explicit {
                        // Deliberately wrong arity half the time.
                        request.assignments = Some(vec!["000".to_owned(); levels.max(1) - 1]);
                    }
                    let _ = engine.plan(&request);
                    let _ = engine.plan(&request.clone().refine(true));
                }
            }
        }
    }
}

#[test]
fn branchy_requests_simulate_end_to_end() {
    let engine = PlanEngine::new();
    let request = PlanRequest::zoo("resnet18")
        .levels(4)
        .batch(32)
        .simulate(true);

    let first = engine.plan(&request).unwrap();
    assert!(!first.cache_hit);
    let sim = first
        .simulation
        .as_ref()
        .expect("simulate: true attaches a StepReport");
    assert!(sim.step_time.value() > 0.0);
    assert_eq!(sim.num_accelerators, 16);
    // The simulator's traffic accounting matches the stitched plan's
    // analytic total.
    assert!(
        (sim.comm_bytes.value() - first.total_comm_bytes).abs()
            <= 1e-6 * first.total_comm_bytes.max(1.0),
        "sim {} vs model {}",
        sim.comm_bytes,
        first.total_comm_bytes
    );

    // The StepReport rides the DAG fingerprint-cached path.
    let second = engine.plan(&request).unwrap();
    assert!(
        second.cache_hit,
        "identical simulate request must hit the cache"
    );
    assert_eq!(second.simulation, first.simulation);

    // Simulation is part of the workload fingerprint: the analytic-only
    // request is its own entry.
    let analytic = engine.plan(&request.clone().simulate(false)).unwrap();
    assert!(!analytic.cache_hit);
    assert_ne!(analytic.fingerprint, first.fingerprint);
    assert!(analytic.simulation.is_none());
}

#[test]
fn branchy_simulation_beats_its_data_parallel_baseline() {
    // The Figures 6-8-style check the ROADMAP asked for: on the residual
    // network the hybrid plan's simulated step is no slower than dp's.
    let engine = PlanEngine::new();
    let base = PlanRequest::zoo("resnet18")
        .levels(4)
        .batch(64)
        .simulate(true);
    let hybrid = engine.plan(&base.clone()).unwrap();
    let dp = engine.plan(&base.strategy(Strategy::Dp)).unwrap();
    let hybrid_sim = hybrid.simulation.expect("simulated");
    let dp_sim = dp.simulation.expect("simulated");
    assert!(
        hybrid_sim.performance_gain_over(&dp_sim) >= 1.0,
        "hybrid {} vs dp {}",
        hybrid_sim.step_time,
        dp_sim.step_time
    );
}

#[test]
fn inline_branchy_graph_simulates() {
    let engine = PlanEngine::new();
    let request = PlanRequest::graph(tiny_res_spec(&[0, 1, 2, 3]))
        .batch(32)
        .levels(3)
        .simulate(true);
    let response = engine.plan(&request).unwrap();
    let sim = response.simulation.expect("simulated");
    assert_eq!(sim.num_accelerators, 8);
    assert!(sim.step_time.value() > 0.0);
    assert!(sim.energy.value() > 0.0);
}

#[test]
fn refined_strategy_plans_branchy_dags_and_never_loses_to_hypar() {
    let engine = PlanEngine::new();
    let base = PlanRequest::graph(tiny_res_spec(&[0, 1, 2, 3]))
        .batch(32)
        .levels(4);
    let stitched = engine.plan(&base.clone()).unwrap();
    let refined = engine
        .plan(&base.clone().strategy(Strategy::Refined))
        .unwrap();
    assert_eq!(refined.strategy, Strategy::Refined);
    assert!(
        refined.total_comm_elems <= stitched.total_comm_elems,
        "refined {} vs stitched {}",
        refined.total_comm_elems,
        stitched.total_comm_elems
    );
    // On this 12-slot net the joint optimum is certifiable: refinement
    // must reach it.
    let joint = engine
        .plan(&base.clone().strategy(Strategy::Exhaustive))
        .unwrap();
    assert!(
        (refined.total_comm_elems - joint.total_comm_elems).abs()
            <= 1e-9 * joint.total_comm_elems.max(1.0),
        "refined {} vs joint {}",
        refined.total_comm_elems,
        joint.total_comm_elems
    );

    // Its own cache entry, distinct from hypar's.
    let again = engine.plan(&base.strategy(Strategy::Refined)).unwrap();
    assert!(again.cache_hit);
    assert_ne!(again.fingerprint, stitched.fingerprint);
}

#[test]
fn refine_modifier_resolves_to_the_refined_strategy() {
    let engine = PlanEngine::new();
    let base = PlanRequest::graph(tiny_res_spec(&[0, 1, 2, 3]))
        .batch(32)
        .levels(3);
    let refined = engine
        .plan(&base.clone().strategy(Strategy::Refined))
        .unwrap();
    // `hypar` + `refine: true` is the same workload — and the same cache
    // entry (the second request must hit).
    let modifier = engine.plan(&base.clone().refine(true)).unwrap();
    assert_eq!(modifier.strategy, Strategy::Refined);
    assert_eq!(modifier.fingerprint, refined.fingerprint);
    assert!(modifier.cache_hit);
    assert_eq!(modifier.plan, refined.plan);

    // The modifier on any other strategy is a typed rejection.
    let err = engine
        .plan(&base.strategy(Strategy::Dp).refine(true))
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidRequest(_)), "{err}");
    assert!(err.to_string().contains("refine"), "{err}");
}

#[test]
fn refined_strategy_simulates_and_scales_past_the_exhaustive_bound() {
    let engine = PlanEngine::new();
    // ResNet-18 at H=4 is 84 slots: exhaustive is a typed rejection...
    let base = PlanRequest::zoo("resnet18").levels(4).batch(64);
    let err = engine
        .plan(&base.clone().strategy(Strategy::Exhaustive))
        .unwrap_err();
    assert!(err.to_string().contains("exceeds"), "{err}");
    // ...while refined plans and simulates end to end.
    let refined = engine
        .plan(&base.clone().strategy(Strategy::Refined).simulate(true))
        .unwrap();
    let stitched = engine.plan(&base.simulate(true)).unwrap();
    assert!(refined.total_comm_elems <= stitched.total_comm_elems);
    let sim = refined.simulation.expect("simulated");
    assert_eq!(sim.num_accelerators, 16);
    assert!(sim.step_time.value() > 0.0);
}

#[test]
fn refined_strategy_works_on_chains_too() {
    // A chain-shaped request (zoo chain and linearized DAG alike) runs
    // the chain refinement: never worse than Algorithm 2's plan.
    let engine = PlanEngine::new();
    let base = PlanRequest::zoo("lenet_c").levels(4);
    let hypar = engine.plan(&base.clone()).unwrap();
    let refined = engine
        .plan(&base.clone().strategy(Strategy::Refined))
        .unwrap();
    assert!(refined.total_comm_elems <= hypar.total_comm_elems);
    // Lenet-c at H=4 is 16 slots: certify against the joint optimum.
    let joint = engine.plan(&base.strategy(Strategy::Exhaustive)).unwrap();
    assert!(
        (refined.total_comm_elems - joint.total_comm_elems).abs()
            <= 1e-9 * joint.total_comm_elems.max(1.0),
        "refined {} vs joint {}",
        refined.total_comm_elems,
        joint.total_comm_elems
    );
}

#[test]
fn unknown_network_error_lists_both_zoos() {
    let engine = PlanEngine::new();
    let err = engine
        .plan(&PlanRequest::zoo("resnet-51"))
        .unwrap_err()
        .to_string();
    assert!(err.contains("VGG-E"), "{err}");
    assert!(err.contains("ResNet-18"), "{err}");
    assert!(err.contains("Inception-Mini"), "{err}");
}

#[test]
fn malformed_graph_specs_surface_typed_errors() {
    let engine = PlanEngine::new();
    // Dangling edge.
    let mut spec = tiny_res_spec(&[0, 1, 2, 3]);
    spec.nodes[1].inputs = Some(vec!["ghost".to_owned()]);
    let err = engine.plan(&PlanRequest::graph(spec)).unwrap_err();
    assert!(matches!(err, EngineError::InvalidNetwork(_)), "{err}");
    assert!(err.to_string().contains("ghost"));

    // Cycle.
    let mut spec = tiny_res_spec(&[0, 1, 2, 3]);
    spec.nodes[0].inputs = Some(vec!["fc".to_owned()]);
    let err = engine.plan(&PlanRequest::graph(spec)).unwrap_err();
    assert!(err.to_string().contains("cycle"), "{err}");

    // Join shape mismatch.
    let mut spec = tiny_res_spec(&[0, 1, 2, 3]);
    spec.nodes[1].out = Some(16);
    let err = engine.plan(&PlanRequest::graph(spec)).unwrap_err();
    assert!(err.to_string().contains("does not match"), "{err}");

    // Layer-only fields on a join are rejected, not silently dropped.
    let mut spec = tiny_res_spec(&[0, 1, 2, 3]);
    spec.nodes[2].pool = Some(2);
    let err = engine.plan(&PlanRequest::graph(spec)).unwrap_err();
    assert!(err.to_string().contains("do not apply"), "{err}");

    // Conv-only fields on an fc node are rejected too.
    let mut spec = tiny_res_spec(&[0, 1, 2, 3]);
    spec.nodes[3].kernel = Some(3);
    let err = engine.plan(&PlanRequest::graph(spec)).unwrap_err();
    assert!(err.to_string().contains("do not apply"), "{err}");

    // Zero input dimensions are a typed error, not a panic — on both
    // inline paths.
    let mut spec = tiny_res_spec(&[0, 1, 2, 3]);
    spec.input.channels = 0;
    let err = engine.plan(&PlanRequest::graph(spec)).unwrap_err();
    assert!(err.to_string().contains("must be positive"), "{err}");
    let err = engine
        .plan(&PlanRequest::custom(CustomNetwork {
            name: None,
            input: InputSpec {
                channels: 0,
                height: 16,
                width: 16,
            },
            layers: vec![LayerSpec {
                name: None,
                kind: "fc".to_owned(),
                out: 10,
                kernel: None,
                stride: None,
                padding: None,
                pool: None,
            }],
        }))
        .unwrap_err();
    assert!(err.to_string().contains("must be positive"), "{err}");
}

proptest! {
    /// DAG fingerprints are stable across node-insertion order: any
    /// listing order of the same fully-wired nodes resolves to the same
    /// cache entry.
    #[test]
    fn dag_fingerprints_stable_across_insertion_order(
        keys in proptest::collection::vec(any::<u64>(), 4..5)
    ) {
        let mut order: Vec<usize> = (0..4).collect();
        order.sort_by_key(|&i| keys[i]);

        let engine = PlanEngine::new();
        let canonical = engine
            .plan(&PlanRequest::graph(tiny_res_spec(&[0, 1, 2, 3])).batch(32))
            .unwrap();
        let permuted = engine
            .plan(&PlanRequest::graph(tiny_res_spec(&order)).batch(32))
            .unwrap();
        prop_assert_eq!(&canonical.fingerprint, &permuted.fingerprint);
        prop_assert!(permuted.cache_hit, "order {:?} must share the entry", order);
        prop_assert_eq!(&canonical.plan, &permuted.plan);
    }
}
