//! Integration tests of the planning engine: cache semantics, fingerprint
//! stability, batch determinism, and wire-format round-trips.

use hypar_engine::{
    CustomNetwork, EngineError, InputSpec, LayerSpec, PlanEngine, PlanRequest, PlanResponse,
    Strategy,
};
use hypar_sim::Topology;

fn conv_layer() -> LayerSpec {
    LayerSpec {
        name: None,
        kind: "conv".to_owned(),
        out: 4,
        kernel: Some(3),
        stride: None,
        padding: None,
        pool: None,
    }
}

fn fc_layer(out: u64) -> LayerSpec {
    LayerSpec {
        name: None,
        kind: "fc".to_owned(),
        out,
        kernel: None,
        stride: None,
        padding: None,
        pool: None,
    }
}

/// An inline spec identical (in tensor sizes) to the zoo's `SFC`:
/// `784-8192-8192-8192-10`.
fn sfc_as_custom() -> CustomNetwork {
    CustomNetwork {
        name: Some("my-sfc".to_owned()),
        input: InputSpec {
            channels: 1,
            height: 1,
            width: 784,
        },
        layers: vec![fc_layer(8192), fc_layer(8192), fc_layer(8192), fc_layer(10)],
    }
}

#[test]
fn identical_requests_hit_the_cache() {
    let engine = PlanEngine::new();
    let request = PlanRequest::zoo("Lenet-c").levels(4).batch(256);

    let first = engine.plan(&request).unwrap();
    assert!(!first.cache_hit, "first query must compute");

    let second = engine.plan(&request).unwrap();
    assert!(second.cache_hit, "repeated query must be served from cache");
    assert_eq!(first.plan, second.plan);
    assert_eq!(first.fingerprint, second.fingerprint);

    let stats = engine.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.entries, 1);
}

#[test]
fn different_workloads_miss_the_cache() {
    let engine = PlanEngine::new();
    let base = PlanRequest::zoo("Lenet-c");
    let variants = [
        base.clone(),
        base.clone().batch(128),
        base.clone().levels(2),
        base.clone().strategy(Strategy::Dp),
        base.clone().topology(Topology::Torus),
        base.clone().simulate(true),
    ];
    let mut fingerprints = std::collections::HashSet::new();
    for request in &variants {
        let response = engine.plan(request).unwrap();
        assert!(
            !response.cache_hit,
            "{request:?} must be a distinct workload"
        );
        assert!(fingerprints.insert(response.fingerprint.clone()));
    }
    assert_eq!(engine.cache_stats().misses, variants.len() as u64);
    assert_eq!(engine.cache_stats().hits, 0);
}

#[test]
fn equivalent_requests_share_a_fingerprint() {
    let engine = PlanEngine::new();

    // Forgiving zoo spellings resolve to the same workload...
    let canonical = engine.plan(&PlanRequest::zoo("VGG-A")).unwrap();
    let snake = engine.plan(&PlanRequest::zoo("vgg_a")).unwrap();
    assert_eq!(canonical.fingerprint, snake.fingerprint);
    assert!(snake.cache_hit, "equivalent spelling must be a cache hit");

    // ...and so does an inline custom network with identical tensor sizes
    // (fingerprints hash shapes, not names).
    let zoo_sfc = engine.plan(&PlanRequest::zoo("SFC")).unwrap();
    let custom_sfc = engine.plan(&PlanRequest::custom(sfc_as_custom())).unwrap();
    assert_eq!(zoo_sfc.fingerprint, custom_sfc.fingerprint);
    assert!(custom_sfc.cache_hit);
    // The cached answer is the zoo one: same plan, same totals.
    assert_eq!(zoo_sfc.total_comm_elems, custom_sfc.total_comm_elems);
}

#[test]
fn plan_many_matches_serial_planning() {
    let mut requests = Vec::new();
    for name in ["SFC", "SCONV", "Lenet-c", "Cifar-c", "AlexNet", "VGG-A"] {
        for strategy in [Strategy::Hypar, Strategy::Dp, Strategy::Owt] {
            requests.push(PlanRequest::zoo(name).levels(4).strategy(strategy));
        }
    }

    let parallel_engine = PlanEngine::new();
    let parallel: Vec<PlanResponse> = parallel_engine
        .plan_many(&requests)
        .into_iter()
        .map(|r| r.expect("zoo requests plan"))
        .collect();

    let serial_engine = PlanEngine::new();
    let serial: Vec<PlanResponse> = requests
        .iter()
        .map(|r| serial_engine.plan(r).expect("zoo requests plan"))
        .collect();

    assert_eq!(parallel.len(), serial.len());
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.plan, s.plan);
        assert_eq!(p.fingerprint, s.fingerprint);
        assert_eq!(p.total_comm_elems, s.total_comm_elems);
        assert_eq!(p.network, s.network);
    }
}

#[test]
fn plan_many_shares_the_cache_across_the_batch() {
    let engine = PlanEngine::new();
    let request = PlanRequest::zoo("Cifar-c").levels(3);
    engine.plan(&request).unwrap();
    let repeats: Vec<PlanRequest> = (0..8).map(|_| request.clone()).collect();
    for response in engine.plan_many(&repeats) {
        assert!(response.unwrap().cache_hit);
    }
    assert_eq!(engine.cache_stats().hits, 8);
}

#[test]
fn request_json_round_trips() {
    let request = PlanRequest::zoo("vgg_a")
        .batch(64)
        .levels(3)
        .strategy(Strategy::Owt)
        .topology(Topology::Torus)
        .simulate(true);
    let text = serde_json::to_string(&request).unwrap();
    let back: PlanRequest = serde_json::from_str(&text).unwrap();
    assert_eq!(back, request);

    let custom = PlanRequest::custom(sfc_as_custom()).assignments(vec!["0101".to_owned(); 4]);
    let text = serde_json::to_string(&custom).unwrap();
    let back: PlanRequest = serde_json::from_str(&text).unwrap();
    assert_eq!(back, custom);
}

#[test]
fn request_fields_default_like_the_paper() {
    let request: PlanRequest = serde_json::from_str(r#"{"network": "lenet_c"}"#).unwrap();
    assert_eq!(request.batch, 256);
    assert_eq!(request.levels, 4);
    assert_eq!(request.strategy, Strategy::Hypar);
    assert_eq!(request.topology, Topology::HTree);
    assert!(!request.simulate);
}

#[test]
fn response_json_round_trips_with_simulation() {
    let engine = PlanEngine::new();
    let response = engine
        .plan(&PlanRequest::zoo("Lenet-c").levels(2).simulate(true))
        .unwrap();
    assert!(response.simulation.is_some());
    let text = serde_json::to_string(&response).unwrap();
    let back: PlanResponse = serde_json::from_str(&text).unwrap();
    assert_eq!(back, response);
}

#[test]
fn explicit_assignments_reproduce_baselines() {
    let engine = PlanEngine::new();
    // Lenet-c has four weighted layers; all-zeros is Data Parallelism.
    let explicit = engine
        .plan(
            &PlanRequest::zoo("Lenet-c")
                .levels(2)
                .assignments(vec!["0000".to_owned(); 2]),
        )
        .unwrap();
    let dp = engine
        .plan(&PlanRequest::zoo("Lenet-c").levels(2).strategy(Strategy::Dp))
        .unwrap();
    assert_eq!(explicit.total_comm_elems, dp.total_comm_elems);
    assert_eq!(explicit.plan.levels(), dp.plan.levels());
}

#[test]
fn exhaustive_meets_or_beats_the_greedy_search() {
    let engine = PlanEngine::new();
    let greedy = engine.plan(&PlanRequest::zoo("Lenet-c").levels(3)).unwrap();
    let joint = engine
        .plan(
            &PlanRequest::zoo("Lenet-c")
                .levels(3)
                .strategy(Strategy::Exhaustive),
        )
        .unwrap();
    assert!(joint.total_comm_elems <= greedy.total_comm_elems + 1e-9);
}

#[test]
fn simulation_is_attached_and_consistent() {
    let engine = PlanEngine::new();
    let response = engine
        .plan(&PlanRequest::zoo("SCONV").levels(4).simulate(true))
        .unwrap();
    let report = response.simulation.expect("simulation requested");
    assert!(report.step_time.value() > 0.0);
    assert_eq!(report.num_accelerators, 16);
    let model_bytes = response.total_comm_bytes;
    assert!((report.comm_bytes.value() - model_bytes).abs() <= 1e-6 * model_bytes.max(1.0));
}

#[test]
fn errors_are_reported_not_panicked() {
    let engine = PlanEngine::new();
    assert!(matches!(
        engine.plan(&PlanRequest::zoo("ResNet-50")),
        Err(EngineError::UnknownNetwork(_))
    ));
    assert!(matches!(
        engine.plan(&PlanRequest::zoo("SFC").strategy(Strategy::Explicit)),
        Err(EngineError::InvalidRequest(_))
    ));
    assert!(matches!(
        engine.plan(
            &PlanRequest::zoo("SFC")
                .levels(2)
                .assignments(vec!["01".to_owned(); 2])
        ),
        Err(EngineError::InvalidRequest(_)) // SFC has 4 layers, not 2
    ));
    assert!(matches!(
        engine.plan(&PlanRequest::zoo("SFC").levels(17)),
        Err(EngineError::InvalidRequest(_)) // beyond the 2^16-accelerator cap
    ));
    let zero_kernel = CustomNetwork {
        name: None,
        input: InputSpec {
            channels: 1,
            height: 8,
            width: 8,
        },
        layers: vec![LayerSpec {
            kernel: Some(0),
            ..conv_layer()
        }],
    };
    assert!(matches!(
        engine.plan(&PlanRequest::custom(zero_kernel)),
        Err(EngineError::InvalidNetwork(_)) // kernel = 0 must not underflow
    ));
    assert!(matches!(
        engine.plan(&PlanRequest::zoo("VGG-E").strategy(Strategy::Exhaustive)),
        Err(EngineError::InvalidRequest(_)) // 19 layers x 4 levels >> 24 slots
    ));
    // Errors never poison the cache.
    assert_eq!(engine.cache_stats().entries, 0);
}

#[test]
fn thirty_layer_exhaustive_request_is_rejected_not_panicked() {
    // Regression: the brute-force module used to enforce its feasibility
    // bound with `assert!`, so a crafted service request could unwind a
    // worker thread.  A 30-layer exhaustive request must now come back as
    // a typed error at any hierarchy depth.
    let engine = PlanEngine::new();
    let wide = CustomNetwork {
        name: Some("wide".to_owned()),
        input: InputSpec {
            channels: 1,
            height: 1,
            width: 64,
        },
        layers: (0..30).map(|_| fc_layer(64)).collect(),
    };
    for levels in [1usize, 4, 16] {
        let err = engine
            .plan(
                &PlanRequest::custom(wide.clone())
                    .levels(levels)
                    .strategy(Strategy::Exhaustive),
            )
            .unwrap_err();
        assert!(
            matches!(err, EngineError::InvalidRequest(_)),
            "levels {levels}: {err}"
        );
        assert!(err.to_string().contains("slots"), "{err}");
    }
    // The degenerate 0-level request is feasible (one empty plan) and must
    // answer, not panic.
    let trivial = engine
        .plan(
            &PlanRequest::custom(wide)
                .levels(0)
                .strategy(Strategy::Exhaustive),
        )
        .unwrap();
    assert_eq!(trivial.accelerators, 1);
    assert_eq!(trivial.total_comm_elems, 0.0);
}
