//! Coverage-guided mutation fuzzing over raw request bytes, closing
//! the ROADMAP's "fuzz the request parser" item.
//!
//! The analyzer's `--self-fuzz` loop is reused shape-for-shape, aimed
//! at the service boundary instead of the lexer: a deterministic LCG
//! (same seed → same mutants, so a CI failure reproduces locally)
//! mutates a corpus of valid and hostile request lines and pushes every
//! mutant through the full [`service::handle_line`] path, asserting
//!
//! 1. **no panic** — a panicking request handler aborts the service,
//!    the exact failure class `panic-path`/`panic-reach` gate against;
//! 2. **always a JSON reply** — every input, however mangled, yields a
//!    single parseable JSON line (a plan or a typed error);
//! 3. **bounded latency** — no mutant may stall the loop (planning work
//!    is capped by `MAX_LEVELS`, parsing by the JSON depth bound).
//!
//! **Coverage feedback**: each mutant's signature is (reply class,
//! input-length bucket, bracket-nesting bucket).  A mutant reaching a
//! new signature joins the corpus, so later mutations explore outward
//! from inputs that already proved interesting — the same AFL-style
//! loop as `hypar-analyzer --self-fuzz`, with reply classes standing in
//! for branch edges.

use std::collections::BTreeSet;
use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use hypar_engine::{service, PlanEngine};
use serde_json::Value;

/// Seed lines spanning the request grammar: valid chain/graph plans,
/// admin commands, and the adversarial shapes the service must refuse.
const CORPUS: &[&str] = &[
    r#"{"network": "lenet_c", "levels": 2}"#,
    r#"{"network": "vgg_a", "levels": 3, "strategy": "hypar"}"#,
    r#"{"network": "sfc", "strategy": "data"}"#,
    r#"{"network": "resnet18", "levels": 2}"#,
    r#"{"cmd": "stats"}"#,
    r#"{"network": {"nodes": []}}"#,
    r#"{"network": "vgg_a", "levels": -1}"#,
    r#"{"network": "vgg_a", "strategy": "quantum"}"#,
    r#"{"network": 42}"#,
    "{nope",
    r#""just a string""#,
    "[[[[0]]]]",
];

/// Mutants larger than this are truncated: size growth is the
/// duplication operator's job to *probe*, not a way to turn one mutant
/// into a multi-second parse.
const MAX_MUTANT_BYTES: usize = 1 << 14;

/// Per-mutant wall budget.  Generous — the service's own bounds
/// (`MAX_LEVELS`, the JSON depth/size limits) keep real replies far
/// below it even on debug builds.
const MUTANT_BUDGET: Duration = Duration::from_secs(5);

/// Deterministic 64-bit LCG (Knuth's MMIX multiplier).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 16
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next() % n as u64) as usize
        }
    }
}

/// Bytes likely to flip the JSON parser's state when inserted.
const INTERESTING: &[u8] = &[
    b'"', b'\\', b'{', b'}', b'[', b']', b':', b',', b'-', b'0', b'9', b'e', b'.', b'n', b't',
    b'f', b' ', b'\n', 0x00, 0xFF, 0xC3, 0xE2,
];

fn mutate(rng: &mut Rng, bytes: &mut Vec<u8>) {
    match rng.below(4) {
        0 if !bytes.is_empty() => {
            let at = rng.below(bytes.len());
            bytes[at] = INTERESTING[rng.below(INTERESTING.len())];
        }
        1 => {
            let at = rng.below(bytes.len() + 1);
            bytes.insert(at, INTERESTING[rng.below(INTERESTING.len())]);
        }
        2 if bytes.len() > 2 => {
            let start = rng.below(bytes.len());
            let end = (start + 1 + rng.below(16)).min(bytes.len());
            bytes.drain(start..end);
        }
        _ if !bytes.is_empty() => {
            let start = rng.below(bytes.len());
            let end = (start + 1 + rng.below(32)).min(bytes.len());
            let chunk: Vec<u8> = bytes[start..end].to_vec();
            let at = rng.below(bytes.len() + 1);
            bytes.splice(at..at, chunk);
        }
        _ => {}
    }
    bytes.truncate(MAX_MUTANT_BYTES);
}

/// Reply classes the coverage signature distinguishes.
fn reply_class(reply: &str) -> u8 {
    let Ok(value) = serde_json::from_str::<Value>(reply) else {
        return 0; // never hit: the caller asserts parseability first
    };
    if let Some(message) = value.get("error").and_then(Value::as_str) {
        // Bucket errors by their leading word — parse errors, unknown
        // networks, invalid requests, ... each count once.
        let word = message.split_whitespace().next().unwrap_or("");
        2 + (word
            .bytes()
            .fold(0u8, |h, b| h.wrapping_mul(31).wrapping_add(b))
            % 13)
    } else {
        1 // a successful plan
    }
}

/// `(reply class, input-length bucket, bracket-nesting bucket)`.
fn signature(line: &str, reply: &str) -> (u8, u8, u8) {
    let len_bucket = (line.len().max(1).ilog2().min(15)) as u8;
    let mut depth = 0i32;
    let mut worst = 0i32;
    for b in line.bytes() {
        match b {
            b'{' | b'[' => {
                depth += 1;
                worst = worst.max(depth);
            }
            b'}' | b']' => depth -= 1,
            _ => {}
        }
    }
    let depth_bucket = (worst.clamp(0, 1 << 10) as u32).max(1).ilog2().min(10) as u8;
    (reply_class(reply), len_bucket, depth_bucket)
}

/// Runs `iterations` mutants and returns the coverage set plus the
/// retained-corpus size; panics (failing the test) on any violated
/// invariant.
fn run_fuzz(iterations: u64, seed: u64) -> (BTreeSet<(u8, u8, u8)>, usize) {
    let engine = PlanEngine::new();
    let mut rng = Rng(seed | 1);
    let mut corpus: Vec<Vec<u8>> = CORPUS.iter().map(|s| s.as_bytes().to_vec()).collect();
    let mut coverage: BTreeSet<(u8, u8, u8)> = BTreeSet::new();

    // Exercise the seeds themselves first: the corpus must already be
    // panic-free before mutation explores outward from it.
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        for i in 0..iterations {
            let base = &corpus[rng.below(corpus.len())];
            let mut bytes = base.clone();
            if i >= corpus.len() as u64 {
                mutate(&mut rng, &mut bytes);
            }
            let line = String::from_utf8_lossy(&bytes).into_owned();

            let started = Instant::now();
            let reply = service::handle_line(&engine, &line);
            let elapsed = started.elapsed();
            assert!(
                elapsed < MUTANT_BUDGET,
                "mutant {i} took {elapsed:?} (line: {} bytes)",
                line.len()
            );
            assert!(
                serde_json::from_str::<Value>(&reply).is_ok(),
                "mutant {i} got a non-JSON reply: {reply}"
            );
            assert!(!reply.contains('\n'), "replies are single lines: {reply:?}");

            if coverage.insert(signature(&line, &reply)) {
                corpus.push(bytes);
            }
        }
        (coverage, corpus.len())
    }));
    panic::set_hook(hook);
    match result {
        Ok(summary) => summary,
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
                .unwrap_or_else(|| "non-string panic".to_owned());
            panic!("request fuzzing panicked the service path: {message}");
        }
    }
}

#[test]
fn mutated_request_bytes_never_panic_and_always_reply_json() {
    let (coverage, retained) = run_fuzz(600, 0xC0FFEE);
    // The loop must actually discriminate inputs: several reply
    // classes (success + distinct error families) and several size /
    // nesting buckets, with the corpus growing beyond its seeds.
    assert!(
        coverage.len() >= 8,
        "coverage collapsed to {} signatures: {coverage:?}",
        coverage.len()
    );
    let classes: BTreeSet<u8> = coverage.iter().map(|&(c, _, _)| c).collect();
    assert!(
        classes.contains(&1),
        "at least one mutant must still plan successfully: {classes:?}"
    );
    assert!(
        classes.len() >= 3,
        "success plus multiple error families: {classes:?}"
    );
    assert!(
        retained > CORPUS.len(),
        "coverage feedback retained no new corpus entries"
    );
}

#[test]
fn request_fuzzing_is_deterministic() {
    let first = run_fuzz(200, 7);
    let second = run_fuzz(200, 7);
    assert_eq!(
        first, second,
        "same seed must reproduce the same coverage and corpus"
    );
}
