//! End-to-end tests of the `hypar-engine` binary: the stdin/stdout JSON
//! protocol and the scenario-file runner.

use std::io::Write;
use std::process::{Command, Stdio};

fn engine_bin() -> &'static str {
    env!("CARGO_BIN_EXE_hypar-engine")
}

/// Feeds `input` to the binary's stdin and returns (success, stdout).
fn run_with_stdin(args: &[&str], input: &str) -> (bool, String) {
    let mut child = Command::new(engine_bin())
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("stdin writes");
    let output = child.wait_with_output().expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

#[test]
fn answers_a_vgg_a_request_and_caches_the_repeat() {
    let request = r#"{"network": "vgg_a", "levels": 4, "batch": 256, "simulate": true}"#;
    let input = format!("{request}\n{request}\n{}\n", r#"{"cmd": "stats"}"#);
    let (ok, stdout) = run_with_stdin(&[], &input);
    assert!(ok, "{stdout}");

    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");

    let first: serde_json::Value = serde_json::from_str(lines[0]).expect("valid json");
    assert_eq!(
        first.get("network").and_then(serde_json::Value::as_str),
        Some("VGG-A")
    );
    assert_eq!(
        first.get("levels").and_then(serde_json::Value::as_u64),
        Some(4)
    );
    assert_eq!(
        first
            .get("accelerators")
            .and_then(serde_json::Value::as_u64),
        Some(16)
    );
    assert_eq!(
        first.get("cache_hit").and_then(serde_json::Value::as_bool),
        Some(false)
    );
    assert!(first.get("plan").is_some());
    assert!(
        first
            .get("simulation")
            .map(|s| !s.is_null())
            .unwrap_or(false),
        "simulate: true must attach a simulation report"
    );

    let second: serde_json::Value = serde_json::from_str(lines[1]).expect("valid json");
    assert_eq!(
        second.get("cache_hit").and_then(serde_json::Value::as_bool),
        Some(true),
        "repeated identical request must be served from the plan cache"
    );
    assert_eq!(second.get("fingerprint"), first.get("fingerprint"));

    let stats: serde_json::Value = serde_json::from_str(lines[2]).expect("valid json");
    let cache = stats.get("cache").expect("cache section");
    assert_eq!(
        cache.get("hits").and_then(serde_json::Value::as_u64),
        Some(1)
    );
    assert_eq!(
        cache.get("misses").and_then(serde_json::Value::as_u64),
        Some(1)
    );
    assert!(
        stats.get("metrics").is_some(),
        "legacy stats spelling now answers the full telemetry snapshot"
    );
}

#[test]
fn answers_a_branchy_dag_request_over_stdin() {
    let zoo = r#"{"network": "resnet18", "levels": 4, "batch": 64}"#;
    let inline = r#"{"network": {"name": "tiny-res", "input": {"channels": 8, "height": 16, "width": 16}, "nodes": [{"name": "stem", "kind": "conv", "out": 8, "kernel": 3}, {"name": "body", "kind": "conv", "out": 8, "kernel": 3}, {"name": "join", "kind": "add", "inputs": ["stem", "body"]}, {"name": "fc", "kind": "fc", "out": 10, "inputs": ["join"]}]}, "levels": 3, "batch": 32}"#;
    let input = format!("{zoo}\n{zoo}\n{inline}\n");
    let (ok, stdout) = run_with_stdin(&[], &input);
    assert!(ok, "{stdout}");

    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");

    let first: serde_json::Value = serde_json::from_str(lines[0]).expect("valid json");
    assert_eq!(
        first.get("network").and_then(serde_json::Value::as_str),
        Some("ResNet-18")
    );
    assert_eq!(
        first.get("cache_hit").and_then(serde_json::Value::as_bool),
        Some(false)
    );
    let layers = first
        .get("plan")
        .and_then(|p| p.get("layer_names"))
        .and_then(serde_json::Value::as_array)
        .expect("plan covers layers")
        .len();
    assert_eq!(layers, 21);

    let second: serde_json::Value = serde_json::from_str(lines[1]).expect("valid json");
    assert_eq!(
        second.get("cache_hit").and_then(serde_json::Value::as_bool),
        Some(true),
        "repeated identical DAG request must be served from the plan cache"
    );

    let third: serde_json::Value = serde_json::from_str(lines[2]).expect("valid json");
    assert_eq!(
        third.get("network").and_then(serde_json::Value::as_str),
        Some("tiny-res")
    );
    assert!(
        third
            .get("total_comm_elems")
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0)
            > 0.0
    );
}

#[test]
fn reports_errors_as_json_objects() {
    let input = "not json\n{\"network\": \"ResNet-50\"}\n";
    let (ok, stdout) = run_with_stdin(&[], input);
    assert!(ok, "protocol errors must not kill the service: {stdout}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2);
    for line in lines {
        let value: serde_json::Value = serde_json::from_str(line).expect("valid json");
        assert!(value.get("error").is_some(), "{line}");
    }
}

#[test]
fn runs_a_scenario_file() {
    let dir = std::env::temp_dir();
    let scenario_path = dir.join("hypar_engine_test_scenario.json");
    let json_path = dir.join("hypar_engine_test_scenario_out.json");
    std::fs::write(
        &scenario_path,
        r#"{
            "name": "test-sweep",
            "requests": [
                {"network": "lenet_c", "levels": 2},
                {"network": "lenet_c", "levels": 2},
                {"network": "lenet_c", "levels": 2, "strategy": "dp"}
            ]
        }"#,
    )
    .expect("scenario written");

    let output = Command::new(engine_bin())
        .args([
            "--scenarios",
            scenario_path.to_str().unwrap(),
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("test-sweep"), "{stdout}");
    assert!(
        stdout.contains("cached"),
        "duplicate request must show as cached: {stdout}"
    );

    let payload = std::fs::read_to_string(&json_path).expect("json written");
    let reports: serde_json::Value = serde_json::from_str(&payload).expect("valid json");
    let entries = reports
        .as_array()
        .and_then(|r| r[0].get("entries"))
        .and_then(serde_json::Value::as_array)
        .expect("entries array")
        .len();
    assert_eq!(entries, 3);

    let _ = std::fs::remove_file(&scenario_path);
    let _ = std::fs::remove_file(&json_path);
}

#[test]
fn rejects_unknown_arguments() {
    let output = Command::new(engine_bin())
        .arg("--frobnicate")
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown argument"));
}
