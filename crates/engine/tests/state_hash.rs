//! Property tests of the canonical `state_hash`: invariance under DAG
//! node-insertion order, and sensitivity to every plan bit and to
//! one-ulp cost drift.

use hypar_comm::Parallelism;
use hypar_core::HierarchicalPlan;
use hypar_engine::{GraphNodeSpec, GraphSpec, InputSpec, PlanEngine, PlanRequest, PlanResponse};
use proptest::prelude::*;

fn graph_node(name: &str, kind: &str, inputs: &[&str]) -> GraphNodeSpec {
    GraphNodeSpec {
        name: name.to_owned(),
        kind: kind.to_owned(),
        out: None,
        kernel: None,
        stride: None,
        padding: None,
        pool: None,
        inputs: Some(inputs.iter().map(|s| (*s).to_owned()).collect()),
    }
}

/// The tiny residual block, fully wired so every listing order is a
/// valid spec, listed in the order selected by `order`.
fn tiny_res_spec(order: &[usize]) -> GraphSpec {
    let nodes = [
        GraphNodeSpec {
            out: Some(8),
            kernel: Some(3),
            ..graph_node("stem", "conv", &["input"])
        },
        GraphNodeSpec {
            out: Some(8),
            kernel: Some(3),
            ..graph_node("body", "conv", &["stem"])
        },
        graph_node("join", "add", &["stem", "body"]),
        GraphNodeSpec {
            out: Some(10),
            ..graph_node("fc", "fc", &["join"])
        },
    ];
    GraphSpec {
        name: Some("tiny-res".to_owned()),
        input: InputSpec {
            channels: 8,
            height: 16,
            width: 16,
        },
        nodes: order.iter().map(|&i| nodes[i].clone()).collect(),
    }
}

/// Re-plans on a fresh engine (no cache sharing — the hash must be
/// *recomputed*, not replayed, for the invariance to mean anything).
fn fresh_plan(request: &PlanRequest) -> PlanResponse {
    PlanEngine::new().plan(request).expect("request plans")
}

/// Rebuilds `response.plan` with `mutate`d levels and re-stamps the
/// response's hash, mimicking a build that genuinely produced the
/// mutated plan.
fn with_mutated_plan(
    response: &PlanResponse,
    mutate: impl FnOnce(&mut Vec<Vec<Parallelism>>, &mut f64),
) -> PlanResponse {
    let mut levels = response.plan.levels().to_vec();
    let mut cost = response.plan.total_comm_elems();
    mutate(&mut levels, &mut cost);
    let mut mutated = response.clone();
    mutated.plan = HierarchicalPlan::from_parts(
        mutated.plan.network().to_owned(),
        mutated.plan.layer_names().to_vec(),
        levels,
        cost,
    );
    mutated.state_hash = mutated.compute_state_hash();
    mutated
}

fn flip(p: Parallelism) -> Parallelism {
    match p {
        Parallelism::Data => Parallelism::Model,
        Parallelism::Model => Parallelism::Data,
    }
}

#[test]
fn cold_hot_and_fresh_hashes_agree_and_rederive() {
    let engine = PlanEngine::new();
    let request = PlanRequest::zoo("lenet_c").levels(3).simulate(true);
    let cold = engine.plan(&request).unwrap();
    let hot = engine.plan(&request).unwrap();
    assert!(!cold.cache_hit && hot.cache_hit);
    assert_eq!(cold.state_hash, hot.state_hash);
    assert_eq!(cold.state_hash, fresh_plan(&request).state_hash);
    assert_eq!(cold.state_hash, cold.compute_state_hash());
    assert_eq!(cold.state_hash.len(), 16, "{}", cold.state_hash);

    // Tracing is excluded from the hash, exactly like the fingerprint.
    let traced = fresh_plan(&request.clone().trace(true));
    assert!(traced.timing.is_some());
    assert_eq!(cold.state_hash, traced.state_hash);
}

#[test]
fn every_plan_bit_is_hash_visible() {
    let response = fresh_plan(&PlanRequest::zoo("lenet_c").levels(2));
    let baseline = response.compute_state_hash();
    for h in 0..response.plan.num_levels() {
        for l in 0..response.plan.num_layers() {
            let mutated = with_mutated_plan(&response, |levels, _| {
                levels[h][l] = flip(levels[h][l]);
            });
            assert_ne!(
                baseline, mutated.state_hash,
                "flipping layer {l} level {h} must change the hash"
            );
        }
    }
}

proptest! {
    /// The state hash is invariant under DAG node-insertion order: the
    /// engine canonicalizes node order before planning or hashing, so any
    /// listing of the same wired nodes re-derives the same digest — on a
    /// fresh engine each time, so nothing is served from a cache.
    #[test]
    fn state_hash_invariant_under_dag_insertion_order(
        keys in proptest::collection::vec(any::<u64>(), 4..5)
    ) {
        let mut order: Vec<usize> = (0..4).collect();
        order.sort_by_key(|&i| keys[i]);

        let canonical = fresh_plan(&PlanRequest::graph(tiny_res_spec(&[0, 1, 2, 3])).batch(32));
        let permuted = fresh_plan(&PlanRequest::graph(tiny_res_spec(&order)).batch(32));
        prop_assert_eq!(&canonical.state_hash, &permuted.state_hash,
            "order {:?} must re-derive the canonical hash", order);
        prop_assert_eq!(&canonical.fingerprint, &permuted.fingerprint);
    }

    /// Any single flipped dp/mp bit changes the hash.
    #[test]
    fn state_hash_sees_any_flipped_bit(h in 0usize..2, l in 0usize..64) {
        let response = fresh_plan(&PlanRequest::zoo("lenet_c").levels(2));
        let l = l % response.plan.num_layers();
        let mutated = with_mutated_plan(&response, |levels, _| {
            levels[h][l] = flip(levels[h][l]);
        });
        prop_assert_ne!(&response.state_hash, &mutated.state_hash);
    }

    /// Cost drift changes the hash even at one-ulp scale (bit-exact
    /// hashing, not epsilon comparison).
    #[test]
    fn state_hash_sees_cost_drift(ulps in 1u64..1_000) {
        let response = fresh_plan(&PlanRequest::zoo("lenet_c").levels(2));
        let mutated = with_mutated_plan(&response, |_, cost| {
            *cost = f64::from_bits(cost.to_bits() + ulps);
        });
        prop_assert_ne!(&response.state_hash, &mutated.state_hash);
    }
}
