//! The engine's telemetry surface, end to end: per-request span traces,
//! the metrics registry behind `metrics_snapshot`, and the service's
//! `{"stats": true}` admin command.

use hypar_engine::{service, PlanEngine, PlanRequest, Strategy};
use serde::Value;

#[test]
fn traced_request_returns_a_span_tree_untraced_does_not() {
    let engine = PlanEngine::new();
    let plain = engine
        .plan(&PlanRequest::zoo("vgg_a").levels(4).batch(256))
        .unwrap();
    assert!(plain.timing.is_none(), "untraced requests carry no timing");

    let traced = engine
        .plan(&PlanRequest::zoo("alexnet").levels(4).batch(256).trace(true))
        .unwrap();
    let timing = traced.timing.expect("traced requests carry timing");
    assert_eq!(timing.trace.name, "plan");
    assert_eq!(timing.total_ns, timing.trace.duration_ns);
    let compute = timing.trace.find("compute").expect("cache-miss compute");
    assert!(
        compute.find("search").is_some(),
        "chain strategies record a `search` child: {:?}",
        timing.trace
    );
    assert!(timing.trace.find("resolve").is_some());
    assert!(timing.trace.find("cache_lookup").is_some());
}

#[test]
fn trace_flag_is_excluded_from_the_fingerprint() {
    // Traced and untraced versions of the same workload must share one
    // cache entry: the flag changes what the caller gets back, not what
    // gets planned.
    let engine = PlanEngine::new();
    let base = PlanRequest::zoo("vgg_a").levels(4).batch(256);
    let plain = engine.plan(&base).unwrap();
    assert!(!plain.cache_hit);

    let traced = engine.plan(&base.clone().trace(true)).unwrap();
    assert!(traced.cache_hit, "traced repeat must hit the shared entry");
    assert_eq!(traced.fingerprint, plain.fingerprint);
    assert_eq!(traced.plan, plain.plan);
    let timing = traced.timing.expect("hits still report timing");
    assert!(
        timing.trace.find("compute").is_none(),
        "a cache hit never reaches compute"
    );
    assert!(timing.trace.find("cache_lookup").is_some());
}

#[test]
fn traced_refined_resnet_sweeps_match_the_stats_counter() {
    // The ISSUE's acceptance check: a traced `refined` plan of the
    // branchy ResNet-18 DAG reports its coordinate-descent sweep count in
    // the span tree, and the engine-wide counter agrees exactly (fresh
    // engine, so this request is the only contributor).
    let engine = PlanEngine::new();
    let response = engine
        .plan(
            &PlanRequest::zoo("resnet18")
                .levels(4)
                .batch(64)
                .strategy(Strategy::Refined)
                .trace(true),
        )
        .unwrap();
    let timing = response.timing.expect("traced");
    let refine = timing.trace.find("refine").expect("refine span");
    let sweeps = refine.counter("sweeps").expect("sweeps counter");
    let flips = refine.counter("flips").expect("flips counter");
    assert!(sweeps >= 1, "descent always runs the certifying sweep");

    let snapshot = engine.metrics_snapshot();
    assert_eq!(snapshot.counter("refine_sweeps"), Some(sweeps));
    assert_eq!(snapshot.counter("refine_flips"), Some(flips));
    // The DAG path also decomposes into segments before refining.
    let plan_segments = timing.trace.find("plan_segments").expect("segments");
    assert_eq!(
        snapshot.counter("segments_planned"),
        plan_segments.counter("segments")
    );
    assert!(timing.trace.find("stitch").is_some());
}

#[test]
fn metrics_snapshot_counters_are_monotone_and_consistent() {
    let engine = PlanEngine::new();
    let base = PlanRequest::zoo("lenet_c").levels(3);
    for batch in [32, 64, 128] {
        engine.plan(&base.clone().batch(batch)).unwrap();
    }
    let first = engine.metrics_snapshot();
    assert_eq!(first.counter("requests"), Some(3));
    assert_eq!(first.counter("errors"), Some(0));
    assert_eq!(first.gauge("inflight"), Some(0));
    let latency = first.histogram("plan_latency_ns").expect("latency");
    assert_eq!(latency.count, 3);
    assert!(latency.p50 <= latency.p99);

    // Replays hit the cache: requests grows, compute does not.
    for batch in [32, 64, 128] {
        engine.plan(&base.clone().batch(batch)).unwrap();
    }
    let second = engine.metrics_snapshot();
    assert_eq!(second.counter("requests"), Some(6));
    assert_eq!(
        second.histogram("plan_compute_ns").map(|h| h.count),
        first.histogram("plan_compute_ns").map(|h| h.count),
        "cache hits must not re-record compute latency"
    );
    let stats = engine.cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        second.counter("requests").unwrap(),
        "every request is exactly one cache lookup"
    );
}

#[test]
fn plan_many_burst_keeps_stats_consistent() {
    // A parallel burst with repeats: whatever the interleaving, every
    // request performs exactly one lookup, so hits + misses == requests.
    let engine = PlanEngine::new();
    let requests: Vec<PlanRequest> = (0..24)
        .map(|i| PlanRequest::zoo("sfc").levels(2).batch(16 << (i % 3)))
        .collect();
    let results = engine.plan_many(&requests);
    assert_eq!(results.len(), 24);
    assert!(results.iter().all(Result::is_ok));

    let stats = engine.cache_stats();
    let snapshot = engine.metrics_snapshot();
    assert_eq!(snapshot.counter("requests"), Some(24));
    assert_eq!(stats.hits + stats.misses, 24);
    // Concurrent misses of the same fingerprint may compute redundantly,
    // but at least one miss per distinct workload is guaranteed.
    assert!(stats.misses >= 3, "3 distinct workloads: {stats:?}");
    assert_eq!(snapshot.gauge("inflight"), Some(0));
    let latency = snapshot.histogram("plan_latency_ns").expect("latency");
    assert_eq!(latency.count, 24);
}

#[test]
fn failed_requests_count_as_errors() {
    let engine = PlanEngine::new();
    let err = engine.plan(&PlanRequest::zoo("no-such-net").levels(2));
    assert!(err.is_err());
    let snapshot = engine.metrics_snapshot();
    assert_eq!(snapshot.counter("requests"), Some(1));
    assert_eq!(snapshot.counter("errors"), Some(1));
    assert_eq!(snapshot.gauge("inflight"), Some(0));
}

#[test]
fn service_stats_command_tracks_a_burst() {
    // Satellite check: drive the service front-end with a burst and read
    // the `{"stats": true}` snapshot back as plain JSON.
    let engine = PlanEngine::new();
    for line in [
        r#"{"network": "sfc", "levels": 2}"#,
        r#"{"network": "sfc", "levels": 2}"#,
        r#"{"network": "lenet_c", "levels": 3}"#,
    ] {
        let reply = service::handle_line(&engine, line);
        assert!(!reply.contains("\"error\""), "{reply}");
    }
    let reply = service::handle_line(&engine, r#"{"stats": true}"#);
    let value: Value = serde_json::from_str(&reply).unwrap();
    let cache = value.get("cache").expect("cache section");
    let hits = cache.get("hits").and_then(Value::as_u64).unwrap();
    let misses = cache.get("misses").and_then(Value::as_u64).unwrap();
    let metrics = value.get("metrics").expect("metrics section");
    let counters = metrics.get("counters").expect("counters");
    assert_eq!(counters.get("requests").and_then(Value::as_u64), Some(3));
    assert_eq!(hits + misses, 3);
    assert_eq!(hits, 1, "the repeated sfc request hits");

    // The snapshot is monotone: another request can only grow it.
    let _ = service::handle_line(&engine, r#"{"network": "sfc", "levels": 2}"#);
    let again = service::handle_line(&engine, r#"{"stats": true}"#);
    let value: Value = serde_json::from_str(&again).unwrap();
    let requests = value
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("requests"))
        .and_then(Value::as_u64);
    assert_eq!(requests, Some(4));
}
