//! The validated DAG network and its builder.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use hypar_models::{ConvSpec, Layer, LayerShapes, Network};
use hypar_tensor::FeatureDims;

use crate::error::GraphError;
use crate::node::{GraphNode, NodeOp, INPUT};

/// A deep neural network as a directed acyclic graph: weighted layers plus
/// `add`/`concat` joins, wired by named edges.
///
/// Instances are created through [`GraphBuilder`], which validates the
/// graph by resolving every edge, rejecting cycles and join shape
/// mismatches, and running one-pass shape inference over a topological
/// order.  An existing `DagNetwork` therefore always has consistent shapes
/// for any positive batch size.
///
/// Nodes are stored in a **canonical** topological order (ties broken by
/// node name), so two builders fed the same nodes in different insertion
/// orders produce *equal* networks — and, downstream, identical plans and
/// identical cache fingerprints.
///
/// # Examples
///
/// A three-layer residual block:
///
/// ```
/// use hypar_graph::{GraphBuilder, INPUT};
/// use hypar_models::ConvSpec;
/// use hypar_tensor::FeatureDims;
///
/// let mut g = GraphBuilder::new("tiny-res", FeatureDims::new(8, 16, 16));
/// g.conv("stem", ConvSpec::same(8, 3), INPUT)
///     .conv("body", ConvSpec::same(8, 3), "stem")
///     .add("join", &["stem", "body"])
///     .fully_connected("fc", 10, "join");
/// let dag = g.build()?;
/// assert_eq!(dag.num_layers(), 3);
/// assert!(!dag.is_chain());
/// # Ok::<(), hypar_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DagNetwork {
    name: String,
    input: FeatureDims,
    /// Nodes in canonical topological order.
    nodes: Vec<GraphNode>,
    /// Per node: its input references as indices into `nodes`; `None` is
    /// the graph input.
    resolved: Vec<Vec<Option<usize>>>,
    /// Per node: the per-sample output handed to consumers (post-pooling
    /// for layers).
    out_dims: Vec<FeatureDims>,
}

impl DagNetwork {
    /// The network's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-sample input feature dimensions.
    #[must_use]
    pub fn input(&self) -> FeatureDims {
        self.input
    }

    /// The nodes in canonical topological order.
    #[must_use]
    pub fn nodes(&self) -> &[GraphNode] {
        &self.nodes
    }

    /// Number of nodes (layers + joins).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of *weighted* layers (the planning units).
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.op().as_layer().is_some())
            .count()
    }

    /// The per-sample output shape of node `i` (post-pooling for layers).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn node_output(&self, i: usize) -> FeatureDims {
        self.out_dims[i]
    }

    /// Resolved input references of node `i` (`None` = graph input).
    pub(crate) fn resolved_inputs(&self, i: usize) -> &[Option<usize>] {
        &self.resolved[i]
    }

    /// Direct consumers of every node, in canonical order.
    pub(crate) fn consumers(&self) -> Vec<Vec<usize>> {
        let mut consumers = vec![Vec::new(); self.nodes.len()];
        for (i, inputs) in self.resolved.iter().enumerate() {
            for input in inputs.iter().flatten() {
                consumers[*input].push(i);
            }
        }
        consumers
    }

    /// The chain-property violation at node `i`, if any — the single
    /// criterion shared by [`DagNetwork::is_chain`] and
    /// [`DagNetwork::linearize`].
    fn chain_violation(&self, i: usize) -> Option<&'static str> {
        if self.nodes[i].op().is_join() {
            return Some("join ops imply branches");
        }
        let consumes_predecessor = match self.resolved[i][0] {
            None => i == 0,
            Some(p) => p + 1 == i,
        };
        (!consumes_predecessor).then_some("node does not consume its predecessor")
    }

    /// Whether the DAG is a single branch-free chain (every node a layer
    /// consuming its predecessor), i.e. whether [`DagNetwork::linearize`]
    /// succeeds.
    #[must_use]
    pub fn is_chain(&self) -> bool {
        (0..self.nodes.len()).all(|i| self.chain_violation(i).is_none())
    }

    /// Collapses a branch-free DAG into the chain IR's [`Network`], so
    /// chain-shaped DAGs flow through today's pipeline bit-identically.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotAChain`] when the DAG contains a join or
    /// any branching.
    pub fn linearize(&self) -> Result<Network, GraphError> {
        let mut builder = Network::builder(self.name.clone(), self.input);
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(why) = self.chain_violation(i) {
                return Err(GraphError::NotAChain {
                    node: node.name().to_owned(),
                    why,
                });
            }
            // `chain_violation` returning None above already proved this
            // node is a layer; keep the fallback typed anyway.
            let Some(layer) = node.op().as_layer() else {
                return Err(GraphError::NotAChain {
                    node: node.name().to_owned(),
                    why: "node is a join, not a layer",
                });
            };
            builder.layer(layer.clone());
        }
        // The graph already passed shape inference at build time, so the
        // chain revalidation cannot fail; keep the error typed regardless.
        builder.build().map_err(|e| GraphError::LayerShape {
            node: self.name.clone(),
            source: e,
        })
    }
}

impl fmt::Display for DagNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} (input {})", self.name, self.input)?;
        for (i, node) in self.nodes.iter().enumerate() {
            writeln!(f, "  {node}  [{}]", self.out_dims[i])?;
        }
        Ok(())
    }
}

/// Incrementally constructs a [`DagNetwork`] from named nodes and edges.
///
/// The builder is non-consuming (like
/// [`hypar_models::NetworkBuilder`]): configuration methods take
/// `&mut self` and [`GraphBuilder::build`] takes `&self`, so graphs can be
/// assembled in loops (as [`crate::zoo::resnet18`] does).  Nodes may be
/// inserted in any order; edges may reference nodes defined later.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    name: String,
    input: FeatureDims,
    nodes: Vec<GraphNode>,
}

impl GraphBuilder {
    /// Starts a graph with the given name and per-sample input shape.
    #[must_use]
    pub fn new(name: impl Into<String>, input: FeatureDims) -> Self {
        Self {
            name: name.into(),
            input,
            nodes: Vec::new(),
        }
    }

    /// Inserts a pre-constructed node.
    pub fn node(&mut self, node: GraphNode) -> &mut Self {
        self.nodes.push(node);
        self
    }

    /// Inserts a weighted-layer node consuming `from`.
    pub fn layer(&mut self, layer: Layer, from: impl Into<String>) -> &mut Self {
        self.node(GraphNode::layer(layer, from))
    }

    /// Inserts a convolutional node with default ReLU activation.
    pub fn conv(
        &mut self,
        name: impl Into<String>,
        spec: ConvSpec,
        from: impl Into<String>,
    ) -> &mut Self {
        self.layer(Layer::conv(name, spec), from)
    }

    /// Inserts a fully-connected node with default ReLU activation.
    pub fn fully_connected(
        &mut self,
        name: impl Into<String>,
        out_features: u64,
        from: impl Into<String>,
    ) -> &mut Self {
        self.layer(Layer::fully_connected(name, out_features), from)
    }

    /// Inserts an element-wise `add` join of the named branches.
    pub fn add(&mut self, name: impl Into<String>, from: &[&str]) -> &mut Self {
        self.node(GraphNode::add(name, from))
    }

    /// Inserts a channel-wise `concat` join of the named branches.
    pub fn concat(&mut self, name: impl Into<String>, from: &[&str]) -> &mut Self {
        self.node(GraphNode::concat(name, from))
    }

    /// Validates the graph and produces the immutable [`DagNetwork`].
    ///
    /// Validation, in order: node names (duplicates, the reserved
    /// [`INPUT`] name), edge resolution, fan-in rules (layers take exactly
    /// one input, joins at least two), acyclicity, one-pass shape
    /// inference over the canonical topological order (join fan-in shape
    /// agreement, layer hyper-parameter fit), and the single-layer-sink
    /// rule.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] encountered in the order above.
    pub fn build(&self) -> Result<DagNetwork, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }

        // Name resolution.
        let mut index_of: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.name() == INPUT {
                return Err(GraphError::ReservedName {
                    node: node.name().to_owned(),
                });
            }
            if index_of.insert(node.name(), i).is_some() {
                return Err(GraphError::DuplicateNode {
                    node: node.name().to_owned(),
                });
            }
        }
        let mut resolved: Vec<Vec<Option<usize>>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let mut inputs = Vec::with_capacity(node.inputs().len());
            for input in node.inputs() {
                if input == INPUT {
                    inputs.push(None);
                } else {
                    match index_of.get(input.as_str()) {
                        Some(&p) => inputs.push(Some(p)),
                        None => {
                            return Err(GraphError::UnknownInput {
                                node: node.name().to_owned(),
                                input: input.clone(),
                            })
                        }
                    }
                }
            }
            resolved.push(inputs);
        }

        // Fan-in rules.
        for (node, inputs) in self.nodes.iter().zip(&resolved) {
            match node.op() {
                NodeOp::Layer(_) if inputs.len() != 1 => {
                    return Err(GraphError::LayerFanIn {
                        node: node.name().to_owned(),
                        got: inputs.len(),
                    })
                }
                NodeOp::Add | NodeOp::Concat if inputs.len() < 2 => {
                    return Err(GraphError::JoinFanIn {
                        node: node.name().to_owned(),
                        got: inputs.len(),
                    })
                }
                _ => {}
            }
        }

        // Canonical topological order: Kahn's algorithm, ready set ordered
        // by node name so insertion order never leaks into the result.
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut consumers = vec![Vec::new(); n];
        for (i, inputs) in resolved.iter().enumerate() {
            for input in inputs.iter().flatten() {
                indegree[i] += 1;
                consumers[*input].push(i);
            }
        }
        let mut ready: BTreeSet<(&str, usize)> = indegree
            .iter()
            .enumerate()
            .filter(|&(_, d)| *d == 0)
            .map(|(i, _)| (self.nodes[i].name(), i))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&(name, i)) = ready.iter().next() {
            ready.remove(&(name, i));
            order.push(i);
            for &c in &consumers[i] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    ready.insert((self.nodes[c].name(), c));
                }
            }
        }
        if order.len() < n {
            // `order.len() < n` guarantees a stuck node exists; fall back
            // to the graph's own name rather than asserting it.
            let stuck = (0..n)
                .filter(|&i| indegree[i] > 0)
                .map(|i| self.nodes[i].name())
                .min()
                .unwrap_or(self.name.as_str());
            return Err(GraphError::Cycle {
                node: stuck.to_owned(),
            });
        }
        let mut new_index = vec![0usize; n];
        for (new, &old) in order.iter().enumerate() {
            new_index[old] = new;
        }
        let nodes: Vec<GraphNode> = order.iter().map(|&old| self.nodes[old].clone()).collect();
        let resolved: Vec<Vec<Option<usize>>> = order
            .iter()
            .map(|&old| {
                resolved[old]
                    .iter()
                    .map(|r| r.map(|p| new_index[p]))
                    .collect()
            })
            .collect();

        // One-pass shape inference over the topological order.
        let mut out_dims: Vec<FeatureDims> = Vec::with_capacity(n);
        for (i, node) in nodes.iter().enumerate() {
            let dims_of = |r: &Option<usize>| r.map_or(self.input, |p| out_dims[p]);
            let out = match node.op() {
                NodeOp::Layer(layer) => {
                    let shapes = LayerShapes::infer(layer, dims_of(&resolved[i][0]), 1).map_err(
                        |source| GraphError::LayerShape {
                            node: node.name().to_owned(),
                            source,
                        },
                    )?;
                    shapes.junction_out
                }
                NodeOp::Add => {
                    let first = dims_of(&resolved[i][0]);
                    for r in &resolved[i][1..] {
                        let got = dims_of(r);
                        if got != first {
                            return Err(GraphError::AddShapeMismatch {
                                node: node.name().to_owned(),
                                first,
                                mismatched: got,
                            });
                        }
                    }
                    first
                }
                NodeOp::Concat => {
                    let first = dims_of(&resolved[i][0]);
                    let mut channels = first.channels;
                    for r in &resolved[i][1..] {
                        let got = dims_of(r);
                        if got.height != first.height || got.width != first.width {
                            return Err(GraphError::ConcatShapeMismatch {
                                node: node.name().to_owned(),
                                first,
                                mismatched: got,
                            });
                        }
                        channels = channels.checked_add(got.channels).ok_or_else(|| {
                            GraphError::ChannelOverflow {
                                node: node.name().to_owned(),
                            }
                        })?;
                    }
                    FeatureDims::new(channels, first.height, first.width)
                }
            };
            out_dims.push(out);
        }

        // Exactly one sink, and it must be a weighted layer.
        let mut fan_out = vec![0usize; n];
        for inputs in &resolved {
            for input in inputs.iter().flatten() {
                fan_out[*input] += 1;
            }
        }
        let sinks: Vec<usize> = (0..n).filter(|&i| fan_out[i] == 0).collect();
        if sinks.len() > 1 {
            return Err(GraphError::MultipleSinks {
                sinks: sinks.iter().map(|&i| nodes[i].name().to_owned()).collect(),
            });
        }
        let sink = sinks[0];
        if nodes[sink].op().is_join() {
            return Err(GraphError::SinkNotLayer {
                node: nodes[sink].name().to_owned(),
            });
        }

        Ok(DagNetwork {
            name: self.name.clone(),
            input: self.input,
            nodes,
            resolved,
            out_dims,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypar_models::PoolSpec;

    fn tiny_residual() -> GraphBuilder {
        let mut g = GraphBuilder::new("tiny-res", FeatureDims::new(8, 16, 16));
        g.conv("stem", ConvSpec::same(8, 3), INPUT)
            .conv("body", ConvSpec::same(8, 3), "stem")
            .add("join", &["stem", "body"])
            .fully_connected("fc", 10, "join");
        g
    }

    #[test]
    fn residual_block_builds_and_infers_shapes() {
        let dag = tiny_residual().build().unwrap();
        assert_eq!(dag.num_nodes(), 4);
        assert_eq!(dag.num_layers(), 3);
        assert!(!dag.is_chain());
        // The add preserves its branches' shape.
        let join = dag
            .nodes()
            .iter()
            .position(|node| node.name() == "join")
            .unwrap();
        assert_eq!(dag.node_output(join), FeatureDims::new(8, 16, 16));
    }

    #[test]
    fn insertion_order_does_not_change_the_network() {
        let forward = tiny_residual().build().unwrap();
        let mut reversed = GraphBuilder::new("tiny-res", FeatureDims::new(8, 16, 16));
        reversed
            .fully_connected("fc", 10, "join")
            .add("join", &["stem", "body"])
            .conv("body", ConvSpec::same(8, 3), "stem")
            .conv("stem", ConvSpec::same(8, 3), INPUT);
        assert_eq!(forward, reversed.build().unwrap());
    }

    #[test]
    fn chain_dag_linearizes_to_the_chain_ir() {
        let mut g = GraphBuilder::new("chain", FeatureDims::new(1, 28, 28));
        g.layer(
            Layer::conv("conv1", ConvSpec::valid(20, 5)).with_pool(PoolSpec::max2()),
            INPUT,
        )
        .fully_connected("fc1", 10, "conv1");
        let dag = g.build().unwrap();
        assert!(dag.is_chain());
        let net = dag.linearize().unwrap();
        assert_eq!(net.num_layers(), 2);
        assert_eq!(net.name(), "chain");
        assert_eq!(net.layers()[0].name(), "conv1");
    }

    #[test]
    fn branchy_dag_refuses_to_linearize() {
        let err = tiny_residual().build().unwrap().linearize().unwrap_err();
        assert!(matches!(err, GraphError::NotAChain { .. }));
    }

    #[test]
    fn empty_graph_is_rejected() {
        let err = GraphBuilder::new("e", FeatureDims::flat(10))
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::Empty);
    }

    #[test]
    fn duplicate_and_reserved_names_are_rejected() {
        let mut g = GraphBuilder::new("d", FeatureDims::flat(10));
        g.fully_connected("fc", 10, INPUT)
            .fully_connected("fc", 10, "fc");
        assert!(matches!(
            g.build().unwrap_err(),
            GraphError::DuplicateNode { .. }
        ));
        let mut g = GraphBuilder::new("r", FeatureDims::flat(10));
        g.fully_connected(INPUT, 10, INPUT);
        assert!(matches!(
            g.build().unwrap_err(),
            GraphError::ReservedName { .. }
        ));
    }

    #[test]
    fn unknown_input_is_rejected() {
        let mut g = GraphBuilder::new("u", FeatureDims::flat(10));
        g.fully_connected("fc", 10, "ghost");
        assert_eq!(
            g.build().unwrap_err(),
            GraphError::UnknownInput {
                node: "fc".into(),
                input: "ghost".into()
            }
        );
    }

    #[test]
    fn cycles_are_rejected() {
        let mut g = GraphBuilder::new("c", FeatureDims::flat(10));
        g.fully_connected("a", 10, "b")
            .fully_connected("b", 10, "a");
        assert!(matches!(g.build().unwrap_err(), GraphError::Cycle { .. }));
    }

    #[test]
    fn join_fan_in_rules() {
        let mut g = GraphBuilder::new("j", FeatureDims::flat(10));
        g.fully_connected("a", 10, INPUT)
            .add("join", &["a"])
            .fully_connected("out", 10, "join");
        assert_eq!(
            g.build().unwrap_err(),
            GraphError::JoinFanIn {
                node: "join".into(),
                got: 1
            }
        );
    }

    #[test]
    fn add_shape_mismatch_is_rejected() {
        let mut g = GraphBuilder::new("m", FeatureDims::new(4, 8, 8));
        g.conv("a", ConvSpec::same(4, 3), INPUT)
            .conv("b", ConvSpec::same(8, 3), INPUT)
            .add("join", &["a", "b"])
            .fully_connected("out", 10, "join");
        assert!(matches!(
            g.build().unwrap_err(),
            GraphError::AddShapeMismatch { .. }
        ));
    }

    #[test]
    fn concat_sums_channels_and_checks_spatial_extents() {
        let mut g = GraphBuilder::new("cat", FeatureDims::new(4, 8, 8));
        g.conv("a", ConvSpec::same(4, 3), INPUT)
            .conv("b", ConvSpec::same(8, 1), INPUT)
            .concat("mixed", &["a", "b"])
            .fully_connected("out", 10, "mixed");
        let dag = g.build().unwrap();
        let mixed = dag
            .nodes()
            .iter()
            .position(|n| n.name() == "mixed")
            .unwrap();
        assert_eq!(dag.node_output(mixed), FeatureDims::new(12, 8, 8));

        let mut bad = GraphBuilder::new("cat", FeatureDims::new(4, 8, 8));
        bad.conv("a", ConvSpec::same(4, 3), INPUT)
            .layer(
                Layer::conv("b", ConvSpec::same(8, 1)).with_pool(PoolSpec::max2()),
                INPUT,
            )
            .concat("mixed", &["a", "b"])
            .fully_connected("out", 10, "mixed");
        assert!(matches!(
            bad.build().unwrap_err(),
            GraphError::ConcatShapeMismatch { .. }
        ));
    }

    #[test]
    fn multiple_sinks_are_rejected() {
        let mut g = GraphBuilder::new("s", FeatureDims::flat(10));
        g.fully_connected("a", 10, INPUT)
            .fully_connected("b", 10, INPUT);
        assert_eq!(
            g.build().unwrap_err(),
            GraphError::MultipleSinks {
                sinks: vec!["a".into(), "b".into()]
            }
        );
    }

    #[test]
    fn join_sink_is_rejected() {
        let mut g = GraphBuilder::new("js", FeatureDims::flat(10));
        g.fully_connected("a", 10, INPUT)
            .fully_connected("b", 10, INPUT)
            .add("join", &["a", "b"]);
        assert_eq!(
            g.build().unwrap_err(),
            GraphError::SinkNotLayer {
                node: "join".into()
            }
        );
    }

    #[test]
    fn layer_shape_errors_carry_the_node_name() {
        let mut g = GraphBuilder::new("bad", FeatureDims::new(1, 4, 4));
        g.conv("conv1", ConvSpec::valid(8, 7), INPUT);
        match g.build().unwrap_err() {
            GraphError::LayerShape { node, .. } => assert_eq!(node, "conv1"),
            other => panic!("expected LayerShape, got {other:?}"),
        }
    }

    #[test]
    fn display_lists_nodes_with_shapes() {
        let dag = tiny_residual().build().unwrap();
        let text = dag.to_string();
        assert!(text.contains("tiny-res"));
        assert!(text.contains("join: add"));
        assert!(text.contains("8x16x16"));
    }
}
