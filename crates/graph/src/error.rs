//! Typed errors for DAG construction, validation, and lowering.

use std::error::Error;
use std::fmt;

use hypar_models::NetworkError;
use hypar_tensor::FeatureDims;

/// Errors produced while building a [`crate::DagNetwork`], inferring its
/// shapes, or lowering it to the chain pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// The batch size is zero.
    ZeroBatch,
    /// Two nodes share a name.
    DuplicateNode {
        /// The repeated node name.
        node: String,
    },
    /// A node uses the reserved graph-input name (see [`crate::INPUT`]).
    ReservedName {
        /// The offending node name.
        node: String,
    },
    /// A node references an input that names no node (and is not the graph
    /// input).
    UnknownInput {
        /// The consuming node.
        node: String,
        /// The dangling input reference.
        input: String,
    },
    /// A weighted-layer node must consume exactly one input.
    LayerFanIn {
        /// The offending node.
        node: String,
        /// How many inputs it listed.
        got: usize,
    },
    /// A join node (`add`/`concat`) must consume at least two inputs.
    JoinFanIn {
        /// The offending node.
        node: String,
        /// How many inputs it listed.
        got: usize,
    },
    /// The edges contain a cycle through the named node.
    Cycle {
        /// One node on the cycle.
        node: String,
    },
    /// An `add` join received branches of different shapes.
    AddShapeMismatch {
        /// The join node.
        node: String,
        /// Shape of the first branch.
        first: FeatureDims,
        /// The disagreeing branch's shape.
        mismatched: FeatureDims,
    },
    /// A `concat` join received branches of different spatial extents.
    ConcatShapeMismatch {
        /// The join node.
        node: String,
        /// Shape of the first branch.
        first: FeatureDims,
        /// The disagreeing branch's shape.
        mismatched: FeatureDims,
    },
    /// A `concat` join's summed channel count overflows (untrusted specs
    /// can stack channel-doubling joins).
    ChannelOverflow {
        /// The join node.
        node: String,
    },
    /// The graph has more than one sink (unconsumed node).
    MultipleSinks {
        /// The sink node names, in canonical order.
        sinks: Vec<String>,
    },
    /// The graph's single sink is a join; the network output must come
    /// from a weighted layer.
    SinkNotLayer {
        /// The sink node.
        node: String,
    },
    /// A layer node's hyper-parameters do not fit the shape flowing into
    /// it.
    LayerShape {
        /// The offending node.
        node: String,
        /// The underlying shape-inference error.
        source: NetworkError,
    },
    /// [`crate::DagNetwork::linearize`] was asked to lower a DAG that is
    /// not a single branch-free chain.
    NotAChain {
        /// The node at which the chain property breaks.
        node: String,
        /// Why it breaks there.
        why: &'static str,
    },
    /// The stitcher (or the whole-graph plan evaluator) was handed
    /// per-segment plans or per-level assignments inconsistent with the
    /// graph: a missing/extra segment plan, plans disagreeing on the
    /// hierarchy depth, a plan not covering its segment's weighted
    /// layers, a level not covering the whole graph, or a segment with no
    /// weighted layers at all.
    StitchMismatch {
        /// Which consistency rule broke.
        what: &'static str,
        /// The count the graph requires.
        expected: usize,
        /// The count actually supplied.
        got: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "graph has no nodes"),
            Self::ZeroBatch => write!(f, "batch size must be positive"),
            Self::DuplicateNode { node } => write!(f, "duplicate node name `{node}`"),
            Self::ReservedName { node } => write!(
                f,
                "node name `{node}` is reserved for the graph input"
            ),
            Self::UnknownInput { node, input } => write!(
                f,
                "node `{node}` consumes `{input}`, which names no node (use `input` for the graph input)"
            ),
            Self::LayerFanIn { node, got } => write!(
                f,
                "layer node `{node}` must consume exactly one input, got {got}"
            ),
            Self::JoinFanIn { node, got } => write!(
                f,
                "join node `{node}` must consume at least two inputs, got {got}"
            ),
            Self::Cycle { node } => write!(f, "graph has a cycle through `{node}`"),
            Self::AddShapeMismatch {
                node,
                first,
                mismatched,
            } => write!(
                f,
                "add `{node}`: branch shape {mismatched} does not match {first}"
            ),
            Self::ConcatShapeMismatch {
                node,
                first,
                mismatched,
            } => write!(
                f,
                "concat `{node}`: branch spatial extent of {mismatched} does not match {first}"
            ),
            Self::ChannelOverflow { node } => {
                write!(f, "concat `{node}`: summed channel count overflows")
            }
            Self::MultipleSinks { sinks } => write!(
                f,
                "graph must have exactly one output, found {}: {}",
                sinks.len(),
                sinks.join(", ")
            ),
            Self::SinkNotLayer { node } => write!(
                f,
                "graph output `{node}` must be a weighted layer, not a join"
            ),
            Self::LayerShape { node, source } => write!(f, "node `{node}`: {source}"),
            Self::NotAChain { node, why } => {
                write!(f, "not a branch-free chain at `{node}`: {why}")
            }
            Self::StitchMismatch {
                what,
                expected,
                got,
            } => write!(f, "stitch mismatch: {what}: expected {expected}, got {got}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::LayerShape { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_node() {
        let err = GraphError::UnknownInput {
            node: "join".into(),
            input: "ghost".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("join"));
        assert!(msg.contains("ghost"));
    }

    #[test]
    fn layer_shape_chains_source() {
        let err = GraphError::LayerShape {
            node: "conv1".into(),
            source: NetworkError::ZeroBatch,
        };
        assert!(err.source().is_some());
        assert!(err.to_string().contains("conv1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
