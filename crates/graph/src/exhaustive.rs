//! Brute-force **joint** search over whole-DAG parallelism assignments.
//!
//! The segment-stitched planner ([`crate::partition_graph`]) is greedy in
//! two directions: Algorithm 2 commits level by level inside each segment,
//! and the segments are planned independently of the junction traffic
//! between them.  This module enumerates the full `2^{L·H}` joint space —
//! every dp/mp choice for every weighted layer of every segment at every
//! hierarchy level at once, with the inter-segment junctions priced by the
//! same `inter_segment_elems` model the stitcher uses — so the stitched
//! planner's *greedy gap* can be quantified on small branchy networks the
//! way Figures 9/10 quantify it for chains.
//!
//! The enumeration shares [`hypar_core::exhaustive`]'s validated
//! [`AssignmentSpace`] and feasibility bound; for a branch-free DAG (one
//! segment, no edges) the search — iteration order, cost arithmetic, and
//! tie-breaking — is bit-identical to [`hypar_core::exhaustive::best_joint`]
//! on the linearized chain (property-tested).

use hypar_comm::{inter_elems, JunctionScaling, Parallelism};
use hypar_core::exhaustive::{assignment_from_bits, assignment_space, ExhaustiveError};
use hypar_core::HierarchicalPlan;

use crate::segments::SegmentCommGraph;

/// Exhaustively finds the minimum-communication **joint** plan over all
/// segments and levels of a branchy DAG at once (`O(2^{L·H})`).
///
/// The returned plan concatenates the layers in canonical segment order —
/// the same layout [`crate::stitch`] produces — and its total is directly
/// comparable to the stitched planner's: both price intra-segment traffic
/// with [`hypar_core::evaluate::evaluate_plan`]'s model and junctions with
/// [`crate::inter_segment_elems`]'s.  The joint optimum is therefore a
/// lower bound on every stitched plan's cost.
///
/// Bit `h·L + l` of the enumeration is layer `l`'s choice at level `h`
/// (LSB first, `0` = dp, `1` = mp) — for a single-segment graph this is
/// exactly [`hypar_core::exhaustive::best_joint`]'s layout.
///
/// # Errors
///
/// Returns [`ExhaustiveError::Empty`] for a graph without weighted layers
/// and [`ExhaustiveError::TooLarge`] when `L·H` exceeds
/// [`hypar_core::exhaustive::SLOT_LIMIT`].
///
/// # Examples
///
/// ```
/// use hypar_graph::{exhaustive::best_joint_graph, partition_graph, zoo};
///
/// let graph = zoo::inception_mini().segments(64)?;   // 8 layers
/// let joint = best_joint_graph(&graph, 2).unwrap();  // 2^16 joint plans
/// let stitched = partition_graph(&graph, 2)?;
/// assert!(joint.total_comm_elems() <= stitched.total_comm_elems());
/// # Ok::<(), hypar_graph::GraphError>(())
/// ```
pub fn best_joint_graph(
    graph: &SegmentCommGraph,
    num_levels: usize,
) -> Result<HierarchicalPlan, ExhaustiveError> {
    best_joint_graph_with(graph, num_levels, JunctionScaling::Consumer)
}

/// [`best_joint_graph`] under an explicit [`JunctionScaling`]
/// interpretation (applied to intra-segment and inter-segment junctions
/// alike, matching [`crate::evaluate_graph_plan_with`]).
///
/// # Errors
///
/// Same as [`best_joint_graph`].
pub fn best_joint_graph_with(
    graph: &SegmentCommGraph,
    num_levels: usize,
    mode: JunctionScaling,
) -> Result<HierarchicalPlan, ExhaustiveError> {
    let num_layers = graph.num_layers();
    if num_layers == 0 {
        return Err(ExhaustiveError::Empty);
    }
    let space = assignment_space(num_layers * num_levels)?;

    // Flattened views so the inner loop is allocation-free: per-layer
    // tensors in canonical segment order, segment ranges, and edges
    // resolved to global boundary-layer indices.
    let layers: Vec<&hypar_comm::LayerCommTensors> =
        graph.segments().iter().flat_map(|s| s.layers()).collect();
    let mut ranges = Vec::with_capacity(graph.num_segments());
    let mut offset = 0;
    for segment in graph.segments() {
        ranges.push((offset, offset + segment.len()));
        offset += segment.len();
    }
    let edges: Vec<(usize, usize, f64)> = graph
        .edges()
        .iter()
        .map(|e| (ranges[e.from].1 - 1, ranges[e.to].0, e.elems))
        .collect();

    let choice = |bits: u64, h: usize, l: usize| -> Parallelism {
        Parallelism::from_bit(bits >> (h * num_layers + l) & 1 == 1)
    };
    // Accumulated tensor fractions per layer (reset per candidate): exact
    // powers of two, so the arithmetic matches `ScaleState` bit for bit.
    let mut bat = vec![1.0f64; num_layers];
    let mut fin = vec![1.0f64; num_layers];
    let junction_scale = |bat: &[f64], fin: &[f64], from: usize, to: usize| match mode {
        JunctionScaling::Consumer => bat[to] * fin[to],
        JunctionScaling::Producer => bat[from],
        JunctionScaling::Unscaled => 1.0,
    };

    let mut best_cost = f64::INFINITY;
    let mut best_bits = 0u64;
    for bits in space {
        bat.fill(1.0);
        fin.fill(1.0);
        let mut total = 0.0;
        for h in 0..num_levels {
            let weight = (1u64 << h) as f64;
            // Intra-layer and intra-segment junction terms, in the exact
            // accumulation order of `evaluate_plan` (intra sum then inter
            // sum per level) so single-segment costs are bit-identical to
            // the chain search's.
            let mut intra_sum = 0.0;
            let mut inter_sum = 0.0;
            for &(start, end) in &ranges {
                for l in start..end {
                    intra_sum += match choice(bits, h, l) {
                        Parallelism::Data => 2.0 * layers[l].weight_elems * fin[l],
                        Parallelism::Model => 2.0 * layers[l].output_elems * bat[l],
                    };
                }
                // Junctions between adjacent in-segment layers index the
                // scale scratch at both endpoints, so a range loop is the
                // clearest form here.
                #[allow(clippy::needless_range_loop)]
                for l in start..end.saturating_sub(1) {
                    let scale = junction_scale(&bat, &fin, l, l + 1);
                    inter_sum += inter_elems(
                        choice(bits, h, l),
                        choice(bits, h, l + 1),
                        layers[l].junction_elems,
                        scale,
                    );
                }
            }
            let mut edge_sum = 0.0;
            for &(from, to, elems) in &edges {
                let scale = junction_scale(&bat, &fin, from, to);
                edge_sum += inter_elems(choice(bits, h, from), choice(bits, h, to), elems, scale);
            }
            total += weight * (intra_sum + inter_sum) + weight * edge_sum;
            for l in 0..num_layers {
                match choice(bits, h, l) {
                    Parallelism::Data => bat[l] *= 0.5,
                    Parallelism::Model => fin[l] *= 0.5,
                }
            }
        }
        if total < best_cost {
            best_cost = total;
            best_bits = bits;
        }
    }

    let levels: Vec<Vec<Parallelism>> = (0..num_levels)
        .map(|h| assignment_from_bits(best_bits >> (h * num_layers), num_layers))
        .collect();
    let names = layers.iter().map(|l| l.name.clone()).collect();
    Ok(HierarchicalPlan::from_parts(
        graph.name(),
        names,
        levels,
        best_cost,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::GraphBuilder;
    use crate::node::INPUT;
    use crate::plan::{evaluate_graph_plan_with, partition_graph_with};
    use hypar_models::ConvSpec;
    use hypar_tensor::FeatureDims;

    fn tiny_residual_graph(batch: u64) -> SegmentCommGraph {
        let mut g = GraphBuilder::new("tiny-res", FeatureDims::new(8, 16, 16));
        g.conv("stem", ConvSpec::same(8, 3), INPUT)
            .conv("body", ConvSpec::same(8, 3), "stem")
            .add("join", &["stem", "body"])
            .fully_connected("fc", 10, "join");
        g.build().unwrap().segments(batch).unwrap()
    }

    #[test]
    fn joint_cost_matches_evaluate_graph_plan() {
        // The scratch evaluator inside the enumeration and the public
        // whole-graph evaluator must agree on the winning plan.
        let graph = tiny_residual_graph(32);
        for mode in [
            JunctionScaling::Consumer,
            JunctionScaling::Producer,
            JunctionScaling::Unscaled,
        ] {
            let joint = best_joint_graph_with(&graph, 3, mode).unwrap();
            let recomputed = evaluate_graph_plan_with(&graph, joint.levels(), mode).unwrap();
            assert!(
                (joint.total_comm_elems() - recomputed).abs() <= 1e-9 * recomputed.max(1.0),
                "{mode:?}: joint {} vs evaluated {recomputed}",
                joint.total_comm_elems()
            );
        }
    }

    #[test]
    fn joint_lower_bounds_the_stitched_planner() {
        let graph = tiny_residual_graph(32);
        for levels in [1usize, 2, 4] {
            let joint = best_joint_graph(&graph, levels).unwrap().total_comm_elems();
            let stitched = partition_graph_with(&graph, levels, JunctionScaling::Consumer)
                .unwrap()
                .total_comm_elems();
            assert!(
                joint <= stitched * (1.0 + 1e-12),
                "H{levels}: joint {joint} vs stitched {stitched}"
            );
        }
    }

    #[test]
    fn joint_plan_carries_canonical_layout() {
        let graph = tiny_residual_graph(32);
        let joint = best_joint_graph(&graph, 2).unwrap();
        assert_eq!(joint.network(), "tiny-res");
        assert_eq!(
            joint.layer_names(),
            &["stem".to_owned(), "body".to_owned(), "fc".to_owned()]
        );
        assert_eq!(joint.num_levels(), 2);
    }

    #[test]
    fn infeasible_and_empty_graphs_are_typed_errors() {
        let graph = tiny_residual_graph(32);
        // 3 layers x 16 levels = 48 slots.
        assert_eq!(
            best_joint_graph(&graph, 16).unwrap_err(),
            ExhaustiveError::TooLarge { slots: 48 }
        );
    }

    #[test]
    fn zero_levels_joint_plan_is_trivial() {
        let graph = tiny_residual_graph(32);
        let joint = best_joint_graph(&graph, 0).unwrap();
        assert_eq!(joint.num_levels(), 0);
        assert_eq!(joint.total_comm_elems(), 0.0);
        assert_eq!(joint.num_accelerators(), 1);
    }
}
