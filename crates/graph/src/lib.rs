//! A DAG network IR for HyPar: branchy (ResNet/Inception-class) models
//! validated, decomposed into chain segments, and planned end to end
//! through the existing pipeline.
//!
//! The paper — and the chain IR in [`hypar_models`] — restricts networks
//! to a flat sequence of weighted layers, which makes residual and
//! multi-branch models unrepresentable.  This crate adds the missing
//! expressiveness without touching the partition search:
//!
//! * [`GraphBuilder`] / [`DagNetwork`] — a validated DAG whose nodes are
//!   the existing weighted [`hypar_models::Layer`]s plus [`NodeOp::Add`]
//!   and [`NodeOp::Concat`] joins, wired by named edges, with one-pass
//!   shape inference over a canonical topological order (cycles, dangling
//!   edges, and join shape mismatches are rejected as typed
//!   [`GraphError`]s);
//! * [`DagNetwork::linearize`] — collapses a branch-free DAG into the
//!   chain IR's [`hypar_models::Network`], so chain-shaped DAGs flow
//!   through today's pipeline bit-identically;
//! * [`DagNetwork::segments`] — decomposes a general DAG into maximal
//!   chain segments between joins/branch points, with per-segment
//!   communication tensors and explicit [`SegmentEdge`]s carrying the
//!   branch-forwarding / join-gradient-accumulation traffic;
//! * [`partition_graph`] / [`stitch`] — plan each segment with the
//!   unmodified [`hypar_core::hierarchical`] search and stitch the results
//!   into one whole-model [`hypar_core::HierarchicalPlan`], pricing every
//!   inter-segment junction with [`hypar_comm::inter_elems`] (each entry
//!   point has a `_with` variant taking an explicit
//!   [`hypar_comm::JunctionScaling`] interpretation);
//! * [`exhaustive`] — the `O(2^{L·H})` **joint** brute-force baseline over
//!   all segments and levels at once, quantifying the stitched planner's
//!   greedy gap on small branchy networks;
//! * [`refine`] — the junction-aware coordinate-descent pass
//!   ([`partition_graph_refined`]) that closes most of that gap
//!   polynomially: seeds from the stitched plan and re-decides each bit
//!   against the true whole-graph cost, boundary layers first, to a
//!   strict-improvement fixed point;
//! * [`zoo`] — ResNet-18-style and Inception-style builders, the branchy
//!   counterpart of the paper's ten-network chain zoo.
//!
//! # Examples
//!
//! ```
//! use hypar_graph::{partition_graph, zoo};
//!
//! let dag = zoo::resnet18();
//! let graph = dag.segments(64)?;           // batch 64
//! let plan = partition_graph(&graph, 4)?;  // 16 accelerators
//! assert_eq!(plan.num_layers(), dag.num_layers());
//! assert!(plan.total_comm_elems() > 0.0);
//! # Ok::<(), hypar_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dag;
mod error;
pub mod exhaustive;
mod node;
pub mod plan;
pub mod refine;
mod segments;
pub mod zoo;

pub use dag::{DagNetwork, GraphBuilder};
pub use error::GraphError;
pub use exhaustive::{best_joint_graph, best_joint_graph_with};
pub use node::{GraphNode, NodeOp, INPUT};
pub use plan::{
    evaluate_graph_plan, evaluate_graph_plan_with, inter_segment_elems, inter_segment_elems_with,
    partition_graph, partition_graph_refined, partition_graph_refined_with, partition_graph_with,
    plan_segments, plan_segments_with, stitch, stitch_with,
};
pub use refine::{refine_graph_plan, refine_graph_plan_with};
pub use segments::{SegmentCommGraph, SegmentEdge};
