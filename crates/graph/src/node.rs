//! DAG node operations: the chain IR's weighted [`Layer`]s plus the join
//! ops that make branchy topologies expressible.

use std::fmt;

use hypar_models::Layer;
use serde::{Deserialize, Serialize};

/// The reserved input reference naming the graph's input tensor.
///
/// A node listing `INPUT` among its inputs consumes the raw network input
/// (e.g. the image batch) rather than another node's output.
pub const INPUT: &str = "input";

/// What a DAG node computes.
///
/// `Layer` carries one of the chain IR's weighted layers unchanged — the
/// unit over which HyPar chooses a parallelism.  `Add` and `Concat` are the
/// two join ops of ResNet/Inception-class models; they own no weights and
/// (like activations, paper §3.1) contribute no *intra*-layer
/// communication — their cost is the branch forwarding and gradient
/// accumulation traffic modeled at segment boundaries (see
/// [`crate::SegmentCommGraph`]).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeOp {
    /// A weighted layer (conv or fc, with pooling/activation attachments).
    Layer(Layer),
    /// Element-wise sum of ≥ 2 identically-shaped branches (residual
    /// connections).
    Add,
    /// Channel-wise concatenation of ≥ 2 branches with equal spatial
    /// extents (inception modules).
    Concat,
}

impl NodeOp {
    /// The inner layer, when this is a weighted-layer node.
    #[must_use]
    pub fn as_layer(&self) -> Option<&Layer> {
        match self {
            Self::Layer(layer) => Some(layer),
            _ => None,
        }
    }

    /// Whether this is a join op (`Add` or `Concat`).
    #[must_use]
    pub fn is_join(&self) -> bool {
        matches!(self, Self::Add | Self::Concat)
    }
}

/// One node of a DAG network: an operation plus the names of the nodes (or
/// [`INPUT`]) it consumes.
///
/// Constructed through the typed helpers so that a layer node's name always
/// equals its inner [`Layer`]'s name.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GraphNode {
    name: String,
    op: NodeOp,
    inputs: Vec<String>,
}

impl GraphNode {
    /// A weighted-layer node consuming `from` (a node name or [`INPUT`]).
    /// The node is named after the layer.
    #[must_use]
    pub fn layer(layer: Layer, from: impl Into<String>) -> Self {
        Self {
            name: layer.name().to_owned(),
            op: NodeOp::Layer(layer),
            inputs: vec![from.into()],
        }
    }

    /// An element-wise `add` join of the named branches.
    #[must_use]
    pub fn add(name: impl Into<String>, from: &[&str]) -> Self {
        Self {
            name: name.into(),
            op: NodeOp::Add,
            inputs: from.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// A channel-wise `concat` join of the named branches.
    #[must_use]
    pub fn concat(name: impl Into<String>, from: &[&str]) -> Self {
        Self {
            name: name.into(),
            op: NodeOp::Concat,
            inputs: from.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// The node's unique name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's operation.
    #[must_use]
    pub fn op(&self) -> &NodeOp {
        &self.op
    }

    /// The names of the nodes this node consumes ([`INPUT`] for the graph
    /// input).
    #[must_use]
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }
}

impl fmt::Display for GraphNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.op {
            NodeOp::Layer(layer) => write!(f, "{layer}")?,
            NodeOp::Add => write!(f, "{}: add", self.name)?,
            NodeOp::Concat => write!(f, "{}: concat", self.name)?,
        }
        write!(f, "  <- {}", self.inputs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypar_models::ConvSpec;

    #[test]
    fn layer_node_is_named_after_its_layer() {
        let node = GraphNode::layer(Layer::conv("conv1", ConvSpec::valid(8, 3)), INPUT);
        assert_eq!(node.name(), "conv1");
        assert_eq!(node.inputs(), ["input"]);
        assert!(node.op().as_layer().is_some());
        assert!(!node.op().is_join());
    }

    #[test]
    fn join_constructors() {
        let add = GraphNode::add("res2a", &["a", "b"]);
        assert!(add.op().is_join());
        assert_eq!(add.inputs().len(), 2);
        let cat = GraphNode::concat("mixed", &["x", "y", "z"]);
        assert_eq!(*cat.op(), NodeOp::Concat);
        assert_eq!(cat.inputs().len(), 3);
    }

    #[test]
    fn display_shows_wiring() {
        let add = GraphNode::add("j", &["a", "b"]);
        assert_eq!(add.to_string(), "j: add  <- a, b");
    }
}
