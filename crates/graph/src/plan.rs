//! Whole-DAG planning: per-segment partition search stitched into one
//! [`HierarchicalPlan`] with inter-segment communication accounting.
//!
//! Every entry point has a `_with` variant taking an explicit
//! [`JunctionScaling`] interpretation; the unsuffixed functions use the
//! consumer scope (the default throughout the workspace, see DESIGN.md
//! §2), and the model-ablation experiment sweeps the alternatives on the
//! DAG path exactly as it does on chains.

use hypar_comm::{
    inter_elems, junction_scale_between, JunctionScaling, LayerScale, NetworkCommTensors,
    Parallelism,
};
use hypar_core::{evaluate::evaluate_plan_with, hierarchical, HierarchicalPlan};

use crate::segments::SegmentCommGraph;

/// Runs the full HyPar partition (Algorithm 2) independently on every
/// segment and stitches the results into a whole-model plan.
///
/// Segment-local planning is exact for the traffic Algorithm 2 models; the
/// junction traffic *between* segments is then priced under the committed
/// plans by [`inter_segment_elems`] and folded into the stitched total.
/// For a branch-free DAG (one segment, no edges) the result is
/// bit-identical to [`hierarchical::partition`] on the linearized chain.
///
/// # Panics
///
/// Panics if any segment has no weighted layers (impossible for a
/// [`SegmentCommGraph`] built by [`crate::DagNetwork::segments`]).
///
/// # Examples
///
/// ```
/// use hypar_graph::{partition_graph, zoo};
///
/// let graph = zoo::resnet18().segments(64)?;
/// let plan = partition_graph(&graph, 4);
/// assert_eq!(plan.num_accelerators(), 16);
/// assert_eq!(plan.num_layers(), 21);
/// # Ok::<(), hypar_graph::GraphError>(())
/// ```
#[must_use]
pub fn partition_graph(graph: &SegmentCommGraph, num_levels: usize) -> HierarchicalPlan {
    partition_graph_with(graph, num_levels, JunctionScaling::Consumer)
}

/// [`partition_graph`] under an explicit [`JunctionScaling`]
/// interpretation, applied both inside every segment's partition search
/// and to the inter-segment junction pricing.
///
/// # Panics
///
/// Same as [`partition_graph`].
#[must_use]
pub fn partition_graph_with(
    graph: &SegmentCommGraph,
    num_levels: usize,
    mode: JunctionScaling,
) -> HierarchicalPlan {
    plan_segments_with(graph, mode, |segment| {
        hierarchical::partition_with(segment, num_levels, mode)
    })
}

/// Plans every segment with `plan_segment` and stitches the results; the
/// hook is how baselines (dp/mp/"one weird trick") reuse the identical
/// stitching and inter-segment accounting as [`partition_graph`].
///
/// # Panics
///
/// Propagates panics from `plan_segment` and from [`stitch`].
#[must_use]
pub fn plan_segments(
    graph: &SegmentCommGraph,
    plan_segment: impl Fn(&NetworkCommTensors) -> HierarchicalPlan,
) -> HierarchicalPlan {
    plan_segments_with(graph, JunctionScaling::Consumer, plan_segment)
}

/// [`plan_segments`] with the inter-segment junctions priced under an
/// explicit [`JunctionScaling`] interpretation.
///
/// # Panics
///
/// Same as [`plan_segments`].
#[must_use]
pub fn plan_segments_with(
    graph: &SegmentCommGraph,
    mode: JunctionScaling,
    plan_segment: impl Fn(&NetworkCommTensors) -> HierarchicalPlan,
) -> HierarchicalPlan {
    let plans: Vec<HierarchicalPlan> = graph.segments().iter().map(plan_segment).collect();
    stitch_with(graph, &plans, mode)
}

/// Stitches per-segment plans into one whole-model [`HierarchicalPlan`]:
/// layer names and per-level assignments are concatenated in segment
/// order, and the total is the sum of the segment totals plus
/// [`inter_segment_elems`].
///
/// # Panics
///
/// Panics if `plans` does not supply exactly one plan per segment, or if
/// the plans disagree on the number of hierarchy levels.
#[must_use]
pub fn stitch(graph: &SegmentCommGraph, plans: &[HierarchicalPlan]) -> HierarchicalPlan {
    stitch_with(graph, plans, JunctionScaling::Consumer)
}

/// [`stitch`] with the inter-segment junctions priced under an explicit
/// [`JunctionScaling`] interpretation.
///
/// # Panics
///
/// Same as [`stitch`].
#[must_use]
pub fn stitch_with(
    graph: &SegmentCommGraph,
    plans: &[HierarchicalPlan],
    mode: JunctionScaling,
) -> HierarchicalPlan {
    assert_eq!(
        plans.len(),
        graph.num_segments(),
        "one plan per segment required"
    );
    let num_levels = plans.first().map_or(0, HierarchicalPlan::num_levels);
    assert!(
        plans.iter().all(|p| p.num_levels() == num_levels),
        "all segment plans must cover the same hierarchy depth"
    );

    let layer_names: Vec<String> = plans
        .iter()
        .flat_map(|p| p.layer_names().iter().cloned())
        .collect();
    let levels: Vec<Vec<Parallelism>> = (0..num_levels)
        .map(|h| {
            plans
                .iter()
                .flat_map(|p| p.levels()[h].iter().copied())
                .collect()
        })
        .collect();
    let total = plans
        .iter()
        .map(HierarchicalPlan::total_comm_elems)
        .sum::<f64>()
        + inter_segment_elems_with(graph, plans, mode);
    HierarchicalPlan::from_parts(graph.name(), layer_names, levels, total)
}

/// Array-wide inter-segment communication, in tensor elements, under the
/// given per-segment plans.
///
/// Each [`crate::SegmentEdge`] is a junction in the sense of the paper's
/// Table 2: the producing segment's last layer hands a tensor to the
/// consuming segment's first layer (forward), and the error flows back
/// (backward).  At hierarchy level `h` the junction's group-pair cost is
/// [`inter_elems`] under the two boundary layers' committed parallelisms,
/// scaled to the consumer's scope exactly as
/// [`hypar_comm::ScaleState::junction_scale`] scales a chain junction, and
/// weighted by the `2^h` group pairs of that level.
///
/// # Panics
///
/// Panics if `plans` does not match the graph's segments.
#[must_use]
pub fn inter_segment_elems(graph: &SegmentCommGraph, plans: &[HierarchicalPlan]) -> f64 {
    inter_segment_elems_with(graph, plans, JunctionScaling::Consumer)
}

/// [`inter_segment_elems`] under an explicit [`JunctionScaling`]
/// interpretation: the junction fraction follows the consumer's layout,
/// the producer's layout, or stays unscaled
/// ([`hypar_comm::junction_scale_between`]).
///
/// # Panics
///
/// Same as [`inter_segment_elems`].
#[must_use]
pub fn inter_segment_elems_with(
    graph: &SegmentCommGraph,
    plans: &[HierarchicalPlan],
    mode: JunctionScaling,
) -> f64 {
    assert_eq!(
        plans.len(),
        graph.num_segments(),
        "one plan per segment required"
    );
    let mut total = 0.0;
    for edge in graph.edges() {
        let producer = &plans[edge.from];
        let consumer = &plans[edge.to];
        let last = producer.num_layers() - 1;
        let mut producer_scale = LayerScale::IDENTITY;
        let mut consumer_scale = LayerScale::IDENTITY;
        for h in 0..consumer.num_levels() {
            let prev = producer.choice(h, last);
            let next = consumer.choice(h, 0);
            let scale = junction_scale_between(producer_scale, consumer_scale, mode);
            let pair = inter_elems(prev, next, edge.elems, scale);
            total += (1u64 << h) as f64 * pair;
            producer_scale = producer_scale.descend(prev);
            consumer_scale = consumer_scale.descend(next);
        }
    }
    total
}

/// Costs an **arbitrary** whole-graph assignment (`levels[h][l]`, top
/// level first, layers concatenated in canonical segment order) under the
/// identical model [`stitch`] uses: per-segment
/// [`hypar_core::evaluate::evaluate_plan`] totals plus the inter-segment
/// junction pricing.
///
/// This is how the engine's `explicit` strategy and the joint exhaustive
/// search ([`crate::exhaustive::best_joint_graph`]) stay directly
/// comparable to the stitched planner: the stitched plan's own levels
/// evaluate to exactly its stitched total.
///
/// # Panics
///
/// Panics if any level does not cover every weighted layer of the graph.
#[must_use]
pub fn evaluate_graph_plan(graph: &SegmentCommGraph, levels: &[Vec<Parallelism>]) -> f64 {
    evaluate_graph_plan_with(graph, levels, JunctionScaling::Consumer)
}

/// [`evaluate_graph_plan`] under an explicit [`JunctionScaling`]
/// interpretation.
///
/// # Panics
///
/// Same as [`evaluate_graph_plan`].
#[must_use]
pub fn evaluate_graph_plan_with(
    graph: &SegmentCommGraph,
    levels: &[Vec<Parallelism>],
    mode: JunctionScaling,
) -> f64 {
    let num_layers = graph.num_layers();
    for level in levels {
        assert_eq!(
            level.len(),
            num_layers,
            "level must cover every weighted layer of the graph"
        );
    }
    // Per-segment totals over the segment's slice of each level.
    let mut total = 0.0;
    let mut offset = 0;
    let mut first_layer = Vec::with_capacity(graph.num_segments());
    let mut last_layer = Vec::with_capacity(graph.num_segments());
    for segment in graph.segments() {
        let len = segment.len();
        first_layer.push(offset);
        last_layer.push(offset + len - 1);
        let seg_levels: Vec<Vec<Parallelism>> = levels
            .iter()
            .map(|level| level[offset..offset + len].to_vec())
            .collect();
        total += evaluate_plan_with(segment, &seg_levels, mode).total_elems();
        offset += len;
    }
    // Inter-segment junctions under the boundary layers' choices.
    for edge in graph.edges() {
        let from = last_layer[edge.from];
        let to = first_layer[edge.to];
        let mut producer_scale = LayerScale::IDENTITY;
        let mut consumer_scale = LayerScale::IDENTITY;
        for (h, level) in levels.iter().enumerate() {
            let prev = level[from];
            let next = level[to];
            let scale = junction_scale_between(producer_scale, consumer_scale, mode);
            total += (1u64 << h) as f64 * inter_elems(prev, next, edge.elems, scale);
            producer_scale = producer_scale.descend(prev);
            consumer_scale = consumer_scale.descend(next);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::GraphBuilder;
    use crate::node::INPUT;
    use hypar_core::baselines;
    use hypar_models::ConvSpec;
    use hypar_tensor::FeatureDims;

    fn tiny_residual_graph(batch: u64) -> SegmentCommGraph {
        let mut g = GraphBuilder::new("tiny-res", FeatureDims::new(8, 16, 16));
        g.conv("stem", ConvSpec::same(8, 3), INPUT)
            .conv("body", ConvSpec::same(8, 3), "stem")
            .add("join", &["stem", "body"])
            .fully_connected("fc", 10, "join");
        g.build().unwrap().segments(batch).unwrap()
    }

    #[test]
    fn chain_dag_plans_bit_identically_to_the_chain_pipeline() {
        let mut g = GraphBuilder::new("Lenet-c", FeatureDims::new(1, 28, 28));
        g.layer(
            hypar_models::Layer::conv("conv1", ConvSpec::valid(20, 5))
                .with_pool(hypar_models::PoolSpec::max2()),
            INPUT,
        )
        .layer(
            hypar_models::Layer::conv("conv2", ConvSpec::valid(50, 5))
                .with_pool(hypar_models::PoolSpec::max2()),
            "conv1",
        )
        .fully_connected("fc1", 500, "conv2")
        .fully_connected("fc2", 10, "fc1");
        let dag = g.build().unwrap();
        let graph = dag.segments(256).unwrap();
        let stitched = partition_graph(&graph, 4);

        let chain = NetworkCommTensors::from_network(&dag.linearize().unwrap(), 256).unwrap();
        let direct = hierarchical::partition(&chain, 4);
        assert_eq!(stitched.levels(), direct.levels());
        assert_eq!(stitched.total_comm_elems(), direct.total_comm_elems());
        assert_eq!(stitched.layer_names(), direct.layer_names());
    }

    #[test]
    fn stitched_plan_covers_every_layer_and_level() {
        let graph = tiny_residual_graph(32);
        let plan = partition_graph(&graph, 3);
        assert_eq!(plan.num_layers(), 3);
        assert_eq!(plan.num_levels(), 3);
        assert_eq!(plan.network(), "tiny-res");
        assert_eq!(
            plan.layer_names(),
            &["stem".to_owned(), "body".to_owned(), "fc".to_owned()]
        );
    }

    #[test]
    fn total_includes_inter_segment_traffic() {
        let graph = tiny_residual_graph(32);
        let plans: Vec<HierarchicalPlan> = graph
            .segments()
            .iter()
            .map(|s| hierarchical::partition(s, 3))
            .collect();
        let segment_sum: f64 = plans.iter().map(HierarchicalPlan::total_comm_elems).sum();
        let inter = inter_segment_elems(&graph, &plans);
        let stitched = stitch(&graph, &plans);
        assert_eq!(stitched.total_comm_elems(), segment_sum + inter);
        assert!(inter > 0.0, "a residual block must pay branch/join traffic");
    }

    #[test]
    fn evaluate_graph_plan_reproduces_the_stitched_total() {
        for levels in [0usize, 2, 4] {
            let graph = tiny_residual_graph(32);
            for mode in [
                JunctionScaling::Consumer,
                JunctionScaling::Producer,
                JunctionScaling::Unscaled,
            ] {
                let stitched = partition_graph_with(&graph, levels, mode);
                let recomputed = evaluate_graph_plan_with(&graph, stitched.levels(), mode);
                assert!(
                    (stitched.total_comm_elems() - recomputed).abs() <= 1e-9 * recomputed.max(1.0),
                    "{mode:?} H{levels}: stitched {} vs evaluated {recomputed}",
                    stitched.total_comm_elems()
                );
            }
        }
    }

    #[test]
    fn junction_scaling_modes_change_the_inter_segment_price() {
        // Force divergent boundary layouts: all-mp producer scales shrink
        // batch never, so producer scope (output_scale) stays 1 while the
        // consumer scope (input_scale) halves per level.
        let graph = tiny_residual_graph(32);
        let plans: Vec<HierarchicalPlan> = graph
            .segments()
            .iter()
            .map(|s| baselines::all_model(s, 3))
            .collect();
        let consumer = inter_segment_elems_with(&graph, &plans, JunctionScaling::Consumer);
        let producer = inter_segment_elems_with(&graph, &plans, JunctionScaling::Producer);
        let unscaled = inter_segment_elems_with(&graph, &plans, JunctionScaling::Unscaled);
        assert!(consumer > 0.0);
        // mp never shrinks the producer's batch, so producer scope prices
        // every level at full size — equal to unscaled, above consumer.
        assert_eq!(producer, unscaled);
        assert!(consumer < producer, "consumer {consumer} vs {producer}");
    }

    #[test]
    fn zero_levels_is_free() {
        let graph = tiny_residual_graph(32);
        let plan = partition_graph(&graph, 0);
        assert_eq!(plan.num_levels(), 0);
        assert_eq!(plan.num_accelerators(), 1);
        assert_eq!(plan.total_comm_elems(), 0.0);
    }

    #[test]
    fn hybrid_never_loses_to_uniform_baselines() {
        for batch in [16u64, 256] {
            let graph = tiny_residual_graph(batch);
            let hybrid = partition_graph(&graph, 4).total_comm_elems();
            let dp = plan_segments(&graph, |s| baselines::all_data(s, 4)).total_comm_elems();
            let mp = plan_segments(&graph, |s| baselines::all_model(s, 4)).total_comm_elems();
            // The segment-local search is greedy w.r.t. inter-segment
            // traffic, but uniform dp/mp are fixed points of the segment
            // planner's search space, so hybrid can only win on the
            // intra-segment part it optimizes; allow exact ties.
            assert!(
                hybrid <= dp.max(mp),
                "batch {batch}: hybrid {hybrid} vs dp {dp} / mp {mp}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one plan per segment")]
    fn stitch_rejects_missing_plans() {
        let graph = tiny_residual_graph(32);
        let _ = stitch(&graph, &[]);
    }

    #[test]
    fn all_dp_pays_no_inter_segment_traffic() {
        // dp->dp junctions are free (Table 2), so an all-dp stitched plan
        // pays exactly the sum of segment gradient exchanges.
        let graph = tiny_residual_graph(32);
        let plans: Vec<HierarchicalPlan> = graph
            .segments()
            .iter()
            .map(|s| baselines::all_data(s, 4))
            .collect();
        assert_eq!(inter_segment_elems(&graph, &plans), 0.0);
    }
}
