//! Whole-DAG planning: per-segment partition search stitched into one
//! [`HierarchicalPlan`] with inter-segment communication accounting.
//!
//! Every entry point has a `_with` variant taking an explicit
//! [`JunctionScaling`] interpretation; the unsuffixed functions use the
//! consumer scope (the default throughout the workspace, see DESIGN.md
//! §2), and the model-ablation experiment sweeps the alternatives on the
//! DAG path exactly as it does on chains.
//!
//! All entry points are Result-returning: inconsistent inputs (plans
//! missing a segment, disagreeing hierarchy depths, levels not covering
//! the graph) surface as [`GraphError::StitchMismatch`] values, never
//! panics — the planning service feeds this path from untrusted input.

use hypar_comm::{
    inter_elems, junction_scale_between, JunctionScaling, LayerScale, NetworkCommTensors,
    Parallelism,
};
use hypar_core::{evaluate::evaluate_plan_with, hierarchical, HierarchicalPlan};

use crate::error::GraphError;
use crate::refine::refine_graph_plan_with;
use crate::segments::SegmentCommGraph;

/// Runs the full HyPar partition (Algorithm 2) independently on every
/// segment and stitches the results into a whole-model plan.
///
/// Segment-local planning is exact for the traffic Algorithm 2 models; the
/// junction traffic *between* segments is then priced under the committed
/// plans by [`inter_segment_elems`] and folded into the stitched total.
/// For a branch-free DAG (one segment, no edges) the result is
/// bit-identical to [`hierarchical::partition`] on the linearized chain.
///
/// # Errors
///
/// Returns [`GraphError::StitchMismatch`] if any segment has no weighted
/// layers (impossible for a [`SegmentCommGraph`] built by
/// [`crate::DagNetwork::segments`]).
///
/// # Examples
///
/// ```
/// use hypar_graph::{partition_graph, zoo};
///
/// let graph = zoo::resnet18().segments(64)?;
/// let plan = partition_graph(&graph, 4)?;
/// assert_eq!(plan.num_accelerators(), 16);
/// assert_eq!(plan.num_layers(), 21);
/// # Ok::<(), hypar_graph::GraphError>(())
/// ```
pub fn partition_graph(
    graph: &SegmentCommGraph,
    num_levels: usize,
) -> Result<HierarchicalPlan, GraphError> {
    partition_graph_with(graph, num_levels, JunctionScaling::Consumer)
}

/// [`partition_graph`] under an explicit [`JunctionScaling`]
/// interpretation, applied both inside every segment's partition search
/// and to the inter-segment junction pricing.
///
/// # Errors
///
/// Same as [`partition_graph`].
pub fn partition_graph_with(
    graph: &SegmentCommGraph,
    num_levels: usize,
    mode: JunctionScaling,
) -> Result<HierarchicalPlan, GraphError> {
    plan_segments_with(graph, mode, |segment| {
        hierarchical::partition_with(segment, num_levels, mode)
    })
}

/// The stitched plan of [`partition_graph`], improved by the
/// junction-aware coordinate-descent pass of [`crate::refine`]: each
/// layer's per-level bit is re-decided against the **whole-graph** cost
/// (intra-segment traffic plus junction pricing), segment-boundary layers
/// first, to a strict-improvement fixed point.  The refined plan never
/// costs more than the stitched one and closes most of the stitcher's
/// measured greedy gap — see the `greedy_gap_branchy` experiment —
/// while staying polynomial (no `L·H ≤ 24` slot limit, unlike
/// [`crate::exhaustive::best_joint_graph`]).
///
/// # Errors
///
/// Same as [`partition_graph`].
///
/// # Examples
///
/// ```
/// use hypar_graph::{partition_graph, partition_graph_refined, zoo};
///
/// let graph = zoo::resnet18().segments(64)?;   // 84 slots: joint search infeasible
/// let stitched = partition_graph(&graph, 4)?;
/// let refined = partition_graph_refined(&graph, 4)?;
/// assert!(refined.total_comm_elems() <= stitched.total_comm_elems());
/// # Ok::<(), hypar_graph::GraphError>(())
/// ```
pub fn partition_graph_refined(
    graph: &SegmentCommGraph,
    num_levels: usize,
) -> Result<HierarchicalPlan, GraphError> {
    partition_graph_refined_with(graph, num_levels, JunctionScaling::Consumer)
}

/// [`partition_graph_refined`] under an explicit [`JunctionScaling`]
/// interpretation (seeding, re-decision cost, and junction pricing all
/// follow it).
///
/// # Errors
///
/// Same as [`partition_graph`].
pub fn partition_graph_refined_with(
    graph: &SegmentCommGraph,
    num_levels: usize,
    mode: JunctionScaling,
) -> Result<HierarchicalPlan, GraphError> {
    let stitched = partition_graph_with(graph, num_levels, mode)?;
    Ok(refine_graph_plan_with(graph, &stitched, mode)?.0)
}

/// Plans every segment with `plan_segment` and stitches the results; the
/// hook is how baselines (dp/mp/"one weird trick") reuse the identical
/// stitching and inter-segment accounting as [`partition_graph`].
///
/// # Errors
///
/// Returns [`GraphError::StitchMismatch`] if any segment has no weighted
/// layers or `plan_segment` returns plans inconsistent with the graph.
pub fn plan_segments(
    graph: &SegmentCommGraph,
    plan_segment: impl Fn(&NetworkCommTensors) -> HierarchicalPlan,
) -> Result<HierarchicalPlan, GraphError> {
    plan_segments_with(graph, JunctionScaling::Consumer, plan_segment)
}

/// [`plan_segments`] with the inter-segment junctions priced under an
/// explicit [`JunctionScaling`] interpretation.
///
/// # Errors
///
/// Same as [`plan_segments`].
pub fn plan_segments_with(
    graph: &SegmentCommGraph,
    mode: JunctionScaling,
    plan_segment: impl Fn(&NetworkCommTensors) -> HierarchicalPlan,
) -> Result<HierarchicalPlan, GraphError> {
    for segment in graph.segments() {
        if segment.is_empty() {
            return Err(GraphError::StitchMismatch {
                what: "weighted layers in a segment",
                expected: 1,
                got: 0,
            });
        }
    }
    let plans: Vec<HierarchicalPlan> = graph.segments().iter().map(plan_segment).collect();
    stitch_with(graph, &plans, mode)
}

/// Validates per-segment plans against the graph: one plan per segment,
/// each covering exactly its segment's weighted layers, all agreeing on
/// the hierarchy depth.  Returns that depth.
fn check_segment_plans(
    graph: &SegmentCommGraph,
    plans: &[HierarchicalPlan],
) -> Result<usize, GraphError> {
    if plans.len() != graph.num_segments() {
        return Err(GraphError::StitchMismatch {
            what: "per-segment plans (one per segment)",
            expected: graph.num_segments(),
            got: plans.len(),
        });
    }
    let num_levels = plans.first().map_or(0, HierarchicalPlan::num_levels);
    for (plan, segment) in plans.iter().zip(graph.segments()) {
        if plan.num_layers() != segment.len() {
            return Err(GraphError::StitchMismatch {
                what: "weighted layers covered by a segment plan",
                expected: segment.len(),
                got: plan.num_layers(),
            });
        }
        if plan.num_levels() != num_levels {
            return Err(GraphError::StitchMismatch {
                what: "hierarchy levels agreed by every segment plan",
                expected: num_levels,
                got: plan.num_levels(),
            });
        }
    }
    Ok(num_levels)
}

/// Stitches per-segment plans into one whole-model [`HierarchicalPlan`]:
/// layer names and per-level assignments are concatenated in segment
/// order, and the total is the sum of the segment totals plus
/// [`inter_segment_elems`].
///
/// # Errors
///
/// Returns [`GraphError::StitchMismatch`] if `plans` does not supply
/// exactly one plan per segment, a plan does not cover its segment, or
/// the plans disagree on the number of hierarchy levels.
pub fn stitch(
    graph: &SegmentCommGraph,
    plans: &[HierarchicalPlan],
) -> Result<HierarchicalPlan, GraphError> {
    stitch_with(graph, plans, JunctionScaling::Consumer)
}

/// [`stitch`] with the inter-segment junctions priced under an explicit
/// [`JunctionScaling`] interpretation.
///
/// # Errors
///
/// Same as [`stitch`].
pub fn stitch_with(
    graph: &SegmentCommGraph,
    plans: &[HierarchicalPlan],
    mode: JunctionScaling,
) -> Result<HierarchicalPlan, GraphError> {
    let num_levels = check_segment_plans(graph, plans)?;

    let layer_names: Vec<String> = plans
        .iter()
        .flat_map(|p| p.layer_names().iter().cloned())
        .collect();
    let levels: Vec<Vec<Parallelism>> = (0..num_levels)
        .map(|h| {
            plans
                .iter()
                .flat_map(|p| p.levels()[h].iter().copied())
                .collect()
        })
        .collect();
    let total = plans
        .iter()
        .map(HierarchicalPlan::total_comm_elems)
        .sum::<f64>()
        + inter_segment_elems_unchecked(graph, plans, mode);
    Ok(HierarchicalPlan::from_parts(
        graph.name(),
        layer_names,
        levels,
        total,
    ))
}

/// Array-wide inter-segment communication, in tensor elements, under the
/// given per-segment plans.
///
/// Each [`crate::SegmentEdge`] is a junction in the sense of the paper's
/// Table 2: the producing segment's last layer hands a tensor to the
/// consuming segment's first layer (forward), and the error flows back
/// (backward).  At hierarchy level `h` the junction's group-pair cost is
/// [`inter_elems`] under the two boundary layers' committed parallelisms,
/// scaled to the consumer's scope exactly as
/// [`hypar_comm::ScaleState::junction_scale`] scales a chain junction, and
/// weighted by the `2^h` group pairs of that level.
///
/// # Errors
///
/// Returns [`GraphError::StitchMismatch`] if `plans` does not match the
/// graph's segments.
pub fn inter_segment_elems(
    graph: &SegmentCommGraph,
    plans: &[HierarchicalPlan],
) -> Result<f64, GraphError> {
    inter_segment_elems_with(graph, plans, JunctionScaling::Consumer)
}

/// [`inter_segment_elems`] under an explicit [`JunctionScaling`]
/// interpretation: the junction fraction follows the consumer's layout,
/// the producer's layout, or stays unscaled
/// ([`hypar_comm::junction_scale_between`]).
///
/// # Errors
///
/// Same as [`inter_segment_elems`].
pub fn inter_segment_elems_with(
    graph: &SegmentCommGraph,
    plans: &[HierarchicalPlan],
    mode: JunctionScaling,
) -> Result<f64, GraphError> {
    check_segment_plans(graph, plans)?;
    Ok(inter_segment_elems_unchecked(graph, plans, mode))
}

/// The junction total, assuming [`check_segment_plans`] already passed
/// (how [`stitch_with`] avoids validating the same plans twice).
fn inter_segment_elems_unchecked(
    graph: &SegmentCommGraph,
    plans: &[HierarchicalPlan],
    mode: JunctionScaling,
) -> f64 {
    let mut total = 0.0;
    for edge in graph.edges() {
        let producer = &plans[edge.from];
        let consumer = &plans[edge.to];
        let last = producer.num_layers() - 1;
        let mut producer_scale = LayerScale::IDENTITY;
        let mut consumer_scale = LayerScale::IDENTITY;
        for h in 0..consumer.num_levels() {
            let prev = producer.choice(h, last);
            let next = consumer.choice(h, 0);
            let scale = junction_scale_between(producer_scale, consumer_scale, mode);
            let pair = inter_elems(prev, next, edge.elems, scale);
            total += (1u64 << h) as f64 * pair;
            producer_scale = producer_scale.descend(prev);
            consumer_scale = consumer_scale.descend(next);
        }
    }
    total
}

/// Costs an **arbitrary** whole-graph assignment (`levels[h][l]`, top
/// level first, layers concatenated in canonical segment order) under the
/// identical model [`stitch`] uses: per-segment
/// [`hypar_core::evaluate::evaluate_plan`] totals plus the inter-segment
/// junction pricing.
///
/// This is how the engine's `explicit` strategy, the joint exhaustive
/// search ([`crate::exhaustive::best_joint_graph`]), and the refinement
/// pass ([`crate::refine`]) stay directly comparable to the stitched
/// planner: the stitched plan's own levels evaluate to exactly its
/// stitched total.
///
/// # Errors
///
/// Returns [`GraphError::StitchMismatch`] if any level does not cover
/// every weighted layer of the graph.
pub fn evaluate_graph_plan(
    graph: &SegmentCommGraph,
    levels: &[Vec<Parallelism>],
) -> Result<f64, GraphError> {
    evaluate_graph_plan_with(graph, levels, JunctionScaling::Consumer)
}

/// [`evaluate_graph_plan`] under an explicit [`JunctionScaling`]
/// interpretation.
///
/// # Errors
///
/// Same as [`evaluate_graph_plan`].
pub fn evaluate_graph_plan_with(
    graph: &SegmentCommGraph,
    levels: &[Vec<Parallelism>],
    mode: JunctionScaling,
) -> Result<f64, GraphError> {
    check_graph_levels(graph, levels)?;
    Ok(evaluate_graph_levels_unchecked(graph, levels, mode))
}

/// Validates that every level of a whole-graph assignment covers every
/// weighted layer.
pub(crate) fn check_graph_levels(
    graph: &SegmentCommGraph,
    levels: &[Vec<Parallelism>],
) -> Result<(), GraphError> {
    let num_layers = graph.num_layers();
    for level in levels {
        if level.len() != num_layers {
            return Err(GraphError::StitchMismatch {
                what: "weighted layers covered by a level",
                expected: num_layers,
                got: level.len(),
            });
        }
    }
    Ok(())
}

/// The cost of a whole-graph assignment, assuming [`check_graph_levels`]
/// already passed.  The refinement pass's inner loop evaluates thousands
/// of candidates that differ from a validated plan by one bit, so it
/// skips re-validation.
pub(crate) fn evaluate_graph_levels_unchecked(
    graph: &SegmentCommGraph,
    levels: &[Vec<Parallelism>],
    mode: JunctionScaling,
) -> f64 {
    // Per-segment totals over the segment's slice of each level.
    let mut total = 0.0;
    let mut offset = 0;
    let mut first_layer = Vec::with_capacity(graph.num_segments());
    let mut last_layer = Vec::with_capacity(graph.num_segments());
    for segment in graph.segments() {
        let len = segment.len();
        first_layer.push(offset);
        last_layer.push(offset + len - 1);
        let seg_levels: Vec<Vec<Parallelism>> = levels
            .iter()
            .map(|level| level[offset..offset + len].to_vec())
            .collect();
        total += evaluate_plan_with(segment, &seg_levels, mode).total_elems();
        offset += len;
    }
    // Inter-segment junctions under the boundary layers' choices.
    for edge in graph.edges() {
        let from = last_layer[edge.from];
        let to = first_layer[edge.to];
        let mut producer_scale = LayerScale::IDENTITY;
        let mut consumer_scale = LayerScale::IDENTITY;
        for (h, level) in levels.iter().enumerate() {
            let prev = level[from];
            let next = level[to];
            let scale = junction_scale_between(producer_scale, consumer_scale, mode);
            total += (1u64 << h) as f64 * inter_elems(prev, next, edge.elems, scale);
            producer_scale = producer_scale.descend(prev);
            consumer_scale = consumer_scale.descend(next);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::GraphBuilder;
    use crate::node::INPUT;
    use hypar_core::baselines;
    use hypar_models::ConvSpec;
    use hypar_tensor::FeatureDims;

    fn tiny_residual_graph(batch: u64) -> SegmentCommGraph {
        let mut g = GraphBuilder::new("tiny-res", FeatureDims::new(8, 16, 16));
        g.conv("stem", ConvSpec::same(8, 3), INPUT)
            .conv("body", ConvSpec::same(8, 3), "stem")
            .add("join", &["stem", "body"])
            .fully_connected("fc", 10, "join");
        g.build().unwrap().segments(batch).unwrap()
    }

    #[test]
    fn chain_dag_plans_bit_identically_to_the_chain_pipeline() {
        let mut g = GraphBuilder::new("Lenet-c", FeatureDims::new(1, 28, 28));
        g.layer(
            hypar_models::Layer::conv("conv1", ConvSpec::valid(20, 5))
                .with_pool(hypar_models::PoolSpec::max2()),
            INPUT,
        )
        .layer(
            hypar_models::Layer::conv("conv2", ConvSpec::valid(50, 5))
                .with_pool(hypar_models::PoolSpec::max2()),
            "conv1",
        )
        .fully_connected("fc1", 500, "conv2")
        .fully_connected("fc2", 10, "fc1");
        let dag = g.build().unwrap();
        let graph = dag.segments(256).unwrap();
        let stitched = partition_graph(&graph, 4).unwrap();

        let chain = NetworkCommTensors::from_network(&dag.linearize().unwrap(), 256).unwrap();
        let direct = hierarchical::partition(&chain, 4);
        assert_eq!(stitched.levels(), direct.levels());
        assert_eq!(stitched.total_comm_elems(), direct.total_comm_elems());
        assert_eq!(stitched.layer_names(), direct.layer_names());
    }

    #[test]
    fn stitched_plan_covers_every_layer_and_level() {
        let graph = tiny_residual_graph(32);
        let plan = partition_graph(&graph, 3).unwrap();
        assert_eq!(plan.num_layers(), 3);
        assert_eq!(plan.num_levels(), 3);
        assert_eq!(plan.network(), "tiny-res");
        assert_eq!(
            plan.layer_names(),
            &["stem".to_owned(), "body".to_owned(), "fc".to_owned()]
        );
    }

    #[test]
    fn total_includes_inter_segment_traffic() {
        let graph = tiny_residual_graph(32);
        let plans: Vec<HierarchicalPlan> = graph
            .segments()
            .iter()
            .map(|s| hierarchical::partition(s, 3))
            .collect();
        let segment_sum: f64 = plans.iter().map(HierarchicalPlan::total_comm_elems).sum();
        let inter = inter_segment_elems(&graph, &plans).unwrap();
        let stitched = stitch(&graph, &plans).unwrap();
        assert_eq!(stitched.total_comm_elems(), segment_sum + inter);
        assert!(inter > 0.0, "a residual block must pay branch/join traffic");
    }

    #[test]
    fn evaluate_graph_plan_reproduces_the_stitched_total() {
        for levels in [0usize, 2, 4] {
            let graph = tiny_residual_graph(32);
            for mode in [
                JunctionScaling::Consumer,
                JunctionScaling::Producer,
                JunctionScaling::Unscaled,
            ] {
                let stitched = partition_graph_with(&graph, levels, mode).unwrap();
                let recomputed = evaluate_graph_plan_with(&graph, stitched.levels(), mode).unwrap();
                assert!(
                    (stitched.total_comm_elems() - recomputed).abs() <= 1e-9 * recomputed.max(1.0),
                    "{mode:?} H{levels}: stitched {} vs evaluated {recomputed}",
                    stitched.total_comm_elems()
                );
            }
        }
    }

    #[test]
    fn junction_scaling_modes_change_the_inter_segment_price() {
        // Force divergent boundary layouts: all-mp producer scales shrink
        // batch never, so producer scope (output_scale) stays 1 while the
        // consumer scope (input_scale) halves per level.
        let graph = tiny_residual_graph(32);
        let plans: Vec<HierarchicalPlan> = graph
            .segments()
            .iter()
            .map(|s| baselines::all_model(s, 3))
            .collect();
        let consumer = inter_segment_elems_with(&graph, &plans, JunctionScaling::Consumer).unwrap();
        let producer = inter_segment_elems_with(&graph, &plans, JunctionScaling::Producer).unwrap();
        let unscaled = inter_segment_elems_with(&graph, &plans, JunctionScaling::Unscaled).unwrap();
        assert!(consumer > 0.0);
        // mp never shrinks the producer's batch, so producer scope prices
        // every level at full size — equal to unscaled, above consumer.
        assert_eq!(producer, unscaled);
        assert!(consumer < producer, "consumer {consumer} vs {producer}");
    }

    #[test]
    fn zero_levels_is_free() {
        let graph = tiny_residual_graph(32);
        let plan = partition_graph(&graph, 0).unwrap();
        assert_eq!(plan.num_levels(), 0);
        assert_eq!(plan.num_accelerators(), 1);
        assert_eq!(plan.total_comm_elems(), 0.0);
    }

    #[test]
    fn hybrid_never_loses_to_uniform_baselines() {
        for batch in [16u64, 256] {
            let graph = tiny_residual_graph(batch);
            let hybrid = partition_graph(&graph, 4).unwrap().total_comm_elems();
            let dp = plan_segments(&graph, |s| baselines::all_data(s, 4))
                .unwrap()
                .total_comm_elems();
            let mp = plan_segments(&graph, |s| baselines::all_model(s, 4))
                .unwrap()
                .total_comm_elems();
            // The segment-local search is greedy w.r.t. inter-segment
            // traffic, but uniform dp/mp are fixed points of the segment
            // planner's search space, so hybrid can only win on the
            // intra-segment part it optimizes; allow exact ties.
            assert!(
                hybrid <= dp.max(mp),
                "batch {batch}: hybrid {hybrid} vs dp {dp} / mp {mp}"
            );
        }
    }

    #[test]
    fn stitch_rejects_missing_plans_as_a_typed_error() {
        let graph = tiny_residual_graph(32);
        assert_eq!(
            stitch(&graph, &[]).unwrap_err(),
            GraphError::StitchMismatch {
                what: "per-segment plans (one per segment)",
                expected: 3,
                got: 0,
            }
        );
    }

    #[test]
    fn stitch_rejects_disagreeing_level_counts_as_a_typed_error() {
        let graph = tiny_residual_graph(32);
        let mut plans: Vec<HierarchicalPlan> = graph
            .segments()
            .iter()
            .map(|s| hierarchical::partition(s, 3))
            .collect();
        plans[2] = hierarchical::partition(graph.segment(2), 2);
        assert_eq!(
            stitch(&graph, &plans).unwrap_err(),
            GraphError::StitchMismatch {
                what: "hierarchy levels agreed by every segment plan",
                expected: 3,
                got: 2,
            }
        );
    }

    #[test]
    fn stitch_rejects_plans_not_covering_their_segment() {
        let graph = tiny_residual_graph(32);
        let mut plans: Vec<HierarchicalPlan> = graph
            .segments()
            .iter()
            .map(|s| hierarchical::partition(s, 3))
            .collect();
        // Swap in a plan for the wrong segment shape: 2 layers where the
        // segment has 1.
        plans[0] = HierarchicalPlan::from_parts(
            "bogus",
            vec!["a".into(), "b".into()],
            vec![vec![Parallelism::Data; 2]; 3],
            0.0,
        );
        assert_eq!(
            stitch(&graph, &plans).unwrap_err(),
            GraphError::StitchMismatch {
                what: "weighted layers covered by a segment plan",
                expected: 1,
                got: 2,
            }
        );
    }

    #[test]
    fn evaluate_rejects_short_levels_as_a_typed_error() {
        let graph = tiny_residual_graph(32);
        let err = evaluate_graph_plan(&graph, &[vec![Parallelism::Data; 2]]).unwrap_err();
        assert_eq!(
            err,
            GraphError::StitchMismatch {
                what: "weighted layers covered by a level",
                expected: 3,
                got: 2,
            }
        );
    }

    #[test]
    fn all_dp_pays_no_inter_segment_traffic() {
        // dp->dp junctions are free (Table 2), so an all-dp stitched plan
        // pays exactly the sum of segment gradient exchanges.
        let graph = tiny_residual_graph(32);
        let plans: Vec<HierarchicalPlan> = graph
            .segments()
            .iter()
            .map(|s| baselines::all_data(s, 4))
            .collect();
        assert_eq!(inter_segment_elems(&graph, &plans).unwrap(), 0.0);
    }

    #[test]
    fn refined_plan_never_exceeds_the_stitched_plan() {
        for levels in [1usize, 2, 4] {
            let graph = tiny_residual_graph(32);
            let stitched = partition_graph(&graph, levels).unwrap();
            let refined = partition_graph_refined(&graph, levels).unwrap();
            assert!(
                refined.total_comm_elems() <= stitched.total_comm_elems(),
                "H{levels}: refined {} vs stitched {}",
                refined.total_comm_elems(),
                stitched.total_comm_elems()
            );
            assert_eq!(refined.num_layers(), stitched.num_layers());
            assert_eq!(refined.num_levels(), stitched.num_levels());
            assert_eq!(refined.layer_names(), stitched.layer_names());
        }
    }
}
