//! Junction-aware refinement of stitched DAG plans.
//!
//! The segment-stitched planner ([`crate::partition_graph`]) plans every
//! segment blind to the junction traffic between segments, and the
//! `greedy_gap_branchy` experiment measures the price: 1.35–3.07x above
//! the joint optimum on trimmed branchy nets, far beyond the chain greedy
//! gap of Figures 9/10.  The joint search
//! ([`crate::exhaustive::best_joint_graph`]) closes the gap exactly but
//! is `O(2^{L·H})` and slot-capped at 24 — unusable for real networks.
//!
//! This module recovers most of the gap polynomially, in the spirit of
//! FlexFlow's local search over its MCMC-proposed strategy space and
//! Tofu's per-group DP recursion: seed from the stitched plan, then run
//! [`hypar_core::refine::descend`] — coordinate descent that re-decides
//! each layer's per-level dp/mp bit against the **true whole-graph cost**
//! ([`crate::evaluate_graph_plan_with`]: intra-segment traffic plus
//! junction pricing), sweeping segment-**boundary** layers first (they
//! are the ones the stitcher priced blindly), iterating to a fixed point
//! under strict-improvement acceptance so the cost decreases
//! monotonically and the refined plan never exceeds the stitched one.
//!
//! One sweep is `O(L·H)` bit re-decisions, each an `O((L + E)·H)`
//! whole-graph evaluation, and the sweep count is capped
//! ([`hypar_core::refine::MAX_SWEEPS`]) — polynomial throughout, so
//! refinement runs where the exhaustive search is a typed rejection
//! (ResNet-18 at `H = 4` is 84 slots).

use hypar_comm::JunctionScaling;
use hypar_core::refine::{descend, DescentReport};
use hypar_core::HierarchicalPlan;

use crate::error::GraphError;
use crate::plan::{check_graph_levels, evaluate_graph_levels_unchecked};
use crate::segments::SegmentCommGraph;

/// The per-sweep layer visiting order: segment-boundary layers (each
/// segment's first and last weighted layer — the endpoints every
/// [`crate::SegmentEdge`] prices) first, in canonical order, then the
/// interior layers.  Boundary bits are the ones the stitcher decided
/// blind to junction traffic, so settling them first converges faster.
#[must_use]
pub fn boundary_first_order(graph: &SegmentCommGraph) -> Vec<usize> {
    let mut boundary = Vec::new();
    let mut interior = Vec::new();
    let mut offset = 0;
    for segment in graph.segments() {
        let len = segment.len();
        for l in offset..offset + len {
            if l == offset || l == offset + len - 1 {
                boundary.push(l);
            } else {
                interior.push(l);
            }
        }
        offset += len;
    }
    boundary.extend(interior);
    boundary
}

/// Refines a whole-graph plan (layers in canonical segment order, as
/// produced by [`crate::stitch`] or [`crate::partition_graph`]) by
/// junction-aware coordinate descent, returning the refined plan and the
/// descent report.
///
/// The refined plan's total is its levels' cost under
/// [`crate::evaluate_graph_plan_with`] — the same model the stitcher, the
/// joint search, and the engine's `explicit` strategy use — and is never
/// greater than the seed plan's evaluated cost.
///
/// # Errors
///
/// Returns [`GraphError::StitchMismatch`] if the seed plan does not cover
/// every weighted layer of the graph at every level.
///
/// # Examples
///
/// ```
/// use hypar_graph::{partition_graph, refine::refine_graph_plan, zoo};
///
/// let graph = zoo::inception_mini().segments(64)?;
/// let stitched = partition_graph(&graph, 3)?;
/// let (refined, report) = refine_graph_plan(&graph, &stitched)?;
/// assert!(refined.total_comm_elems() <= stitched.total_comm_elems());
/// assert_eq!(report.seed_cost, stitched.total_comm_elems());
/// # Ok::<(), hypar_graph::GraphError>(())
/// ```
pub fn refine_graph_plan(
    graph: &SegmentCommGraph,
    seed: &HierarchicalPlan,
) -> Result<(HierarchicalPlan, DescentReport), GraphError> {
    refine_graph_plan_with(graph, seed, JunctionScaling::Consumer)
}

/// [`refine_graph_plan`] under an explicit [`JunctionScaling`]
/// interpretation (the re-decision cost and the reported totals follow
/// it).
///
/// # Errors
///
/// Same as [`refine_graph_plan`].
pub fn refine_graph_plan_with(
    graph: &SegmentCommGraph,
    seed: &HierarchicalPlan,
    mode: JunctionScaling,
) -> Result<(HierarchicalPlan, DescentReport), GraphError> {
    let mut levels = seed.levels().to_vec();
    check_graph_levels(graph, &levels)?;
    let order = boundary_first_order(graph);
    let report = descend(&mut levels, &order, |candidate| {
        evaluate_graph_levels_unchecked(graph, candidate, mode)
    });
    let refined = HierarchicalPlan::from_parts(
        graph.name(),
        seed.layer_names().to_vec(),
        levels,
        report.refined_cost,
    );
    Ok((refined, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::GraphBuilder;
    use crate::exhaustive::best_joint_graph_with;
    use crate::node::INPUT;
    use crate::plan::{evaluate_graph_plan_with, partition_graph_with};
    use crate::zoo;
    use hypar_models::ConvSpec;
    use hypar_tensor::FeatureDims;

    fn tiny_residual_graph(batch: u64) -> SegmentCommGraph {
        let mut g = GraphBuilder::new("tiny-res", FeatureDims::new(8, 16, 16));
        g.conv("stem", ConvSpec::same(8, 3), INPUT)
            .conv("body", ConvSpec::same(8, 3), "stem")
            .add("join", &["stem", "body"])
            .fully_connected("fc", 10, "join");
        g.build().unwrap().segments(batch).unwrap()
    }

    const MODES: [JunctionScaling; 3] = [
        JunctionScaling::Consumer,
        JunctionScaling::Producer,
        JunctionScaling::Unscaled,
    ];

    #[test]
    fn boundary_layers_come_first() {
        let graph = tiny_residual_graph(32);
        // Three single-layer segments: every layer is a boundary layer.
        assert_eq!(boundary_first_order(&graph), vec![0, 1, 2]);

        let graph = zoo::inception_mini().segments(64).unwrap();
        let order = boundary_first_order(&graph);
        assert_eq!(order.len(), graph.num_layers());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..graph.num_layers()).collect::<Vec<_>>());
        // The tail segment (conv2 + fc) contributes both its endpoints to
        // the boundary prefix; interior layers (none here are interior
        // except in multi-layer segments) come last.
        let boundary_count = graph
            .segments()
            .iter()
            .map(|s| if s.len() == 1 { 1 } else { 2 })
            .sum::<usize>();
        assert!(order.len() >= boundary_count);
    }

    #[test]
    fn refined_cost_is_the_evaluated_cost_of_its_levels() {
        let graph = tiny_residual_graph(32);
        for mode in MODES {
            let stitched = partition_graph_with(&graph, 4, mode).unwrap();
            let (refined, report) = refine_graph_plan_with(&graph, &stitched, mode).unwrap();
            let recomputed = evaluate_graph_plan_with(&graph, refined.levels(), mode).unwrap();
            assert!(
                (refined.total_comm_elems() - recomputed).abs() <= 1e-9 * recomputed.max(1.0),
                "{mode:?}: refined {} vs evaluated {recomputed}",
                refined.total_comm_elems()
            );
            assert_eq!(report.refined_cost, refined.total_comm_elems());
            assert_eq!(report.seed_cost, stitched.total_comm_elems());
        }
    }

    #[test]
    fn refinement_matches_the_joint_optimum_on_the_tiny_residual() {
        // Small enough to certify against the exhaustive joint search.
        let graph = tiny_residual_graph(32);
        for mode in MODES {
            for levels in [1usize, 2, 3, 4] {
                let stitched = partition_graph_with(&graph, levels, mode).unwrap();
                let (refined, _) = refine_graph_plan_with(&graph, &stitched, mode).unwrap();
                let joint = best_joint_graph_with(&graph, levels, mode).unwrap();
                assert!(
                    refined.total_comm_elems() <= joint.total_comm_elems() * (1.0 + 1e-12),
                    "{mode:?} H{levels}: refined {} vs joint {}",
                    refined.total_comm_elems(),
                    joint.total_comm_elems()
                );
            }
        }
    }

    #[test]
    fn refinement_runs_where_the_joint_search_is_infeasible() {
        // ResNet-18 at H=4 is 84 slots — the exhaustive search is a typed
        // rejection, the refinement pass just runs.
        let graph = zoo::resnet18().segments(64).unwrap();
        assert!(crate::exhaustive::best_joint_graph(&graph, 4).is_err());
        let stitched = partition_graph_with(&graph, 4, JunctionScaling::Consumer).unwrap();
        let (refined, report) = refine_graph_plan(&graph, &stitched).unwrap();
        assert!(refined.total_comm_elems() <= stitched.total_comm_elems());
        assert!(report.sweeps <= hypar_core::refine::MAX_SWEEPS);
        assert_eq!(refined.num_layers(), 21);
    }

    #[test]
    fn mismatched_seed_is_a_typed_error() {
        let graph = tiny_residual_graph(32);
        let bogus = HierarchicalPlan::from_parts(
            "bogus",
            vec!["a".into(), "b".into()],
            vec![vec![hypar_comm::Parallelism::Data; 2]; 2],
            0.0,
        );
        assert_eq!(
            refine_graph_plan(&graph, &bogus).unwrap_err(),
            GraphError::StitchMismatch {
                what: "weighted layers covered by a level",
                expected: 3,
                got: 2,
            }
        );
    }

    #[test]
    fn zero_level_seed_is_a_fixed_point() {
        let graph = tiny_residual_graph(32);
        let stitched = partition_graph_with(&graph, 0, JunctionScaling::Consumer).unwrap();
        let (refined, report) = refine_graph_plan(&graph, &stitched).unwrap();
        assert_eq!(refined.num_levels(), 0);
        assert_eq!(refined.total_comm_elems(), 0.0);
        assert_eq!(report.flips, 0);
    }
}
