//! Segment decomposition: a general DAG as maximal chain segments joined
//! by explicit communication edges.
//!
//! HyPar's partition search ([`hypar_core::hierarchical`]) consumes a
//! *chain* of weighted layers.  A branchy DAG decomposes into maximal
//! branch-free runs of layers — **segments** — separated by joins and
//! branch points.  Each segment is itself a valid chain network, so the
//! unmodified Algorithm 2 plans it; what remains is the traffic the chain
//! model never sees:
//!
//! * **branch forwarding** — a branch point's output tensor is forwarded
//!   to every consumer segment (and, at an `add`/`concat` join, every
//!   constituent branch tensor reaches the join's consumer);
//! * **join gradient accumulation** — in the backward pass the consumer's
//!   error tensor flows back along *every* in-edge, where `add` joins
//!   accumulate it into each branch.
//!
//! Both are junction traffic in the sense of the paper's Table 2: a
//! feature tensor forward plus an error tensor backward, whose
//! group-to-group cost depends on the parallelisms chosen on both sides.
//! [`SegmentEdge`] records each such junction with its batched element
//! count; [`crate::plan::stitch`] prices them with
//! [`hypar_comm::inter_elems`] under the per-level plans of the two
//! endpoint segments.

use std::collections::BTreeMap;

use hypar_comm::NetworkCommTensors;
use hypar_models::{Network, NetworkShapes};
use hypar_telemetry::{StateHash, StateHasher};
use hypar_tensor::FeatureDims;

use crate::dag::DagNetwork;
use crate::error::GraphError;

/// One inter-segment junction: the producing segment's last layer hands a
/// tensor to the consuming segment's first layer.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SegmentEdge {
    /// Producing segment index (its *last* layer produces the tensor).
    pub from: usize,
    /// Consuming segment index (its *first* layer consumes the tensor).
    pub to: usize,
    /// Batched elements of the tensor crossing this junction (the
    /// producer's post-pooling output, `A(F) = A(E)` at this junction),
    /// multiplied by the number of join paths when the same producer
    /// reaches the consumer through several (edges are merged per
    /// producer/consumer pair).
    pub elems: f64,
    /// Batched elements of element-wise join work this edge contributes at
    /// the consumer's entry: `add` joins accumulate each branch tensor
    /// into the joined sum and `concat` joins gather each branch slice
    /// into the joined map, so every edge resolved *through* a join
    /// charges its full [`SegmentEdge::elems`] here.  Zero for a direct
    /// branch-forwarding edge (pure fan-out involves no arithmetic).
    pub join_elems: f64,
}

/// The communication-model view of a whole DAG at a fixed batch size: one
/// chain [`NetworkCommTensors`] per segment plus the inter-segment
/// junction edges.
///
/// Produced by [`DagNetwork::segments`]; consumed by
/// [`crate::plan::partition_graph`] and friends.  A branch-free DAG yields
/// exactly one segment and no edges, which is why chain-shaped DAGs plan
/// bit-identically to the chain pipeline.
///
/// # Examples
///
/// ```
/// use hypar_graph::zoo;
///
/// let graph = zoo::inception_mini().segments(128)?;
/// // stem | 1x1 branch | 3x3 branch | 5x5 branch | tail (conv2 + fc10)
/// assert_eq!(graph.num_segments(), 5);
/// assert_eq!(graph.edges().len(), 6);
/// # Ok::<(), hypar_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SegmentCommGraph {
    name: String,
    batch: u64,
    segments: Vec<NetworkCommTensors>,
    /// Inferred shapes per segment, aligned with `segments`; the
    /// discrete-event simulator needs MAC counts and layer geometry the
    /// communication tensors do not carry.
    shapes: Vec<NetworkShapes>,
    edges: Vec<SegmentEdge>,
}

impl StateHash for SegmentCommGraph {
    /// Folds the whole resolved workload view: per-segment layer tensors
    /// (names included — this is a state transcript, not a cache key) and
    /// every junction edge, floats bit-exact.  Because
    /// [`DagNetwork::segments`] emits segments and edges in canonical
    /// topological order, the digest is invariant under the builder's
    /// node-insertion order — the same guarantee the engine's cache
    /// fingerprint relies on.
    fn state_hash_into(&self, h: &mut StateHasher) {
        h.write_str("segment-graph/v1");
        h.write_str(&self.name);
        h.write_u64(self.batch);
        h.write_u64(self.segments.len() as u64);
        for segment in &self.segments {
            h.write_u64(segment.len() as u64);
            for layer in segment.layers() {
                h.write_str(&layer.name);
                h.write_bool(layer.is_conv);
                h.write_f64(layer.weight_elems);
                h.write_f64(layer.input_elems);
                h.write_f64(layer.output_elems);
                h.write_f64(layer.junction_elems);
            }
        }
        h.write_u64(self.edges.len() as u64);
        for edge in &self.edges {
            h.write_u64(edge.from as u64);
            h.write_u64(edge.to as u64);
            h.write_f64(edge.elems);
            h.write_f64(edge.join_elems);
        }
    }
}

impl SegmentCommGraph {
    /// The DAG's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The mini-batch size the tensors were computed for.
    #[must_use]
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// The per-segment chain tensors, in canonical (topological-by-head)
    /// order.
    #[must_use]
    pub fn segments(&self) -> &[NetworkCommTensors] {
        &self.segments
    }

    /// Number of segments.
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The tensors of segment `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn segment(&self, s: usize) -> &NetworkCommTensors {
        &self.segments[s]
    }

    /// The per-segment inferred shapes, aligned with
    /// [`SegmentCommGraph::segments`].
    #[must_use]
    pub fn shapes(&self) -> &[NetworkShapes] {
        &self.shapes
    }

    /// The inferred shapes of segment `s` (the simulator's input).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn segment_shapes(&self, s: usize) -> &NetworkShapes {
        &self.shapes[s]
    }

    /// The inter-segment junction edges, in deterministic order.
    #[must_use]
    pub fn edges(&self) -> &[SegmentEdge] {
        &self.edges
    }

    /// Total weighted layers across all segments.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.segments.iter().map(NetworkCommTensors::len).sum()
    }
}

impl DagNetwork {
    /// Decomposes the DAG into maximal chain segments with per-segment
    /// communication tensors at mini-batch size `batch`, plus the
    /// inter-segment junction edges.
    ///
    /// Joins dissolve into edges: an `add`/`concat` node contributes one
    /// edge per constituent producing layer into each of its consumers
    /// (merged per producer/consumer pair, with the path multiplicity
    /// folded into [`SegmentEdge::elems`]), so branch forwarding and join
    /// gradient accumulation are both represented.  Edges fed directly by
    /// the graph input are free (the input batch is resident, exactly as
    /// for a chain's first layer) and therefore omitted.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ZeroBatch`] for a zero batch size.
    pub fn segments(&self, batch: u64) -> Result<SegmentCommGraph, GraphError> {
        if batch == 0 {
            return Err(GraphError::ZeroBatch);
        }
        let nodes = self.nodes();
        let consumers = self.consumers();
        let is_layer = |i: usize| nodes[i].op().as_layer().is_some();

        // A layer extends its producer's segment iff it is the producer's
        // only consumer and the producer is itself a layer.
        let chain_prev = |i: usize| -> Option<usize> {
            let p = self.resolved_inputs(i)[0]?;
            (is_layer(p) && consumers[p].len() == 1).then_some(p)
        };

        // Collect segments head-first in canonical order.
        let mut seg_of = vec![usize::MAX; nodes.len()];
        let mut members: Vec<Vec<usize>> = Vec::new();
        for head in (0..nodes.len()).filter(|&i| is_layer(i) && chain_prev(i).is_none()) {
            let s = members.len();
            let mut run = vec![head];
            seg_of[head] = s;
            let mut current = head;
            loop {
                let next = match consumers[current].as_slice() {
                    &[c] if is_layer(c) && self.resolved_inputs(c)[0] == Some(current) => c,
                    _ => break,
                };
                seg_of[next] = s;
                run.push(next);
                current = next;
            }
            members.push(run);
        }

        // Per-segment chain shapes and tensors.
        let mut segments = Vec::with_capacity(members.len());
        let mut shapes = Vec::with_capacity(members.len());
        for run in &members {
            let head = run[0];
            let in_dims: FeatureDims = match self.resolved_inputs(head)[0] {
                None => self.input(),
                Some(p) => self.node_output(p),
            };
            let mut builder =
                Network::builder(format!("{}::{}", self.name(), nodes[head].name()), in_dims);
            for &i in run {
                // Runs were collected from `is_layer` nodes only; keep
                // the fallback typed rather than asserting it.
                let Some(layer) = nodes[i].op().as_layer() else {
                    return Err(GraphError::NotAChain {
                        node: nodes[i].name().to_owned(),
                        why: "segment member is not a layer",
                    });
                };
                builder.layer(layer.clone());
            }
            let net = builder.build().map_err(|source| GraphError::LayerShape {
                node: nodes[head].name().to_owned(),
                source,
            })?;
            let inferred =
                NetworkShapes::infer(&net, batch).map_err(|source| GraphError::LayerShape {
                    node: nodes[head].name().to_owned(),
                    source,
                })?;
            segments.push(NetworkCommTensors::from_shapes(&inferred));
            shapes.push(inferred);
        }

        // Producer multiplicities of every join, resolved through nested
        // joins, computed once in topological order (a join's inputs
        // always precede it).  Counting multiplicities instead of
        // enumerating paths keeps this polynomial — a stack of
        // `concat(x, x)` joins has exponentially many paths but only one
        // producer — which matters because the engine feeds this from
        // untrusted service input.
        let mut join_producers: Vec<Option<BTreeMap<Option<usize>, f64>>> = vec![None; nodes.len()];
        for i in 0..nodes.len() {
            if !nodes[i].op().is_join() {
                continue;
            }
            let mut producers: BTreeMap<Option<usize>, f64> = BTreeMap::new();
            for r in self.resolved_inputs(i) {
                match r {
                    Some(p) if nodes[*p].op().is_join() => {
                        // Inputs precede joins in topological order, so
                        // the inner map is already resolved; an
                        // unresolved join contributes nothing rather
                        // than a panic.
                        let Some(inner) = join_producers[*p].as_ref() else {
                            continue;
                        };
                        for (&source, &mult) in inner {
                            *producers.entry(source).or_insert(0.0) += mult;
                        }
                    }
                    other => *producers.entry(*other).or_insert(0.0) += 1.0,
                }
            }
            join_producers[i] = Some(producers);
        }

        // Inter-segment edges: each head's input, resolved through joins
        // down to the producing layers (graph-input edges are free).
        let mut edges = Vec::new();
        for (s, run) in members.iter().enumerate() {
            let mut push = |p: Option<usize>, mult: f64, via_join: bool| {
                if let Some(p) = p {
                    let elems = mult * (batch * self.node_output(p).volume()) as f64;
                    edges.push(SegmentEdge {
                        from: seg_of[p],
                        to: s,
                        elems,
                        join_elems: if via_join { elems } else { 0.0 },
                    });
                }
            };
            match self.resolved_inputs(run[0])[0] {
                Some(j) if nodes[j].op().is_join() => {
                    // Every join was resolved in the pass above; an
                    // unresolved one contributes no edge rather than a
                    // panic.
                    let Some(producers) = join_producers[j].as_ref() else {
                        continue;
                    };
                    for (&source, &mult) in producers {
                        push(source, mult, true);
                    }
                }
                direct => push(direct, 1.0, false),
            }
        }

        Ok(SegmentCommGraph {
            name: self.name().to_owned(),
            batch,
            segments,
            shapes,
            edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::GraphBuilder;
    use crate::node::INPUT;
    use hypar_models::ConvSpec;

    fn tiny_residual() -> DagNetwork {
        let mut g = GraphBuilder::new("tiny-res", FeatureDims::new(8, 16, 16));
        g.conv("stem", ConvSpec::same(8, 3), INPUT)
            .conv("body", ConvSpec::same(8, 3), "stem")
            .add("join", &["stem", "body"])
            .fully_connected("fc", 10, "join");
        g.build().unwrap()
    }

    #[test]
    fn chain_dag_is_one_segment_no_edges() {
        let mut g = GraphBuilder::new("chain", FeatureDims::new(1, 28, 28));
        g.conv("conv1", ConvSpec::valid(20, 5), INPUT)
            .fully_connected("fc1", 10, "conv1");
        let graph = g.build().unwrap().segments(64).unwrap();
        assert_eq!(graph.num_segments(), 1);
        assert!(graph.edges().is_empty());
        assert_eq!(graph.segment(0).len(), 2);
        assert_eq!(graph.num_layers(), 2);
        assert_eq!(graph.batch(), 64);
    }

    #[test]
    fn residual_block_segments_and_edges() {
        let graph = tiny_residual().segments(32).unwrap();
        // stem (fan-out 2) | body | fc (fed by the join).
        assert_eq!(graph.num_segments(), 3);
        assert_eq!(graph.num_layers(), 3);
        // stem->body, plus the join dissolving into stem->fc and body->fc.
        let mut pairs: Vec<(usize, usize)> = graph.edges().iter().map(|e| (e.from, e.to)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
        // Every edge carries the full batched 8x16x16 branch tensor.
        for edge in graph.edges() {
            assert_eq!(edge.elems, (32 * 8 * 16 * 16) as f64);
        }
    }

    #[test]
    fn segment_tensors_match_the_chain_model() {
        let graph = tiny_residual().segments(32).unwrap();
        // The fc segment consumes the join output (8x16x16 flattened).
        let fc = graph.segment(2);
        assert_eq!(fc.layer(0).weight_elems, (8 * 16 * 16 * 10) as f64);
        assert_eq!(fc.layer(0).input_elems, (32 * 8 * 16 * 16) as f64);
    }

    #[test]
    fn join_work_is_charged_only_on_join_mediated_edges() {
        let graph = tiny_residual().segments(32).unwrap();
        let branch = (32 * 8 * 16 * 16) as f64;
        for edge in graph.edges() {
            if edge.to == 2 {
                // stem->fc and body->fc resolve through the `add` join:
                // each branch tensor is accumulated into the sum.
                assert_eq!(edge.join_elems, branch, "{edge:?}");
            } else {
                // stem->body is pure fan-out: no arithmetic.
                assert_eq!(edge.join_elems, 0.0, "{edge:?}");
            }
        }
    }

    #[test]
    fn zero_batch_is_rejected() {
        assert_eq!(
            tiny_residual().segments(0).unwrap_err(),
            GraphError::ZeroBatch
        );
    }

    #[test]
    fn join_of_joins_resolves_transitively() {
        let mut g = GraphBuilder::new("jj", FeatureDims::new(4, 8, 8));
        g.conv("a", ConvSpec::same(4, 3), INPUT)
            .conv("b", ConvSpec::same(4, 3), INPUT)
            .add("ab", &["a", "b"])
            .conv("c", ConvSpec::same(8, 3), INPUT)
            .concat("mix", &["ab", "ab"])
            .concat("all", &["mix", "c"])
            .fully_connected("out", 10, "all");
        let graph = g.build().unwrap().segments(16).unwrap();
        // a, b, c, out — the joins dissolve entirely.
        assert_eq!(graph.num_segments(), 4);
        // out receives a and b twice each (via mix, merged with
        // multiplicity 2) plus c once.
        let into_out: Vec<_> = graph.edges().iter().filter(|e| e.to == 3).collect();
        assert_eq!(into_out.len(), 3);
        let branch = (16 * 4 * 8 * 8) as f64; // a/b output, batched
        assert_eq!(into_out[0].elems, 2.0 * branch); // a, twice via mix
        assert_eq!(into_out[1].elems, 2.0 * branch); // b, twice via mix
        assert_eq!(into_out[2].elems, 2.0 * branch); // c once: 8 channels
    }

    #[test]
    fn stacked_self_joins_stay_polynomial() {
        // A ladder of concat(x, x) joins has 2^N paths but one producer;
        // multiplicity counting must keep this instant and exact (this is
        // reachable from untrusted service input).
        let depth = 48;
        let mut g = GraphBuilder::new("blowup", FeatureDims::new(1, 4, 4));
        g.conv("stem", ConvSpec::same(1, 1), INPUT);
        let mut prev = "stem".to_owned();
        for i in 0..depth {
            let name = format!("j{i}");
            g.concat(&name, &[&prev, &prev]);
            prev = name;
        }
        g.fully_connected("out", 1, &prev);
        let graph = g.build().unwrap().segments(1).unwrap();
        assert_eq!(graph.num_segments(), 2);
        assert_eq!(graph.edges().len(), 1);
        // 2^48 paths x the 1x4x4 stem output.
        assert_eq!(graph.edges()[0].elems, (1u64 << depth) as f64 * 16.0);
    }
}
