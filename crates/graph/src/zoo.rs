//! Branchy evaluation networks: the DAG counterpart of
//! [`hypar_models::zoo`].
//!
//! HyPar's paper evaluates only chain-shaped CNNs; these builders open the
//! workload class its evaluation skips — residual (ResNet-class) and
//! multi-branch (Inception-class) topologies — using the same layer
//! vocabulary (conv/fc with pooling), so every downstream cost is computed
//! by the identical model.
//!
//! # Examples
//!
//! ```
//! use hypar_graph::zoo;
//!
//! assert_eq!(zoo::resnet18().num_layers(), 21);
//! assert!(zoo::by_name("resnet18").is_some());
//! assert!(zoo::by_name("VGG-A").is_none()); // chain zoo, not here
//! ```

use hypar_models::{ConvSpec, Layer, PoolSpec};
use hypar_tensor::FeatureDims;

use crate::dag::{DagNetwork, GraphBuilder};
use crate::node::INPUT;

/// Names of the branchy zoo networks.
pub const NAMES: [&str; 2] = ["ResNet-18", "Inception-Mini"];

/// Looks a branchy zoo network up by name.
///
/// Matching is forgiving exactly like [`hypar_models::zoo::by_name`]
/// (same [`hypar_models::zoo::canonical`] rule): `"ResNet-18"`,
/// `"resnet18"`, and `"RESNET_18"` all resolve identically.
#[must_use]
pub fn by_name(name: &str) -> Option<DagNetwork> {
    let canonical = hypar_models::zoo::canonical;
    let wanted = canonical(name);
    NAMES
        .iter()
        .find(|candidate| canonical(candidate) == wanted)
        .and_then(|candidate| match *candidate {
            "ResNet-18" => Some(resnet18()),
            "Inception-Mini" => Some(inception_mini()),
            // A NAMES entry without a builder arm is a bug, but it
            // surfaces as a lookup miss, not an abort.
            _ => None,
        })
}

/// All branchy zoo networks, in [`NAMES`] order.
#[must_use]
pub fn all() -> Vec<DagNetwork> {
    NAMES.iter().filter_map(|n| by_name(n)).collect()
}

/// A ResNet-18-style residual network for 224×224 inputs: a strided 7×7
/// stem, four stages of two basic blocks each (3×3 + 3×3 with an `add`
/// skip; the stage-entry blocks of stages 3–5 downsample with stride 2 and
/// a 1×1 projection skip), and a 1000-way classifier.
///
/// 21 weighted layers: the stem, 16 block convolutions, 3 projections, and
/// the final fully-connected layer.  (BatchNorm is element-wise and global
/// average pooling is omitted — neither changes the communication model's
/// tensors materially; the classifier consumes the flattened 7×7×512
/// map.)
#[must_use]
pub fn resnet18() -> DagNetwork {
    let mut g = GraphBuilder::new("ResNet-18", FeatureDims::new(3, 224, 224));
    g.layer(
        Layer::conv(
            "conv1",
            ConvSpec {
                out_channels: 64,
                kernel: 7,
                stride: 2,
                padding: 3,
            },
        )
        .with_pool(PoolSpec::max2()),
        INPUT,
    );
    let mut prev = "conv1".to_owned();
    for (stage, &channels) in [64u64, 128, 256, 512].iter().enumerate() {
        for block in 0..2usize {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let base = format!("res{}{}", stage + 2, char::from(b'a' + block as u8));
            let conv_a = format!("{base}_2a");
            let conv_b = format!("{base}_2b");
            g.conv(
                &conv_a,
                ConvSpec {
                    out_channels: channels,
                    kernel: 3,
                    stride,
                    padding: 1,
                },
                &prev,
            );
            g.conv(&conv_b, ConvSpec::same(channels, 3), &conv_a);
            let skip = if stride == 2 {
                let projection = format!("{base}_1");
                g.conv(
                    &projection,
                    ConvSpec {
                        out_channels: channels,
                        kernel: 1,
                        stride: 2,
                        padding: 0,
                    },
                    &prev,
                );
                projection
            } else {
                prev.clone()
            };
            g.add(&base, &[&conv_b, &skip]);
            prev = base;
        }
    }
    g.fully_connected("fc1000", 1000, &prev);
    // hypar-allow: panic-path — static zoo literal validated by the structure tests; no service input reaches this builder
    g.build().expect("ResNet-18 is a valid graph")
}

/// A small Inception-style network for 32×32 inputs: a pooled 3×3 stem,
/// one inception module (1×1 / 1×1→3×3 / 1×1→5×5 branches concatenated to
/// 64 channels), a pooled 3×3 fuse convolution, and a 10-way classifier.
///
/// 8 weighted layers in 5 segments joined by 6 branch/concat edges.
#[must_use]
pub fn inception_mini() -> DagNetwork {
    let mut g = GraphBuilder::new("Inception-Mini", FeatureDims::new(3, 32, 32));
    g.layer(
        Layer::conv("stem", ConvSpec::same(32, 3)).with_pool(PoolSpec::max2()),
        INPUT,
    )
    .conv("b1x1", ConvSpec::same(16, 1), "stem")
    .conv("b3x3_reduce", ConvSpec::same(16, 1), "stem")
    .conv("b3x3", ConvSpec::same(32, 3), "b3x3_reduce")
    .conv("b5x5_reduce", ConvSpec::same(8, 1), "stem")
    .conv("b5x5", ConvSpec::same(16, 5), "b5x5_reduce")
    .concat("mixed", &["b1x1", "b3x3", "b5x5"])
    .layer(
        Layer::conv("conv2", ConvSpec::same(64, 3)).with_pool(PoolSpec::max2()),
        "mixed",
    )
    .fully_connected("fc10", 10, "conv2");
    // hypar-allow: panic-path — static zoo literal validated by the structure tests; no service input reaches this builder
    g.build().expect("Inception-Mini is a valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_structure() {
        let dag = resnet18();
        assert_eq!(dag.name(), "ResNet-18");
        assert_eq!(dag.num_layers(), 21);
        assert_eq!(dag.num_nodes(), 29); // 21 layers + 8 add joins
        assert!(!dag.is_chain());
    }

    #[test]
    fn resnet18_spatial_funnel() {
        let dag = resnet18();
        // The final add (res5b) carries the 512-channel 7x7 map.
        let res5b = dag
            .nodes()
            .iter()
            .position(|n| n.name() == "res5b")
            .unwrap();
        assert_eq!(dag.node_output(res5b), FeatureDims::new(512, 7, 7));
        // The classifier flattens it to 25,088 features.
        let graph = dag.segments(1).unwrap();
        let fc = graph
            .segments()
            .iter()
            .flat_map(|s| s.layers())
            .find(|l| l.name == "fc1000")
            .unwrap();
        assert_eq!(fc.weight_elems, (512 * 7 * 7 * 1000) as f64);
    }

    #[test]
    fn resnet18_segments_and_edges() {
        let graph = resnet18().segments(64).unwrap();
        // conv1 | 8 block bodies | 3 projections | fc1000.
        assert_eq!(graph.num_segments(), 13);
        assert_eq!(graph.num_layers(), 21);
        // Every block junction contributes: producer->body plus the join
        // in-edges (resolved transitively through identity-skip joins)
        // forwarded to each consumer.
        assert_eq!(graph.edges().len(), 30);
    }

    #[test]
    fn inception_mini_structure() {
        let dag = inception_mini();
        assert_eq!(dag.num_layers(), 8);
        let graph = dag.segments(128).unwrap();
        assert_eq!(graph.num_segments(), 5);
        assert_eq!(graph.edges().len(), 6);
    }

    #[test]
    fn registry_is_forgiving_and_round_trips() {
        for name in NAMES {
            assert_eq!(by_name(name).unwrap().name(), name);
        }
        assert_eq!(by_name("resnet18").unwrap().name(), "ResNet-18");
        assert_eq!(by_name("INCEPTION_MINI").unwrap().name(), "Inception-Mini");
        assert!(by_name("resnet50").is_none());
        assert_eq!(all().len(), NAMES.len());
    }
}
