//! Properties of the joint DAG exhaustive search.
//!
//! Two anchors:
//!
//! * on **chain-shaped** DAGs, [`hypar_graph::best_joint_graph`] must be
//!   **bit-identical** to [`hypar_core::exhaustive::best_joint`] on the
//!   linearized network — same winning assignment, same cost to the last
//!   float — because the single-segment enumeration *is* the chain
//!   enumeration;
//! * on genuinely **branchy** DAGs, the stitched greedy plan
//!   ([`hypar_graph::partition_graph`]) can never beat the joint optimum:
//!   the stitched plan's levels are one point of the joint space, and
//!   [`hypar_graph::evaluate_graph_plan`] prices both identically.

use hypar_comm::NetworkCommTensors;
use hypar_core::exhaustive;
use hypar_graph::{best_joint_graph, partition_graph, GraphBuilder, SegmentCommGraph, INPUT};
use hypar_models::ConvSpec;
use hypar_tensor::FeatureDims;
use proptest::prelude::*;

/// A randomly drawn tiny chain (kept small: the joint space is `2^{L·H}`).
#[derive(Clone, Debug)]
struct TinyChain {
    in_features: u64,
    fcs: Vec<u64>,
}

impl TinyChain {
    fn dag(&self) -> hypar_graph::DagNetwork {
        let mut g = GraphBuilder::new("tiny", FeatureDims::new(1, 1, self.in_features));
        let mut prev = INPUT.to_owned();
        for (i, &out) in self.fcs.iter().enumerate() {
            let name = format!("fc{i}");
            g.fully_connected(&name, out, &prev);
            prev = name;
        }
        g.build().expect("generated chains are valid")
    }
}

fn arb_tiny_chain() -> impl Strategy<Value = TinyChain> {
    (1u64..128, proptest::collection::vec(1u64..128, 1..4))
        .prop_map(|(in_features, fcs)| TinyChain { in_features, fcs })
}

/// A randomly drawn tiny residual block: stem -> body (1 or 2 convs),
/// `add`-joined with the stem (or a 1x1 projection), into a classifier.
#[derive(Clone, Debug)]
struct TinyResidual {
    channels: u64,
    two_convs: bool,
    projection: bool,
    out: u64,
}

impl TinyResidual {
    fn graph(&self, batch: u64) -> SegmentCommGraph {
        let mut g = GraphBuilder::new("tiny-res", FeatureDims::new(self.channels, 8, 8));
        g.conv("stem", ConvSpec::same(self.channels, 3), INPUT);
        g.conv("body_a", ConvSpec::same(self.channels, 3), "stem");
        let tail = if self.two_convs {
            g.conv("body_b", ConvSpec::same(self.channels, 3), "body_a");
            "body_b"
        } else {
            "body_a"
        };
        let skip = if self.projection {
            g.conv("proj", ConvSpec::same(self.channels, 1), "stem");
            "proj"
        } else {
            "stem"
        };
        g.add("join", &[tail, skip]);
        g.fully_connected("fc", self.out, "join");
        g.build()
            .expect("generated residual blocks are valid")
            .segments(batch)
            .expect("positive batch")
    }
}

fn arb_tiny_residual() -> impl Strategy<Value = TinyResidual> {
    (1u64..16, any::<bool>(), any::<bool>(), 1u64..64).prop_map(
        |(channels, two_convs, projection, out)| TinyResidual {
            channels,
            two_convs,
            projection,
            out,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chain-shaped DAGs: the joint graph search reproduces the chain
    /// joint search bit for bit — winning levels and cost.
    #[test]
    fn chain_joint_search_is_bit_identical(
        spec in arb_tiny_chain(),
        levels in 0usize..4,
        batch in 1u64..64,
    ) {
        let dag = spec.dag();
        let graph = dag.segments(batch).unwrap();
        prop_assert_eq!(graph.num_segments(), 1);

        let chain = NetworkCommTensors::from_network(&dag.linearize().unwrap(), batch).unwrap();
        let (chain_cost, chain_levels) = exhaustive::best_joint(&chain, levels).unwrap();
        let joint = best_joint_graph(&graph, levels).unwrap();

        prop_assert_eq!(joint.levels(), &chain_levels[..]);
        prop_assert_eq!(joint.total_comm_elems(), chain_cost);
    }

    /// Branchy DAGs: the stitched greedy plan's cost is always at least
    /// the joint optimum's (the joint space contains every stitched plan).
    #[test]
    fn stitched_greedy_never_beats_the_joint_optimum(
        spec in arb_tiny_residual(),
        levels in 1usize..4,
        batch in 1u64..64,
    ) {
        let graph = spec.graph(batch);
        prop_assert!(graph.num_segments() > 1, "residual blocks are branchy");
        let stitched = partition_graph(&graph, levels).unwrap().total_comm_elems();
        let joint = best_joint_graph(&graph, levels).unwrap().total_comm_elems();
        prop_assert!(
            joint <= stitched * (1.0 + 1e-12),
            "joint {} vs stitched {}", joint, stitched
        );
        // Cross-check the enumeration against the public evaluator on the
        // stitched point itself.
        let evaluated = hypar_graph::evaluate_graph_plan(
            &graph,
            partition_graph(&graph, levels).unwrap().levels(),
        ).unwrap();
        prop_assert!((evaluated - stitched).abs() <= 1e-9 * stitched.max(1.0));
    }
}
