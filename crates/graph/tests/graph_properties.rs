//! Property tests: branch-free DAGs are *exactly* the chain pipeline.
//!
//! A randomly generated branch-free DAG must linearize to a [`Network`]
//! whose inferred shapes and communication tensors match the chain built
//! directly through [`hypar_models::NetworkBuilder`] — and the segment
//! planner must reproduce the chain planner bit for bit.

use hypar_comm::NetworkCommTensors;
use hypar_core::hierarchical;
use hypar_graph::{GraphBuilder, INPUT};
use hypar_models::{ConvSpec, Layer, Network, NetworkShapes, PoolSpec};
use hypar_tensor::FeatureDims;
use proptest::prelude::*;

/// One randomly drawn chain: an input shape plus layer descriptors.
#[derive(Clone, Debug)]
struct ChainSpec {
    input: FeatureDims,
    /// `(out_channels, kernel, pool)` per convolution.
    convs: Vec<(u64, u64, bool)>,
    /// `out_features` per fully-connected layer.
    fcs: Vec<u64>,
}

impl ChainSpec {
    /// The layers, constructed identically for both IRs.
    fn layers(&self) -> Vec<Layer> {
        let mut hw = self.input.height;
        let mut layers = Vec::new();
        for (i, &(out_ch, kernel, pool)) in self.convs.iter().enumerate() {
            let mut layer = Layer::conv(format!("conv{i}"), ConvSpec::same(out_ch, kernel));
            if pool && hw >= 4 {
                layer = layer.with_pool(PoolSpec::max2());
                hw /= 2;
            }
            layers.push(layer);
        }
        for (i, &out) in self.fcs.iter().enumerate() {
            layers.push(Layer::fully_connected(format!("fc{i}"), out));
        }
        layers
    }

    /// The chain built directly through the chain IR.
    fn chain(&self) -> Network {
        let mut b = Network::builder("prop", self.input);
        for layer in self.layers() {
            b.layer(layer);
        }
        b.build().expect("generated chains are valid")
    }

    /// The same chain built as a DAG — with the nodes inserted in
    /// *reverse* order, so canonicalization is exercised too.
    fn dag(&self) -> hypar_graph::DagNetwork {
        let layers = self.layers();
        let mut g = GraphBuilder::new("prop", self.input);
        for (i, layer) in layers.iter().enumerate().rev() {
            let from = if i == 0 {
                INPUT.to_owned()
            } else {
                layers[i - 1].name().to_owned()
            };
            g.layer(layer.clone(), from);
        }
        g.build().expect("generated DAGs are valid")
    }
}

fn arb_chain() -> impl Strategy<Value = ChainSpec> {
    (
        proptest::collection::vec(
            (
                1u64..64,
                prop_oneof![Just(1u64), Just(3), Just(5)],
                any::<bool>(),
            ),
            0..5,
        ),
        proptest::collection::vec(1u64..300, 1..4),
        (1u64..8, 8u64..64),
    )
        .prop_map(|(convs, fcs, (in_ch, in_hw))| ChainSpec {
            input: FeatureDims::new(in_ch, in_hw, in_hw),
            convs,
            fcs,
        })
}

proptest! {
    /// `linearize()` reproduces the directly built chain exactly — the
    /// networks are equal, so all downstream shapes are too.
    #[test]
    fn linearize_reproduces_the_chain(spec in arb_chain()) {
        let dag = spec.dag();
        prop_assert!(dag.is_chain());
        prop_assert_eq!(dag.linearize().unwrap(), spec.chain());
    }

    /// Shape inference agrees between the two IRs at any batch size.
    #[test]
    fn shapes_match_the_chain(spec in arb_chain(), batch in 1u64..64) {
        let direct = NetworkShapes::infer(&spec.chain(), batch).unwrap();
        let lowered = NetworkShapes::infer(&spec.dag().linearize().unwrap(), batch).unwrap();
        prop_assert_eq!(direct, lowered);
    }

    /// The communication tensors agree, both via linearization and via
    /// the segment decomposition (one segment, no edges).
    #[test]
    fn comm_tensors_match_the_chain(spec in arb_chain(), batch in 1u64..64) {
        let direct = NetworkCommTensors::from_network(&spec.chain(), batch).unwrap();
        let lowered =
            NetworkCommTensors::from_network(&spec.dag().linearize().unwrap(), batch).unwrap();
        prop_assert_eq!(&direct, &lowered);

        let graph = spec.dag().segments(batch).unwrap();
        prop_assert_eq!(graph.num_segments(), 1);
        prop_assert!(graph.edges().is_empty());
        // Segment names carry a segment prefix; the tensors themselves
        // must be identical.
        prop_assert_eq!(graph.segment(0).layers(), direct.layers());
        prop_assert_eq!(graph.segment(0).batch(), batch);
    }

    /// Planning a branch-free DAG through the segment path is
    /// bit-identical to the chain pipeline.
    #[test]
    fn segment_planner_matches_chain_planner(spec in arb_chain(), levels in 0usize..5) {
        let chain = NetworkCommTensors::from_network(&spec.chain(), 32).unwrap();
        let direct = hierarchical::partition(&chain, levels);
        let graph = spec.dag().segments(32).unwrap();
        let stitched = hypar_graph::partition_graph(&graph, levels).unwrap();
        prop_assert_eq!(direct.levels(), stitched.levels());
        prop_assert_eq!(direct.total_comm_elems(), stitched.total_comm_elems());
        prop_assert_eq!(direct.layer_names(), stitched.layer_names());
    }
}
