//! Properties of the junction-aware refinement pass.
//!
//! Two anchors:
//!
//! * the refined plan's whole-graph cost **never exceeds** the stitched
//!   plan's — strict-improvement acceptance guarantees it on any graph,
//!   any hierarchy depth, any [`JunctionScaling`] interpretation;
//! * wherever the joint exhaustive search can certify the optimum,
//!   refinement **reaches it**: on the branchy-zoo graphs within the
//!   slot limit the refined plan costs exactly what
//!   [`best_joint_graph_with`]'s does, across the junction-scaling
//!   modes.  Cost-identical, not bit-identical: optimal plans can tie
//!   (e.g. Inception-Mini's tiny fc flips mp at level 0 vs level 2 for
//!   the same total), and the two searches break ties from different
//!   directions — so the certificate is the evaluated cost of each
//!   plan's own bits under the shared whole-graph model.

use hypar_comm::JunctionScaling;
use hypar_graph::{
    best_joint_graph_with, partition_graph_refined_with, partition_graph_with, zoo, GraphBuilder,
    SegmentCommGraph, INPUT,
};
use hypar_models::ConvSpec;
use hypar_tensor::FeatureDims;
use proptest::prelude::*;

const MODES: [JunctionScaling; 3] = [
    JunctionScaling::Consumer,
    JunctionScaling::Producer,
    JunctionScaling::Unscaled,
];

/// A randomly drawn tiny residual block: stem -> body (1 or 2 convs),
/// `add`-joined with the stem (or a 1x1 projection), into a classifier.
#[derive(Clone, Debug)]
struct TinyResidual {
    channels: u64,
    two_convs: bool,
    projection: bool,
    out: u64,
}

impl TinyResidual {
    fn graph(&self, batch: u64) -> SegmentCommGraph {
        let mut g = GraphBuilder::new("tiny-res", FeatureDims::new(self.channels, 8, 8));
        g.conv("stem", ConvSpec::same(self.channels, 3), INPUT);
        g.conv("body_a", ConvSpec::same(self.channels, 3), "stem");
        let tail = if self.two_convs {
            g.conv("body_b", ConvSpec::same(self.channels, 3), "body_a");
            "body_b"
        } else {
            "body_a"
        };
        let skip = if self.projection {
            g.conv("proj", ConvSpec::same(self.channels, 1), "stem");
            "proj"
        } else {
            "stem"
        };
        g.add("join", &[tail, skip]);
        g.fully_connected("fc", self.out, "join");
        g.build()
            .expect("generated residual blocks are valid")
            .segments(batch)
            .expect("positive batch")
    }
}

fn arb_tiny_residual() -> impl Strategy<Value = TinyResidual> {
    (1u64..16, any::<bool>(), any::<bool>(), 1u64..64).prop_map(
        |(channels, two_convs, projection, out)| TinyResidual {
            channels,
            two_convs,
            projection,
            out,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The refined plan never costs more than the stitched plan it was
    /// seeded from, whatever the graph, depth, batch, or scaling mode.
    #[test]
    fn refined_never_exceeds_stitched(
        spec in arb_tiny_residual(),
        levels in 0usize..4,
        batch in 1u64..64,
        mode_idx in 0usize..3,
    ) {
        let graph = spec.graph(batch);
        let mode = MODES[mode_idx];
        let stitched = partition_graph_with(&graph, levels, mode).unwrap();
        let refined = partition_graph_refined_with(&graph, levels, mode).unwrap();
        prop_assert!(
            refined.total_comm_elems() <= stitched.total_comm_elems() * (1.0 + 1e-12),
            "refined {} vs stitched {}",
            refined.total_comm_elems(),
            stitched.total_comm_elems()
        );
        prop_assert_eq!(refined.layer_names(), stitched.layer_names());
        prop_assert_eq!(refined.num_levels(), stitched.num_levels());
    }

    /// Wherever the joint optimum is certifiable, refinement reaches its
    /// cost on the randomly drawn residual blocks too — bounded from
    /// **both** sides: a refined plan above the optimum means descent
    /// stopped short, one below it means the refinement evaluator and
    /// the joint enumeration's scratch evaluator have drifted apart.
    #[test]
    fn refined_reaches_the_joint_cost_on_random_residuals(
        spec in arb_tiny_residual(),
        levels in 1usize..4,
        batch in 1u64..64,
        mode_idx in 0usize..3,
    ) {
        let graph = spec.graph(batch);
        let mode = MODES[mode_idx];
        let refined = partition_graph_refined_with(&graph, levels, mode).unwrap();
        let joint = best_joint_graph_with(&graph, levels, mode).unwrap();
        prop_assert!(
            (refined.total_comm_elems() - joint.total_comm_elems()).abs()
                <= 1e-9 * joint.total_comm_elems().max(1.0),
            "refined {} vs joint {}",
            refined.total_comm_elems(),
            joint.total_comm_elems()
        );
    }
}

/// Every branchy-zoo graph at every hierarchy depth whose joint space is
/// debug-enumerable (`L·H ≤ 21`: ResNet-18's 21 layers at `H = 1`,
/// Inception-Mini's 8 layers at `H ≤ 2`): the refined plan's cost is the
/// certified joint optimum's, across the junction-scaling modes, and
/// both plans' bits evaluate to that same cost under the shared
/// whole-graph model.  The 24-slot boundary itself (16.8M candidates per
/// mode — too slow for the debug test suite) is certified in release by
/// the `greedy_gap_branchy` experiment and tracked by the
/// `best_joint_graph/24slots` criterion bench.
#[test]
fn refined_matches_the_joint_optimum_cost_on_the_zoo_within_the_bound() {
    let mut certified = 0;
    for name in zoo::NAMES {
        let graph = zoo::by_name(name).unwrap().segments(64).unwrap();
        for levels in 1usize..=4 {
            if graph.num_layers() * levels > 21 {
                continue;
            }
            for mode in MODES {
                let refined = partition_graph_refined_with(&graph, levels, mode).unwrap();
                let joint = best_joint_graph_with(&graph, levels, mode).unwrap();
                let tolerance = 1e-9 * joint.total_comm_elems().max(1.0);
                assert!(
                    (refined.total_comm_elems() - joint.total_comm_elems()).abs() <= tolerance,
                    "{name} H{levels} {mode:?}: refined {} vs joint {}",
                    refined.total_comm_elems(),
                    joint.total_comm_elems()
                );
                // Certify each plan's own bits under the shared evaluator
                // (optimal plans may tie with different bits, so cost —
                // not the bit pattern — is the certificate).
                for plan in [&refined, &joint] {
                    let evaluated =
                        hypar_graph::evaluate_graph_plan_with(&graph, plan.levels(), mode).unwrap();
                    assert!(
                        (evaluated - joint.total_comm_elems()).abs() <= tolerance,
                        "{name} H{levels} {mode:?}: bits evaluate to {evaluated}, joint {}",
                        joint.total_comm_elems()
                    );
                }
                certified += 1;
            }
        }
    }
    assert!(certified >= 9, "expected coverage, certified {certified}");
}
