//! Error type for model construction and shape inference.

use std::error::Error;
use std::fmt;

/// Errors produced while building a [`crate::Network`] or inferring its
/// tensor shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// The network has no weighted layers.
    Empty,
    /// The batch size is zero.
    ZeroBatch,
    /// A convolution kernel does not fit in its input feature map.
    KernelTooLarge {
        /// Name of the offending layer.
        layer: String,
        /// Kernel extent (height/width).
        kernel: u64,
        /// Padded input extent it was applied to.
        input: u64,
    },
    /// A pooling window does not fit in the feature map it pools.
    PoolTooLarge {
        /// Name of the offending layer.
        layer: String,
        /// Pooling window extent.
        pool: u64,
        /// Feature-map extent it was applied to.
        input: u64,
    },
    /// A stride of zero was specified.
    ZeroStride {
        /// Name of the offending layer.
        layer: String,
    },
    /// A hyper-parameter that must be positive was zero.
    ZeroDimension {
        /// Name of the offending layer.
        layer: String,
        /// Which hyper-parameter was zero.
        what: &'static str,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "network has no weighted layers"),
            Self::ZeroBatch => write!(f, "batch size must be positive"),
            Self::KernelTooLarge {
                layer,
                kernel,
                input,
            } => write!(
                f,
                "layer `{layer}`: kernel {kernel}x{kernel} exceeds padded input extent {input}"
            ),
            Self::PoolTooLarge { layer, pool, input } => write!(
                f,
                "layer `{layer}`: pooling window {pool}x{pool} exceeds feature map extent {input}"
            ),
            Self::ZeroStride { layer } => write!(f, "layer `{layer}`: stride must be positive"),
            Self::ZeroDimension { layer, what } => {
                write!(f, "layer `{layer}`: {what} must be positive")
            }
        }
    }
}

impl Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = NetworkError::KernelTooLarge {
            layer: "conv1".to_owned(),
            kernel: 11,
            input: 8,
        };
        let msg = err.to_string();
        assert!(msg.contains("conv1"));
        assert!(msg.starts_with("layer"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetworkError>();
    }
}
