//! Weighted-layer descriptions: convolutional and fully-connected layers
//! with their pooling and activation attachments.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Hyper-parameters of a convolutional layer.
///
/// The kernel tensor `W_l` has size `[K × K × C_l] × C_{l+1}` (paper §2.1):
/// `K = kernel`, `C_l` is inherited from the previous layer during shape
/// inference, and `C_{l+1} = out_channels`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Number of output channels `C_{l+1}` (the number of filters).
    pub out_channels: u64,
    /// Kernel height/width `K` (kernels are square, as in the paper).
    pub kernel: u64,
    /// Convolution stride.
    pub stride: u64,
    /// Zero padding added to each spatial border.
    pub padding: u64,
}

impl ConvSpec {
    /// A stride-1, unpadded ("valid") convolution, the common case in the
    /// paper's small networks.
    #[must_use]
    pub fn valid(out_channels: u64, kernel: u64) -> Self {
        Self {
            out_channels,
            kernel,
            stride: 1,
            padding: 0,
        }
    }

    /// A stride-1 convolution padded to preserve the spatial extent
    /// (`padding = (kernel - 1) / 2`), the VGG configuration.
    #[must_use]
    pub fn same(out_channels: u64, kernel: u64) -> Self {
        Self {
            out_channels,
            kernel,
            stride: 1,
            padding: (kernel - 1) / 2,
        }
    }
}

/// Hyper-parameters of a fully-connected layer.
///
/// The kernel (weight matrix) has size `C_l × C_{l+1}` where `C_l` is the
/// flattened input feature count.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FcSpec {
    /// Number of output neurons `C_{l+1}`.
    pub out_features: u64,
}

/// The kind of a weighted layer: the paper's partition algorithm only
/// distinguishes `conv` and `fc` (its `HP[l]` input).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// A convolutional layer.
    Conv(ConvSpec),
    /// A fully-connected layer.
    FullyConnected(FcSpec),
}

impl LayerKind {
    /// Whether this is a convolutional layer.
    #[must_use]
    pub fn is_conv(&self) -> bool {
        matches!(self, Self::Conv(_))
    }

    /// Whether this is a fully-connected layer.
    #[must_use]
    pub fn is_fc(&self) -> bool {
        matches!(self, Self::FullyConnected(_))
    }
}

/// Pooling flavour attached after a weighted layer.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling (all pooling in the paper's networks).
    Max,
    /// Average pooling.
    Average,
}

/// A pooling attachment: `size × size` windows with the given stride.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Pooling window extent.
    pub size: u64,
    /// Pooling stride.
    pub stride: u64,
    /// Max or average pooling.
    pub kind: PoolKind,
}

impl PoolSpec {
    /// The ubiquitous non-overlapping `2×2` max pool.
    #[must_use]
    pub fn max2() -> Self {
        Self {
            size: 2,
            stride: 2,
            kind: PoolKind::Max,
        }
    }

    /// An overlapping max pool (`size`, `stride`) as used by AlexNet (3/2).
    #[must_use]
    pub fn max(size: u64, stride: u64) -> Self {
        Self {
            size,
            stride,
            kind: PoolKind::Max,
        }
    }
}

/// Element-wise activation following a weighted layer.
///
/// Activations are element-wise and therefore never introduce communication
/// (paper §3.1); they only contribute element-wise operations to the
/// simulator's compute model.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    #[default]
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// No activation (identity), e.g. before a softmax loss.
    None,
}

/// One *weighted* layer of a network: the unit over which HyPar chooses a
/// parallelism, together with its pooling and activation attachments.
///
/// # Examples
///
/// ```
/// use hypar_models::{ConvSpec, Layer, PoolSpec};
///
/// let conv1 = Layer::conv("conv1", ConvSpec::valid(20, 5)).with_pool(PoolSpec::max2());
/// assert!(conv1.kind().is_conv());
/// assert_eq!(conv1.name(), "conv1");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    name: String,
    kind: LayerKind,
    pool: Option<PoolSpec>,
    activation: Activation,
}

impl Layer {
    /// Creates a convolutional layer with the default ReLU activation and no
    /// pooling.
    #[must_use]
    pub fn conv(name: impl Into<String>, spec: ConvSpec) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Conv(spec),
            pool: None,
            activation: Activation::Relu,
        }
    }

    /// Creates a fully-connected layer with the default ReLU activation.
    #[must_use]
    pub fn fully_connected(name: impl Into<String>, out_features: u64) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::FullyConnected(FcSpec { out_features }),
            pool: None,
            activation: Activation::Relu,
        }
    }

    /// Attaches a pooling stage after this layer.
    #[must_use]
    pub fn with_pool(mut self, pool: PoolSpec) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Replaces the activation function.
    #[must_use]
    pub fn with_activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self
    }

    /// The layer's name, e.g. `conv5_2` or `fc1`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer kind (conv or fc) with its hyper-parameters.
    #[must_use]
    pub fn kind(&self) -> &LayerKind {
        &self.kind
    }

    /// The pooling attachment, if any.
    #[must_use]
    pub fn pool(&self) -> Option<&PoolSpec> {
        self.pool.as_ref()
    }

    /// The activation function.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            LayerKind::Conv(c) => write!(
                f,
                "{}: conv {}@{}x{}/s{}p{}",
                self.name, c.out_channels, c.kernel, c.kernel, c.stride, c.padding
            )?,
            LayerKind::FullyConnected(fc) => {
                write!(f, "{}: fc {}", self.name, fc.out_features)?;
            }
        }
        if let Some(p) = &self.pool {
            write!(f, " + pool {}x{}/s{}", p.size, p.size, p.stride)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_spec_constructors() {
        let v = ConvSpec::valid(20, 5);
        assert_eq!((v.stride, v.padding), (1, 0));
        let s = ConvSpec::same(64, 3);
        assert_eq!(s.padding, 1);
        let one = ConvSpec::same(256, 1);
        assert_eq!(one.padding, 0);
    }

    #[test]
    fn layer_builders_chain() {
        let l = Layer::conv("conv2", ConvSpec::valid(50, 5))
            .with_pool(PoolSpec::max2())
            .with_activation(Activation::Tanh);
        assert_eq!(l.pool().unwrap().size, 2);
        assert_eq!(l.activation(), Activation::Tanh);
    }

    #[test]
    fn kind_predicates() {
        assert!(Layer::conv("c", ConvSpec::valid(1, 1)).kind().is_conv());
        assert!(Layer::fully_connected("f", 10).kind().is_fc());
        assert!(!Layer::fully_connected("f", 10).kind().is_conv());
    }

    #[test]
    fn display_is_informative() {
        let c = Layer::conv("conv1", ConvSpec::valid(96, 11)).with_pool(PoolSpec::max(3, 2));
        let s = c.to_string();
        assert!(s.contains("conv1"));
        assert!(s.contains("96@11x11"));
        assert!(s.contains("pool 3x3/s2"));
        let f = Layer::fully_connected("fc1", 4096);
        assert_eq!(f.to_string(), "fc1: fc 4096");
    }

    #[test]
    fn default_activation_is_relu() {
        assert_eq!(Activation::default(), Activation::Relu);
        assert_eq!(
            Layer::fully_connected("f", 1).activation(),
            Activation::Relu
        );
    }
}
