//! DNN model descriptions and shape inference for the HyPar reproduction.
//!
//! HyPar's partition search (Algorithm 1 in the paper) takes exactly the
//! hyper-parameters of a mini-batch training run: the batch size, the number
//! of weighted layers, and per-layer hyper-parameters (layer type, kernel
//! sizes, pooling parameters, activation function).  This crate models that
//! input:
//!
//! * [`Layer`] / [`LayerKind`] — one *weighted* layer (convolutional or
//!   fully-connected) with its optional pooling and activation attachments,
//!   mirroring the paper's `HP[l]` list;
//! * [`Network`] / [`NetworkBuilder`] — a validated chain of weighted
//!   layers with an input shape;
//! * [`LayerShapes`] / [`NetworkShapes`] — the inferred tensor sizes
//!   (`F_l`, `W_l`, `F_{l+1}`, junction maps, MAC counts) every other crate
//!   consumes;
//! * [`zoo`] — the ten evaluation networks of the paper (`SFC`, `SCONV`,
//!   `Lenet-c`, `Cifar-c`, `AlexNet`, `VGG-A/B/C/D/E`).
//!
//! # Examples
//!
//! ```
//! use hypar_models::{zoo, NetworkShapes};
//!
//! let net = zoo::lenet_c();
//! let shapes = NetworkShapes::infer(&net, 256)?;
//! assert_eq!(shapes.len(), 4); // conv1, conv2, fc1, fc2
//! assert_eq!(shapes.total_weight_elems(), 430_500);
//! # Ok::<(), hypar_models::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod layer;
mod network;
mod shapes;
pub mod zoo;

pub use error::NetworkError;
pub use layer::{Activation, ConvSpec, FcSpec, Layer, LayerKind, PoolKind, PoolSpec};
pub use network::{Network, NetworkBuilder};
pub use shapes::{LayerShapes, NetworkShapes};
