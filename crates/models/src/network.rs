//! Validated networks and their builder.

use std::fmt;

use hypar_tensor::FeatureDims;
use serde::{Deserialize, Serialize};

use crate::{ConvSpec, Layer, NetworkError, NetworkShapes, PoolSpec};

/// A deep neural network as HyPar sees it: an input shape followed by a
/// chain of weighted layers.
///
/// Instances are created through [`NetworkBuilder`], which validates the
/// chain by running shape inference once; an existing `Network` therefore
/// always has consistent shapes for any positive batch size.
///
/// # Examples
///
/// ```
/// use hypar_models::{ConvSpec, Network, PoolSpec};
/// use hypar_tensor::FeatureDims;
///
/// let net = Network::builder("tiny", FeatureDims::new(1, 28, 28))
///     .conv("conv1", ConvSpec::valid(20, 5))
///     .pool(PoolSpec::max2())
///     .fully_connected("fc1", 10)
///     .build()?;
/// assert_eq!(net.num_layers(), 2);
/// # Ok::<(), hypar_models::NetworkError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    input: FeatureDims,
    layers: Vec<Layer>,
}

impl Network {
    /// Starts building a network with the given name and per-sample input
    /// shape.
    #[must_use]
    pub fn builder(name: impl Into<String>, input: FeatureDims) -> NetworkBuilder {
        NetworkBuilder {
            name: name.into(),
            input,
            layers: Vec::new(),
        }
    }

    /// The network's name (e.g. `VGG-A`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-sample input feature dimensions.
    #[must_use]
    pub fn input(&self) -> FeatureDims {
        self.input
    }

    /// The weighted layers in order.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of weighted layers (the paper's `L`).
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of convolutional layers.
    #[must_use]
    pub fn num_conv(&self) -> usize {
        self.layers.iter().filter(|l| l.kind().is_conv()).count()
    }

    /// Number of fully-connected layers.
    #[must_use]
    pub fn num_fc(&self) -> usize {
        self.layers.iter().filter(|l| l.kind().is_fc()).count()
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} (input {})", self.name, self.input)?;
        for layer in &self.layers {
            writeln!(f, "  {layer}")?;
        }
        Ok(())
    }
}

/// Incrementally constructs a [`Network`] ([C-BUILDER]).
///
/// The builder is non-consuming: configuration methods take `&mut self` and
/// [`NetworkBuilder::build`] takes `&self`, so a network can be assembled in
/// loops (as the VGG constructors in [`crate::zoo`] do).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    name: String,
    input: FeatureDims,
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Appends a pre-constructed layer.
    pub fn layer(&mut self, layer: Layer) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Appends a convolutional layer with default ReLU activation.
    pub fn conv(&mut self, name: impl Into<String>, spec: ConvSpec) -> &mut Self {
        self.layer(Layer::conv(name, spec))
    }

    /// Appends a fully-connected layer with default ReLU activation.
    pub fn fully_connected(&mut self, name: impl Into<String>, out_features: u64) -> &mut Self {
        self.layer(Layer::fully_connected(name, out_features))
    }

    /// Attaches pooling to the most recently added layer.
    ///
    /// # Panics
    ///
    /// Panics if no layer has been added yet — pooling in this model always
    /// belongs to a weighted layer, as in the paper's `HP[l]` lists.
    pub fn pool(&mut self, pool: PoolSpec) -> &mut Self {
        let layer = self
            .layers
            .pop()
            .expect("pool() must follow a weighted layer");
        self.layers.push(layer.with_pool(pool));
        self
    }

    /// Replaces the activation of the most recently added layer, e.g. to
    /// mark a final classifier layer that feeds a softmax loss.
    ///
    /// # Panics
    ///
    /// Panics if no layer has been added yet.
    pub fn activation(&mut self, activation: crate::Activation) -> &mut Self {
        let layer = self
            .layers
            .pop()
            .expect("activation() must follow a weighted layer");
        self.layers.push(layer.with_activation(activation));
        self
    }

    /// Validates the chain and produces the immutable [`Network`].
    ///
    /// # Errors
    ///
    /// Returns a [`NetworkError`] if the network is empty or any layer's
    /// hyper-parameters are inconsistent with the shapes flowing into it
    /// (kernel or pooling window larger than its input, zero dimensions,
    /// zero strides).
    pub fn build(&self) -> Result<Network, NetworkError> {
        let net = Network {
            name: self.name.clone(),
            input: self.input,
            layers: self.layers.clone(),
        };
        // Shape inference performs the full validation; batch size 1 is
        // enough because batch only multiplies through.
        let _ = NetworkShapes::infer(&net, 1)?;
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts_layer_kinds() {
        let net = Network::builder("t", FeatureDims::new(1, 28, 28))
            .conv("c1", ConvSpec::valid(20, 5))
            .conv("c2", ConvSpec::valid(50, 5))
            .fully_connected("f1", 500)
            .fully_connected("f2", 10)
            .build()
            .unwrap();
        assert_eq!(net.num_layers(), 4);
        assert_eq!(net.num_conv(), 2);
        assert_eq!(net.num_fc(), 2);
    }

    #[test]
    fn empty_network_is_rejected() {
        let err = Network::builder("e", FeatureDims::flat(10))
            .build()
            .unwrap_err();
        assert_eq!(err, NetworkError::Empty);
    }

    #[test]
    fn oversized_kernel_is_rejected() {
        let err = Network::builder("bad", FeatureDims::new(1, 4, 4))
            .conv("c1", ConvSpec::valid(8, 7))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            NetworkError::KernelTooLarge { kernel: 7, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "pool() must follow a weighted layer")]
    fn pool_before_layer_panics() {
        let _ = Network::builder("p", FeatureDims::flat(10)).pool(PoolSpec::max2());
    }

    #[test]
    fn display_lists_layers() {
        let net = Network::builder("demo", FeatureDims::new(1, 28, 28))
            .conv("c1", ConvSpec::valid(20, 5))
            .build()
            .unwrap();
        let text = net.to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("c1"));
    }
}
